// Cold-vs-warm serving benchmarks for the zateld artifact store: the same
// POST /v1/predict request through internal/service, first forcing a full
// pipeline build and then hitting the content-addressed cache. The paper's
// serving claim (a warm repeat skips tracing, quantization and the group
// simulations entirely) is asserted by TestWarmStoreSpeedup, which also
// emits machine-readable numbers when ZATEL_BENCH_STORE_JSON names a path.
package zatel_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"zatel/internal/service"
	"zatel/internal/store"
)

// storeBenchBody is the canonical request used by every store benchmark.
// The resolution is unique to this file so the first request through a
// fresh store always pays the full pipeline, whatever else the test binary
// has already cached.
func storeBenchBody(seed uint64) string {
	return fmt.Sprintf(`{"scene":"PARK","config":"mobile","width":120,"height":120,"spp":1,"seed":%d}`, seed)
}

func newStoreBenchServer(tb testing.TB) *httptest.Server {
	tb.Helper()
	srv := service.New(service.Config{Store: store.New(0), Parallel: true})
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(ts.Close)
	return ts
}

// timedPredict posts body to the server and returns the elapsed wall time
// plus the decoded response.
func timedPredict(tb testing.TB, ts *httptest.Server, body string) (time.Duration, *service.PredictResponse) {
	tb.Helper()
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		tb.Fatalf("POST /v1/predict: %v", err)
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("POST /v1/predict: status %d", resp.StatusCode)
	}
	var pr service.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		tb.Fatalf("decode response: %v", err)
	}
	return elapsed, &pr
}

// BenchmarkPredictCold measures the full build path: every iteration runs
// against a fresh artifact store, so quantization and all K group
// simulations execute (the workload trace may persist in the process-wide
// store — the steady-state "cold prediction" a long-lived daemon serves).
func BenchmarkPredictCold(b *testing.B) {
	body := storeBenchBody(101)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ts := newStoreBenchServer(b)
		b.StartTimer()
		d, pr := timedPredict(b, ts, body)
		if pr.Cache != "miss" {
			b.Fatalf("cold request served as %q, want miss", pr.Cache)
		}
		b.ReportMetric(float64(d.Milliseconds()), "ms/req")
		b.StopTimer()
		ts.Close()
		b.StartTimer()
	}
}

// BenchmarkPredictWarm measures the cache-hit path: one server, one primed
// store, repeated identical requests.
func BenchmarkPredictWarm(b *testing.B) {
	body := storeBenchBody(102)
	ts := newStoreBenchServer(b)
	if _, pr := timedPredict(b, ts, body); pr.Cache != "miss" {
		b.Fatalf("priming request served as %q, want miss", pr.Cache)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, pr := timedPredict(b, ts, body); pr.Cache != "hit" {
			b.Fatalf("warm request served as %q, want hit", pr.Cache)
		}
	}
}

// TestWarmStoreSpeedup asserts the acceptance criterion: a warm repeat of
// an identical request must be at least 10x faster than the cold build.
// Warm time is the minimum over several repeats so scheduler noise cannot
// fail the run; the cold time is a single honest measurement.
func TestWarmStoreSpeedup(t *testing.T) {
	body := storeBenchBody(103)
	ts := newStoreBenchServer(t)

	cold, pr := timedPredict(t, ts, body)
	if pr.Cache != "miss" {
		t.Fatalf("first request served as %q, want miss", pr.Cache)
	}
	key := pr.Key

	warm := time.Duration(1<<62 - 1)
	for i := 0; i < 10; i++ {
		d, pr := timedPredict(t, ts, body)
		if pr.Cache != "hit" {
			t.Fatalf("repeat %d served as %q, want hit", i, pr.Cache)
		}
		if pr.Key != key {
			t.Fatalf("repeat %d key %s != cold key %s", i, pr.Key, key)
		}
		if d < warm {
			warm = d
		}
	}

	speedup := float64(cold) / float64(warm)
	t.Logf("cold %v, warm %v, speedup %.1fx", cold, warm, speedup)
	if speedup < 10 {
		t.Errorf("warm repeat only %.1fx faster than cold build (want >= 10x): cold %v, warm %v",
			speedup, cold, warm)
	}

	if path := os.Getenv("ZATEL_BENCH_STORE_JSON"); path != "" {
		out := map[string]any{
			"scene":   "PARK",
			"width":   120,
			"height":  120,
			"spp":     1,
			"cold_ms": float64(cold) / 1e6,
			"warm_ms": float64(warm) / 1e6,
			"speedup": speedup,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatalf("marshal bench json: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
}
