// Warm-from-disk serving benchmark for the zateld artifact store's
// persistent tier: the same POST /v1/predict request through
// internal/service, first building cold with a disk tier attached, then —
// after a simulated restart (fresh memory store, reopened disk directory) —
// served from the integrity-verified disk entry. TestDiskWarmSpeedup
// asserts the disk warm hit beats the rebuild by at least 5x and emits
// machine-readable numbers when ZATEL_BENCH_DISK_JSON names a path.
package zatel_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"zatel/internal/service"
	"zatel/internal/store"
)

// diskBenchBody uses a resolution unique to this file so the cold request
// always pays the full pipeline regardless of what the test binary has
// already cached in the process-wide store.
func diskBenchBody(seed uint64) string {
	return fmt.Sprintf(`{"scene":"PARK","config":"mobile","width":104,"height":104,"spp":1,"seed":%d}`, seed)
}

func newDiskBenchServer(tb testing.TB, dir string) (*httptest.Server, *store.Disk) {
	tb.Helper()
	d, err := store.OpenDisk(store.DiskConfig{Dir: dir})
	if err != nil {
		tb.Fatalf("OpenDisk: %v", err)
	}
	st := store.New(0)
	st.AttachDisk(d)
	srv := service.New(service.Config{Store: st, Parallel: true})
	ts := httptest.NewServer(srv.Handler())
	tb.Cleanup(ts.Close)
	return ts, d
}

// TestDiskWarmSpeedup asserts the disk tier's acceptance criterion: after a
// restart, serving a prediction from the verified disk entry must be at
// least 5x faster than rebuilding it. Warm time is the minimum over several
// restarts (each reopening the disk fresh) so scheduler noise cannot fail
// the run; the rebuild time is a single honest measurement.
func TestDiskWarmSpeedup(t *testing.T) {
	body := diskBenchBody(201)
	dir := t.TempDir()

	// Cold: full pipeline build, persisted through the write-behind queue.
	ts, d := newDiskBenchServer(t, dir)
	cold, pr := timedPredict(t, ts, body)
	if pr.Cache != "miss" {
		t.Fatalf("first request served as %q, want miss", pr.Cache)
	}
	key := pr.Key
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ts.Close()

	// Warm: each iteration is a fresh "restart" — new memory store, the
	// disk directory reopened and rescanned — so every request exercises
	// the read + verify + decode path, never the memory tier.
	warm := time.Duration(1<<62 - 1)
	for i := 0; i < 5; i++ {
		ts, d := newDiskBenchServer(t, dir)
		dur, pr := timedPredict(t, ts, body)
		if pr.Cache != "disk" {
			t.Fatalf("restart %d served as %q, want disk", i, pr.Cache)
		}
		if pr.Key != key {
			t.Fatalf("restart %d key %s != cold key %s", i, pr.Key, key)
		}
		if dur < warm {
			warm = dur
		}
		d.Close()
		ts.Close()
	}

	speedup := float64(cold) / float64(warm)
	t.Logf("rebuild %v, warm-from-disk %v, speedup %.1fx", cold, warm, speedup)
	if speedup < 5 {
		t.Errorf("disk warm hit only %.1fx faster than rebuild (want >= 5x): cold %v, warm %v",
			speedup, cold, warm)
	}

	if path := os.Getenv("ZATEL_BENCH_DISK_JSON"); path != "" {
		out := map[string]any{
			"scene":      "PARK",
			"width":      104,
			"height":     104,
			"spp":        1,
			"rebuild_ms": float64(cold) / 1e6,
			"disk_ms":    float64(warm) / 1e6,
			"speedup":    speedup,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatalf("marshal bench json: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
}
