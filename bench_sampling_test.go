// Adaptive-sampling benchmark: a replicated strategy with a CI target
// against the fixed-fraction baseline on the same scene. The acceptance
// smoke — adaptive mode stops within its round cap and returns intervals
// that bracket the prediction — is asserted by TestAdaptiveSamplingBench,
// which also emits machine-readable numbers (wall times, rounds, realized
// fractions, achieved half-width) when ZATEL_BENCH_SAMPLING_JSON names a
// path.
package zatel_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
	"zatel/internal/sampling"
)

func samplingBenchOptions() core.Options {
	return core.Options{
		Config: config.MobileSoC(),
		Scene:  "PARK",
		Width:  96, Height: 96, SPP: 1,
		Dist:          sampling.Uniform,
		FixedFraction: 0.3,
		Seed:          7,
	}
}

func TestAdaptiveSamplingBench(t *testing.T) {
	base := samplingBenchOptions()
	start := time.Now()
	fixed, err := core.Predict(base)
	if err != nil {
		t.Fatalf("fixed-fraction baseline: %v", err)
	}
	fixedWall := time.Since(start)

	const targetCI = 0.10
	const maxRounds = 4
	adaptive := base
	adaptive.Dist = sampling.RankedSet
	adaptive.TargetCIHalfWidth = targetCI
	adaptive.Sampling.MaxRounds = maxRounds
	start = time.Now()
	rep, err := core.Predict(adaptive)
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	adaptiveWall := time.Since(start)

	if rep.Intervals == nil {
		t.Fatal("adaptive run produced no intervals")
	}
	for _, m := range metrics.All() {
		iv := rep.Intervals[m]
		if iv.Low > rep.Predicted[m] || rep.Predicted[m] > iv.High {
			t.Errorf("%s: interval [%v,%v] does not bracket prediction %v",
				m, iv.Low, iv.High, rep.Predicted[m])
		}
	}
	rounds, replicates := 0, 0
	var fracSum float64
	for gi, g := range rep.Groups {
		if g.Rounds < 1 || g.Rounds > maxRounds {
			t.Errorf("group %d ran %d rounds, cap is %d", gi, g.Rounds, maxRounds)
		}
		if g.Rounds > rounds {
			rounds = g.Rounds
		}
		replicates = g.Replicates
		fracSum += g.Fraction
	}
	achieved := rep.Intervals.MaxRelHalfWidth()
	t.Logf("fixed %v; adaptive %v, %d replicates, worst %d round(s), achieved half-width %.3f (target %.3f)",
		fixedWall, adaptiveWall, replicates, rounds, achieved, targetCI)

	if path := os.Getenv("ZATEL_BENCH_SAMPLING_JSON"); path != "" {
		out := map[string]any{
			"scene":              "PARK",
			"width":              96,
			"height":             96,
			"spp":                1,
			"fixed_fraction":     0.3,
			"fixed_ms":           float64(fixedWall) / 1e6,
			"adaptive_ms":        float64(adaptiveWall) / 1e6,
			"strategy":           adaptive.Dist.String(),
			"replicates":         replicates,
			"max_rounds":         maxRounds,
			"worst_rounds":       rounds,
			"mean_fraction":      fracSum / float64(len(rep.Groups)),
			"target_ci":          targetCI,
			"achieved_halfwidth": achieved,
			"fixed_cycles":       fixed.Predicted[metrics.SimCycles],
			"adaptive_cycles":    rep.Predicted[metrics.SimCycles],
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatalf("marshal bench json: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
}
