#!/bin/sh
# Tier-1 verification: vet, build, then the full test suite under the race
# detector (the worker-pool runner makes every experiment grid concurrent,
# so -race is part of the baseline, not an extra).
set -eu
cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race -timeout 10m ./...

# Short-mode perf smoke: the cycle-exactness golden matrix and the warm
# pooled-allocation test under the race detector, so a pooling bug that
# shares simulator state across goroutines or drifts a report is caught
# here, not in the benchmark capture (see DESIGN.md "Performance
# engineering").
go test -race -short -timeout 10m \
	-run 'TestCycleExactGolden|TestWarmRunAllocs' \
	./internal/gpu/

# Short-mode fault-injection soak: retries, deadlines, quorum degradation
# and the injector itself under the race detector (see DESIGN.md "Failure
# semantics").
go test -race -short -timeout 5m \
	-run 'Fault|Inject|Degraded|Quorum|Retr|Policy|Straggl|Backoff' \
	./internal/faults/ ./internal/runner/ ./internal/core/ ./internal/experiments/

# Short-mode disk fault-injection soak: the disk tier under torn writes,
# ENOSPC, EIO and bitrot (seeded via the faults filesystem wrapper), plus
# the entry-framing and codec round-trip properties. Proves corrupt entries
# are quarantined and rebuilt — never served — and a failing disk degrades
# to memory-only instead of failing requests (see DESIGN.md "Durability &
# integrity").
go test -race -short -timeout 5m \
	-run 'Disk|Torn|Bitrot|ENOSPC|Quarantine|FaultFS|Codec|EvictionRace' \
	./internal/store/ ./internal/faults/ ./internal/rt/ ./internal/core/ ./internal/service/

# Short-mode adaptive-sampling smoke: the replicated strategies' determinism
# and disjointness properties, interval construction, the adaptive loop's
# round cap, and the service's CI response shape under the race detector
# (see DESIGN.md "Statistical rigor").
go test -race -short -timeout 5m \
	-run 'Replicat|Adaptive|Interval|Deterministic|Overshoot|RespectsCap|CIResponse|CIValidation' \
	./internal/sampling/ ./internal/extrapolate/ ./internal/combine/ \
	./internal/core/ ./internal/service/
go test -race -short -timeout 5m -run 'TestAdaptiveSamplingBench' .

# Short-mode cluster smoke: consistent-hash ring placement (golden table,
# order independence, minimal movement), the peer artifact tier (fetch,
# verification rejects, owner-down degradation, prober recovery), the
# store's peer chain ordering, and the in-process two-node service tests —
# all under the race detector (see DESIGN.md "Distribution").
go test -race -short -timeout 5m \
	-run 'Ring|Cluster|Peer|Prober|Proxy|Frame|TryGet|SingleNode' \
	./internal/cluster/ ./internal/store/ ./internal/service/

# Docs lint: every package documented, every exported metric name present in
# OPERATIONS.md.
./scripts/lint_docs.sh

# zateld end-to-end smoke: boot the daemon, serve a cold prediction, assert
# the identical repeat is a store hit via /metrics, exercise request ids /
# ?trace=1 / pprof / per-step histograms, SIGTERM-drain cleanly, restart to
# prove the disk warm hit, then boot a two-node fleet and prove the peer
# fetch path ("cache": "peer", zero non-owner builds).
./scripts/smoke_zateld.sh
