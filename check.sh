#!/bin/sh
# Tier-1 verification: vet, build, then the full test suite under the race
# detector (the worker-pool runner makes every experiment grid concurrent,
# so -race is part of the baseline, not an extra).
set -eu
cd "$(dirname "$0")"

go vet ./...
go build ./...
go test -race ./...
