#!/bin/sh
# zateld smoke test: boot the daemon with a disk tier, serve a cold
# prediction, assert the identical repeat is served as a store hit (response
# field and /metrics counter), check the observability surface (request ids,
# ?trace=1, pprof, per-step histograms), SIGTERM-drain, then RESTART the
# daemon on the same -store-dir and assert the same request is served warm
# from disk ("cache": "disk") — the cross-restart persistence promise.
# Finally boot a TWO-NODE fleet (-peers/-self) and assert an artifact built
# on the owning node is served by the other as "cache": "peer" with zero
# local builds — the cluster tier's fetch-not-rebuild promise.
set -eu
cd "$(dirname "$0")/.."

ADDR="${ZATELD_SMOKE_ADDR:-127.0.0.1:17717}"
DEBUG_ADDR="${ZATELD_SMOKE_DEBUG_ADDR:-127.0.0.1:17718}"
ADDR_A="${ZATELD_SMOKE_CLUSTER_A:-127.0.0.1:17719}"
ADDR_B="${ZATELD_SMOKE_CLUSTER_B:-127.0.0.1:17720}"
TMP="$(mktemp -d)"
PID=""
PID_A=""
PID_B=""
cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	[ -n "$PID_A" ] && kill -9 "$PID_A" 2>/dev/null || true
	[ -n "$PID_B" ] && kill -9 "$PID_B" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/zateld" ./cmd/zateld

# wait_healthy <addr> <logfile>: poll /healthz until it answers 200.
wait_healthy() {
	i=0
	until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 100 ]; then
			echo "smoke: zateld at $1 never became healthy" >&2
			cat "$2" >&2
			exit 1
		fi
		sleep 0.1
	done
}

"$TMP/zateld" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -store-size 256MiB \
	-store-dir "$TMP/store" -disk-size 64MiB >"$TMP/zateld.log" 2>&1 &
PID=$!
wait_healthy "$ADDR" "$TMP/zateld.log"

# The disk tier must report healthy from the start.
curl -fsS "http://$ADDR/healthz" | grep -q '"state": "ok"' \
	|| { echo "smoke: /healthz missing disk state ok" >&2; exit 1; }

BODY='{"scene":"SPRNG","config":"mobile","width":48,"height":48,"spp":1}'

# The first (cold) predict runs the full pipeline; ask for its span trace
# and pass a request id so we can assert both round-trip.
R1="$(curl -fsS -D "$TMP/headers1" -X POST -H 'X-Zatel-Request-Id: smoke-cold-1' \
	-d "$BODY" "http://$ADDR/v1/predict?trace=1")"
echo "$R1" | grep -q '"cache": "miss"' || { echo "smoke: first predict not a miss: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"GPU IPC"' || { echo "smoke: prediction missing metrics: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"key"' || { echo "smoke: prediction missing key: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"request_id": "smoke-cold-1"' \
	|| { echo "smoke: request id did not round-trip in the body" >&2; exit 1; }
grep -iq '^x-zatel-request-id: smoke-cold-1' "$TMP/headers1" \
	|| { echo "smoke: request id did not round-trip in the header" >&2; exit 1; }
echo "$R1" | grep -q '"traceEvents"' \
	|| { echo "smoke: ?trace=1 response carries no trace" >&2; exit 1; }
echo "$R1" | grep -q 'step6_simulate' \
	|| { echo "smoke: trace carries no pipeline step spans" >&2; exit 1; }

# pprof must serve while the daemon handles predictions.
curl -fsS "http://$DEBUG_ADDR/debug/pprof/" | grep -q goroutine \
	|| { echo "smoke: /debug/pprof/ index not served" >&2; exit 1; }
curl -fsS "http://$DEBUG_ADDR/debug/pprof/goroutine?debug=1" | grep -q goroutine \
	|| { echo "smoke: goroutine profile not served" >&2; exit 1; }

R2="$(curl -fsS -X POST -d "$BODY" "http://$ADDR/v1/predict")"
echo "$R2" | grep -q '"cache": "hit"' || { echo "smoke: second predict not a hit: $R2" >&2; exit 1; }

METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -Eq '^zatel_store_hits_total [1-9]' \
	|| { echo "smoke: /metrics shows no store hit" >&2; exit 1; }
echo "$METRICS" | grep -q 'zatel_step_latency_seconds_bucket{step="step1_profile"' \
	|| { echo "smoke: /metrics missing per-step histograms" >&2; exit 1; }
echo "$METRICS" | grep -Eq 'zatel_step_latency_seconds_count\{step="step7_combine"\} [1-9]' \
	|| { echo "smoke: step histograms saw no cold build" >&2; exit 1; }
echo "$METRICS" | grep -q '^zatel_predictions_total' \
	|| { echo "smoke: /metrics missing core pipeline counters" >&2; exit 1; }
echo "$METRICS" | grep -q '^zatel_store_disk_enabled 1' \
	|| { echo "smoke: /metrics shows no disk tier" >&2; exit 1; }

kill -TERM "$PID"
if ! wait "$PID"; then
	echo "smoke: zateld drain exited non-zero" >&2
	cat "$TMP/zateld.log" >&2
	exit 1
fi
PID=""

# Restart on the same cache directory: the prediction built before the
# drain must be served from the disk tier — integrity-verified, no rebuild.
"$TMP/zateld" -addr "$ADDR" -store-size 256MiB \
	-store-dir "$TMP/store" -disk-size 64MiB >"$TMP/zateld2.log" 2>&1 &
PID=$!
wait_healthy "$ADDR" "$TMP/zateld2.log"

R3="$(curl -fsS -X POST -d "$BODY" "http://$ADDR/v1/predict")"
echo "$R3" | grep -q '"cache": "disk"' \
	|| { echo "smoke: post-restart predict not served from disk: $R3" >&2; cat "$TMP/zateld2.log" >&2; exit 1; }

METRICS2="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS2" | grep -Eq '^zatel_store_disk_hits_total [1-9]' \
	|| { echo "smoke: /metrics shows no disk hit after restart" >&2; exit 1; }

kill -TERM "$PID"
if ! wait "$PID"; then
	echo "smoke: zateld second drain exited non-zero" >&2
	cat "$TMP/zateld2.log" >&2
	exit 1
fi
PID=""

# --- Two-node cluster scenario ------------------------------------------
# Boot a fleet of two nodes sharing one consistent-hash ring. The first
# predict lands on node A; whichever node owns the key builds it (A locally
# or via A forwarding to B). The same request to the NON-owner must then be
# served "cache": "peer" — fetched over /v1/artifacts, verified, promoted —
# with the non-owner's build counter still at zero.
PEERS="http://$ADDR_A,http://$ADDR_B"
"$TMP/zateld" -addr "$ADDR_A" -self "http://$ADDR_A" -peers "$PEERS" \
	-node-name smoke-a >"$TMP/zateld_a.log" 2>&1 &
PID_A=$!
"$TMP/zateld" -addr "$ADDR_B" -self "http://$ADDR_B" -peers "$PEERS" \
	-node-name smoke-b >"$TMP/zateld_b.log" 2>&1 &
PID_B=$!
wait_healthy "$ADDR_A" "$TMP/zateld_a.log"
wait_healthy "$ADDR_B" "$TMP/zateld_b.log"

CBODY='{"scene":"SPRNG","config":"mobile","width":44,"height":44,"spp":1}'
RC="$(curl -fsS -D "$TMP/cheaders" -X POST -d "$CBODY" "http://$ADDR_A/v1/predict")"
echo "$RC" | grep -q '"cache": "miss"' \
	|| { echo "smoke: cluster cold predict not a miss: $RC" >&2; exit 1; }
grep -iq '^x-zatel-node: smoke-a' "$TMP/cheaders" \
	|| { echo "smoke: response missing X-Zatel-Node" >&2; cat "$TMP/cheaders" >&2; exit 1; }
OWNER="$(tr -d '\r' <"$TMP/cheaders" | awk 'tolower($1) == "x-zatel-owner:" {print $2}')"
case "$OWNER" in
"http://$ADDR_A") NODE_N="$ADDR_B"; NAME_N="smoke-b" ;;
"http://$ADDR_B") NODE_N="$ADDR_A"; NAME_N="smoke-a" ;;
*) echo "smoke: unrecognised X-Zatel-Owner '$OWNER'" >&2; exit 1 ;;
esac

RP="$(curl -fsS -D "$TMP/pheaders" -X POST -d "$CBODY" "http://$NODE_N/v1/predict")"
echo "$RP" | grep -q '"cache": "peer"' \
	|| { echo "smoke: non-owner predict not served from peer: $RP" >&2; cat "$TMP/zateld_a.log" "$TMP/zateld_b.log" >&2; exit 1; }
grep -iq "^x-zatel-node: $NAME_N" "$TMP/pheaders" \
	|| { echo "smoke: non-owner response missing X-Zatel-Node $NAME_N" >&2; exit 1; }

CMETRICS="$(curl -fsS "http://$NODE_N/metrics")"
echo "$CMETRICS" | grep -q '^zatel_store_builds_total 0' \
	|| { echo "smoke: non-owner ran local builds; peer tier bypassed" >&2; exit 1; }
echo "$CMETRICS" | grep -Eq '^zatel_cluster_fetch_hits_total [1-9]' \
	|| { echo "smoke: non-owner /metrics shows no peer fetch hit" >&2; exit 1; }
echo "$CMETRICS" | grep -q '^zatel_cluster_enabled 1' \
	|| { echo "smoke: /metrics missing cluster block" >&2; exit 1; }

kill -TERM "$PID_A" "$PID_B"
if ! wait "$PID_A"; then
	echo "smoke: cluster node A drain exited non-zero" >&2
	cat "$TMP/zateld_a.log" >&2
	exit 1
fi
PID_A=""
if ! wait "$PID_B"; then
	echo "smoke: cluster node B drain exited non-zero" >&2
	cat "$TMP/zateld_b.log" >&2
	exit 1
fi
PID_B=""
echo "zateld smoke: OK (including cross-restart disk warm hit and two-node peer fetch)"
