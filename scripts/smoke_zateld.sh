#!/bin/sh
# zateld smoke test: boot the daemon with a disk tier, serve a cold
# prediction, assert the identical repeat is served as a store hit (response
# field and /metrics counter), check the observability surface (request ids,
# ?trace=1, pprof, per-step histograms), SIGTERM-drain, then RESTART the
# daemon on the same -store-dir and assert the same request is served warm
# from disk ("cache": "disk") — the cross-restart persistence promise.
set -eu
cd "$(dirname "$0")/.."

ADDR="${ZATELD_SMOKE_ADDR:-127.0.0.1:17717}"
DEBUG_ADDR="${ZATELD_SMOKE_DEBUG_ADDR:-127.0.0.1:17718}"
TMP="$(mktemp -d)"
PID=""
cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/zateld" ./cmd/zateld

wait_healthy() {
	i=0
	until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 100 ]; then
			echo "smoke: zateld never became healthy" >&2
			cat "$TMP/zateld.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

"$TMP/zateld" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -store-size 256MiB \
	-store-dir "$TMP/store" -disk-size 64MiB >"$TMP/zateld.log" 2>&1 &
PID=$!
wait_healthy

# The disk tier must report healthy from the start.
curl -fsS "http://$ADDR/healthz" | grep -q '"state": "ok"' \
	|| { echo "smoke: /healthz missing disk state ok" >&2; exit 1; }

BODY='{"scene":"SPRNG","config":"mobile","width":48,"height":48,"spp":1}'

# The first (cold) predict runs the full pipeline; ask for its span trace
# and pass a request id so we can assert both round-trip.
R1="$(curl -fsS -D "$TMP/headers1" -X POST -H 'X-Zatel-Request-Id: smoke-cold-1' \
	-d "$BODY" "http://$ADDR/v1/predict?trace=1")"
echo "$R1" | grep -q '"cache": "miss"' || { echo "smoke: first predict not a miss: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"GPU IPC"' || { echo "smoke: prediction missing metrics: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"key"' || { echo "smoke: prediction missing key: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"request_id": "smoke-cold-1"' \
	|| { echo "smoke: request id did not round-trip in the body" >&2; exit 1; }
grep -iq '^x-zatel-request-id: smoke-cold-1' "$TMP/headers1" \
	|| { echo "smoke: request id did not round-trip in the header" >&2; exit 1; }
echo "$R1" | grep -q '"traceEvents"' \
	|| { echo "smoke: ?trace=1 response carries no trace" >&2; exit 1; }
echo "$R1" | grep -q 'step6_simulate' \
	|| { echo "smoke: trace carries no pipeline step spans" >&2; exit 1; }

# pprof must serve while the daemon handles predictions.
curl -fsS "http://$DEBUG_ADDR/debug/pprof/" | grep -q goroutine \
	|| { echo "smoke: /debug/pprof/ index not served" >&2; exit 1; }
curl -fsS "http://$DEBUG_ADDR/debug/pprof/goroutine?debug=1" | grep -q goroutine \
	|| { echo "smoke: goroutine profile not served" >&2; exit 1; }

R2="$(curl -fsS -X POST -d "$BODY" "http://$ADDR/v1/predict")"
echo "$R2" | grep -q '"cache": "hit"' || { echo "smoke: second predict not a hit: $R2" >&2; exit 1; }

METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -Eq '^zatel_store_hits_total [1-9]' \
	|| { echo "smoke: /metrics shows no store hit" >&2; exit 1; }
echo "$METRICS" | grep -q 'zatel_step_latency_seconds_bucket{step="step1_profile"' \
	|| { echo "smoke: /metrics missing per-step histograms" >&2; exit 1; }
echo "$METRICS" | grep -Eq 'zatel_step_latency_seconds_count\{step="step7_combine"\} [1-9]' \
	|| { echo "smoke: step histograms saw no cold build" >&2; exit 1; }
echo "$METRICS" | grep -q '^zatel_predictions_total' \
	|| { echo "smoke: /metrics missing core pipeline counters" >&2; exit 1; }
echo "$METRICS" | grep -q '^zatel_store_disk_enabled 1' \
	|| { echo "smoke: /metrics shows no disk tier" >&2; exit 1; }

kill -TERM "$PID"
if ! wait "$PID"; then
	echo "smoke: zateld drain exited non-zero" >&2
	cat "$TMP/zateld.log" >&2
	exit 1
fi
PID=""

# Restart on the same cache directory: the prediction built before the
# drain must be served from the disk tier — integrity-verified, no rebuild.
"$TMP/zateld" -addr "$ADDR" -store-size 256MiB \
	-store-dir "$TMP/store" -disk-size 64MiB >"$TMP/zateld2.log" 2>&1 &
PID=$!
wait_healthy

R3="$(curl -fsS -X POST -d "$BODY" "http://$ADDR/v1/predict")"
echo "$R3" | grep -q '"cache": "disk"' \
	|| { echo "smoke: post-restart predict not served from disk: $R3" >&2; cat "$TMP/zateld2.log" >&2; exit 1; }

METRICS2="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS2" | grep -Eq '^zatel_store_disk_hits_total [1-9]' \
	|| { echo "smoke: /metrics shows no disk hit after restart" >&2; exit 1; }

kill -TERM "$PID"
if ! wait "$PID"; then
	echo "smoke: zateld second drain exited non-zero" >&2
	cat "$TMP/zateld2.log" >&2
	exit 1
fi
PID=""
echo "zateld smoke: OK (including cross-restart disk warm hit)"
