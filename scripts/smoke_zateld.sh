#!/bin/sh
# zateld smoke test: boot the daemon, serve a cold prediction, assert the
# identical repeat is served as a store hit (response field and /metrics
# counter), then SIGTERM-drain and require a clean exit.
set -eu
cd "$(dirname "$0")/.."

ADDR="${ZATELD_SMOKE_ADDR:-127.0.0.1:17717}"
TMP="$(mktemp -d)"
PID=""
cleanup() {
	[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/zateld" ./cmd/zateld
"$TMP/zateld" -addr "$ADDR" -store-size 256MiB >"$TMP/zateld.log" 2>&1 &
PID=$!

i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 100 ]; then
		echo "smoke: zateld never became healthy" >&2
		cat "$TMP/zateld.log" >&2
		exit 1
	fi
	sleep 0.1
done

BODY='{"scene":"SPRNG","config":"mobile","width":48,"height":48,"spp":1}'

R1="$(curl -fsS -X POST -d "$BODY" "http://$ADDR/v1/predict")"
echo "$R1" | grep -q '"cache": "miss"' || { echo "smoke: first predict not a miss: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"GPU IPC"' || { echo "smoke: prediction missing metrics: $R1" >&2; exit 1; }
echo "$R1" | grep -q '"key"' || { echo "smoke: prediction missing key: $R1" >&2; exit 1; }

R2="$(curl -fsS -X POST -d "$BODY" "http://$ADDR/v1/predict")"
echo "$R2" | grep -q '"cache": "hit"' || { echo "smoke: second predict not a hit: $R2" >&2; exit 1; }

METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -Eq '^zatel_store_hits_total [1-9]' \
	|| { echo "smoke: /metrics shows no store hit" >&2; exit 1; }

kill -TERM "$PID"
if ! wait "$PID"; then
	echo "smoke: zateld drain exited non-zero" >&2
	cat "$TMP/zateld.log" >&2
	exit 1
fi
PID=""
echo "zateld smoke: OK"
