#!/bin/sh
# Docs lint: every Go package must carry a doc comment, and every exported
# Prometheus metric name must be documented in OPERATIONS.md. Run by
# check.sh; exits non-zero listing each violation.
set -eu
cd "$(dirname "$0")/.."

fail=0

# 1. Package comments: each directory containing non-test Go files must have
# at least one file whose doc comment starts "// Package ..." (libraries) or
# "// Command ..." (main packages).
for dir in $(find . -name '*.go' ! -name '*_test.go' ! -path './.git/*' \
	-exec dirname {} \; | sort -u); do
	if ! grep -l '^// \(Package\|Command\) ' "$dir"/*.go >/dev/null 2>&1; then
		echo "lint: $dir has no package doc comment (want '// Package ...' or '// Command ...')" >&2
		fail=1
	fi
done

# 2. Metric documentation: every zatel_* series name referenced in non-test
# source must appear in OPERATIONS.md. The _bucket/_sum/_count histogram
# series are covered by documenting their base name.
for metric in $(find . -name '*.go' ! -name '*_test.go' ! -path './.git/*' \
	-exec grep -hoE 'zatel_[a-z_]+' {} + |
	sed -e 's/_bucket$//' -e 's/_sum$//' -e 's/_count$//' | sort -u); do
	if ! grep -q "$metric" OPERATIONS.md; then
		echo "lint: metric $metric is exported but not documented in OPERATIONS.md" >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "docs lint: OK"
