// GPU hot-path benchmarks: wall clock and allocation trajectories for the
// cycle-level simulator (internal/gpu) and the trace substrate it replays
// (internal/rt). TestGPUHotPathSpeedup gates the perf overhaul against the
// baselines captured at the start of the PR and emits machine-readable
// numbers when ZATEL_BENCH_GPU_JSON names a path.
package zatel_test

import (
	"encoding/json"
	"os"
	"sync"
	"testing"
	"time"

	"zatel/internal/config"
	"zatel/internal/gpu"
	"zatel/internal/rt"
	"zatel/internal/scene"
)

// The canonical GPU benchmark job: PARK at 128x128, 1 spp, on the Mobile
// SoC — large enough that the simulator dominates (the reference run is
// hundreds of milliseconds), small enough to repeat.
const (
	gpuBenchScene = "PARK"
	gpuBenchRes   = 128
	gpuBenchSPP   = 1
)

// Baselines measured at the start of the PR (pre-optimization simulator,
// same job, same container) — the denominators for the acceptance gates:
// >= 1.3x wall-clock on the reference simulation and >= 5x fewer
// allocations per warm gpu.Run.
const (
	baselineRefRunMS    = 878.2
	baselineWarmAllocs  = 1_454_118
	baselineBuildWallMS = 186.3
)

var (
	gpuBenchOnce   sync.Once
	gpuBenchTraces []rt.ThreadTrace
	gpuBenchErr    error
)

func gpuBenchWorkload(tb testing.TB) []rt.ThreadTrace {
	tb.Helper()
	gpuBenchOnce.Do(func() {
		wl, err := rt.CachedWorkload(gpuBenchScene, gpuBenchRes, gpuBenchRes, gpuBenchSPP)
		if err != nil {
			gpuBenchErr = err
			return
		}
		gpuBenchTraces = wl.Traces
	})
	if gpuBenchErr != nil {
		tb.Fatal(gpuBenchErr)
	}
	return gpuBenchTraces
}

// BenchmarkGPURunWarm measures the steady-state pooled path: the per-config
// simulator arena is reused across iterations, so allocs/op should be near
// zero and wall time is pure simulation.
func BenchmarkGPURunWarm(b *testing.B) {
	traces := gpuBenchWorkload(b)
	cfg := config.MobileSoC()
	if _, err := gpu.Run(gpu.Job{Cfg: cfg, Traces: traces}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpu.Run(gpu.Job{Cfg: cfg, Traces: traces}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPURunCold measures the first-run path: the simulator pools are
// drained before every iteration, so each run pays the full arena build.
func BenchmarkGPURunCold(b *testing.B) {
	traces := gpuBenchWorkload(b)
	cfg := config.MobileSoC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gpu.DrainPools()
		b.StartTimer()
		if _, err := gpu.Run(gpu.Job{Cfg: cfg, Traces: traces}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildWorkload measures trace generation into the arena-backed
// SoA workload: ray tracing, traversal-step recording and op packing.
func BenchmarkBuildWorkload(b *testing.B) {
	sc, err := scene.ByName(gpuBenchScene)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl, err := rt.BuildWorkload(sc, gpuBenchRes, gpuBenchRes, gpuBenchSPP)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(wl.SizeBytes())/(1<<20), "MiB")
	}
}

// TestGPUHotPathSpeedup asserts the PR's acceptance gates against the
// pre-optimization baselines: the reference simulation must run >= 1.3x
// faster and a warm pooled gpu.Run must allocate >= 5x fewer objects.
// Wall times are the best of three so scheduler noise cannot fail the run.
func TestGPUHotPathSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock and allocation baselines are meaningless under the race detector")
	}
	traces := gpuBenchWorkload(t)
	cfg := config.MobileSoC()

	bestOf3 := func(f func()) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// Reference simulation: the full workload through gpu.Run. The first
	// call warms the pool; the timed repeats are the steady state every
	// experiment driver and zateld request sees.
	if _, err := gpu.Run(gpu.Job{Cfg: cfg, Traces: traces}); err != nil {
		t.Fatal(err)
	}
	refWall := bestOf3(func() {
		if _, err := gpu.Run(gpu.Job{Cfg: cfg, Traces: traces}); err != nil {
			t.Fatal(err)
		}
	})

	warmAllocs := testing.AllocsPerRun(5, func() {
		if _, err := gpu.Run(gpu.Job{Cfg: cfg, Traces: traces}); err != nil {
			t.Fatal(err)
		}
	})

	sc, err := scene.ByName(gpuBenchScene)
	if err != nil {
		t.Fatal(err)
	}
	buildWall := bestOf3(func() {
		if _, err := rt.BuildWorkload(sc, gpuBenchRes, gpuBenchRes, gpuBenchSPP); err != nil {
			t.Fatal(err)
		}
	})

	refMS := float64(refWall) / 1e6
	buildMS := float64(buildWall) / 1e6
	speedup := baselineRefRunMS / refMS
	allocRatio := baselineWarmAllocs / max(warmAllocs, 1)
	t.Logf("reference run %.1fms (baseline %.1fms, %.2fx), warm allocs %.0f (baseline %d, %.0fx fewer), BuildWorkload %.1fms (baseline %.1fms)",
		refMS, baselineRefRunMS, speedup, warmAllocs, baselineWarmAllocs, allocRatio, buildMS, baselineBuildWallMS)

	if speedup < 1.3 {
		t.Errorf("reference simulation only %.2fx faster than the pre-optimization baseline (want >= 1.3x): %.1fms vs %.1fms",
			speedup, refMS, baselineRefRunMS)
	}
	if allocRatio < 5 {
		t.Errorf("warm gpu.Run allocates %.0f objects/op, only %.1fx below the pre-optimization baseline %d (want >= 5x)",
			warmAllocs, allocRatio, baselineWarmAllocs)
	}

	if path := os.Getenv("ZATEL_BENCH_GPU_JSON"); path != "" {
		out := map[string]any{
			"scene":               gpuBenchScene,
			"width":               gpuBenchRes,
			"height":              gpuBenchRes,
			"spp":                 gpuBenchSPP,
			"config":              cfg.Name,
			"ref_run_ms":          refMS,
			"ref_run_baseline_ms": baselineRefRunMS,
			"ref_run_speedup":     speedup,
			"warm_allocs":         warmAllocs,
			"warm_allocs_base":    baselineWarmAllocs,
			"warm_allocs_ratio":   allocRatio,
			"build_ms":            buildMS,
			"build_baseline_ms":   baselineBuildWallMS,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatalf("marshal bench json: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
}
