// Command quickstart predicts a ray-tracing workload's performance metrics
// with Zatel and checks them against the ground-truth full simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
)

func main() {
	// Predict how the Mobile SoC of Table II performs on the BUNNY scene.
	// Everything not set here uses the paper's defaults: fine-grained
	// division, Eq. 1 pixel budget, uniform distribution, K = gcd(SMs,
	// memory partitions) and linear extrapolation.
	opts := core.Options{
		Config: config.MobileSoC(),
		Scene:  "BUNNY",
		Width:  96, Height: 96, SPP: 1,
	}
	result, err := core.Predict(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Zatel split BUNNY into %d groups on a downscaled GPU (%d SMs -> %d):\n",
		result.K, opts.Config.NumSMs, opts.Config.NumSMs/result.K)
	for gi, g := range result.Groups {
		fmt.Printf("  group %d traced %.0f%% of its pixels in %s\n",
			gi, 100*g.Fraction, g.WallTime.Round(1e6))
	}

	fmt.Println("\npredicted metrics:")
	for _, m := range metrics.All() {
		fmt.Printf("  %-20s %10.4f\n", m, result.Predicted[m])
	}

	// Compare against the full cycle-level simulation (slow path — this
	// is exactly what Zatel lets you avoid during design exploration).
	ref, err := core.Reference(opts.Config, opts.Scene, opts.Width, opts.Height, opts.SPP)
	if err != nil {
		log.Fatal(err)
	}
	errs := result.Errors(ref)
	fmt.Printf("\nvs full simulation: MAE %.1f%%, speedup %.1fx\n",
		100*metrics.MAE(errs, metrics.All()), result.Speedup(ref))
}
