// Command archcompare demonstrates the early-design-phase workflow Zatel
// was built for
// (Section IV-B, Fig. 11). An architect wants to know how a candidate
// next-generation mobile GPU — double the SMs, bigger RT units — compares
// to the current Mobile SoC on a heavy path-tracing workload, without
// waiting for two full cycle-accurate runs.
//
// Because Zatel runs the cycle-level simulator at its core, the candidate
// architecture needs no model changes: edit the configuration and rerun.
//
//	go run ./examples/archcompare
package main

import (
	"fmt"
	"log"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
)

func main() {
	baseline := config.MobileSoC()

	// The candidate design under evaluation: twice the SMs and memory
	// partitions, a deeper RT-unit queue and double the L2.
	candidate := baseline
	candidate.Name = "MobileSoC-Next"
	candidate.NumSMs = 16
	candidate.NumMemPartitions = 8
	candidate.RTMaxWarps = 8
	candidate.TotalL2Bytes = 6 << 20
	if err := candidate.Validate(); err != nil {
		log.Fatal(err)
	}

	const sceneName = "PARK" // the hardest path-tracing workload
	run := func(cfg config.Config) *core.Result {
		res, err := core.Predict(core.Options{
			Config: cfg,
			Scene:  sceneName,
			Width:  96, Height: 96, SPP: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("evaluating %s vs %s on %s via Zatel (no full simulations)\n\n",
		candidate.Name, baseline.Name, sceneName)
	base := run(baseline)
	next := run(candidate)

	fmt.Printf("%-22s%14s%14s%12s\n", "Metric", baseline.Name, candidate.Name, "ratio")
	for _, m := range metrics.All() {
		b, n := base.Predicted[m], next.Predicted[m]
		ratio := 0.0
		if b != 0 {
			ratio = n / b
		}
		fmt.Printf("%-22s%14.4f%14.4f%11.2fx\n", m, b, n, ratio)
	}

	speedup := base.Predicted[metrics.SimCycles] / next.Predicted[metrics.SimCycles]
	fmt.Printf("\npredicted frame-time speedup of the candidate: %.2fx\n", speedup)
	fmt.Printf("prediction cost: %s + %s of simulation (K=%d instances each)\n",
		base.SimWallTime.Round(1e6), next.SimWallTime.Round(1e6), base.K)
}
