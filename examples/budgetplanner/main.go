// Command budgetplanner uses Eq. 4 (speedup = 181·perc^−1.15) to pick the
// traced-pixel percentage that fits a simulation time budget, then runs
// Zatel with that percentage and verifies both the achieved speedup and the
// accuracy.
// This is the "helping users choose the best configuration of Zatel for
// their study" workflow of Section IV-D.
//
//	go run ./examples/budgetplanner
package main

import (
	"fmt"
	"log"
	"math"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/extrapolate"
	"zatel/internal/metrics"
)

func main() {
	const sceneName = "SPNZA"
	cfg := config.RTX2060()

	// The architect can afford 1/5 of a full simulation's time. Invert
	// Eq. 4 for the percentage that delivers ≥5x:
	//   5 = 181·perc^-1.15  =>  perc = (181/5)^(1/1.15)
	const wantSpeedup = 5.0
	perc := math.Pow(181/wantSpeedup, 1/1.15)
	speedup, err := extrapolate.SpeedupModel(perc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Eq. 4 says %.0f%% of pixels gives ≈%.1fx speedup\n", perc, speedup)

	res, err := core.Predict(core.Options{
		Config: cfg,
		Scene:  sceneName,
		Width:  96, Height: 96, SPP: 1,
		NoDownscale:   true,
		FixedFraction: perc / 100,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the ground truth (a study would skip this — it is
	// the cost being avoided).
	ref, err := core.Reference(cfg, sceneName, 96, 96, 1)
	if err != nil {
		log.Fatal(err)
	}
	errs := res.Errors(ref)
	fmt.Printf("\n%s on %s tracing %.0f%% of pixels:\n", sceneName, cfg.Name, perc)
	fmt.Printf("  measured speedup: %.1fx (asked for %.1fx)\n", res.Speedup(ref), wantSpeedup)
	fmt.Printf("  sim-cycles error: %.1f%%\n", 100*errs[metrics.SimCycles])
	fmt.Printf("  MAE over Table I metrics: %.1f%%\n", 100*metrics.MAE(errs, metrics.All()))
	fmt.Printf("  wall: full sim %s vs zatel %s\n",
		ref.WallTime.Round(1e6), (res.PreprocessTime + res.SimWallTime).Round(1e6))
}
