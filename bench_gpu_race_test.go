//go:build race

package zatel_test

// Race-detector instrumentation slows the simulator ~7x and multiplies its
// allocation count, so comparing against the uninstrumented baselines would
// only measure the instrumentation. The capture run (run_capture.sh) gates
// the real numbers without -race.
const raceEnabled = true
