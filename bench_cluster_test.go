// Peer-fetch serving benchmark for the zateld cluster tier: two in-process
// nodes on a consistent-hash ring, predictions built on the owning node,
// then served to the other node over GET /v1/artifacts/{digest} — fetched,
// integrity-verified, decoded and promoted instead of rebuilt.
// TestClusterFetchSpeedup asserts the peer fetch beats the rebuild by at
// least 2x and emits machine-readable numbers when ZATEL_BENCH_CLUSTER_JSON
// names a path.
package zatel_test

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"zatel/internal/cluster"
	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/service"
	"zatel/internal/store"
)

func clusterBenchBody(seed uint64) string {
	return fmt.Sprintf(`{"scene":"PARK","config":"mobile","width":96,"height":96,"spp":1,"seed":%d}`, seed)
}

// clusterBenchKey mirrors the body above through the same cache-key
// derivation the service uses; the benchmark asserts the server agrees.
func clusterBenchKey(seed uint64) store.Digest {
	return core.Options{
		Config: config.MobileSoC(),
		Scene:  "PARK",
		Width:  96, Height: 96, SPP: 1,
		Seed: seed,
	}.CacheKey()
}

type benchNode struct {
	url string
	st  *store.Store
	cl  *cluster.Cluster
	ts  *httptest.Server
}

func newBenchFleet(tb testing.TB) (a, b *benchNode) {
	tb.Helper()
	var nodes [2]*benchNode
	var listeners [2]net.Listener
	var urls []string
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		urls = append(urls, "http://"+ln.Addr().String())
	}
	for i := range nodes {
		cl, err := cluster.New(cluster.Config{
			Self:         urls[i],
			Name:         fmt.Sprintf("bench-%d", i),
			Peers:        urls,
			FetchTimeout: 5 * time.Second,
			Probe:        cluster.ProbeConfig{Interval: -1},
		})
		if err != nil {
			tb.Fatalf("cluster.New: %v", err)
		}
		tb.Cleanup(cl.Close)
		st := store.New(0)
		st.AttachPeers(cl)
		srv := service.New(service.Config{Store: st, Cluster: cl, Parallel: true})
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		tb.Cleanup(ts.Close)
		nodes[i] = &benchNode{url: urls[i], st: st, cl: cl, ts: ts}
	}
	return nodes[0], nodes[1]
}

// TestClusterFetchSpeedup asserts the cluster tier's acceptance criterion:
// serving a prediction by fetching the owner's verified artifact must be at
// least 2x faster than rebuilding it. Several keys all owned by node A are
// built there, then fetched once each by node B; both sides take the
// minimum so scheduler noise cannot fail the run.
func TestClusterFetchSpeedup(t *testing.T) {
	a, b := newBenchFleet(t)

	// Collect seeds whose keys node A owns, so every request to B exercises
	// the non-owner peer-fetch path.
	var seeds []uint64
	for seed := uint64(500); seed < 1500 && len(seeds) < 5; seed++ {
		if a.cl.Owner(clusterBenchKey(seed)) == a.url {
			seeds = append(seeds, seed)
		}
	}
	if len(seeds) < 5 {
		t.Fatalf("only %d/5 seeds owned by node A", len(seeds))
	}

	rebuild := time.Duration(1<<62 - 1)
	for _, seed := range seeds {
		dur, pr := timedPredict(t, a.ts, clusterBenchBody(seed))
		if pr.Cache != "miss" {
			t.Fatalf("seed %d: owner served as %q, want miss", seed, pr.Cache)
		}
		if pr.Key != clusterBenchKey(seed).String() {
			t.Fatalf("seed %d: server key %s != derived key %s; ownership search is broken",
				seed, pr.Key, clusterBenchKey(seed))
		}
		if dur < rebuild {
			rebuild = dur
		}
	}

	peer := time.Duration(1<<62 - 1)
	for _, seed := range seeds {
		dur, pr := timedPredict(t, b.ts, clusterBenchBody(seed))
		if pr.Cache != "peer" {
			t.Fatalf("seed %d: non-owner served as %q, want peer", seed, pr.Cache)
		}
		if dur < peer {
			peer = dur
		}
	}
	if builds := b.st.Snapshot().Builds; builds != 0 {
		t.Fatalf("node B ran %d builds, want 0", builds)
	}

	speedup := float64(rebuild) / float64(peer)
	t.Logf("rebuild %v, peer fetch %v, speedup %.1fx", rebuild, peer, speedup)
	if speedup < 2 {
		t.Errorf("peer fetch only %.1fx faster than rebuild (want >= 2x): rebuild %v, peer %v",
			speedup, rebuild, peer)
	}

	if path := os.Getenv("ZATEL_BENCH_CLUSTER_JSON"); path != "" {
		out := map[string]any{
			"scene":      "PARK",
			"width":      96,
			"height":     96,
			"spp":        1,
			"keys":       len(seeds),
			"rebuild_ms": float64(rebuild) / 1e6,
			"peer_ms":    float64(peer) / 1e6,
			"speedup":    speedup,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatalf("marshal bench json: %v", err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
}
