package combine

import (
	"math"
	"testing"

	"zatel/internal/metrics"
)

func groupReport(cycles, instr uint64) metrics.Report {
	return metrics.Report{
		Cycles:            cycles,
		Instructions:      instr,
		L1DAccesses:       100,
		L1DMisses:         30,
		L2Accesses:        10,
		L2Misses:          5,
		RTActiveRayCycles: 400,
		RTWarpSlotCycles:  100,
		DRAMEff:           0.5,
		DRAMBWUtil:        0.2,
	}
}

func TestLinearScalesOnlyAbsolutes(t *testing.T) {
	rep := groupReport(1000, 5000)
	vals, err := Linear(rep, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if vals[metrics.SimCycles] != 4000 {
		t.Errorf("cycles = %v, want 4000", vals[metrics.SimCycles])
	}
	// Rates pass through unscaled.
	if vals[metrics.L1DMissRate] != 0.3 {
		t.Errorf("L1D miss rate = %v", vals[metrics.L1DMissRate])
	}
	if vals[metrics.IPC] != 5 {
		t.Errorf("IPC = %v, want the group's raw 5", vals[metrics.IPC])
	}
	if _, err := Linear(rep, 0); err == nil {
		t.Error("fraction 0 accepted")
	}
}

func TestMergePaperExample(t *testing.T) {
	// Section III-H: groups with IPC 20 / miss 0.70 and IPC 50 / miss
	// 0.60 combine to IPC 70 and miss 0.65.
	g1 := GroupValues{}
	g2 := GroupValues{}
	for _, m := range metrics.All() {
		g1[m], g2[m] = 0, 0
	}
	g1[metrics.IPC], g2[metrics.IPC] = 20, 50
	g1[metrics.L1DMissRate], g2[metrics.L1DMissRate] = 0.70, 0.60

	out, err := Merge([]GroupValues{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if out[metrics.IPC] != 70 {
		t.Errorf("combined IPC = %v, want 70", out[metrics.IPC])
	}
	if math.Abs(out[metrics.L1DMissRate]-0.65) > 1e-12 {
		t.Errorf("combined miss rate = %v, want 0.65", out[metrics.L1DMissRate])
	}
}

func TestMergeCyclesAverage(t *testing.T) {
	g1, g2 := GroupValues{}, GroupValues{}
	for _, m := range metrics.All() {
		g1[m], g2[m] = 0, 0
	}
	g1[metrics.SimCycles], g2[metrics.SimCycles] = 1000, 3000
	out, err := Merge([]GroupValues{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if out[metrics.SimCycles] != 2000 {
		t.Errorf("combined cycles = %v, want mean 2000", out[metrics.SimCycles])
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(nil); err == nil {
		t.Error("empty groups accepted")
	}
	incomplete := GroupValues{metrics.IPC: 1}
	if _, err := Merge([]GroupValues{incomplete}); err == nil {
		t.Error("missing metric accepted")
	}
}

func TestMergeDegradedReweightsIPC(t *testing.T) {
	// Two survivors of an original four: IPC doubles to stand in for the
	// lost groups; rate/time metrics stay the survivors' average.
	g1, g2 := GroupValues{}, GroupValues{}
	for _, m := range metrics.All() {
		g1[m], g2[m] = 0, 0
	}
	g1[metrics.IPC], g2[metrics.IPC] = 20, 50
	g1[metrics.L1DMissRate], g2[metrics.L1DMissRate] = 0.70, 0.60
	g1[metrics.SimCycles], g2[metrics.SimCycles] = 1000, 3000

	out, err := MergeDegraded([]GroupValues{g1, g2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out[metrics.IPC] != 140 {
		t.Errorf("degraded IPC = %v, want (20+50)*4/2 = 140", out[metrics.IPC])
	}
	if math.Abs(out[metrics.L1DMissRate]-0.65) > 1e-12 {
		t.Errorf("degraded miss rate = %v, want survivors' mean 0.65", out[metrics.L1DMissRate])
	}
	if out[metrics.SimCycles] != 2000 {
		t.Errorf("degraded cycles = %v, want survivors' mean 2000", out[metrics.SimCycles])
	}
}

func TestMergeDegradedFullSetIsMerge(t *testing.T) {
	g1, g2 := GroupValues{}, GroupValues{}
	for _, m := range metrics.All() {
		g1[m], g2[m] = 1, 3
	}
	want, err := Merge([]GroupValues{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergeDegraded([]GroupValues{g1, g2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metrics.All() {
		if got[m] != want[m] {
			t.Errorf("%s: degraded %v != merge %v with zero groups missing", m, got[m], want[m])
		}
	}
}

func TestMergeDegradedValidation(t *testing.T) {
	g := GroupValues{}
	for _, m := range metrics.All() {
		g[m] = 1
	}
	if _, err := MergeDegraded([]GroupValues{g, g}, 1); err == nil {
		t.Error("more survivors than total accepted")
	}
	if _, err := MergeDegraded(nil, 4); err == nil {
		t.Error("zero survivors accepted")
	}
}

func TestSingleGroupIsIdentity(t *testing.T) {
	vals, err := Linear(groupReport(500, 1000), 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Merge([]GroupValues{vals})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metrics.All() {
		if out[m] != vals[m] {
			t.Errorf("%s changed through single-group merge: %v -> %v", m, vals[m], out[m])
		}
	}
}
