package combine

import (
	"math"
	"testing"

	"zatel/internal/extrapolate"
	"zatel/internal/metrics"
)

func TestLinearReplicatesIntervals(t *testing.T) {
	// Three replicates of the same group, identical except for cycles, each
	// covering the same fraction: the cycles interval carries the spread, the
	// rate metrics (identical across replicates) collapse to zero width.
	reps := []metrics.Report{
		groupReport(900, 5000),
		groupReport(1000, 5000),
		groupReport(1100, 5000),
	}
	fracs := []float64{0.25, 0.25, 0.25}
	gi, err := LinearReplicates(reps, fracs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cyc := gi[metrics.SimCycles]
	if math.Abs(cyc.Mean-4000) > 1e-9 {
		t.Errorf("cycles mean %v, want 4000 (1000/0.25)", cyc.Mean)
	}
	if cyc.HalfWidth() <= 0 {
		t.Error("cycles interval has no width despite replicate spread")
	}
	if hw := gi[metrics.L1DMissRate].HalfWidth(); hw != 0 {
		t.Errorf("identical rate metric has half-width %v, want 0", hw)
	}
	if gi[metrics.SimCycles].Replicates != 3 {
		t.Errorf("replicate count %d, want 3", gi[metrics.SimCycles].Replicates)
	}

	if _, err := LinearReplicates(reps, fracs[:2], 0.95); err == nil {
		t.Error("mismatched reports/fractions accepted")
	}
	if _, err := LinearReplicates(nil, nil, 0.95); err == nil {
		t.Error("empty replicates accepted")
	}
}

func TestMaxRelHalfWidth(t *testing.T) {
	gi := GroupIntervals{
		metrics.SimCycles: {Mean: 100, Low: 90, High: 110}, // rel 0.1
		metrics.IPC:       {Mean: 2, Low: 1.9, High: 2.1},  // rel 0.05
	}
	if got := gi.MaxRelHalfWidth(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MaxRelHalfWidth %v, want 0.1", got)
	}
	// A zero mean falls back to the absolute half-width.
	gi[metrics.DRAMEfficiency] = extrapolate.Interval{Mean: 0, Low: -0.2, High: 0.2}
	if got := gi.MaxRelHalfWidth(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("zero-mean MaxRelHalfWidth %v, want absolute 0.2", got)
	}
}

func TestMergeIntervalsEndpointRule(t *testing.T) {
	mk := func(scale float64) GroupIntervals {
		gi := GroupIntervals{}
		for _, m := range metrics.All() {
			gi[m] = extrapolate.Interval{
				Mean: 10 * scale, Low: 9 * scale, High: 11 * scale, Replicates: 5,
			}
		}
		return gi
	}
	merged, err := MergeIntervals([]GroupIntervals{mk(1), mk(3)}, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// IPC sums endpoints; everything else averages them.
	if iv := merged[metrics.IPC]; iv.Low != 9+27 || iv.High != 11+33 {
		t.Errorf("IPC interval [%v,%v], want [36,44]", iv.Low, iv.High)
	}
	if iv := merged[metrics.SimCycles]; iv.Low != (9+27)/2.0 || iv.High != (11+33)/2.0 {
		t.Errorf("cycles interval [%v,%v], want [18,22]", iv.Low, iv.High)
	}
	if merged[metrics.IPC].Replicates != 5 {
		t.Errorf("merged replicates %d, want min 5", merged[metrics.IPC].Replicates)
	}

	// Degraded merge (one group stands in for two): IPC endpoints reweight.
	deg, err := MergeIntervals([]GroupIntervals{mk(1)}, 2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv := deg[metrics.IPC]; iv.Low != 18 || iv.High != 22 {
		t.Errorf("degraded IPC interval [%v,%v], want [18,22]", iv.Low, iv.High)
	}
	if iv := deg[metrics.SimCycles]; iv.Low != 9 || iv.High != 11 {
		t.Errorf("degraded cycles interval [%v,%v], want [9,11]", iv.Low, iv.High)
	}

	if _, err := MergeIntervals(nil, 1, 0.95); err == nil {
		t.Error("no groups accepted")
	}
	if _, err := MergeIntervals([]GroupIntervals{mk(1), mk(1)}, 1, 0.95); err == nil {
		t.Error("total below group count accepted")
	}
}
