package combine

import (
	"fmt"

	"zatel/internal/extrapolate"
	"zatel/internal/metrics"
)

// GroupIntervals holds one group's per-metric confidence intervals, built
// from the per-replicate extrapolations of a repeated-subsampling run.
type GroupIntervals map[metrics.Metric]extrapolate.Interval

// LinearReplicates converts a group's per-replicate simulator reports into
// per-metric confidence intervals: each replicate's absolute metrics are
// extrapolated by that replicate's own realized fraction, rate metrics pass
// through unscaled, and the Student-t interval over the replicate values
// becomes the group's interval for the metric.
func LinearReplicates(reps []metrics.Report, fractions []float64, confidence float64) (GroupIntervals, error) {
	if len(reps) != len(fractions) || len(reps) == 0 {
		return nil, fmt.Errorf("combine: need matched non-empty reports/fractions, got %d/%d", len(reps), len(fractions))
	}
	out := make(GroupIntervals, len(metrics.All()))
	for _, m := range metrics.All() {
		ests := make([]float64, len(reps))
		for i, rep := range reps {
			v := rep.Value(m)
			if m.Absolute() {
				scaled, err := extrapolate.Linear(v, fractions[i])
				if err != nil {
					return nil, fmt.Errorf("combine: %s replicate %d: %w", m, i, err)
				}
				v = scaled
			}
			ests[i] = v
		}
		iv, err := extrapolate.ReplicateInterval(ests, confidence)
		if err != nil {
			return nil, fmt.Errorf("combine: %s: %w", m, err)
		}
		out[m] = iv
	}
	return out, nil
}

// MaxRelHalfWidth returns the worst relative confidence half-width across
// metrics: half-width divided by |mean|, or the absolute half-width where
// the mean is zero. It is the adaptive stopping statistic and the
// observation behind the zatel_ci_halfwidth histogram.
func (gi GroupIntervals) MaxRelHalfWidth() float64 {
	worst := 0.0
	for _, iv := range gi {
		h := iv.HalfWidth()
		if m := iv.Mean; m != 0 {
			if m < 0 {
				m = -m
			}
			h /= m
		}
		if h > worst {
			worst = h
		}
	}
	return worst
}

// Means projects the interval midpoints down to plain per-metric values, so
// replicated runs feed the same Merge path as point-estimate runs.
func (gi GroupIntervals) Means() GroupValues {
	out := make(GroupValues, len(gi))
	for m, iv := range gi {
		out[m] = iv.Mean
	}
	return out
}

// MergeIntervals combines per-group intervals into full-GPU intervals using
// the conservative endpoint rule: the merged low (high) endpoint applies
// Merge's combination — IPC sums, everything else averages — to the
// per-group low (high) endpoints. This brackets every convex combination
// the groups could realize; it is wider than an independence-based
// (root-sum-square) interval and never understates uncertainty. As in
// MergeDegraded, total > len(groups) re-weights the IPC endpoints by
// total/len(groups) to stand in for groups lost to faults.
func MergeIntervals(groups []GroupIntervals, total int, confidence float64) (GroupIntervals, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("combine: no groups")
	}
	if total < len(groups) {
		return nil, fmt.Errorf("combine: %d surviving groups exceed total %d", len(groups), total)
	}
	out := make(GroupIntervals, len(metrics.All()))
	n := float64(len(groups))
	for _, m := range metrics.All() {
		var lo, hi, mean float64
		reps := 0
		for gi, g := range groups {
			iv, ok := g[m]
			if !ok {
				return nil, fmt.Errorf("combine: group %d missing interval for %s", gi, m)
			}
			lo += iv.Low
			hi += iv.High
			mean += iv.Mean
			if reps == 0 || iv.Replicates < reps {
				reps = iv.Replicates
			}
		}
		if m == metrics.IPC {
			if total > len(groups) {
				w := float64(total) / n
				lo *= w
				hi *= w
				mean *= w
			}
		} else {
			lo /= n
			hi /= n
			mean /= n
		}
		out[m] = extrapolate.Interval{Mean: mean, Low: lo, High: hi, Replicates: reps}
	}
	return out, nil
}
