// Package combine implements step 7 of the Zatel pipeline (Section III-H):
// merging the per-group simulator outputs into the final full-GPU
// prediction. Throughput metrics (IPC) sum across groups because the
// original GPU executes all groups concurrently; time (simulation cycles)
// averages across the load-balanced groups; rate metrics (cache miss
// rates, RT efficiency, DRAM metrics) average because each group samples
// the same homogeneous workload.
package combine

import (
	"fmt"

	"zatel/internal/extrapolate"
	"zatel/internal/metrics"
)

// GroupValues holds one group's per-metric values after extrapolation.
type GroupValues map[metrics.Metric]float64

// Linear converts a group's simulator report into extrapolated metric
// values: absolute metrics are scaled by 1/fraction (Section III-G's
// baseline extrapolation); rate metrics pass through.
func Linear(rep metrics.Report, fraction float64) (GroupValues, error) {
	out := make(GroupValues, len(metrics.All()))
	for _, m := range metrics.All() {
		v := rep.Value(m)
		if m.Absolute() {
			scaled, err := extrapolate.Linear(v, fraction)
			if err != nil {
				return nil, fmt.Errorf("combine: %s: %w", m, err)
			}
			v = scaled
		}
		out[m] = v
	}
	return out, nil
}

// MergeDegraded combines the surviving subset of an originally
// total-group prediction. Rate and time metrics average over the
// survivors exactly as in Merge — the groups are load-balanced samples of
// the same homogeneous workload, so a surviving subset still estimates
// them soundly (the stratified-sampling argument: estimates from the
// surviving strata remain unbiased). Throughput (IPC) sums across
// concurrent groups, so the survivors' sum is re-weighted by
// total/len(groups) to stand in for the missing groups' contribution.
// With total == len(groups) this is exactly Merge.
func MergeDegraded(groups []GroupValues, total int) (GroupValues, error) {
	if total < len(groups) {
		return nil, fmt.Errorf("combine: %d surviving groups exceed total %d", len(groups), total)
	}
	out, err := Merge(groups)
	if err != nil {
		return nil, err
	}
	if total > len(groups) {
		out[metrics.IPC] *= float64(total) / float64(len(groups))
	}
	return out, nil
}

// Merge combines per-group values into the final prediction.
func Merge(groups []GroupValues) (GroupValues, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("combine: no groups")
	}
	out := make(GroupValues, len(metrics.All()))
	n := float64(len(groups))
	for _, m := range metrics.All() {
		var sum float64
		for gi, g := range groups {
			v, ok := g[m]
			if !ok {
				return nil, fmt.Errorf("combine: group %d missing metric %s", gi, m)
			}
			sum += v
		}
		if m == metrics.IPC {
			// Concurrent halves of the GPU add their throughput
			// (Section III-H's 20+50=70 example).
			out[m] = sum
		} else {
			out[m] = sum / n
		}
	}
	return out, nil
}
