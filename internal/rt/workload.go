package rt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"zatel/internal/bvh"
	"zatel/internal/scene"
	"zatel/internal/store"
	"zatel/internal/vecmath"
)

// Workload is a fully traced frame: one ThreadTrace per pixel plus the
// per-pixel cost profile. It is immutable once built and safe to share
// across concurrent simulator instances.
type Workload struct {
	Scene  *scene.Scene
	BVH    *bvh.BVH
	Width  int
	Height int
	SPP    int
	// Traces holds one trace per pixel in row-major order.
	Traces []ThreadTrace
	// Cost is the per-pixel execution-cost estimate (row-major) used to
	// build heatmaps: node visits + 2·triangle tests + instructions/4.
	Cost []float64
}

// Pixels returns Width·Height.
func (w *Workload) Pixels() int { return w.Width * w.Height }

// SizeBytes approximates the workload's resident size for the artifact
// store's byte accounting: the trace slices dominate (ops, rays, traversal
// steps), plus the per-pixel cost array. The BVH and scene are shared with
// other consumers and counted once here anyway, since the workload keeps
// them alive.
func (w *Workload) SizeBytes() int64 {
	const (
		opBytes   = 8  // Op{Kind uint8, Arg uint32} padded
		rayBytes  = 32 // RayTrace header incl. slice header
		stepBytes = 4
	)
	n := int64(len(w.Cost)) * 8
	for i := range w.Traces {
		t := &w.Traces[i]
		n += int64(len(t.Ops)) * opBytes
		n += int64(len(t.Rays)) * rayBytes
		for j := range t.Rays {
			n += int64(len(t.Rays[j].Steps)) * stepBytes
		}
	}
	if w.BVH != nil {
		n += int64(len(w.BVH.Nodes))*64 + int64(len(w.BVH.Tris))*64
	}
	return n
}

// BuildWorkload path-traces every pixel of the scene at the given
// resolution and samples-per-pixel, recording traces. It parallelises
// across rows; results are deterministic regardless of parallelism because
// every pixel's randomness is derived from (scene seed, pixel, sample).
func BuildWorkload(s *scene.Scene, width, height, spp int) (*Workload, error) {
	return BuildWorkloadContext(context.Background(), s, width, height, spp)
}

// BuildWorkloadContext is BuildWorkload honouring ctx: cancellation stops
// the trace between rows and returns ctx's error instead of a workload.
func BuildWorkloadContext(ctx context.Context, s *scene.Scene, width, height, spp int) (*Workload, error) {
	if width <= 0 || height <= 0 || spp <= 0 {
		return nil, fmt.Errorf("rt: invalid dimensions %dx%d spp=%d", width, height, spp)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	accel, err := bvh.Build(s, bvh.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if len(accel.Nodes) > maxNodeIndex {
		return nil, fmt.Errorf("rt: BVH with %d nodes exceeds packed-step capacity", len(accel.Nodes))
	}

	w := &Workload{
		Scene:  s,
		BVH:    accel,
		Width:  width,
		Height: height,
		SPP:    spp,
		Traces: make([]ThreadTrace, width*height),
		Cost:   make([]float64, width*height),
	}

	cam := s.Cam
	cam.Finalize(float32(width) / float32(height))
	root := vecmath.NewRNG(s.Seed)

	var wg sync.WaitGroup
	rows := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > height {
		workers = height
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := tracer{scene: s, bvh: accel, cam: &cam}
			for y := range rows {
				for x := 0; x < width; x++ {
					pix := y*width + x
					t := tr.tracePixel(x, y, width, height, spp, root.Split(uint64(pix)))
					w.Traces[pix] = t
					nodes, tris := t.TraversalWork()
					w.Cost[pix] = float64(nodes) + 2*float64(tris) + float64(t.Instructions())/4
				}
			}
		}()
	}
feed:
	for y := 0; y < height; y++ {
		select {
		case rows <- y:
		case <-ctx.Done():
			break feed
		}
	}
	close(rows)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return w, nil
}

// tracer carries the per-goroutine state of workload construction.
type tracer struct {
	scene *scene.Scene
	bvh   *bvh.BVH
	cam   *scene.Camera
}

// tracePixel executes the synthetic ray-generation shader for one pixel:
// spp independent paths, each tracing a primary ray, shadow rays at hits,
// and mirror/diffuse bounces up to the scene's depth limit.
func (tr *tracer) tracePixel(x, y, width, height, spp int, rng *vecmath.RNG) ThreadTrace {
	t := ThreadTrace{}
	pix := uint32(y*width + x)
	fbAddr := uint32(FBBase + uint64(pix)*FBBytes)

	compute := func(n uint32) {
		// Merge adjacent compute ops to keep traces compact.
		if len(t.Ops) > 0 && t.Ops[len(t.Ops)-1].Kind == OpCompute {
			t.Ops[len(t.Ops)-1].Arg += n
			return
		}
		t.Ops = append(t.Ops, Op{Kind: OpCompute, Arg: n})
	}
	load := func(addr uint64) { t.Ops = append(t.Ops, Op{Kind: OpLoad, Arg: uint32(addr)}) }
	store := func(addr uint32) { t.Ops = append(t.Ops, Op{Kind: OpStore, Arg: addr}) }

	traceRay := func(r vecmath.Ray, kind RayKind, any bool) (bvh.Hit, bool) {
		rt := RayTrace{Kind: kind}
		visit := func(s bvh.Step) {
			rt.Steps = append(rt.Steps, PackStep(s.Node, s.TriTests))
		}
		var hit bvh.Hit
		var ok bool
		if any {
			ok = tr.bvh.IntersectAny(r, visit)
		} else {
			hit, ok = tr.bvh.Intersect(r, visit)
		}
		t.Ops = append(t.Ops, Op{Kind: OpTrace, Arg: uint32(len(t.Rays))})
		t.Rays = append(t.Rays, rt)
		return hit, ok
	}

	for s := 0; s < spp; s++ {
		srng := rng.Split(uint64(s))
		compute(instrsRayGen)
		u := (float32(x) + srng.Float32()) / float32(width)
		v := (float32(y) + srng.Float32()) / float32(height)
		ray := tr.cam.Ray(u, v)

		kind := RayPrimary
		for depth := 0; ; depth++ {
			hit, ok := traceRay(ray, kind, false)
			if !ok {
				compute(instrsMissShade)
				store(fbAddr)
				break
			}
			tri := tr.bvh.Tris[hit.Tri]
			mat := tr.scene.Mats[tri.Mat]
			load(MatBase + uint64(tri.Mat)*MatBytes)
			compute(instrsHitShade)

			p := ray.At(hit.T)
			n := tri.Normal()
			if n.Dot(ray.Dir) > 0 {
				n = n.Neg()
			}

			// Shadow ray toward the point light.
			toLight := tr.scene.Light.Sub(p)
			dist := toLight.Len()
			sray := vecmath.NewRay(p.Add(n.Scale(1e-3)), toLight.Norm())
			sray.TMax = dist
			traceRay(sray, RayShadow, true)
			compute(instrsPostLight)

			if depth >= tr.scene.MaxDepth {
				store(fbAddr)
				break
			}
			switch mat.Kind {
			case scene.Emissive:
				store(fbAddr)
			case scene.Mirror:
				compute(instrsMirror)
				dir := ray.Dir.Reflect(n)
				ray = vecmath.NewRay(p.Add(n.Scale(1e-3)), dir)
				kind = RayBounce
				continue
			case scene.Diffuse:
				if srng.Float32() < mat.BounceProb {
					compute(instrsBounce)
					ray = vecmath.NewRay(p.Add(n.Scale(1e-3)), srng.Hemisphere(n))
					kind = RayBounce
					continue
				}
				store(fbAddr)
			}
			break
		}
	}
	return t
}

// WorkloadKey is the content address of a functional trace: the workload
// is fully determined by (scene name, resolution, spp) because every
// pixel's randomness derives from the scene seed. Downstream artifacts
// (quantized heatmaps, predictions) embed this digest in their own keys.
func WorkloadKey(name string, width, height, spp int) store.Digest {
	return store.NewKey("workload/v1").Str("scene", name).
		Int("w", width).Int("h", height).Int("spp", spp).Digest()
}

// buildCount tallies actual BuildWorkload executions through the cache;
// tests use it to prove concurrent callers share one build.
var buildCount atomic.Int64

// CachedWorkload returns the workload for a library scene, building and
// memoising it in the process-wide artifact store (store.Default) on first
// use. Experiments re-trace the same frames dozens of times; the store
// makes the functional trace a one-time cost, mirroring how Zatel profiles
// a scene once and reuses the result.
//
// The build is coalesced by the store: concurrent callers for the same key
// share one BuildWorkload execution instead of each paying the full
// path-trace cost. Failed builds are not cached, so a later call retries.
func CachedWorkload(name string, width, height, spp int) (*Workload, error) {
	return CachedWorkloadContext(context.Background(), name, width, height, spp)
}

// CachedWorkloadContext is CachedWorkload honouring ctx: cancellation
// interrupts both a build this caller runs and a wait on another caller's
// in-flight build (which keeps running for the callers still interested).
func CachedWorkloadContext(ctx context.Context, name string, width, height, spp int) (*Workload, error) {
	v, _, err := store.Default().GetOrBuild(ctx, WorkloadKey(name, width, height, spp),
		func(ctx context.Context) (any, int64, error) {
			buildCount.Add(1)
			s, err := scene.ByName(name)
			if err != nil {
				return nil, 0, err
			}
			w, err := BuildWorkloadContext(ctx, s, width, height, spp)
			if err != nil {
				return nil, 0, err
			}
			return w, w.SizeBytes(), nil
		})
	if err != nil {
		return nil, err
	}
	return v.(*Workload), nil
}
