package rt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"zatel/internal/bvh"
	"zatel/internal/scene"
	"zatel/internal/store"
	"zatel/internal/vecmath"
)

// Workload is a fully traced frame: one ThreadTrace per pixel plus the
// per-pixel cost profile. It is immutable once built and safe to share
// across concurrent simulator instances.
type Workload struct {
	Scene  *scene.Scene
	BVH    *bvh.BVH
	Width  int
	Height int
	SPP    int
	// Traces holds one trace per pixel in row-major order.
	Traces []ThreadTrace
	// Cost is the per-pixel execution-cost estimate (row-major) used to
	// build heatmaps: node visits + 2·triangle tests + instructions/4.
	Cost []float64

	// The arenas back every trace's Ops/Rays/Steps slices after
	// compaction: three allocations for the whole frame instead of
	// millions of per-pixel slices, which shrinks GC scan work for
	// store-resident workloads and gives replay row-major locality.
	// Nil for hand-assembled workloads that never went through
	// BuildWorkload; SizeBytes falls back to walking the traces then.
	opsArena   []Op
	raysArena  []RayTrace
	stepsArena []uint32
}

// Pixels returns Width·Height.
func (w *Workload) Pixels() int { return w.Width * w.Height }

// Element sizes for exact byte accounting.
const (
	opBytes    = int64(unsafe.Sizeof(Op{}))
	rayBytes   = int64(unsafe.Sizeof(RayTrace{}))
	stepBytes  = int64(unsafe.Sizeof(uint32(0)))
	traceBytes = int64(unsafe.Sizeof(ThreadTrace{}))
)

// SizeBytes returns the workload's exact resident size for the artifact
// store's byte accounting. For compacted workloads the three arenas hold
// every op, ray and traversal step, so the count is exact rather than the
// pre-arena estimate; hand-assembled workloads are walked trace by trace.
// The BVH and scene data are counted here because the workload keeps them
// alive.
func (w *Workload) SizeBytes() int64 {
	n := int64(unsafe.Sizeof(*w))
	n += int64(len(w.Cost)) * 8
	n += int64(len(w.Traces)) * traceBytes
	if w.opsArena != nil || w.raysArena != nil || w.stepsArena != nil {
		n += int64(cap(w.opsArena))*opBytes +
			int64(cap(w.raysArena))*rayBytes +
			int64(cap(w.stepsArena))*stepBytes
	} else {
		for i := range w.Traces {
			t := &w.Traces[i]
			n += int64(len(t.Ops)) * opBytes
			n += int64(len(t.Rays)) * rayBytes
			for j := range t.Rays {
				n += int64(len(t.Rays[j].Steps)) * stepBytes
			}
		}
	}
	if w.BVH != nil {
		n += w.BVH.SizeBytes()
	}
	return n
}

// compact rewrites every trace's slices into three shared backing arrays in
// row-major pixel order. The per-worker tracing arenas over-allocate and
// interleave pixels by row ownership; compaction restores determinism of
// layout, trims capacity to exactly the traced sizes, and drops the
// oversized worker arenas.
func (w *Workload) compact() {
	var nOps, nRays, nSteps int
	for i := range w.Traces {
		t := &w.Traces[i]
		nOps += len(t.Ops)
		nRays += len(t.Rays)
		for j := range t.Rays {
			nSteps += len(t.Rays[j].Steps)
		}
	}
	ops := make([]Op, 0, nOps)
	rays := make([]RayTrace, 0, nRays)
	steps := make([]uint32, 0, nSteps)
	for i := range w.Traces {
		t := &w.Traces[i]
		o0 := len(ops)
		ops = append(ops, t.Ops...)
		r0 := len(rays)
		for j := range t.Rays {
			s0 := len(steps)
			steps = append(steps, t.Rays[j].Steps...)
			rays = append(rays, RayTrace{Kind: t.Rays[j].Kind, Steps: steps[s0:len(steps):len(steps)]})
		}
		// Three-index slicing caps capacity so an accidental append by a
		// consumer cannot silently overwrite the next pixel's data.
		t.Ops = ops[o0:len(ops):len(ops)]
		t.Rays = rays[r0:len(rays):len(rays)]
	}
	w.opsArena, w.raysArena, w.stepsArena = ops, rays, steps
}

// BuildWorkload path-traces every pixel of the scene at the given
// resolution and samples-per-pixel, recording traces. It parallelises
// across rows; results are deterministic regardless of parallelism because
// every pixel's randomness is derived from (scene seed, pixel, sample).
func BuildWorkload(s *scene.Scene, width, height, spp int) (*Workload, error) {
	return BuildWorkloadContext(context.Background(), s, width, height, spp)
}

// BuildWorkloadContext is BuildWorkload honouring ctx: cancellation stops
// the trace between rows and returns ctx's error instead of a workload.
func BuildWorkloadContext(ctx context.Context, s *scene.Scene, width, height, spp int) (*Workload, error) {
	if width <= 0 || height <= 0 || spp <= 0 {
		return nil, fmt.Errorf("rt: invalid dimensions %dx%d spp=%d", width, height, spp)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	accel, err := bvh.Build(s, bvh.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if len(accel.Nodes) > maxNodeIndex {
		return nil, fmt.Errorf("rt: BVH with %d nodes exceeds packed-step capacity", len(accel.Nodes))
	}

	w := &Workload{
		Scene:  s,
		BVH:    accel,
		Width:  width,
		Height: height,
		SPP:    spp,
		Traces: make([]ThreadTrace, width*height),
		Cost:   make([]float64, width*height),
	}

	cam := s.Cam
	cam.Finalize(float32(width) / float32(height))
	root := vecmath.NewRNG(s.Seed)

	var wg sync.WaitGroup
	rows := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > height {
		workers = height
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := tracer{scene: s, bvh: accel, cam: &cam}
			for y := range rows {
				for x := 0; x < width; x++ {
					pix := y*width + x
					t := tr.tracePixel(x, y, width, height, spp, root.Split(uint64(pix)))
					w.Traces[pix] = t
					nodes, tris := t.TraversalWork()
					w.Cost[pix] = float64(nodes) + 2*float64(tris) + float64(t.Instructions())/4
				}
			}
		}()
	}
feed:
	for y := 0; y < height; y++ {
		select {
		case rows <- y:
		case <-ctx.Done():
			break feed
		}
	}
	close(rows)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w.compact()
	return w, nil
}

// tracer carries the per-goroutine state of workload construction. Each
// worker appends every pixel's ops, rays and traversal steps into shared
// growing arenas instead of allocating per-pixel slices; the workload's
// compact pass later rewrites them into the deterministic row-major
// per-workload arenas (see Workload.compact), so worker arena layout never
// leaks into the result.
type tracer struct {
	scene *scene.Scene
	bvh   *bvh.BVH
	cam   *scene.Camera

	ops   []Op
	rays  []RayTrace
	steps []uint32
}

// tracePixel executes the synthetic ray-generation shader for one pixel:
// spp independent paths, each tracing a primary ray, shadow rays at hits,
// and mirror/diffuse bounces up to the scene's depth limit. The returned
// trace's slices point into the tracer's arenas; growth can leave earlier
// traces on retired backing arrays, which is fine — contents are immutable
// once a pixel finishes, and compaction re-homes everything.
func (tr *tracer) tracePixel(x, y, width, height, spp int, rng *vecmath.RNG) ThreadTrace {
	opsStart, raysStart := len(tr.ops), len(tr.rays)
	pix := uint32(y*width + x)
	fbAddr := uint32(FBBase + uint64(pix)*FBBytes)

	compute := func(n uint32) {
		// Merge adjacent compute ops (of this pixel) to keep traces compact.
		if len(tr.ops) > opsStart && tr.ops[len(tr.ops)-1].Kind == OpCompute {
			tr.ops[len(tr.ops)-1].Arg += n
			return
		}
		tr.ops = append(tr.ops, Op{Kind: OpCompute, Arg: n})
	}
	load := func(addr uint64) { tr.ops = append(tr.ops, Op{Kind: OpLoad, Arg: uint32(addr)}) }
	store := func(addr uint32) { tr.ops = append(tr.ops, Op{Kind: OpStore, Arg: addr}) }

	traceRay := func(r vecmath.Ray, kind RayKind, any bool) (bvh.Hit, bool) {
		stepsStart := len(tr.steps)
		var hit bvh.Hit
		var ok bool
		if any {
			ok = tr.bvh.IntersectAnyPacked(r, &tr.steps)
		} else {
			hit, ok = tr.bvh.IntersectPacked(r, &tr.steps)
		}
		tr.ops = append(tr.ops, Op{Kind: OpTrace, Arg: uint32(len(tr.rays) - raysStart)})
		tr.rays = append(tr.rays, RayTrace{Kind: kind, Steps: tr.steps[stepsStart:len(tr.steps)]})
		return hit, ok
	}

	for s := 0; s < spp; s++ {
		srng := rng.Split(uint64(s))
		compute(instrsRayGen)
		u := (float32(x) + srng.Float32()) / float32(width)
		v := (float32(y) + srng.Float32()) / float32(height)
		ray := tr.cam.Ray(u, v)

		kind := RayPrimary
		for depth := 0; ; depth++ {
			hit, ok := traceRay(ray, kind, false)
			if !ok {
				compute(instrsMissShade)
				store(fbAddr)
				break
			}
			tri := tr.bvh.Tris[hit.Tri]
			mat := tr.scene.Mats[tri.Mat]
			load(MatBase + uint64(tri.Mat)*MatBytes)
			compute(instrsHitShade)

			p := ray.At(hit.T)
			n := tri.Normal()
			if n.Dot(ray.Dir) > 0 {
				n = n.Neg()
			}

			// Shadow ray toward the point light.
			toLight := tr.scene.Light.Sub(p)
			dist := toLight.Len()
			sray := vecmath.NewRay(p.Add(n.Scale(1e-3)), toLight.Norm())
			sray.TMax = dist
			traceRay(sray, RayShadow, true)
			compute(instrsPostLight)

			if depth >= tr.scene.MaxDepth {
				store(fbAddr)
				break
			}
			switch mat.Kind {
			case scene.Emissive:
				store(fbAddr)
			case scene.Mirror:
				compute(instrsMirror)
				dir := ray.Dir.Reflect(n)
				ray = vecmath.NewRay(p.Add(n.Scale(1e-3)), dir)
				kind = RayBounce
				continue
			case scene.Diffuse:
				if srng.Float32() < mat.BounceProb {
					compute(instrsBounce)
					ray = vecmath.NewRay(p.Add(n.Scale(1e-3)), srng.Hemisphere(n))
					kind = RayBounce
					continue
				}
				store(fbAddr)
			}
			break
		}
	}
	return ThreadTrace{Ops: tr.ops[opsStart:], Rays: tr.rays[raysStart:]}
}

// WorkloadKey is the content address of a functional trace: the workload
// is fully determined by (scene name, resolution, spp) because every
// pixel's randomness derives from the scene seed. Downstream artifacts
// (quantized heatmaps, predictions) embed this digest in their own keys.
func WorkloadKey(name string, width, height, spp int) store.Digest {
	return store.NewKey("workload/v1").Str("scene", name).
		Int("w", width).Int("h", height).Int("spp", spp).Digest()
}

// buildCount tallies actual BuildWorkload executions through the cache;
// tests use it to prove concurrent callers share one build.
var buildCount atomic.Int64

// CachedWorkload returns the workload for a library scene, building and
// memoising it in the process-wide artifact store (store.Default) on first
// use. Experiments re-trace the same frames dozens of times; the store
// makes the functional trace a one-time cost, mirroring how Zatel profiles
// a scene once and reuses the result.
//
// The build is coalesced by the store: concurrent callers for the same key
// share one BuildWorkload execution instead of each paying the full
// path-trace cost. Failed builds are not cached, so a later call retries.
func CachedWorkload(name string, width, height, spp int) (*Workload, error) {
	return CachedWorkloadContext(context.Background(), name, width, height, spp)
}

// CachedWorkloadContext is CachedWorkload honouring ctx: cancellation
// interrupts both a build this caller runs and a wait on another caller's
// in-flight build (which keeps running for the callers still interested).
func CachedWorkloadContext(ctx context.Context, name string, width, height, spp int) (*Workload, error) {
	v, _, err := store.Default().GetOrBuild(ctx, WorkloadKey(name, width, height, spp),
		func(ctx context.Context) (any, int64, error) {
			buildCount.Add(1)
			s, err := scene.ByName(name)
			if err != nil {
				return nil, 0, err
			}
			w, err := BuildWorkloadContext(ctx, s, width, height, spp)
			if err != nil {
				return nil, 0, err
			}
			// Size 0 defers to the store's Sizer fallback: the workload
			// reports its exact arena-backed footprint itself.
			return w, 0, nil
		})
	if err != nil {
		return nil, err
	}
	return v.(*Workload), nil
}
