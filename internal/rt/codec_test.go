package rt

import (
	"bytes"
	"testing"

	"zatel/internal/scene"
)

func buildCodecWorkload(t *testing.T) *Workload {
	t.Helper()
	s, err := scene.ByName("SPRNG")
	if err != nil {
		t.Fatalf("scene: %v", err)
	}
	w, err := BuildWorkload(s, 16, 16, 1)
	if err != nil {
		t.Fatalf("BuildWorkload: %v", err)
	}
	return w
}

func workloadsEqual(t *testing.T, a, b *Workload) {
	t.Helper()
	if a.Width != b.Width || a.Height != b.Height || a.SPP != b.SPP {
		t.Fatalf("shape mismatch: %dx%d spp=%d vs %dx%d spp=%d",
			a.Width, a.Height, a.SPP, b.Width, b.Height, b.SPP)
	}
	if a.Scene.Name != b.Scene.Name {
		t.Fatalf("scene mismatch: %q vs %q", a.Scene.Name, b.Scene.Name)
	}
	if len(a.Cost) != len(b.Cost) {
		t.Fatalf("cost length mismatch: %d vs %d", len(a.Cost), len(b.Cost))
	}
	for i := range a.Cost {
		if a.Cost[i] != b.Cost[i] {
			t.Fatalf("cost[%d] mismatch: %v vs %v", i, a.Cost[i], b.Cost[i])
		}
	}
	if len(a.Traces) != len(b.Traces) {
		t.Fatalf("trace count mismatch: %d vs %d", len(a.Traces), len(b.Traces))
	}
	for i := range a.Traces {
		ta, tb := &a.Traces[i], &b.Traces[i]
		if len(ta.Ops) != len(tb.Ops) || len(ta.Rays) != len(tb.Rays) {
			t.Fatalf("trace %d shape mismatch: %d/%d ops, %d/%d rays",
				i, len(ta.Ops), len(tb.Ops), len(ta.Rays), len(tb.Rays))
		}
		for j := range ta.Ops {
			if ta.Ops[j] != tb.Ops[j] {
				t.Fatalf("trace %d op %d mismatch: %+v vs %+v", i, j, ta.Ops[j], tb.Ops[j])
			}
		}
		for j := range ta.Rays {
			ra, rb := &ta.Rays[j], &tb.Rays[j]
			if ra.Kind != rb.Kind || len(ra.Steps) != len(rb.Steps) {
				t.Fatalf("trace %d ray %d mismatch: kind %d/%d, %d/%d steps",
					i, j, ra.Kind, rb.Kind, len(ra.Steps), len(rb.Steps))
			}
			for k := range ra.Steps {
				if ra.Steps[k] != rb.Steps[k] {
					t.Fatalf("trace %d ray %d step %d mismatch", i, j, k)
				}
			}
		}
	}
}

func TestWorkloadCodecRoundTrip(t *testing.T) {
	w := buildCodecWorkload(t)
	c := workloadCodec{}
	if !c.Encodes(w) {
		t.Fatal("Encodes(*Workload) = false")
	}
	data, err := c.Encode(w)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	v, size, err := c.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got := v.(*Workload)
	workloadsEqual(t, w, got)
	if got.BVH == nil {
		t.Fatal("decoded workload has no BVH")
	}
	if size != got.SizeBytes() {
		t.Fatalf("reported size %d != SizeBytes %d", size, got.SizeBytes())
	}

	// The decoded workload must re-encode to the identical payload: the
	// format is canonical, so disk entries stay byte-stable across a
	// round trip (and therefore digest-stable).
	again, err := c.Encode(got)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-encoded payload differs from original")
	}
}

func TestWorkloadCodecRejectsTruncation(t *testing.T) {
	w := buildCodecWorkload(t)
	c := workloadCodec{}
	data, err := c.Encode(w)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Every strict prefix must fail loudly, never mis-decode or panic.
	for _, n := range []int{0, 3, 4, 10, len(data) / 2, len(data) - 1} {
		if _, _, err := c.Decode(data[:n]); err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", n, len(data))
		}
	}
	// Trailing garbage is also a decode error.
	if _, _, err := c.Decode(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Fatal("Decode with trailing byte succeeded")
	}
}

func TestWorkloadCodecRejectsUnknownScene(t *testing.T) {
	w := buildCodecWorkload(t)
	c := workloadCodec{}
	data, err := c.Encode(w)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// Corrupt the scene name in place (nameLen stays valid).
	data[4] = 'x'
	if _, _, err := c.Decode(data); err == nil {
		t.Fatal("Decode with unknown scene name succeeded")
	}
}
