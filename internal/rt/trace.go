// Package rt is the functional ray tracer. It plays the role Vulkan-Sim's
// functional mode (or a hardware GPU) plays in the paper: for every pixel it
// path-traces the scene once, and while doing so records the exact sequence
// of instructions, memory accesses and BVH traversal steps the pixel's
// thread would execute. The cycle-level GPU model (internal/gpu) then
// replays these traces under a particular hardware configuration.
package rt

import (
	"fmt"

	"zatel/internal/bvh"
)

// Memory regions for non-BVH data, disjoint from bvh.NodeBase/bvh.TriBase.
const (
	// MatBase is the byte address of material record 0.
	MatBase uint64 = 0x3000_0000
	// MatBytes is the size of one material record.
	MatBytes uint64 = 64
	// FBBase is the byte address of the framebuffer.
	FBBase uint64 = 0x4000_0000
	// FBBytes is the per-pixel framebuffer footprint.
	FBBytes uint64 = 16
)

// OpKind discriminates thread-trace operations.
type OpKind uint8

const (
	// OpCompute executes Arg ALU instructions.
	OpCompute OpKind = iota
	// OpLoad issues a global memory read of the byte address Arg.
	OpLoad
	// OpStore issues a global memory write of the byte address Arg.
	OpStore
	// OpTrace hands ray Rays[Arg] to the RT unit and waits for it.
	OpTrace
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpTrace:
		return "trace"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one thread-trace operation.
type Op struct {
	Kind OpKind
	// Arg is the instruction count (OpCompute), byte address
	// (OpLoad/OpStore) or ray index (OpTrace).
	Arg uint32
}

// maxNodeIndex mirrors the packed-step capacity. The encoding itself lives
// in internal/bvh so traversal can append packed steps directly into the
// workload's step arena; these re-exports keep trace consumers decoupled
// from the acceleration structure.
const maxNodeIndex = bvh.MaxPackedNode

// PackStep encodes a traversal step (bvh.PackStep). Triangle-test counts
// saturate at 255.
func PackStep(node int32, triTests int32) uint32 { return bvh.PackStep(node, triTests) }

// UnpackStep decodes a traversal step (bvh.UnpackStep).
func UnpackStep(s uint32) (node int32, triTests int32) { return bvh.UnpackStep(s) }

// RayKind labels what role a traced ray plays in the path; the timing model
// reports RT statistics per kind.
type RayKind uint8

const (
	// RayPrimary is a camera ray.
	RayPrimary RayKind = iota
	// RayShadow is a light-visibility ray.
	RayShadow
	// RayBounce is a secondary (reflection or diffuse-bounce) ray.
	RayBounce
)

// RayTrace is the recorded traversal of one ray.
type RayTrace struct {
	Kind RayKind
	// Steps is the packed per-node traversal sequence (see PackStep).
	Steps []uint32
}

// ThreadTrace is the full recorded execution of one pixel's thread: a flat
// operation list referencing the rays it traced.
type ThreadTrace struct {
	Ops  []Op
	Rays []RayTrace
}

// TraceSource supplies threads to a simulation in warp order without
// requiring the caller to materialise a contiguous []ThreadTrace. Zatel's
// group runs mix selected pixels (traces read straight from the workload)
// with filtered ones (a single shared prologue trace), so a view costs
// nothing where a copy used to cost one slice per simulator call.
// Implementations must be safe for concurrent readers and the returned
// traces must not be mutated.
type TraceSource interface {
	// Len returns the number of threads.
	Len() int
	// At returns thread i's trace. The pointer is borrowed: it stays valid
	// for the duration of the simulation and must be treated as read-only.
	At(i int) *ThreadTrace
}

// TraceSlice adapts a []ThreadTrace to the TraceSource interface.
type TraceSlice []ThreadTrace

// Len implements TraceSource.
func (s TraceSlice) Len() int { return len(s) }

// At implements TraceSource.
func (s TraceSlice) At(i int) *ThreadTrace { return &s[i] }

// Instructions returns the number of SM instructions the thread issues:
// every op is one instruction except OpCompute which accounts for Arg.
// Work done inside the RT unit is accelerator work, not SM instructions,
// matching how Vulkan-Sim attributes instruction counts.
func (t *ThreadTrace) Instructions() uint64 {
	var n uint64
	for _, op := range t.Ops {
		if op.Kind == OpCompute {
			n += uint64(op.Arg)
		} else {
			n++
		}
	}
	return n
}

// TraversalWork returns the total node visits and triangle tests across the
// thread's rays — the scalar the heatmap is built from.
func (t *ThreadTrace) TraversalWork() (nodes, triTests uint64) {
	for _, r := range t.Rays {
		nodes += uint64(len(r.Steps))
		for _, s := range r.Steps {
			_, tt := UnpackStep(s)
			triTests += uint64(tt)
		}
	}
	return nodes, triTests
}

// FilteredTrace returns the trace executed by a pixel that the Zatel filter
// mask excludes: the two-instruction prologue of Listing 1 (the injected
// filter_shader check plus the early return), touching no memory.
func FilteredTrace() ThreadTrace {
	return ThreadTrace{Ops: []Op{{Kind: OpCompute, Arg: 2}}}
}

// Instruction-cost constants for the synthetic ray-generation shader. They
// approximate the per-phase ALU work of a small Vulkan path tracer.
const (
	instrsRayGen    = 8 // camera ray setup
	instrsMissShade = 2 // sky colour
	instrsHitShade  = 6 // normal, light vector, BRDF
	instrsPostLight = 4 // light accumulation after the shadow ray
	instrsMirror    = 3 // reflection direction
	instrsBounce    = 5 // hemisphere sample
)
