package rt

import (
	"testing"
	"testing/quick"

	"zatel/internal/scene"
)

func TestPackUnpackStep(t *testing.T) {
	cases := []struct{ node, tris int32 }{
		{0, 0}, {1, 4}, {12345, 255}, {maxNodeIndex, 7},
	}
	for _, c := range cases {
		n, tt := UnpackStep(PackStep(c.node, c.tris))
		if n != c.node || tt != c.tris {
			t.Errorf("roundtrip (%d,%d) -> (%d,%d)", c.node, c.tris, n, tt)
		}
	}
}

func TestPackStepSaturatesTriTests(t *testing.T) {
	_, tt := UnpackStep(PackStep(5, 1000))
	if tt != 255 {
		t.Errorf("saturation gave %d", tt)
	}
}

func TestPackStepRoundtripProperty(t *testing.T) {
	f := func(node uint32, tris uint8) bool {
		n := int32(node % maxNodeIndex)
		gotN, gotT := UnpackStep(PackStep(n, int32(tris)))
		return gotN == n && gotT == int32(tris)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilteredTrace(t *testing.T) {
	ft := FilteredTrace()
	if ft.Instructions() != 2 {
		t.Errorf("filtered trace issues %d instructions, want 2", ft.Instructions())
	}
	if len(ft.Rays) != 0 {
		t.Errorf("filtered trace traced %d rays", len(ft.Rays))
	}
	for _, op := range ft.Ops {
		if op.Kind == OpLoad || op.Kind == OpStore {
			t.Errorf("filtered trace touches memory")
		}
	}
}

func TestBuildWorkloadRejectsBadDims(t *testing.T) {
	s, err := scene.ByName("SPRNG")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ w, h, spp int }{{0, 8, 1}, {8, 0, 1}, {8, 8, 0}, {-1, 8, 1}} {
		if _, err := BuildWorkload(s, c.w, c.h, c.spp); err == nil {
			t.Errorf("dims %+v accepted", c)
		}
	}
}

func TestWorkloadShape(t *testing.T) {
	w, err := CachedWorkload("SPRNG", 32, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Pixels() != 1024 || len(w.Traces) != 1024 || len(w.Cost) != 1024 {
		t.Fatalf("workload shape wrong: pixels=%d traces=%d cost=%d",
			w.Pixels(), len(w.Traces), len(w.Cost))
	}
	for pix, tr := range w.Traces {
		if len(tr.Ops) == 0 {
			t.Fatalf("pixel %d has empty trace", pix)
		}
		// Every trace begins with ray-generation compute and traces at
		// least one primary ray per sample.
		if tr.Ops[0].Kind != OpCompute {
			t.Errorf("pixel %d trace starts with %v", pix, tr.Ops[0].Kind)
		}
		prim := 0
		for _, r := range tr.Rays {
			if r.Kind == RayPrimary {
				prim++
			}
		}
		if prim != w.SPP {
			t.Errorf("pixel %d traced %d primary rays, want %d", pix, prim, w.SPP)
		}
		// OpTrace args must index Rays.
		for _, op := range tr.Ops {
			if op.Kind == OpTrace && int(op.Arg) >= len(tr.Rays) {
				t.Fatalf("pixel %d OpTrace arg %d out of range", pix, op.Arg)
			}
		}
		if w.Cost[pix] <= 0 {
			t.Errorf("pixel %d non-positive cost %v", pix, w.Cost[pix])
		}
	}
}

func TestWorkloadDeterministicAcrossBuilds(t *testing.T) {
	s, err := scene.ByName("CHSNT")
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildWorkload(s, 24, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWorkload(s, 24, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	for pix := range a.Traces {
		ta, tb := a.Traces[pix], b.Traces[pix]
		if len(ta.Ops) != len(tb.Ops) || len(ta.Rays) != len(tb.Rays) {
			t.Fatalf("pixel %d shape differs across builds", pix)
		}
		for i := range ta.Ops {
			if ta.Ops[i] != tb.Ops[i] {
				t.Fatalf("pixel %d op %d differs", pix, i)
			}
		}
		if a.Cost[pix] != b.Cost[pix] {
			t.Fatalf("pixel %d cost differs", pix)
		}
	}
}

func TestShadowRaysFollowHits(t *testing.T) {
	// Every hit spawns exactly one shadow ray, so shadow count can never
	// exceed primary+bounce count.
	w, err := CachedWorkload("SPNZA", 32, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	for pix, tr := range w.Traces {
		var prim, shadow, bounce int
		for _, r := range tr.Rays {
			switch r.Kind {
			case RayPrimary:
				prim++
			case RayShadow:
				shadow++
			case RayBounce:
				bounce++
			}
		}
		if shadow > prim+bounce {
			t.Fatalf("pixel %d: %d shadow rays for %d hitting rays", pix, shadow, prim+bounce)
		}
	}
}

func TestSceneHeatContrast(t *testing.T) {
	// The library's characterisation: BUNNY (warm, object fills frame)
	// must have a much higher mean pixel cost than SHIP (cold, mostly sky),
	// and SPRNG must leave most pixels near the minimum cost.
	costMean := func(name string) float64 {
		w, err := CachedWorkload(name, 48, 48, 1)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, c := range w.Cost {
			sum += c
		}
		return sum / float64(len(w.Cost))
	}
	bunny, ship := costMean("BUNNY"), costMean("SHIP")
	if bunny < 2*ship {
		t.Errorf("BUNNY mean cost %.1f not ≫ SHIP %.1f", bunny, ship)
	}

	w, err := CachedWorkload("SPRNG", 48, 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	maxCost := 0.0
	for _, c := range w.Cost {
		if c > maxCost {
			maxCost = c
		}
	}
	cold := 0
	for _, c := range w.Cost {
		if c < maxCost*0.25 {
			cold++
		}
	}
	if frac := float64(cold) / float64(len(w.Cost)); frac < 0.5 {
		t.Errorf("SPRNG only %.0f%% cold pixels; expected an underutilised scene", frac*100)
	}
}

func TestInstructionsCounting(t *testing.T) {
	tr := ThreadTrace{Ops: []Op{
		{Kind: OpCompute, Arg: 10},
		{Kind: OpLoad, Arg: 0x1000},
		{Kind: OpTrace, Arg: 0},
		{Kind: OpStore, Arg: 0x2000},
	}}
	if got := tr.Instructions(); got != 13 {
		t.Errorf("Instructions = %d, want 13", got)
	}
}

func TestTraversalWork(t *testing.T) {
	tr := ThreadTrace{Rays: []RayTrace{
		{Steps: []uint32{PackStep(1, 0), PackStep(2, 3)}},
		{Steps: []uint32{PackStep(5, 2)}},
	}}
	nodes, tris := tr.TraversalWork()
	if nodes != 3 || tris != 5 {
		t.Errorf("TraversalWork = (%d,%d), want (3,5)", nodes, tris)
	}
}

func TestCachedWorkloadMemoises(t *testing.T) {
	a, err := CachedWorkload("SHIP", 16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedWorkload("SHIP", 16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache rebuilt an identical workload")
	}
	if _, err := CachedWorkload("NOPE", 16, 16, 1); err == nil {
		t.Error("unknown scene accepted")
	}
}
