package rt

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestCachedWorkloadSingleflight proves that under 8-way concurrency at
// most one BuildWorkload executes per workload key: everyone else waits on
// the in-flight build and shares its result.
func TestCachedWorkloadSingleflight(t *testing.T) {
	// Unusual dimensions so no other test shares this cache key.
	const w, h, spp = 37, 23, 1
	before := buildCount.Load()

	const callers = 8
	var wg sync.WaitGroup
	got := make([]*Workload, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got[i], errs[i] = CachedWorkload("SPRNG", w, h, spp)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if got[i] == nil || got[i] != got[0] {
			t.Errorf("caller %d got a different workload pointer", i)
		}
	}
	if builds := buildCount.Load() - before; builds != 1 {
		t.Errorf("%d builds executed under concurrency, want exactly 1", builds)
	}

	// A later call hits the memoised value without building again.
	again, err := CachedWorkload("SPRNG", w, h, spp)
	if err != nil || again != got[0] {
		t.Errorf("warm call: %v, same pointer %v", err, again == got[0])
	}
	if builds := buildCount.Load() - before; builds != 1 {
		t.Errorf("warm call rebuilt: %d builds total", builds)
	}
}

// TestCachedWorkloadContextCancelled: a pre-cancelled context aborts the
// build with the context's error, and the failure is not cached — a later
// call with a live context builds normally.
func TestCachedWorkloadContextCancelled(t *testing.T) {
	const w, h, spp = 31, 29, 1 // unique dims: no other test shares this key
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CachedWorkloadContext(ctx, "SPRNG", w, h, spp); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: err = %v, want context.Canceled", err)
	}
	wl, err := CachedWorkloadContext(context.Background(), "SPRNG", w, h, spp)
	if err != nil || wl == nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if wl.SizeBytes() <= 0 {
		t.Errorf("SizeBytes() = %d, want positive", wl.SizeBytes())
	}
}

// TestCachedWorkloadErrorNotCached checks that a failed build is retried
// (and keeps failing) instead of poisoning the cache.
func TestCachedWorkloadErrorNotCached(t *testing.T) {
	for i := 0; i < 2; i++ {
		if _, err := CachedWorkload("NO-SUCH-SCENE", 8, 8, 1); err == nil {
			t.Fatalf("call %d: unknown scene accepted", i)
		}
	}
	if _, err := CachedWorkload("SPRNG", 0, 8, 1); err == nil {
		t.Fatal("invalid dimensions accepted")
	}
}
