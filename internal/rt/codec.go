package rt

import (
	"encoding/binary"
	"fmt"
	"math"

	"zatel/internal/bvh"
	"zatel/internal/scene"
	"zatel/internal/store"
)

// WorkloadCodecKind is the versioned disk-format tag of serialized
// workload traces — the seed of the capture/replay artifact format the
// ROADMAP describes. Bump the suffix on any layout change; old entries
// then read as unknown-kind misses and are rebuilt, never misdecoded.
const WorkloadCodecKind = "rt.workload/v1"

// workloadCodec serializes rt.Workload arena traces for the artifact
// store's disk tier.
//
// Payload layout (little endian):
//
//	u32 sceneNameLen, sceneName
//	u32 width, u32 height, u32 spp
//	f64 cost[width*height]
//	u64 nOps, u64 nRays, u64 nSteps          (arena totals)
//	u32 opCount, u32 rayCount  per pixel     (trace boundaries)
//	u8  rayKind, u32 stepCount per ray       (ray boundaries)
//	u8  opKind[nOps], u32 opArg[nOps]        (ops arena, split SoA)
//	u32 step[nSteps]                         (steps arena)
//
// The scene and BVH are not serialized: the scene library is addressed by
// name and the BVH build is deterministic, so decode rebuilds both and
// re-homes the traces into fresh arenas (the same three-allocation layout
// compaction produces).
type workloadCodec struct{}

func init() { store.RegisterCodec(workloadCodec{}) }

// Kind implements store.Codec.
func (workloadCodec) Kind() string { return WorkloadCodecKind }

// Encodes implements store.Codec.
func (workloadCodec) Encodes(v any) bool {
	_, ok := v.(*Workload)
	return ok
}

// Encode implements store.Codec. It walks Traces rather than the arenas so
// hand-assembled workloads (nil arenas) serialize identically.
func (workloadCodec) Encode(v any) ([]byte, error) {
	w, ok := v.(*Workload)
	if !ok {
		return nil, fmt.Errorf("rt: codec cannot encode %T", v)
	}
	if w.Scene == nil || w.Scene.Name == "" {
		return nil, fmt.Errorf("rt: cannot serialize a workload without a named library scene")
	}
	if _, err := scene.ByName(w.Scene.Name); err != nil {
		return nil, fmt.Errorf("rt: workload scene not in the library: %w", err)
	}
	if len(w.Traces) != w.Width*w.Height || len(w.Cost) != w.Width*w.Height {
		return nil, fmt.Errorf("rt: workload shape %dx%d disagrees with %d traces / %d costs",
			w.Width, w.Height, len(w.Traces), len(w.Cost))
	}
	var nOps, nRays, nSteps int
	for i := range w.Traces {
		t := &w.Traces[i]
		nOps += len(t.Ops)
		nRays += len(t.Rays)
		for j := range t.Rays {
			nSteps += len(t.Rays[j].Steps)
		}
	}

	size := 4 + len(w.Scene.Name) + 3*4 + // name + dims
		len(w.Cost)*8 + 3*8 + // cost + totals
		len(w.Traces)*8 + nRays*5 + // boundaries
		nOps*5 + nSteps*4 // arenas
	buf := make([]byte, 0, size)
	le := binary.LittleEndian

	buf = le.AppendUint32(buf, uint32(len(w.Scene.Name)))
	buf = append(buf, w.Scene.Name...)
	buf = le.AppendUint32(buf, uint32(w.Width))
	buf = le.AppendUint32(buf, uint32(w.Height))
	buf = le.AppendUint32(buf, uint32(w.SPP))
	for _, c := range w.Cost {
		buf = le.AppendUint64(buf, math.Float64bits(c))
	}
	buf = le.AppendUint64(buf, uint64(nOps))
	buf = le.AppendUint64(buf, uint64(nRays))
	buf = le.AppendUint64(buf, uint64(nSteps))
	for i := range w.Traces {
		t := &w.Traces[i]
		buf = le.AppendUint32(buf, uint32(len(t.Ops)))
		buf = le.AppendUint32(buf, uint32(len(t.Rays)))
	}
	for i := range w.Traces {
		for j := range w.Traces[i].Rays {
			r := &w.Traces[i].Rays[j]
			buf = append(buf, byte(r.Kind))
			buf = le.AppendUint32(buf, uint32(len(r.Steps)))
		}
	}
	for i := range w.Traces {
		for _, op := range w.Traces[i].Ops {
			buf = append(buf, byte(op.Kind))
		}
	}
	for i := range w.Traces {
		for _, op := range w.Traces[i].Ops {
			buf = le.AppendUint32(buf, op.Arg)
		}
	}
	for i := range w.Traces {
		for j := range w.Traces[i].Rays {
			for _, s := range w.Traces[i].Rays[j].Steps {
				buf = le.AppendUint32(buf, s)
			}
		}
	}
	return buf, nil
}

// wlReader is a bounds-checked little-endian cursor: every short read is
// an error, so a payload that passed the disk tier's checksum but was
// written corrupt still fails loudly into the quarantine path.
type wlReader struct {
	data []byte
	off  int
}

func (r *wlReader) need(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) || r.off+n < r.off {
		return nil, fmt.Errorf("rt: workload payload truncated at offset %d (need %d of %d)",
			r.off, n, len(r.data))
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wlReader) u8() (byte, error) {
	b, err := r.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *wlReader) u32() (uint32, error) {
	b, err := r.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *wlReader) u64() (uint64, error) {
	b, err := r.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// decodeDims caps the sanity bounds of the header counts so a corrupt
// payload cannot trigger a multi-gigabyte allocation before the per-field
// bounds checks run.
const wlMaxDim = 1 << 16

// Decode implements store.Codec: it parses the payload, rebuilds the
// scene and BVH from the library (both deterministic), and re-homes every
// trace into fresh arenas via three-index slicing, yielding the same
// zero-copy layout BuildWorkload's compaction produces.
func (workloadCodec) Decode(data []byte) (any, int64, error) {
	r := &wlReader{data: data}
	nameLen, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	nameBytes, err := r.need(int(nameLen))
	if err != nil {
		return nil, 0, err
	}
	name := string(nameBytes)
	width, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	height, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	spp, err := r.u32()
	if err != nil {
		return nil, 0, err
	}
	if width == 0 || height == 0 || spp == 0 || width > wlMaxDim || height > wlMaxDim {
		return nil, 0, fmt.Errorf("rt: workload dims %dx%d spp=%d out of range", width, height, spp)
	}
	pixels := int(width) * int(height)

	s, err := scene.ByName(name)
	if err != nil {
		return nil, 0, fmt.Errorf("rt: workload scene %q: %w", name, err)
	}
	accel, err := bvh.Build(s, bvh.DefaultOptions())
	if err != nil {
		return nil, 0, err
	}

	cost := make([]float64, pixels)
	for i := range cost {
		bits, err := r.u64()
		if err != nil {
			return nil, 0, err
		}
		cost[i] = math.Float64frombits(bits)
	}

	nOps64, err := r.u64()
	if err != nil {
		return nil, 0, err
	}
	nRays64, err := r.u64()
	if err != nil {
		return nil, 0, err
	}
	nSteps64, err := r.u64()
	if err != nil {
		return nil, 0, err
	}
	// The remaining payload must hold at least one byte per declared
	// element; this rejects absurd totals before allocation.
	if nOps64*5+nRays64*5+nSteps64*4 > uint64(len(data)) {
		return nil, 0, fmt.Errorf("rt: workload totals (%d ops, %d rays, %d steps) exceed payload", nOps64, nRays64, nSteps64)
	}
	nOps, nRays, nSteps := int(nOps64), int(nRays64), int(nSteps64)

	opCounts := make([]uint32, pixels)
	rayCounts := make([]uint32, pixels)
	var sumOps, sumRays uint64
	for i := 0; i < pixels; i++ {
		if opCounts[i], err = r.u32(); err != nil {
			return nil, 0, err
		}
		if rayCounts[i], err = r.u32(); err != nil {
			return nil, 0, err
		}
		sumOps += uint64(opCounts[i])
		sumRays += uint64(rayCounts[i])
	}
	if sumOps != nOps64 || sumRays != nRays64 {
		return nil, 0, fmt.Errorf("rt: trace boundaries (%d ops, %d rays) disagree with totals (%d, %d)",
			sumOps, sumRays, nOps64, nRays64)
	}

	rays := make([]RayTrace, nRays)
	stepCounts := make([]uint32, nRays)
	var sumSteps uint64
	for i := 0; i < nRays; i++ {
		kind, err := r.u8()
		if err != nil {
			return nil, 0, err
		}
		if RayKind(kind) > RayBounce {
			return nil, 0, fmt.Errorf("rt: ray %d has unknown kind %d", i, kind)
		}
		rays[i].Kind = RayKind(kind)
		if stepCounts[i], err = r.u32(); err != nil {
			return nil, 0, err
		}
		sumSteps += uint64(stepCounts[i])
	}
	if sumSteps != nSteps64 {
		return nil, 0, fmt.Errorf("rt: ray boundaries (%d steps) disagree with total %d", sumSteps, nSteps64)
	}

	ops := make([]Op, nOps)
	for i := 0; i < nOps; i++ {
		kind, err := r.u8()
		if err != nil {
			return nil, 0, err
		}
		if OpKind(kind) > OpTrace {
			return nil, 0, fmt.Errorf("rt: op %d has unknown kind %d", i, kind)
		}
		ops[i].Kind = OpKind(kind)
	}
	for i := 0; i < nOps; i++ {
		if ops[i].Arg, err = r.u32(); err != nil {
			return nil, 0, err
		}
	}
	steps := make([]uint32, nSteps)
	for i := 0; i < nSteps; i++ {
		if steps[i], err = r.u32(); err != nil {
			return nil, 0, err
		}
	}
	if r.off != len(data) {
		return nil, 0, fmt.Errorf("rt: %d trailing bytes after workload payload", len(data)-r.off)
	}

	// Re-home: the flat arenas are carved back into per-trace slices with
	// capped capacity, exactly like Workload.compact.
	w := &Workload{
		Scene:      s,
		BVH:        accel,
		Width:      int(width),
		Height:     int(height),
		SPP:        int(spp),
		Traces:     make([]ThreadTrace, pixels),
		Cost:       cost,
		opsArena:   ops,
		raysArena:  rays,
		stepsArena: steps,
	}
	opOff, rayOff, stepOff := 0, 0, 0
	for i := 0; i < pixels; i++ {
		oEnd := opOff + int(opCounts[i])
		rEnd := rayOff + int(rayCounts[i])
		w.Traces[i].Ops = ops[opOff:oEnd:oEnd]
		w.Traces[i].Rays = rays[rayOff:rEnd:rEnd]
		opOff, rayOff = oEnd, rEnd
	}
	for i := 0; i < nRays; i++ {
		end := stepOff + int(stepCounts[i])
		rays[i].Steps = steps[stepOff:end:end]
		stepOff = end
	}
	return w, w.SizeBytes(), nil
}
