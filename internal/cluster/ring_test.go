package cluster

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"zatel/internal/store"
)

func goldenDigest(i int) store.Digest {
	return store.Digest(sha256.Sum256([]byte(fmt.Sprintf("golden-key-%d", i))))
}

// TestRingGoldenPlacement pins the deterministic placement contract: these
// digest→owner pairs may never change for this peer set, or a mixed-version
// fleet would disagree about ownership and fetch from the wrong node.
func TestRingGoldenPlacement(t *testing.T) {
	peers := []string{"http://node-a:8080", "http://node-b:8080", "http://node-c:8080"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := []struct {
		key   int
		owner string
	}{
		{0, "http://node-c:8080"},
		{1, "http://node-a:8080"},
		{2, "http://node-a:8080"},
		{3, "http://node-c:8080"},
		{4, "http://node-c:8080"},
		{5, "http://node-c:8080"},
		{6, "http://node-c:8080"},
		{7, "http://node-a:8080"},
		{8, "http://node-b:8080"},
		{9, "http://node-b:8080"},
		{10, "http://node-c:8080"},
		{11, "http://node-b:8080"},
	}
	for _, g := range golden {
		if got := r.Owner(goldenDigest(g.key)); got != g.owner {
			t.Errorf("Owner(golden-key-%d) = %q, want %q (placement must stay stable)", g.key, got, g.owner)
		}
	}
}

// TestRingOrderIndependence: every permutation of the peer list (and any
// duplicates in it) yields the identical ring.
func TestRingOrderIndependence(t *testing.T) {
	base := []string{"http://a", "http://b", "http://c", "http://d"}
	perms := [][]string{
		{"http://d", "http://c", "http://b", "http://a"},
		{"http://b", "http://d", "http://a", "http://c"},
		{"http://a", "http://a", "http://b", "http://c", "http://d", "http://b"},
	}
	want, err := NewRing(base, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range perms {
		r, err := NewRing(perm, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(r.Nodes()) != fmt.Sprint(want.Nodes()) {
			t.Fatalf("Nodes() = %v for permutation %v, want %v", r.Nodes(), perm, want.Nodes())
		}
		for i := 0; i < 200; i++ {
			d := goldenDigest(i)
			if got, exp := r.Owner(d), want.Owner(d); got != exp {
				t.Fatalf("permutation %v: Owner(key %d) = %q, want %q", perm, i, got, exp)
			}
		}
	}
}

// TestRingMinimalMovement: removing one node reassigns only that node's
// keys; every key another node owned keeps its owner. This is the property
// that makes a rolling restart cheap.
func TestRingMinimalMovement(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c", "http://d", "http://e"}
	full, err := NewRing(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := "http://c"
	var reduced []string
	for _, p := range all {
		if p != removed {
			reduced = append(reduced, p)
		}
	}
	small, err := NewRing(reduced, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	moved, onRemoved := 0, 0
	for i := 0; i < n; i++ {
		d := goldenDigest(i)
		before, after := full.Owner(d), small.Owner(d)
		if before == removed {
			onRemoved++
			if after == removed {
				t.Fatalf("key %d still owned by removed node %q", i, removed)
			}
			continue
		}
		if before != after {
			moved++
			t.Errorf("key %d moved %q -> %q though its owner stayed in the ring", i, before, after)
		}
	}
	if moved > 0 {
		t.Fatalf("%d/%d keys moved off surviving owners (want 0)", moved, n)
	}
	if onRemoved == 0 {
		t.Fatal("removed node owned no keys; test is vacuous")
	}
}

// TestRingBalance: with DefaultVNodes no node's share strays wildly from
// 1/N. The bound is loose (3x the fair share) — this guards against a
// hashing bug that collapses ownership onto one node, not statistical
// perfection.
func TestRingBalance(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c", "http://d"}
	r, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8192
	counts := make(map[string]int, len(peers))
	for i := 0; i < n; i++ {
		counts[r.Owner(goldenDigest(i))]++
	}
	fair := n / len(peers)
	for _, p := range peers {
		c := counts[p]
		if c == 0 {
			t.Errorf("node %q owns nothing", p)
		}
		if c > 3*fair {
			t.Errorf("node %q owns %d of %d keys (> 3x fair share %d)", p, c, n, fair)
		}
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("NewRing(nil) succeeded, want error")
	}
	if _, err := NewRing([]string{"http://a", ""}, 0); err == nil {
		t.Error("NewRing with empty peer succeeded, want error")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"http://a"}}); err == nil {
		t.Error("New without Self succeeded, want error")
	}
	if _, err := New(Config{Self: "http://z", Peers: []string{"http://a", "http://b"}}); err == nil {
		t.Error("New with Self outside peer list succeeded, want error")
	}
	c, err := New(Config{
		Self:  "http://a",
		Peers: []string{"http://b", "http://a"},
		Probe: ProbeConfig{Interval: -1},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if c.Name() != "http://a" {
		t.Errorf("Name() = %q, want default Self", c.Name())
	}
	if got := c.Peers(); len(got) != 2 || got[0] != "http://a" || got[1] != "http://b" {
		t.Errorf("Peers() = %v", got)
	}
}
