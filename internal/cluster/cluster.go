// Package cluster turns N zateld processes into one cache-coherent
// prediction fleet. A static peer list is hashed onto a consistent-hash
// ring (ring.go): every artifact digest has exactly one owning node, and
// membership changes move only the keys they must. On top of the ring sit
// two cooperating mechanisms:
//
//   - The peer artifact tier (Fetch, installed via store.AttachPeers):
//     when a node misses its memory and disk tiers, it asks the owning
//     peer for the artifact by digest over GET /v1/artifacts/{digest},
//     verifies the framed payload ("ZATL" magic + payload SHA-256),
//     decodes it through the registered codec and promotes it locally.
//     Anything built once anywhere in the fleet is fetched everywhere —
//     gapis/gapir-style dedup economics.
//
//   - Request forwarding (ProxyPredict, used by the service's routing):
//     a /v1/predict request landing on a non-owner whose fleet has not
//     built the artifact yet is forwarded to the owner, so each key is
//     built where it lives and concurrent requests fleet-wide coalesce
//     onto the owner's singleflight.
//
// Every peer interaction is fail-soft: a dead, slow or corrupt peer is
// marked unhealthy (prober.go re-probes it on seeded backoff) and the
// caller degrades to a local build — peer trouble never surfaces as a
// request error.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"zatel/internal/obs"
	"zatel/internal/store"
)

const (
	// ForwardedHeader marks a proxied /v1/predict request with the name of
	// the forwarding node; a node receiving it serves locally and never
	// re-forwards, so routing cannot loop.
	ForwardedHeader = "X-Zatel-Forwarded"
	// ArtifactsPath is the peer artifact endpoint prefix; the artifact's
	// full hex digest follows it.
	ArtifactsPath = "/v1/artifacts/"

	// maxArtifactBytes bounds a peer response read (1 GiB): a confused or
	// malicious peer cannot OOM the fetcher before verification fails.
	maxArtifactBytes = 1 << 30
)

// Config describes one node's view of the fleet.
type Config struct {
	// Self is this node's own base URL exactly as it appears in Peers
	// (required) — it is the node's ring identity.
	Self string
	// Name is the node's display name for X-Zatel-Node and logs
	// (default: Self).
	Name string
	// Peers lists every fleet member's base URL, Self included. Order is
	// irrelevant; duplicates collapse.
	Peers []string
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	VNodes int
	// FetchTimeout bounds one peer artifact fetch (0 = 2s). Forwarded
	// predict requests use the request's own deadline instead.
	FetchTimeout time.Duration
	// Probe tunes the health prober.
	Probe ProbeConfig
	// HTTPClient overrides the transport (nil = a dedicated client).
	HTTPClient *http.Client
}

// Cluster is one node's membership, routing and peer-fetch state.
// Construct with New; it is safe for concurrent use.
type Cluster struct {
	self, name   string
	ring         *Ring
	hc           *http.Client
	fetchTimeout time.Duration
	prober       *Prober

	fetches, hits, misses       atomic.Uint64
	errors, rejects, skipped    atomic.Uint64
	proxied, proxyErrs, localFB atomic.Uint64

	histFetch *obs.Histogram // successful peer artifact fetches
	histProxy *obs.Histogram // successful forwarded predict requests
}

// New validates the configuration, builds the ring and starts the health
// prober.
func New(cfg Config) (*Cluster, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Self is required")
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, n := range ring.Nodes() {
		if n == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %q", cfg.Self, ring.Nodes())
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Self
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 2 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	c := &Cluster{
		self:         cfg.Self,
		name:         cfg.Name,
		ring:         ring,
		hc:           hc,
		fetchTimeout: cfg.FetchTimeout,
		histFetch:    obs.NewHistogram(),
		histProxy:    obs.NewHistogram(),
	}
	if cfg.Probe.Probe == nil {
		cfg.Probe.Probe = c.httpProbe
	}
	var others []string
	for _, n := range ring.Nodes() {
		if n != cfg.Self {
			others = append(others, n)
		}
	}
	c.prober = newProber(others, cfg.Probe)
	return c, nil
}

// httpProbe is the default liveness check: the peer's /healthz must answer
// 200 (a draining peer answers 503 and correctly reads as unhealthy).
func (c *Cluster) httpProbe(ctx context.Context, baseURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe %s: %s", baseURL, resp.Status)
	}
	return nil
}

// Self returns this node's ring identity (its base URL).
func (c *Cluster) Self() string { return c.self }

// Name returns this node's display name.
func (c *Cluster) Name() string { return c.name }

// Owner returns the base URL of the node owning the digest.
func (c *Cluster) Owner(d store.Digest) string { return c.ring.Owner(d) }

// Peers returns the fleet's sorted base URLs, self included.
func (c *Cluster) Peers() []string { return c.ring.Nodes() }

// Healthy reports whether the peer is currently considered reachable.
func (c *Cluster) Healthy(peer string) bool { return c.prober.Healthy(peer) }

// FetchLatency and ProxyLatency expose the latency histograms for /metrics.
func (c *Cluster) FetchLatency() *obs.Histogram { return c.histFetch }
func (c *Cluster) ProxyLatency() *obs.Histogram { return c.histProxy }

// Fetch implements store.PeerFetcher: ask the owning peer for the artifact
// by digest, verify the "ZATL" frame (payload SHA-256 included) and decode
// it through the registered codec. Every failure — self-owned key,
// unhealthy owner, transport error, 404, bad frame, codec rejection —
// returns ok=false so the store degrades to a local build; the counters
// record which it was.
func (c *Cluster) Fetch(ctx context.Context, key store.Digest) (any, int64, bool) {
	owner := c.ring.Owner(key)
	if owner == c.self {
		return nil, 0, false // we are the owner: build locally
	}
	if !c.prober.Healthy(owner) {
		c.skipped.Add(1)
		return nil, 0, false
	}
	c.fetches.Add(1)
	fctx, sp := obs.StartSpan(ctx, "cluster.fetch")
	sp.SetAttr("key", key.Short())
	sp.SetAttr("owner", owner)
	defer sp.End()
	fctx, cancel := context.WithTimeout(fctx, c.fetchTimeout)
	defer cancel()

	start := time.Now()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, owner+ArtifactsPath+key.String(), nil)
	if err != nil {
		c.errors.Add(1)
		sp.SetAttr("error", err)
		return nil, 0, false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.errors.Add(1)
		c.prober.MarkFailure(owner)
		sp.SetAttr("error", err)
		slog.Warn("cluster: peer fetch failed, building locally",
			"key", key.Short(), "owner", owner, "err", err)
		return nil, 0, false
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		// The owner has not built it either: a clean miss, the peer is fine.
		c.misses.Add(1)
		c.prober.MarkHealthy(owner)
		return nil, 0, false
	case resp.StatusCode != http.StatusOK:
		c.errors.Add(1)
		c.prober.MarkFailure(owner)
		sp.SetAttr("error", resp.Status)
		slog.Warn("cluster: peer fetch unexpected status, building locally",
			"key", key.Short(), "owner", owner, "status", resp.Status)
		return nil, 0, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes+1))
	if err != nil {
		c.errors.Add(1)
		c.prober.MarkFailure(owner)
		sp.SetAttr("error", err)
		return nil, 0, false
	}
	if len(data) > maxArtifactBytes {
		c.rejects.Add(1)
		sp.SetAttr("error", "artifact exceeds size bound")
		return nil, 0, false
	}
	v, size, kind, err := store.DecodeFramed(data)
	if err != nil {
		// The peer answered but the bytes do not verify or decode: never
		// promote a tampered artifact. The transport is fine, so the peer
		// stays routable; the reject counter is the alert signal.
		c.rejects.Add(1)
		sp.SetAttr("error", err)
		slog.Warn("cluster: peer artifact failed verification, building locally",
			"key", key.Short(), "owner", owner, "err", err)
		return nil, 0, false
	}
	c.hits.Add(1)
	c.histFetch.Observe(time.Since(start))
	c.prober.MarkHealthy(owner)
	sp.SetAttr("kind", kind)
	sp.SetAttr("bytes", len(data))
	return v, size, true
}

// ProxyPredict forwards a /v1/predict request to the owning peer and
// returns its response (caller closes the body). A transport failure or a
// 5xx marks the owner unhealthy and returns an error — the caller then
// builds locally; 4xx responses relay as-is (they are the request's
// fault, not the owner's).
func (c *Cluster) ProxyPredict(ctx context.Context, owner, rawQuery string, header http.Header, body []byte) (*http.Response, error) {
	c.proxied.Add(1)
	u := owner + "/v1/predict"
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		c.proxyErrs.Add(1)
		return nil, err
	}
	for _, h := range []string{"Content-Type", "X-Zatel-Request-Id"} {
		if v := header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(ForwardedHeader, c.name)
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.proxyErrs.Add(1)
		c.prober.MarkFailure(owner)
		return nil, err
	}
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		c.proxyErrs.Add(1)
		c.prober.MarkFailure(owner)
		return nil, fmt.Errorf("cluster: owner %s answered %s", owner, resp.Status)
	}
	c.histProxy.Observe(time.Since(start))
	c.prober.MarkHealthy(owner)
	return resp, nil
}

// CountLocalFallback records one predict built locally because the owner
// was unhealthy or the forward failed.
func (c *Cluster) CountLocalFallback() { c.localFB.Add(1) }

// Counters implements store.PeerFetcher.
func (c *Cluster) Counters() store.PeerCounters {
	return store.PeerCounters{
		Peers:          len(c.ring.Nodes()),
		Healthy:        c.prober.HealthyCount() + 1, // self is always healthy
		Fetches:        c.fetches.Load(),
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Errors:         c.errors.Load(),
		Rejects:        c.rejects.Load(),
		Skipped:        c.skipped.Load(),
		Proxied:        c.proxied.Load(),
		ProxyErrors:    c.proxyErrs.Load(),
		LocalFallbacks: c.localFB.Load(),
	}
}

// Close stops the health prober.
func (c *Cluster) Close() { c.prober.Close() }
