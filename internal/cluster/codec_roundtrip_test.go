// Round-trip property tests for every artifact kind that crosses the peer
// wire: the value must survive encode → "ZATL" frame → verify → decode,
// and the decoded value must re-frame to byte-identical bytes. Byte
// stability is what lets any fleet member re-serve a fetched artifact —
// if a round trip perturbed the bytes, promotion would corrupt the fleet's
// content addressing one hop at a time.
package cluster_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"zatel/internal/combine"
	"zatel/internal/core"
	"zatel/internal/heatmap"
	"zatel/internal/metrics"
	"zatel/internal/rt"
	"zatel/internal/scene"
	"zatel/internal/store"
)

// frameRoundTrip runs one value through the full peer wire format and
// returns the re-decoded value; it fails the test unless the re-framed
// bytes match the original frame exactly.
func frameRoundTrip(t *testing.T, v any, wantKind string) any {
	t.Helper()
	data, kind, err := store.EncodeFramed(v)
	if err != nil {
		t.Fatalf("EncodeFramed: %v", err)
	}
	if kind != wantKind {
		t.Fatalf("EncodeFramed kind = %q, want %q", kind, wantKind)
	}
	got, size, kind2, err := store.DecodeFramed(data)
	if err != nil {
		t.Fatalf("DecodeFramed: %v", err)
	}
	if kind2 != wantKind {
		t.Fatalf("DecodeFramed kind = %q, want %q", kind2, wantKind)
	}
	if size <= 0 {
		t.Fatalf("DecodeFramed size = %d, want > 0", size)
	}
	again, _, err := store.EncodeFramed(got)
	if err != nil {
		t.Fatalf("re-EncodeFramed: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("%s: re-framed bytes differ from original (%d vs %d bytes); format is not canonical",
			wantKind, len(data), len(again))
	}
	return got
}

func TestFrameRoundTripWorkload(t *testing.T) {
	cases := []struct {
		scene     string
		w, h, spp int
	}{
		{"SPRNG", 16, 16, 1},
		{"PARK", 8, 12, 2},
		{"SPRNG", 32, 8, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s_%dx%d_spp%d", tc.scene, tc.w, tc.h, tc.spp), func(t *testing.T) {
			s, err := scene.ByName(tc.scene)
			if err != nil {
				t.Fatalf("scene: %v", err)
			}
			w, err := rt.BuildWorkload(s, tc.w, tc.h, tc.spp)
			if err != nil {
				t.Fatalf("BuildWorkload: %v", err)
			}
			got := frameRoundTrip(t, w, "rt.workload/v1").(*rt.Workload)
			if got.Width != w.Width || got.Height != w.Height || got.SPP != w.SPP {
				t.Fatalf("shape mismatch after round trip: %dx%d spp=%d", got.Width, got.Height, got.SPP)
			}
			if got.Scene.Name != w.Scene.Name {
				t.Fatalf("scene mismatch: %q vs %q", got.Scene.Name, w.Scene.Name)
			}
			if !reflect.DeepEqual(w.Cost, got.Cost) {
				t.Fatal("cost map changed in round trip")
			}
		})
	}
}

func TestFrameRoundTripQuantized(t *testing.T) {
	cases := []struct {
		w, h   int
		levels []float64
	}{
		{4, 3, []float64{0.5, 1.25, 7.75}},
		{1, 1, []float64{42}},
		{16, 2, []float64{0, 0.001, 0.002, 1e9}},
	}
	for ci, tc := range cases {
		t.Run(fmt.Sprintf("case%d_%dx%d", ci, tc.w, tc.h), func(t *testing.T) {
			q := &heatmap.Quantized{
				Width:  tc.w,
				Height: tc.h,
				Levels: tc.levels,
				Index:  make([]int, tc.w*tc.h),
			}
			for i := range q.Index {
				q.Index[i] = (i*7 + ci) % len(q.Levels)
			}
			got := frameRoundTrip(t, q, "core.quant/v1").(*heatmap.Quantized)
			if !reflect.DeepEqual(q, got) {
				t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", q, got)
			}
		})
	}
}

func TestFrameRoundTripPredictResult(t *testing.T) {
	iv := combine.GroupIntervals{
		metrics.IPC: {Mean: 1.5, Low: 1.2, High: 1.8, Replicates: 9},
	}
	r := &core.Result{
		Predicted: combine.GroupValues{
			metrics.IPC:           1.5,
			metrics.BWUtilization: 0.62,
		},
		Intervals: iv,
		Groups: []core.GroupRun{
			{
				Report:     metrics.Report{Cycles: 9000, Instructions: 12600, WallTime: 80 * time.Millisecond},
				Fraction:   0.25,
				Pixels:     144,
				Selected:   36,
				WallTime:   90 * time.Millisecond,
				Attempts:   1,
				Intervals:  iv,
				Replicates: 9,
				Rounds:     2,
				TargetMet:  true,
			},
			{
				Fraction: 0.5,
				Pixels:   144,
				Attempts: 3,
				Err:      errors.New("runner: injected failure"),
			},
		},
		K: 4,
		Quantized: &heatmap.Quantized{
			Width: 2, Height: 2,
			Levels: []float64{1, 2},
			Index:  []int{0, 1, 1, 0},
		},
		PreprocessTime: 12 * time.Millisecond,
		SimWallTime:    200 * time.Millisecond,
		TotalCPUTime:   800 * time.Millisecond,
	}
	got := frameRoundTrip(t, r, "core.predict/v1").(*core.Result)
	if !reflect.DeepEqual(r.Predicted, got.Predicted) {
		t.Fatalf("Predicted mismatch: %+v vs %+v", r.Predicted, got.Predicted)
	}
	if !reflect.DeepEqual(r.Intervals, got.Intervals) {
		t.Fatalf("Intervals mismatch: %+v vs %+v", r.Intervals, got.Intervals)
	}
	if !reflect.DeepEqual(r.Quantized, got.Quantized) {
		t.Fatal("Quantized mismatch")
	}
	if got.K != r.K || len(got.Groups) != len(r.Groups) {
		t.Fatalf("structure mismatch: K=%d groups=%d", got.K, len(got.Groups))
	}
	if got.Groups[1].Err == nil || got.Groups[1].Err.Error() != r.Groups[1].Err.Error() {
		t.Fatalf("group error lost: %v", got.Groups[1].Err)
	}
}

// TestFrameRejectsCorruptionPerKind: for every artifact kind, a corrupted
// frame from a peer must fail DecodeFramed — no kind has a decode path
// that tolerates tampering.
func TestFrameRejectsCorruptionPerKind(t *testing.T) {
	s, err := scene.ByName("SPRNG")
	if err != nil {
		t.Fatal(err)
	}
	w, err := rt.BuildWorkload(s, 8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	values := map[string]any{
		"rt.workload/v1": w,
		"core.quant/v1": &heatmap.Quantized{
			Width: 2, Height: 1, Levels: []float64{1, 2}, Index: []int{0, 1},
		},
		"core.predict/v1": &core.Result{
			Predicted: combine.GroupValues{metrics.IPC: 1},
			K:         2,
		},
	}
	for kind, v := range values {
		t.Run(kind, func(t *testing.T) {
			data, _, err := store.EncodeFramed(v)
			if err != nil {
				t.Fatalf("EncodeFramed: %v", err)
			}
			mutations := map[string][]byte{
				"payload bit flip": func() []byte {
					b := append([]byte(nil), data...)
					b[len(b)-1] ^= 0x01
					return b
				}(),
				"checksum bit flip": func() []byte {
					b := append([]byte(nil), data...)
					b[8+len(kind)+8] ^= 0x01 // inside the SHA-256 field
					return b
				}(),
				"truncation": data[:len(data)-2],
				"bad magic": func() []byte {
					b := append([]byte(nil), data...)
					b[0] = 'Q'
					return b
				}(),
			}
			for name, bad := range mutations {
				if _, _, _, err := store.DecodeFramed(bad); err == nil {
					t.Errorf("%s: DecodeFramed accepted a frame with %s", kind, name)
				}
			}
		})
	}
}
