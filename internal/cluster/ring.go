package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"zatel/internal/store"
)

// DefaultVNodes is the virtual-node count per peer. 64 vnodes keep the
// worst-case ownership imbalance of a small fleet within a few percent
// while the ring stays tiny (N×64 tokens, binary-searched per lookup).
const DefaultVNodes = 64

// Ring is a consistent-hash ring over a static peer list. Placement is
// fully deterministic: each peer contributes VNodes tokens at
// SHA-256("<peer>#<i>"), artifact digests map to the first token at or
// after their own leading 8 bytes, and neither the order the peers were
// listed in nor the node doing the asking changes any answer. Adding or
// removing a peer moves only the keys that peer's token arcs cover —
// every other key keeps its owner, which is what keeps a rolling restart
// from stampeding the fleet with rebuilds.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	nodes  []string
	tokens []ringToken // sorted by point, node as tiebreak
}

type ringToken struct {
	point uint64
	node  string
}

// NewRing builds the ring over the peer base URLs (duplicates collapse;
// order is irrelevant). vnodes <= 0 selects DefaultVNodes.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(peers))
	var nodes []string
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer in list %q", peers)
		}
		if !seen[p] {
			seen[p] = true
			nodes = append(nodes, p)
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes, tokens: make([]ringToken, 0, len(nodes)*vnodes)}
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", n, i)))
			r.tokens = append(r.tokens, ringToken{point: binary.BigEndian.Uint64(sum[:8]), node: n})
		}
	}
	sort.Slice(r.tokens, func(i, j int) bool {
		if r.tokens[i].point != r.tokens[j].point {
			return r.tokens[i].point < r.tokens[j].point
		}
		return r.tokens[i].node < r.tokens[j].node
	})
	return r, nil
}

// Nodes returns the deduplicated, sorted peer list.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the peer owning the artifact digest: the digest's leading
// 8 bytes locate a point on the ring, and the first token clockwise from
// it names the owner.
func (r *Ring) Owner(d store.Digest) string {
	return r.ownerOf(binary.BigEndian.Uint64(d[:8]))
}

func (r *Ring) ownerOf(point uint64) string {
	i := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i].point >= point })
	if i == len(r.tokens) {
		i = 0 // wrap past the highest token
	}
	return r.tokens[i].node
}
