package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zatel/internal/store"
)

// testArtifact is the artifact family these tests move between fake peers.
type testArtifact struct {
	Payload string `json:"payload"`
}

func (a *testArtifact) SizeBytes() int64 { return int64(len(a.Payload)) }

type testCodec struct{}

func (testCodec) Kind() string { return "cluster.test/v1" }
func (testCodec) Encodes(v any) bool {
	_, ok := v.(*testArtifact)
	return ok
}
func (testCodec) Encode(v any) ([]byte, error) { return json.Marshal(v) }
func (testCodec) Decode(data []byte) (any, int64, error) {
	var a testArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, 0, err
	}
	return &a, a.SizeBytes(), nil
}

// The codec registry is process-wide and panics on duplicates, so every
// test file shares one registration.
var registerTestCodec sync.Once

func testCodecInit() {
	registerTestCodec.Do(func() { store.RegisterCodec(testCodec{}) })
}

func digestOf(s string) store.Digest {
	return store.Digest(sha256.Sum256([]byte(s)))
}

// keyOwnedBy searches deterministic digests until one lands on the wanted
// owner; the ring's balance makes this terminate almost immediately.
func keyOwnedBy(t *testing.T, r *Ring, owner, salt string) store.Digest {
	t.Helper()
	for i := 0; i < 10000; i++ {
		d := digestOf(salt + string(rune('0'+i%10)) + string(rune('a'+i/10%26)) + string(rune('A'+i/260)))
		if r.Owner(d) == owner {
			return d
		}
	}
	t.Fatalf("no digest owned by %q found", owner)
	return store.Digest{}
}

// twoNodeCluster builds a Cluster whose self is NOT srvURL, so srvURL owns
// some keys and fetches go over real HTTP to the httptest server.
func twoNodeCluster(t *testing.T, srvURL string, probe ProbeConfig) *Cluster {
	t.Helper()
	self := "http://self.invalid:1"
	probe.Interval = -1 // tests drive probing explicitly
	c, err := New(Config{
		Self:         self,
		Peers:        []string{self, srvURL},
		FetchTimeout: 2 * time.Second,
		Probe:        probe,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterFetchFromOwner(t *testing.T) {
	testCodecInit()
	want := &testArtifact{Payload: "built on the owner"}
	framed, kind, err := store.EncodeFramed(want)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "cluster.test/v1" {
		t.Fatalf("kind = %q", kind)
	}
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write(framed)
	}))
	defer srv.Close()

	c := twoNodeCluster(t, srv.URL, ProbeConfig{})
	key := keyOwnedBy(t, c.ring, srv.URL, "fetch")
	v, size, ok := c.Fetch(context.Background(), key)
	if !ok {
		t.Fatal("Fetch returned ok=false for a healthy owner serving a valid frame")
	}
	got, isArt := v.(*testArtifact)
	if !isArt || got.Payload != want.Payload {
		t.Fatalf("Fetch decoded %#v, want %#v", v, want)
	}
	if size != want.SizeBytes() {
		t.Errorf("size = %d, want %d", size, want.SizeBytes())
	}
	if served.Load() != 1 {
		t.Errorf("owner served %d requests, want 1", served.Load())
	}
	pc := c.Counters()
	if pc.Fetches != 1 || pc.Hits != 1 || pc.Misses+pc.Errors+pc.Rejects+pc.Skipped != 0 {
		t.Errorf("counters = %+v, want exactly one hit", pc)
	}
}

func TestClusterFetchSelfOwnedMakesNoCalls(t *testing.T) {
	testCodecInit()
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
	}))
	defer srv.Close()
	self := "http://self.invalid:1"
	c, err := New(Config{
		Self:  self,
		Peers: []string{self, srv.URL},
		Probe: ProbeConfig{Interval: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := keyOwnedBy(t, c.ring, self, "selfowned")
	if _, _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("Fetch of a self-owned key returned ok=true")
	}
	if served.Load() != 0 {
		t.Fatalf("self-owned fetch made %d HTTP calls, want 0", served.Load())
	}
	pc := c.Counters()
	if pc.Fetches != 0 {
		t.Errorf("Fetches = %d, want 0 (self-owned keys are not peer fetches)", pc.Fetches)
	}
}

func TestClusterFetchMiss404(t *testing.T) {
	testCodecInit()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "not found", http.StatusNotFound)
	}))
	defer srv.Close()
	c := twoNodeCluster(t, srv.URL, ProbeConfig{})
	key := keyOwnedBy(t, c.ring, srv.URL, "miss")
	if _, _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("Fetch returned ok=true for a 404")
	}
	pc := c.Counters()
	if pc.Misses != 1 || pc.Errors != 0 {
		t.Errorf("counters = %+v, want one clean miss", pc)
	}
	if !c.Healthy(srv.URL) {
		t.Error("a 404 marked the peer unhealthy; a miss is not a failure")
	}
}

// TestClusterFetchRejectsCorruptFrames: a peer answering with tampered
// bytes is never promoted — every corruption is detected, counted as a
// reject, and the peer stays routable (the transport worked).
func TestClusterFetchRejectsCorruptFrames(t *testing.T) {
	testCodecInit()
	good, _, err := store.EncodeFramed(&testArtifact{Payload: "pristine artifact bytes"})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"flipped payload byte", corrupt(func(b []byte) { b[len(b)-3] ^= 0x40 })},
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' })},
		{"truncated", good[:len(good)-5]},
		{"empty", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Write(tc.body)
			}))
			defer srv.Close()
			c := twoNodeCluster(t, srv.URL, ProbeConfig{})
			key := keyOwnedBy(t, c.ring, srv.URL, "corrupt")
			v, _, ok := c.Fetch(context.Background(), key)
			if ok || v != nil {
				t.Fatalf("corrupted frame accepted: ok=%v v=%#v", ok, v)
			}
			pc := c.Counters()
			if pc.Rejects != 1 {
				t.Errorf("Rejects = %d, want 1 (counters: %+v)", pc.Rejects, pc)
			}
			if !c.Healthy(srv.URL) {
				t.Error("corrupt payload marked peer unhealthy; transport was fine")
			}
		})
	}
}

func TestClusterFetchOwnerDownDegrades(t *testing.T) {
	testCodecInit()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // immediately: every connection refuses
	c := twoNodeCluster(t, srv.URL, ProbeConfig{})
	key := keyOwnedBy(t, c.ring, srv.URL, "down")

	if _, _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("Fetch to a dead owner returned ok=true")
	}
	pc := c.Counters()
	if pc.Errors != 1 {
		t.Fatalf("Errors = %d, want 1 (counters: %+v)", pc.Errors, pc)
	}
	if c.Healthy(srv.URL) {
		t.Fatal("dead owner still marked healthy after a transport failure")
	}
	// The next fetch must not even dial: the owner is unhealthy, so the
	// fetch is skipped and the caller goes straight to a local build.
	if _, _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("second Fetch returned ok=true")
	}
	pc = c.Counters()
	if pc.Skipped != 1 || pc.Errors != 1 {
		t.Errorf("counters after skip = %+v, want Skipped=1 and no new error", pc)
	}
}

// TestProberRecovery scripts a failure and recovery through an injected
// ProbeFunc: MarkFailure downs the peer, CheckNow with a healthy probe
// restores it.
func TestProberRecovery(t *testing.T) {
	var healthy atomic.Bool
	probe := func(ctx context.Context, baseURL string) error {
		if healthy.Load() {
			return nil
		}
		return errors.New("still down")
	}
	p := newProber([]string{"http://a", "http://b"}, ProbeConfig{
		Interval: -1,
		Probe:    probe,
		Seed:     42,
	})
	defer p.Close()

	if !p.Healthy("http://a") || p.HealthyCount() != 2 {
		t.Fatal("peers must start healthy")
	}
	p.MarkFailure("http://a")
	if p.Healthy("http://a") || p.HealthyCount() != 1 {
		t.Fatal("MarkFailure did not down the peer")
	}
	p.CheckNow(true) // probe fails: stays down
	if p.Healthy("http://a") {
		t.Fatal("failed probe restored the peer")
	}
	healthy.Store(true)
	p.CheckNow(true)
	if !p.Healthy("http://a") || p.HealthyCount() != 2 {
		t.Fatal("successful probe did not restore the peer")
	}
}

// TestProberBackoffDeterministic: the re-probe schedule is a pure function
// of (Seed, peer, attempt) — two probers with one seed agree exactly.
func TestProberBackoffDeterministic(t *testing.T) {
	mk := func() *Prober {
		return newProber([]string{"http://a", "http://b"}, ProbeConfig{
			Interval: -1,
			Backoff:  100 * time.Millisecond,
			Seed:     7,
		})
	}
	p1, p2 := mk(), mk()
	defer p1.Close()
	defer p2.Close()
	for k := 1; k <= 6; k++ {
		d1, d2 := p1.backoffFor("http://b", k), p2.backoffFor("http://b", k)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff %v != %v for identical seeds", k, d1, d2)
		}
		if d1 < 100*time.Millisecond {
			t.Errorf("attempt %d: backoff %v below base", k, d1)
		}
		if max := 8 * 100 * time.Millisecond * 3 / 2; d1 > max {
			t.Errorf("attempt %d: backoff %v above cap+jitter %v", k, d1, max)
		}
	}
	// Different seeds must diverge somewhere (jitter is really seeded).
	p3 := newProber([]string{"http://a", "http://b"}, ProbeConfig{
		Interval: -1, Backoff: 100 * time.Millisecond, Seed: 8,
	})
	defer p3.Close()
	same := true
	for k := 1; k <= 6; k++ {
		if p1.backoffFor("http://b", k) != p3.backoffFor("http://b", k) {
			same = false
		}
	}
	if same {
		t.Error("backoff schedule identical across different seeds; jitter is not seeded")
	}
}

func TestProxyPredict(t *testing.T) {
	testCodecInit()
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardedHeader) == "" {
			t.Error("forwarded request missing " + ForwardedHeader)
		}
		if r.URL.Path != "/v1/predict" {
			t.Errorf("forwarded path = %q", r.URL.Path)
		}
		w.Header().Set("X-Zatel-Cache", "miss")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer owner.Close()
	c := twoNodeCluster(t, owner.URL, ProbeConfig{})
	resp, err := c.ProxyPredict(context.Background(), owner.URL, "", http.Header{}, []byte(`{}`))
	if err != nil {
		t.Fatalf("ProxyPredict: %v", err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Zatel-Cache") != "miss" {
		t.Error("owner response headers not relayed")
	}
	pc := c.Counters()
	if pc.Proxied != 1 || pc.ProxyErrors != 0 {
		t.Errorf("counters = %+v, want one clean proxy", pc)
	}
}

func TestProxyPredict5xxMarksOwnerDown(t *testing.T) {
	testCodecInit()
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer owner.Close()
	c := twoNodeCluster(t, owner.URL, ProbeConfig{})
	if _, err := c.ProxyPredict(context.Background(), owner.URL, "", http.Header{}, nil); err == nil {
		t.Fatal("ProxyPredict swallowed a 500")
	}
	if c.Healthy(owner.URL) {
		t.Error("owner stayed healthy after a 500")
	}
	if pc := c.Counters(); pc.ProxyErrors != 1 {
		t.Errorf("ProxyErrors = %d, want 1", pc.ProxyErrors)
	}
}
