package cluster

import (
	"context"
	"log/slog"
	"sort"
	"sync"
	"time"

	"zatel/internal/vecmath"
)

// ProbeFunc checks one peer's liveness; nil error means healthy. The
// default implementation GETs the peer's /healthz. Tests inject their own
// to script recoveries deterministically.
type ProbeFunc func(ctx context.Context, baseURL string) error

// ProbeConfig tunes the health prober. Zero values select sane defaults.
type ProbeConfig struct {
	// Interval is how often the prober wakes to re-check unhealthy peers
	// (0 = 2s). Negative disables the background goroutine entirely; tests
	// then drive probing with CheckNow.
	Interval time.Duration
	// Backoff is the delay before the first re-probe of a freshly failed
	// peer (0 = Interval); each further failure doubles it up to MaxBackoff
	// (0 = 8×Backoff), plus up to 50% seeded jitter so a fleet that lost
	// one node does not re-probe it in lockstep.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed roots the jitter stream; the delay before attempt k on peer i is
	// a pure function of (Seed, i, k), mirroring internal/faults — two runs
	// with one seed schedule identical probes.
	Seed uint64
	// Timeout bounds each probe call (0 = 1s).
	Timeout time.Duration
	// Probe overrides the liveness check (nil = HTTP GET /healthz).
	Probe ProbeFunc
}

func (c *ProbeConfig) fillDefaults() {
	if c.Interval == 0 {
		c.Interval = 2 * time.Second
	}
	if c.Backoff <= 0 {
		c.Backoff = c.Interval
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.Backoff
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
}

// peerHealth is one peer's probe state. failures counts consecutive
// failures since the last success; nextProbe gates re-checks so a dead
// peer costs one bounded probe per backoff window, not one per request.
type peerHealth struct {
	healthy   bool
	failures  int
	nextProbe time.Time
}

// Prober tracks per-peer health for the cluster: fetch and proxy failures
// mark a peer unhealthy, a background loop re-probes unhealthy peers on a
// seeded exponential-backoff schedule, and a probe success restores them.
// Peers start healthy — the first request discovers a dead peer and
// degrades, it does not wait for a probe.
type Prober struct {
	cfg   ProbeConfig
	peers []string // sorted; index keys the jitter stream

	mu    sync.Mutex
	state map[string]*peerHealth

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// newProber starts a prober over the peer list (self excluded by the
// caller; a node does not probe itself).
func newProber(peers []string, cfg ProbeConfig) *Prober {
	cfg.fillDefaults()
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	p := &Prober{
		cfg:   cfg,
		peers: sorted,
		state: make(map[string]*peerHealth, len(sorted)),
		stop:  make(chan struct{}),
	}
	for _, peer := range sorted {
		p.state[peer] = &peerHealth{healthy: true}
	}
	if cfg.Interval > 0 && cfg.Probe != nil {
		p.wg.Add(1)
		go p.run()
	}
	return p
}

// Healthy reports whether the peer is currently considered reachable.
// Unknown peers (including self) read as healthy.
func (p *Prober) Healthy(peer string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[peer]
	return !ok || st.healthy
}

// HealthyCount returns how many tracked peers are currently healthy.
func (p *Prober) HealthyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, st := range p.state {
		if st.healthy {
			n++
		}
	}
	return n
}

// MarkFailure records a failed interaction with peer (fetch, proxy or
// probe): the peer turns unhealthy and its next probe is scheduled one
// backoff step out.
func (p *Prober) MarkFailure(peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[peer]
	if !ok {
		return
	}
	if st.healthy {
		slog.Warn("cluster: peer marked unhealthy", "peer", peer)
	}
	st.healthy = false
	st.failures++
	st.nextProbe = time.Now().Add(p.backoffFor(peer, st.failures))
}

// MarkHealthy records a successful interaction with peer, restoring it.
func (p *Prober) MarkHealthy(peer string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[peer]
	if !ok {
		return
	}
	if !st.healthy {
		slog.Info("cluster: peer recovered", "peer", peer)
	}
	st.healthy = true
	st.failures = 0
}

// backoffFor returns the deterministic re-probe delay before attempt k on
// peer: exponential from Backoff capped at MaxBackoff, plus up to 50%
// jitter drawn from the stream keyed (Seed, peer index, k). p.mu held.
func (p *Prober) backoffFor(peer string, k int) time.Duration {
	idx := sort.SearchStrings(p.peers, peer)
	d := p.cfg.Backoff
	for i := 1; i < k && d < p.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.cfg.MaxBackoff {
		d = p.cfg.MaxBackoff
	}
	rng := vecmath.NewRNG(p.cfg.Seed).Split(uint64(idx)).Split(uint64(k))
	return d + time.Duration(rng.Float64()*0.5*float64(d))
}

// CheckNow synchronously probes every unhealthy peer whose backoff window
// has elapsed (ignoring the window when force is set). Tests drive
// recovery through here; the background loop calls it each tick.
func (p *Prober) CheckNow(force bool) {
	if p.cfg.Probe == nil {
		return
	}
	now := time.Now()
	var due []string
	p.mu.Lock()
	for peer, st := range p.state {
		if !st.healthy && (force || !now.Before(st.nextProbe)) {
			due = append(due, peer)
		}
	}
	p.mu.Unlock()
	sort.Strings(due)
	for _, peer := range due {
		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
		err := p.cfg.Probe(ctx, peer)
		cancel()
		if err != nil {
			p.MarkFailure(peer)
		} else {
			p.MarkHealthy(peer)
		}
	}
}

func (p *Prober) run() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.CheckNow(false)
		}
	}
}

// Close stops the background probe loop.
func (p *Prober) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}
