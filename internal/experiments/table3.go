package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
	"zatel/internal/sampling"
)

// Table III of the paper tunes two Zatel parameters — the colour
// distribution (uniform / lintmp / exptmp) and the section-block size
// (32×1, 32×2, 32×16, 32×32) — on the three temperature-profile scenes
// SHIP (coldest), WKND (mixed) and BUNNY (warmest), tracing only 2–4% of
// pixels and averaging five random selections.

// Table3Scenes are the tuning scenes in paper order.
func Table3Scenes() []string { return []string{"SHIP", "WKND", "BUNNY"} }

// Table3Dists are the candidate distributions.
func Table3Dists() []sampling.Distribution {
	return []sampling.Distribution{sampling.Uniform, sampling.LinTmp, sampling.ExpTmp}
}

// Table3Sections are the candidate section-block heights (width fixed at
// the warp size, 32).
func Table3Sections() []int { return []int{1, 2, 16, 32} }

// Table3Cell is one (distribution, section) configuration's average error
// for one metric on one scene.
type Table3Cell struct {
	Dist    sampling.Distribution
	Section int // block height; width is always 32
	Err     float64
	// Failed marks a cell whose grid point errored after retries; Err is
	// meaningless and pickBest skips the cell.
	Failed bool
}

// Table3Best summarises one metric row of the table for one scene.
type Table3Best struct {
	// BestDist / BestSection name the winner, or "any" when the options
	// are within 10% relative error of each other.
	BestDist    string
	BestSection string
	// MAE is the winning configuration's error (NaN when every candidate
	// cell failed, rendered as ERR).
	MAE float64
}

// Table3Result holds the full grid plus the per-metric winners.
type Table3Result struct {
	Settings Settings
	Config   string
	// Cells[scene][metric] lists every configuration tried.
	Cells map[string]map[metrics.Metric][]Table3Cell
	// Best[scene][metric] is the winning configuration.
	Best map[string]map[metrics.Metric]Table3Best
	// SceneMAE averages the best-cell errors per scene (the paper reports
	// 21.0% SHIP, 13.9% WKND, 8.5% BUNNY).
	SceneMAE map[string]float64
	// Pool is the tuning grid's worker-pool accounting.
	Pool PoolStats
	// Faults tallies failed and degraded grid points for the legend.
	Faults FaultTally
}

// Table3 runs the tuning grid: 3 scenes × 3 distributions × 4 section
// sizes × reps random selections at 3% of pixels.
func Table3(s Settings, cfg config.Config, reps int) (*Table3Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if reps <= 0 {
		reps = 5
	}
	out := &Table3Result{
		Settings: s,
		Config:   cfg.Name,
		Cells:    map[string]map[metrics.Metric][]Table3Cell{},
		Best:     map[string]map[metrics.Metric]Table3Best{},
		SceneMAE: map[string]float64{},
	}
	// Warm the per-scene references serially, then fan the full
	// (scene × distribution × section) grid out on the worker pool with
	// the reps loop inside each job.
	scenes, dists, sections := Table3Scenes(), Table3Dists(), Table3Sections()
	refs := make(map[string]metrics.Report, len(scenes))
	for _, sc := range scenes {
		ref, err := s.reference(cfg, sc)
		if err != nil {
			return nil, err
		}
		refs[sc] = ref
	}

	nd, ns := len(dists), len(sections)
	type cellAvg struct {
		avg      map[metrics.Metric]float64
		degraded int
		err      error
	}
	rs, pool, _ := gridMap(s, len(scenes)*nd*ns, func(ctx context.Context, i int) (cellAvg, error) {
		sc := scenes[i/(nd*ns)]
		dist := dists[(i/ns)%nd]
		section := sections[i%ns]
		sums := map[metrics.Metric]float64{}
		degraded := 0
		for rep := 0; rep < reps; rep++ {
			opts := s.baseOptions(cfg, sc)
			opts.NoDownscale = true
			opts.Division = core.CoarseGrained
			opts.BlockW, opts.BlockH = 32, section
			opts.Dist = dist
			// Table 3 sweeps its own distributions; drop any replicated-only
			// CI knobs inherited from Settings so validation passes for the
			// point-estimate strategies it compares.
			opts.Sampling = core.SamplingOptions{}
			opts.TargetCIHalfWidth = 0
			opts.FixedFraction = 0.03
			opts.Seed = uint64(rep)*977 + 13
			// One stratum per (cell, rep): each repetition is its own
			// prediction and must fail independently.
			opts.FT.Inject = opts.FT.Inject.SplitSeed(uint64(i*reps + rep))
			res, err := core.PredictContext(ctx, opts)
			if err != nil {
				return cellAvg{err: fmt.Errorf("table3 %s/%s/32x%d: %w", sc, dist, section, err)}, nil
			}
			if res.Degraded != nil {
				degraded++
			}
			for m, e := range res.Errors(refs[sc]) {
				sums[m] += e
			}
		}
		for m := range sums {
			sums[m] /= float64(reps)
		}
		return cellAvg{avg: sums, degraded: degraded}, nil
	})
	out.Pool = pool

	for si, sc := range scenes {
		out.Cells[sc] = map[metrics.Metric][]Table3Cell{}
		for di, dist := range dists {
			for seci, section := range sections {
				r := rs[si*nd*ns+di*ns+seci]
				point := r.Value
				if r.Err != nil && point.err == nil {
					point.err = r.Err
				}
				failed := out.Faults.noteErr(point.err)
				out.Faults.noteDegraded(point.degraded)
				for _, m := range metrics.All() {
					out.Cells[sc][m] = append(out.Cells[sc][m], Table3Cell{
						Dist:    dist,
						Section: section,
						Err:     point.avg[m],
						Failed:  failed,
					})
				}
			}
		}
		// Pick winners per metric.
		out.Best[sc] = map[metrics.Metric]Table3Best{}
		var maeSum float64
		finite := 0
		for _, m := range metrics.All() {
			best := pickBest(out.Cells[sc][m])
			out.Best[sc][m] = best
			if !math.IsNaN(best.MAE) {
				maeSum += best.MAE
				finite++
			}
		}
		if finite > 0 {
			out.SceneMAE[sc] = maeSum / float64(finite)
		} else {
			out.SceneMAE[sc] = math.NaN()
		}
	}
	return out, nil
}

// pickBest finds the lowest-error cell among the surviving candidates and
// decides whether the distribution or section choice actually matters
// ("any" when all options land within 10% relative of the winner). Failed
// cells are excluded; with no survivors the row renders as ERR (NaN MAE).
func pickBest(cells []Table3Cell) Table3Best {
	best := Table3Cell{Failed: true}
	for _, c := range cells {
		if c.Failed {
			continue
		}
		if best.Failed || c.Err < best.Err {
			best = c
		}
	}
	if best.Failed {
		return Table3Best{BestDist: "ERR", BestSection: "ERR", MAE: math.NaN()}
	}
	tol := best.Err*1.10 + 1e-9
	distMatters, sectionMatters := false, false
	// The distribution matters if some other distribution (at the best
	// section size) exceeds the tolerance; likewise for sections. Failed
	// cells abstain from the comparison.
	for _, c := range cells {
		if c.Failed {
			continue
		}
		if c.Section == best.Section && c.Err > tol {
			distMatters = true
		}
		if c.Dist == best.Dist && c.Err > tol {
			sectionMatters = true
		}
	}
	out := Table3Best{BestDist: "any", BestSection: "any", MAE: best.Err}
	if distMatters {
		out.BestDist = best.Dist.String()
	}
	if sectionMatters {
		out.BestSection = fmt.Sprintf("32x%d", best.Section)
	}
	return out
}

// Render prints the paper-style table: per scene, per metric, the best
// distribution and section size with the resulting MAE.
func (r *Table3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table III — tuning distribution and section size (%s, %dx%d, ~3%% pixels)\n",
		r.Config, r.Settings.Width, r.Settings.Height)
	for _, sc := range Table3Scenes() {
		sceneMAE := "ERR"
		if !math.IsNaN(r.SceneMAE[sc]) {
			sceneMAE = pct(r.SceneMAE[sc])
		}
		fmt.Fprintf(w, "\n%s (scene MAE %s):\n", sc, sceneMAE)
		hr(w, 70)
		fmt.Fprintf(w, "%-22s%12s%14s%10s\n", "Metric", "Best Dist", "Best Section", "MAE")
		for _, m := range metrics.All() {
			b := r.Best[sc][m]
			mae := "ERR"
			if !math.IsNaN(b.MAE) {
				mae = pct(b.MAE)
			}
			fmt.Fprintf(w, "%-22s%12s%14s%10s\n", m, b.BestDist, b.BestSection, mae)
		}
	}
	fmt.Fprintln(w)
	r.Pool.Render(w)
	r.Faults.Render(w)
	fmt.Fprintln(w, "(paper: scene MAEs 21.0% SHIP / 13.9% WKND / 8.5% BUNNY — warmer scenes predict better;")
	fmt.Fprintln(w, " most cells are \"any\"; uniform wins where it matters; exptmp favours RT metrics)")
}
