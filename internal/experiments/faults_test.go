package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/faults"
)

// soaked returns Small() settings with total fault injection: every
// prediction fails, so every grid cell must render as ERR instead of
// aborting the experiment.
func soaked() Settings {
	s := Small()
	s.FT.Inject = faults.Config{ErrorRate: 1, Seed: 1}
	return s
}

func TestPercentSweepRendersFailedCells(t *testing.T) {
	r, err := PercentSweep(soaked(), config.MobileSoC(), []string{"PARK"})
	if err != nil {
		t.Fatalf("total injection aborted the sweep: %v", err)
	}
	pts := r.Points["PARK"]
	if len(pts) != len(r.Percents) {
		t.Fatalf("%d points for %d percents", len(pts), len(r.Percents))
	}
	for _, pt := range pts {
		if pt.Err == nil {
			t.Errorf("point %s@%d%% survived rate-1 injection", pt.Scene, pt.Percent)
		}
	}
	if r.Faults.Failed != len(pts) {
		t.Errorf("tally counted %d failures, want %d", r.Faults.Failed, len(pts))
	}
	if r.FitErr == "" {
		t.Error("power fit claimed success with zero surviving points")
	}
	var buf bytes.Buffer
	r.RenderFig13(&buf)
	r.RenderFig16(&buf)
	out := buf.String()
	if !strings.Contains(out, "ERR") {
		t.Error("render has no ERR cells")
	}
	if !strings.Contains(out, "failed after retries") {
		t.Error("render has no failure legend")
	}
}

func TestFig10RendersFailedConfigs(t *testing.T) {
	r, err := Fig10(soaked())
	if err != nil {
		t.Fatalf("total injection aborted fig10: %v", err)
	}
	if len(r.Failed) != 2 || r.CappedErr == "" {
		t.Errorf("failures: %v, capped %q — want both configs and the capped variant", r.Failed, r.CappedErr)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "ERR") {
		t.Error("render has no ERR cells")
	}
}

func TestFig20RendersFailedScenes(t *testing.T) {
	r, err := Fig20(soaked(), config.MobileSoC(), []string{"PARK"})
	if err != nil {
		t.Fatalf("total injection aborted fig20: %v", err)
	}
	if len(r.Failed) != 1 || r.Total != 0 {
		t.Errorf("Failed=%v Total=%d, want the one scene failed and no pairs counted", r.Failed, r.Total)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "ERR") {
		t.Error("render has no ERR block")
	}
}

func TestSweepRecoversWithRetries(t *testing.T) {
	// Injection at 30% with generous retries: the grid should come out
	// clean or at worst partially degraded, never aborted.
	s := Small()
	s.FT = core.FaultTolerance{
		Attempts: 6,
		Inject:   faults.Config{ErrorRate: 0.3, Seed: 7},
	}
	r, err := PercentSweep(s, config.MobileSoC(), []string{"PARK"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range r.Points["PARK"] {
		if pt.Err != nil {
			t.Errorf("point @%d%% failed despite 6 attempts: %v", pt.Percent, pt.Err)
		}
	}
	if r.FitErr != "" {
		t.Errorf("power fit unavailable: %s", r.FitErr)
	}
}

func TestCancelledGridRendersPartially(t *testing.T) {
	// A pre-cancelled context must not abort the driver: every cell
	// carries the context error and still renders.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Small()
	s.Ctx = ctx
	r, err := PercentSweep(s, config.MobileSoC(), []string{"PARK"})
	if err != nil {
		t.Fatalf("cancelled sweep aborted: %v", err)
	}
	for _, pt := range r.Points["PARK"] {
		if pt.Err == nil {
			t.Error("cancelled point reported success")
		}
	}
	var buf bytes.Buffer
	r.RenderFig13(&buf)
	if !strings.Contains(buf.String(), "ERR") {
		t.Error("cancelled grid render has no ERR cells")
	}
}
