package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
)

// The drivers are exercised at Small() settings: the point is that every
// experiment runs end to end, produces finite numbers and renders its
// table; the paper-scale numbers are produced by cmd/sweep and the
// benchmarks.

func TestSettingsValidate(t *testing.T) {
	if err := (Settings{}).validate(); err == nil {
		t.Error("zero settings accepted")
	}
	if err := Default().validate(); err != nil {
		t.Error(err)
	}
	if Default().Width != 256 || Default().SPP != 1 {
		t.Error("default settings changed")
	}
}

func TestFig10Small(t *testing.T) {
	res, err := Fig10(Small())
	if err != nil {
		t.Fatal(err)
	}
	if res.K["MobileSoC"] != 4 || res.K["RTX2060"] != 6 {
		t.Errorf("K = %v", res.K)
	}
	for name, errs := range res.Errors {
		for m, e := range errs {
			if math.IsNaN(e) || e < 0 {
				t.Errorf("%s %s error %v", name, m, e)
			}
		}
		if res.MAE[name] <= 0 {
			t.Errorf("%s MAE %v", name, res.MAE[name])
		}
		if res.Speedup[name] <= 0 {
			t.Errorf("%s speedup %v", name, res.Speedup[name])
		}
	}
	if res.CappedSpeedup <= res.Speedup["MobileSoC"] {
		t.Errorf("10%% cap speedup %.2f not above uncapped %.2f",
			res.CappedSpeedup, res.Speedup["MobileSoC"])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	for _, want := range []string{"Fig. 10", "MAE", "Speedup", "GPU Sim Cycles"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig11Small(t *testing.T) {
	res, err := Fig11(Small())
	if err != nil {
		t.Fatal(err)
	}
	// The RTX 2060 must be faster: fewer cycles, higher IPC — in both the
	// full simulation and the Zatel prediction.
	if res.FullSim[metrics.SimCycles] >= 1 {
		t.Errorf("full-sim normalized cycles %v, want <1", res.FullSim[metrics.SimCycles])
	}
	if res.Zatel[metrics.SimCycles] >= 1 {
		t.Errorf("zatel normalized cycles %v, want <1", res.Zatel[metrics.SimCycles])
	}
	if res.FullSim[metrics.IPC] <= 1 || res.Zatel[metrics.IPC] <= 1 {
		t.Errorf("normalized IPC not >1: full=%v zatel=%v",
			res.FullSim[metrics.IPC], res.Zatel[metrics.IPC])
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 11") {
		t.Error("render missing header")
	}
}

func TestPercentSweepSmall(t *testing.T) {
	res, err := PercentSweep(Small(), config.MobileSoC(), []string{"SPRNG", "BUNNY"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Percents) != 9 {
		t.Fatalf("percents = %v", res.Percents)
	}
	for _, sc := range res.Scenes {
		pts := res.Points[sc]
		if len(pts) != 9 {
			t.Fatalf("%s has %d points", sc, len(pts))
		}
		for _, pt := range pts {
			if pt.Speedup <= 0 {
				t.Errorf("%s@%d%% speedup %v", sc, pt.Percent, pt.Speedup)
			}
		}
		// Speedup must broadly decrease with more pixels traced.
		if pts[0].Speedup <= pts[8].Speedup {
			t.Errorf("%s: speedup at 10%% (%v) not above 90%% (%v)",
				sc, pts[0].Speedup, pts[8].Speedup)
		}
	}
	// The power fit must have a negative exponent (speedup falls with %).
	if res.FitB >= 0 {
		t.Errorf("power-fit exponent %v, want negative", res.FitB)
	}
	var buf bytes.Buffer
	res.RenderFig13(&buf)
	res.RenderFig14(&buf)
	res.RenderFig15(&buf)
	res.RenderFig16(&buf)
	for _, want := range []string{"Fig. 13", "Fig. 14", "Fig. 15", "Fig. 16", "power fit"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable3Small(t *testing.T) {
	res, err := Table3(Small(), config.MobileSoC(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range Table3Scenes() {
		if len(res.Cells[sc][metrics.SimCycles]) != 12 {
			t.Errorf("%s: %d cells, want 3 dists x 4 sections", sc,
				len(res.Cells[sc][metrics.SimCycles]))
		}
		for _, m := range metrics.All() {
			b := res.Best[sc][m]
			if b.MAE < 0 || math.IsNaN(b.MAE) {
				t.Errorf("%s %s best MAE %v", sc, m, b.MAE)
			}
			if b.BestDist == "" || b.BestSection == "" {
				t.Errorf("%s %s empty winner", sc, m)
			}
		}
		if res.SceneMAE[sc] <= 0 {
			t.Errorf("%s scene MAE %v", sc, res.SceneMAE[sc])
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table III") {
		t.Error("render missing header")
	}
}

func TestDownscaleSweepSmall(t *testing.T) {
	res, err := DownscaleSweep(Small(), config.MobileSoC(), []string{"BUNNY"})
	if err != nil {
		t.Fatal(err)
	}
	// MobileSoC (8 SMs / 4 partitions) admits K ∈ {2, 4}.
	if len(res.Factors) != 2 || res.Factors[0] != 2 || res.Factors[1] != 4 {
		t.Fatalf("factors = %v", res.Factors)
	}
	for _, div := range []core.Division{core.FineGrained, core.CoarseGrained} {
		pts := res.Points[div]["BUNNY"]
		if len(pts) != 2 {
			t.Fatalf("%s: %d points", div, len(pts))
		}
		for _, pt := range pts {
			if pt.Speedup <= 0 {
				t.Errorf("%s K=%d speedup %v", div, pt.K, pt.Speedup)
			}
		}
		// Bigger K simulates fewer pixels: must be faster.
		if pts[1].Speedup <= pts[0].Speedup {
			t.Errorf("%s: K=4 speedup %v not above K=2 %v",
				div, pts[1].Speedup, pts[0].Speedup)
		}
	}
	var buf bytes.Buffer
	res.RenderErrors(&buf, "Fig. 17")
	res.RenderSpeedup(&buf)
	for _, want := range []string{"Fig. 17", "Fig. 19", "fine-grained"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestValidFactors(t *testing.T) {
	soc := ValidFactors(config.MobileSoC())
	if len(soc) != 2 || soc[0] != 2 || soc[1] != 4 {
		t.Errorf("SoC factors = %v", soc)
	}
	rtx := ValidFactors(config.RTX2060())
	want := []int{2, 3, 6}
	if len(rtx) != 3 {
		t.Fatalf("RTX factors = %v", rtx)
	}
	for i, k := range want {
		if rtx[i] != k {
			t.Errorf("RTX factors = %v, want %v", rtx, want)
		}
	}
}

func TestFig20Small(t *testing.T) {
	res, err := Fig20(Small(), config.MobileSoC(), []string{"SPRNG", "SHIP"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 2*len(metrics.All()) {
		t.Errorf("total pairs %d", res.Total)
	}
	if res.WorseCount < 0 || res.WorseCount > res.Total {
		t.Errorf("worse count %d of %d", res.WorseCount, res.Total)
	}
	for _, sc := range res.Scenes {
		for _, m := range metrics.All() {
			if math.IsNaN(res.RegErr[sc][m]) || math.IsNaN(res.DirectErr[sc][m]) {
				t.Errorf("%s %s NaN error", sc, m)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 20") {
		t.Error("render missing header")
	}
}
