package experiments

import (
	"context"
	"fmt"
	"io"

	"zatel/internal/core"
	"zatel/internal/metrics"
)

// Fig11Result reproduces Fig. 11: every metric of the RTX 2060
// configuration normalized to the Mobile SoC baseline, once measured by the
// full simulator (the paper's orange bars) and once predicted by Zatel (the
// blue bars). Zatel's worth as a design-space tool rests on the two series
// matching.
type Fig11Result struct {
	Settings Settings
	// FullSim and Zatel map each metric to RTX2060 value / MobileSoC value.
	FullSim map[metrics.Metric]float64
	Zatel   map[metrics.Metric]float64
	// Diff is |Zatel−FullSim| per metric (the paper reports max 37.6% for
	// L2 miss rate and min 0.6% for L1D).
	Diff map[metrics.Metric]float64
	// Failed lists per-config failures ("name: cause"); the normalized
	// series need both configs, so any entry leaves the maps empty and the
	// table renders the failure note instead.
	Failed []string
	// Pool is the per-config job grid's worker-pool accounting.
	Pool PoolStats
	// Faults tallies failed and degraded predictions for the legend.
	Faults FaultTally
}

// Fig11 measures the normalized architecture comparison on PARK.
func Fig11(s Settings) (*Fig11Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	cfgs := Configs()

	// One job per configuration, each pairing the ground-truth reference
	// with the Zatel prediction. No wall-time column here, so the
	// references may share the pool with everything else.
	type pair struct {
		ref  metrics.Report
		pred *core.Result
		err  error
	}
	rs, pool, _ := gridMap(s, len(cfgs), func(ctx context.Context, i int) (pair, error) {
		ref, err := s.reference(cfgs[i], "PARK")
		if err != nil {
			return pair{err: fmt.Errorf("fig11 %s reference: %w", cfgs[i].Name, err)}, nil
		}
		opts := s.baseOptions(cfgs[i], "PARK")
		opts.FT.Inject = opts.FT.Inject.SplitSeed(uint64(i))
		pred, err := core.PredictContext(ctx, opts)
		if err != nil {
			return pair{err: fmt.Errorf("fig11 %s: %w", cfgs[i].Name, err)}, nil
		}
		return pair{ref: ref, pred: pred}, nil
	})

	out := &Fig11Result{
		Settings: s,
		FullSim:  map[metrics.Metric]float64{},
		Zatel:    map[metrics.Metric]float64{},
		Diff:     map[metrics.Metric]float64{},
	}
	out.Pool = pool
	for i := range rs {
		p := rs[i].Value
		if e := rs[i].Err; e != nil && p.err == nil {
			p.err = e
		}
		if out.Faults.noteErr(p.err) {
			out.Failed = append(out.Failed, fmt.Sprintf("%s: %v", cfgs[i].Name, p.err))
			continue
		}
		if p.pred.Degraded != nil {
			out.Faults.noteDegraded(len(p.pred.Degraded.FailedGroups))
		}
	}
	if len(out.Failed) > 0 {
		// Both configs are needed to normalize; render the failure instead.
		return out, nil
	}
	refSoC, refRTX := rs[0].Value.ref, rs[1].Value.ref
	predSoC, predRTX := rs[0].Value.pred, rs[1].Value.pred
	for _, m := range metrics.All() {
		out.FullSim[m] = safeDiv(refRTX.Value(m), refSoC.Value(m))
		out.Zatel[m] = safeDiv(predRTX.Predicted[m], predSoC.Predicted[m])
		d := out.Zatel[m] - out.FullSim[m]
		if d < 0 {
			d = -d
		}
		if out.FullSim[m] != 0 {
			d /= out.FullSim[m]
		}
		out.Diff[m] = d
	}
	return out, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Render prints the normalized series side by side.
func (r *Fig11Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 11 — RTX 2060 normalized to Mobile SoC on PARK (%dx%d, %d spp)\n",
		r.Settings.Width, r.Settings.Height, r.Settings.SPP)
	hr(w, 70)
	if len(r.Failed) > 0 {
		fmt.Fprintln(w, "normalized comparison unavailable — prediction(s) failed:")
		for _, f := range r.Failed {
			fmt.Fprintf(w, "  %s\n", f)
		}
		r.Pool.Render(w)
		r.Faults.Render(w)
		return
	}
	fmt.Fprintf(w, "%-22s%12s%12s%14s\n", "Metric", "FullSim", "Zatel", "|diff|")
	for _, m := range metrics.All() {
		fmt.Fprintf(w, "%-22s%12.3f%12.3f%14s\n",
			m, r.FullSim[m], r.Zatel[m], pct(r.Diff[m]))
	}
	r.Pool.Render(w)
	r.Faults.Render(w)
	fmt.Fprintln(w, "(paper: max normalized difference 37.6% on L2 miss rate, min 0.6% on L1D)")
}
