// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (Section IV). Each driver returns a
// typed result with a Render method that prints the same rows/series the
// paper reports; cmd/sweep exposes them as subcommands and bench_test.go
// wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
	"zatel/internal/scene"
)

// Settings hold the frame parameters shared by all experiments. The paper
// evaluates at 512×512 with 2 samples per pixel; the default here is
// 256×256 with 1 spp so the full suite reruns in tens of minutes on one
// CPU core while both Table II GPUs still execute multiple warp waves
// (the regime Zatel's linear extrapolation assumes — see DESIGN.md).
type Settings struct {
	Width  int
	Height int
	SPP    int
}

// Default returns the evaluation default (256×256, 1 spp).
func Default() Settings { return Settings{Width: 256, Height: 256, SPP: 1} }

// Small returns a reduced setting for smoke tests.
func Small() Settings { return Settings{Width: 48, Height: 48, SPP: 1} }

func (s Settings) validate() error {
	if s.Width <= 0 || s.Height <= 0 || s.SPP <= 0 {
		return fmt.Errorf("experiments: invalid settings %+v", s)
	}
	return nil
}

// baseOptions assembles the shared core options for a scene/config pair.
func (s Settings) baseOptions(cfg config.Config, sceneName string) core.Options {
	return core.Options{
		Config: cfg,
		Scene:  sceneName,
		Width:  s.Width,
		Height: s.Height,
		SPP:    s.SPP,
	}
}

// reference fetches (and memoises) the ground-truth full simulation.
func (s Settings) reference(cfg config.Config, sceneName string) (metrics.Report, error) {
	return core.Reference(cfg, sceneName, s.Width, s.Height, s.SPP)
}

// Configs returns the two Table II configurations in paper order.
func Configs() []config.Config {
	return []config.Config{config.MobileSoC(), config.RTX2060()}
}

// AllScenes returns the LumiBench scene names used in the evaluation.
func AllScenes() []string { return scene.Names() }

// fmtDur prints a duration with millisecond precision.
func fmtDur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// hr writes a horizontal rule sized to n characters.
func hr(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
