// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (Section IV). Each driver returns a
// typed result with a Render method that prints the same rows/series the
// paper reports; cmd/sweep exposes them as subcommands and bench_test.go
// wraps them in testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
	"zatel/internal/runner"
	"zatel/internal/sampling"
	"zatel/internal/scene"
)

// Settings hold the frame parameters shared by all experiments. The paper
// evaluates at 512×512 with 2 samples per pixel; the default here is
// 256×256 with 1 spp so the full suite reruns in tens of minutes on one
// CPU core while both Table II GPUs still execute multiple warp waves
// (the regime Zatel's linear extrapolation assumes — see DESIGN.md).
type Settings struct {
	Width  int
	Height int
	SPP    int
	// Workers bounds the worker pool the experiment grid is scheduled on
	// (0 = one worker per CPU core, 1 = serial). Grid points are
	// independent (scene × parameter) simulations, so the rendered numbers
	// are identical at any pool size; only the timing columns move.
	Workers int
	// FT is passed to every grid point's prediction: per-group retries,
	// deadlines, degradation quorum and fault injection (see
	// core.FaultTolerance). A point whose prediction still fails after all
	// of that renders as an ERR cell instead of aborting the whole table.
	FT core.FaultTolerance
	// Ctx, when non-nil, cancels the experiment: grid points that have not
	// started complete with the context error and render as ERR cells, so
	// an interrupted sweep still prints the rows it finished.
	Ctx context.Context
	// Dist selects the pixel-selection strategy for every grid point
	// (drivers that sweep distributions themselves, like Table 3, override
	// it per point). A replicated strategy (stratified, rankedset) makes
	// sweep tables carry ±half-width error bars.
	Dist sampling.Distribution
	// Sampling and TargetCI configure the replicated strategies' replicate
	// count, confidence level and adaptive stopping (see core.Options).
	Sampling core.SamplingOptions
	TargetCI float64
}

// Default returns the evaluation default (256×256, 1 spp).
func Default() Settings { return Settings{Width: 256, Height: 256, SPP: 1} }

// Small returns a reduced setting for smoke tests.
func Small() Settings { return Settings{Width: 48, Height: 48, SPP: 1} }

func (s Settings) validate() error {
	if s.Width <= 0 || s.Height <= 0 || s.SPP <= 0 {
		return fmt.Errorf("experiments: invalid settings %+v", s)
	}
	return nil
}

// baseOptions assembles the shared core options for a scene/config pair.
func (s Settings) baseOptions(cfg config.Config, sceneName string) core.Options {
	return core.Options{
		Config:            cfg,
		Scene:             sceneName,
		Width:             s.Width,
		Height:            s.Height,
		SPP:               s.SPP,
		FT:                s.FT,
		Dist:              s.Dist,
		Sampling:          s.Sampling,
		TargetCIHalfWidth: s.TargetCI,
	}
}

// context resolves the Settings' cancellation context.
func (s Settings) context() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// reference fetches (and memoises) the ground-truth full simulation.
func (s Settings) reference(cfg config.Config, sceneName string) (metrics.Report, error) {
	return core.Reference(cfg, sceneName, s.Width, s.Height, s.SPP)
}

// Configs returns the two Table II configurations in paper order.
func Configs() []config.Config {
	return []config.Config{config.MobileSoC(), config.RTX2060()}
}

// AllScenes returns the LumiBench scene names used in the evaluation.
func AllScenes() []string { return scene.Names() }

// PoolStats records how an experiment's job grid ran on the worker pool:
// CPU is what the grid costs serially (summed per-job execution time), Wall
// what it actually took end to end. The gap between the two is the
// concurrency the Section III-F deployment model banks on.
type PoolStats struct {
	Jobs    int
	Workers int
	Wall    time.Duration
	CPU     time.Duration
}

// Render prints the cpu-vs-wall accounting line appended to every
// experiment table.
func (p PoolStats) Render(w io.Writer) {
	if p.Jobs == 0 {
		return
	}
	conc := 1.0
	if p.Wall > 0 {
		conc = float64(p.CPU) / float64(p.Wall)
	}
	fmt.Fprintf(w, "pool: %d jobs on %d workers — cpu %s, wall %s (%.1fx concurrency)\n",
		p.Jobs, p.Workers, fmtDur(p.CPU), fmtDur(p.Wall), conc)
}

// gridMap schedules n independent grid points on the Settings' worker pool
// and returns the results in submission order plus the pool accounting.
// The error, if any, aggregates every failed point (fail-soft: one bad
// point does not stop the rest of the grid). Drivers embed per-point
// failures into their cell types and render them rather than aborting;
// only points cancelled before starting surface through Result.Err.
func gridMap[T any](s Settings, n int, fn func(ctx context.Context, i int) (T, error)) ([]runner.Result[T], PoolStats, error) {
	start := time.Now()
	// SpanPrefix records one "point[i]" span per grid point when cmd/sweep
	// attached a tracer to Settings.Ctx (-trace); each point's nested
	// "predict" step spans hang below it.
	rs, err := runner.MapPolicy(s.context(), n, runner.Policy{Workers: s.Workers, SpanPrefix: "point"}, fn)
	stats := PoolStats{Jobs: n, Workers: runner.PoolSize(s.Workers), Wall: time.Since(start)}
	stats.CPU, _ = runner.Totals(rs)
	return rs, stats, err
}

// FaultTally summarises a grid's failed and degraded points so tables can
// render an explicit legend instead of aborting on the first failure.
type FaultTally struct {
	// Failed counts grid points whose prediction errored (including points
	// cancelled before they started); FirstErr keeps the first cause.
	Failed   int
	FirstErr string
	// Degraded counts points whose prediction lost groups but met quorum.
	Degraded int
}

// noteErr records a point failure; it reports whether err was non-nil.
func (t *FaultTally) noteErr(err error) bool {
	if err == nil {
		return false
	}
	t.Failed++
	if t.FirstErr == "" {
		t.FirstErr = err.Error()
	}
	return true
}

// noteDegraded records a degraded-but-surviving point.
func (t *FaultTally) noteDegraded(n int) {
	if n > 0 {
		t.Degraded++
	}
}

// Render prints the degraded/failed legend appended to experiment tables.
func (t FaultTally) Render(w io.Writer) {
	if t.Degraded > 0 {
		fmt.Fprintf(w, "† %d cell(s) degraded: prediction merged from surviving groups only (see DESIGN.md, failure semantics)\n",
			t.Degraded)
	}
	if t.Failed > 0 {
		fmt.Fprintf(w, "ERR: %d cell(s) failed after retries; first error: %s\n", t.Failed, t.FirstErr)
	}
}

// fmtDur prints a duration with millisecond precision.
func fmtDur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// pct formats a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// hr writes a horizontal rule sized to n characters.
func hr(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
