package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
	"zatel/internal/scene"
)

// The Section IV-E downscaling experiments (Figs. 17, 18 and 19): sweep the
// downscaling factor, simulate a single downscaled group tracing all of its
// 1/K pixels, and compare against the full simulation. K must divide both
// the SM count and the memory-partition count, so each configuration has
// its own valid sweep.

// ValidFactors returns the downscaling factors in [2, 6] that divide the
// configuration's component counts (the paper sweeps 2–6).
func ValidFactors(cfg config.Config) []int {
	var ks []int
	for k := 2; k <= 6; k++ {
		if cfg.NumSMs%k == 0 && cfg.NumMemPartitions%k == 0 {
			ks = append(ks, k)
		}
	}
	return ks
}

// DownscalePoint is one (scene, K, division) measurement.
type DownscalePoint struct {
	Scene    string
	K        int
	Division core.Division
	Errors   map[metrics.Metric]float64
	SimWall  time.Duration
	RefWall  time.Duration
	Speedup  float64
	// Err is the point's failure (nil on success); failed points render as
	// ERR cells and are excluded from the per-factor means.
	Err error
	// DegradedGroups counts groups the prediction lost to failures.
	DegradedGroups int
}

// DownscaleResult backs Figs. 17/18 (errors per factor, fine vs coarse) and
// Fig. 19 (speedup per factor).
type DownscaleResult struct {
	Settings Settings
	Config   string
	Scenes   []string
	Factors  []int
	// Points indexed [division][scene][factor position].
	Points map[core.Division]map[string][]DownscalePoint
	// Pool is the sweep grid's worker-pool accounting.
	Pool PoolStats
	// Faults tallies failed and degraded grid points for the legend.
	Faults FaultTally
}

// DownscaleSweep runs the downscaling-factor sweep on the given scenes
// with both division methods.
func DownscaleSweep(s Settings, cfg config.Config, scenes []string) (*DownscaleResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(scenes) == 0 {
		scenes = scene.RepresentativeSubset()
	}
	factors := ValidFactors(cfg)
	if len(factors) == 0 {
		return nil, fmt.Errorf("downscale: no valid factors for %s", cfg.Name)
	}
	out := &DownscaleResult{
		Settings: s,
		Config:   cfg.Name,
		Scenes:   scenes,
		Factors:  factors,
		Points:   map[core.Division]map[string][]DownscalePoint{},
	}
	// References serially first (their wall time feeds the speedup
	// column), then the (division × scene × factor) grid on the pool.
	refs := make(map[string]metrics.Report, len(scenes))
	for _, sc := range scenes {
		ref, err := s.reference(cfg, sc)
		if err != nil {
			return nil, err
		}
		refs[sc] = ref
	}

	divs := []core.Division{core.FineGrained, core.CoarseGrained}
	nsc, nk := len(scenes), len(factors)
	rs, pool, _ := gridMap(s, len(divs)*nsc*nk, func(ctx context.Context, i int) (DownscalePoint, error) {
		div := divs[i/(nsc*nk)]
		sc := scenes[(i/nk)%nsc]
		k := factors[i%nk]
		opts := s.baseOptions(cfg, sc)
		opts.K = k
		opts.Division = div
		opts.SingleGroup = true
		opts.FixedFraction = 1 // trace every pixel of the group
		opts.FT.Inject = opts.FT.Inject.SplitSeed(uint64(i))
		res, err := core.PredictContext(ctx, opts)
		if err != nil {
			return DownscalePoint{Scene: sc, K: k, Division: div,
				Err: fmt.Errorf("downscale %s K=%d %s: %w", sc, k, div, err)}, nil
		}
		ref := refs[sc]
		pt := DownscalePoint{
			Scene:    sc,
			K:        k,
			Division: div,
			Errors:   res.Errors(ref),
			SimWall:  res.PreprocessTime + res.SimWallTime,
			RefWall:  ref.WallTime,
			Speedup:  res.Speedup(ref),
		}
		if res.Degraded != nil {
			pt.DegradedGroups = len(res.Degraded.FailedGroups)
		}
		return pt, nil
	})
	out.Pool = pool
	for di, div := range divs {
		out.Points[div] = map[string][]DownscalePoint{}
		for si, sc := range scenes {
			pts := make([]DownscalePoint, nk)
			for ki, k := range factors {
				r := rs[di*nsc*nk+si*nk+ki]
				pt := r.Value
				if r.Err != nil && pt.Err == nil {
					pt = DownscalePoint{Scene: sc, K: k, Division: div, Err: r.Err}
				}
				out.Faults.noteErr(pt.Err)
				out.Faults.noteDegraded(pt.DegradedGroups)
				pts[ki] = pt
			}
			out.Points[div][sc] = pts
		}
	}
	return out, nil
}

// RenderErrors prints the per-metric mean error (over scenes) per factor
// for both division methods — the content of Fig. 17 (representative
// subset) or Fig. 18 (all scenes), depending on which scenes were swept.
func (r *DownscaleResult) RenderErrors(w io.Writer, figure string) {
	fmt.Fprintf(w, "%s — mean error per downscaling factor over %d scenes (%s, %dx%d)\n",
		figure, len(r.Scenes), r.Config, r.Settings.Width, r.Settings.Height)
	for _, div := range []core.Division{core.FineGrained, core.CoarseGrained} {
		fmt.Fprintf(w, "\n%s-grained division:\n", div)
		hr(w, 24+14*len(metrics.All()))
		fmt.Fprintf(w, "%-6s", "K")
		for _, m := range metrics.All() {
			fmt.Fprintf(w, "%22s", m)
		}
		fmt.Fprintln(w)
		for ki, k := range r.Factors {
			fmt.Fprintf(w, "%-6d", k)
			for _, m := range metrics.All() {
				sum, n := 0.0, 0
				for _, sc := range r.Scenes {
					if pt := r.Points[div][sc][ki]; pt.Err == nil {
						sum += pt.Errors[m]
						n++
					}
				}
				switch {
				case n == 0:
					fmt.Fprintf(w, "%22s", "ERR")
				case n < len(r.Scenes):
					// Partial mean: some scenes' points failed.
					fmt.Fprintf(w, "%22s", pct(sum/float64(n))+"*")
				default:
					fmt.Fprintf(w, "%22s", pct(sum/float64(n)))
				}
			}
			fmt.Fprintln(w)
		}
	}
	if r.Faults.Failed > 0 {
		fmt.Fprintln(w, "* mean over surviving scenes only (some points failed)")
	}
	r.Faults.Render(w)
	fmt.Fprintln(w, "\n(paper: fine-grained keeps cycles/IPC error <12% even at K=6; DRAM-side metrics")
	fmt.Fprintln(w, " degrade with downscaling; coarse-grained is less stable than fine-grained)")
}

// RenderSpeedup prints Fig. 19: speedup per scene per factor (fine-grained).
func (r *DownscaleResult) RenderSpeedup(w io.Writer) {
	fmt.Fprintf(w, "Fig. 19 — speedup from GPU downscaling (%s, fine-grained, %dx%d)\n",
		r.Config, r.Settings.Width, r.Settings.Height)
	hr(w, 12+12*len(r.Scenes))
	fmt.Fprintf(w, "%-6s", "K")
	for _, sc := range r.Scenes {
		fmt.Fprintf(w, "%12s", sc)
	}
	fmt.Fprintln(w)
	fine := r.Points[core.FineGrained]
	for ki, k := range r.Factors {
		fmt.Fprintf(w, "%-6d", k)
		for _, sc := range r.Scenes {
			pt := fine[sc][ki]
			if pt.Err != nil {
				fmt.Fprintf(w, "%12s", "ERR")
				continue
			}
			cell := fmt.Sprintf("%.1fx", pt.Speedup)
			if pt.DegradedGroups > 0 {
				cell += "†"
			}
			fmt.Fprintf(w, "%12s", cell)
		}
		fmt.Fprintln(w)
	}
	r.Pool.Render(w)
	r.Faults.Render(w)
	fmt.Fprintln(w, "(paper: downscaling speedups track the pixel-reduction speedups of Fig. 15 —")
	fmt.Fprintln(w, " downscaling itself does not significantly reduce execution time)")
}
