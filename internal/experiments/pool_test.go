package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"zatel/internal/config"
)

// TestSweepParallelMatchesSerial proves the worker-pool rewiring changes
// only timing: the rendered error/speedup grids must be identical between a
// serial (Workers=1) and a parallel (Workers=4) PercentSweep, modulo the
// timing columns.
func TestSweepParallelMatchesSerial(t *testing.T) {
	serial, parallel := Small(), Small()
	serial.Workers = 1
	parallel.Workers = 4
	a, err := PercentSweep(serial, config.MobileSoC(), []string{"SPRNG"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PercentSweep(parallel, config.MobileSoC(), []string{"SPRNG"})
	if err != nil {
		t.Fatal(err)
	}
	for pi := range a.Percents {
		pa, pb := a.Points["SPRNG"][pi], b.Points["SPRNG"][pi]
		for m, e := range pa.Errors {
			if pb.Errors[m] != e {
				t.Errorf("%d%%: %s error %v (serial) vs %v (parallel)",
					pa.Percent, m, e, pb.Errors[m])
			}
		}
		if pa.RefWall != pb.RefWall {
			t.Errorf("%d%%: reference wall time differs — reference not memoised?", pa.Percent)
		}
	}
	if a.Pool.Workers != 1 || b.Pool.Workers != 4 {
		t.Errorf("pool workers %d / %d, want 1 / 4", a.Pool.Workers, b.Pool.Workers)
	}
	if a.Pool.Jobs != 9 || b.Pool.Jobs != 9 {
		t.Errorf("pool jobs %d / %d, want 9", a.Pool.Jobs, b.Pool.Jobs)
	}
	if a.Pool.CPU <= 0 || a.Pool.Wall <= 0 {
		t.Errorf("pool accounting empty: %+v", a.Pool)
	}
}

// TestPercentSweepParallelFaster is the wall-time acceptance check: on a
// multi-core host the pooled grid must beat the serial one. Single-core
// hosts merely time-slice, so the comparison is skipped there.
func TestPercentSweepParallelFaster(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skipf("single-core host (GOMAXPROCS=%d): parallel grid cannot beat serial", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	serial, parallel := Small(), Small()
	serial.Workers = 1
	parallel.Workers = 0 // one per core
	scenes := []string{"SPRNG", "SHIP"}
	// Warm the workload and reference caches so both runs measure only the
	// grid itself.
	if _, err := PercentSweep(Small(), config.MobileSoC(), scenes); err != nil {
		t.Fatal(err)
	}
	a, err := PercentSweep(serial, config.MobileSoC(), scenes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PercentSweep(parallel, config.MobileSoC(), scenes)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serial: %+v", a.Pool)
	t.Logf("parallel: %+v", b.Pool)
	if b.Pool.Wall >= a.Pool.Wall {
		t.Errorf("parallel grid wall %v not below serial %v on %d cores",
			b.Pool.Wall, a.Pool.Wall, runtime.GOMAXPROCS(0))
	}
}

// TestPoolLineRendered checks the cpu-vs-wall accounting surfaces in the
// rendered outputs.
func TestPoolLineRendered(t *testing.T) {
	res, err := PercentSweep(Small(), config.MobileSoC(), []string{"SPRNG"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.RenderFig14(&buf)
	res.RenderFig15(&buf)
	if got := strings.Count(buf.String(), "pool: 9 jobs on "); got != 2 {
		t.Errorf("pool accounting line rendered %d times, want 2:\n%s", got, buf.String())
	}
}

// TestFitErrSurfaced checks a failed power fit renders as unavailable
// instead of bogus zero coefficients.
func TestFitErrSurfaced(t *testing.T) {
	r := &SweepResult{
		Settings: Small(),
		Config:   "MobileSoC",
		Scenes:   []string{"SPRNG"},
		Percents: []int{10},
		Points:   map[string][]SweepPoint{"SPRNG": {{Scene: "SPRNG", Percent: 10}}},
		FitErr:   "need at least 2 points",
	}
	var buf bytes.Buffer
	r.RenderFig15(&buf)
	out := buf.String()
	if !strings.Contains(out, "power fit unavailable: need at least 2 points") {
		t.Errorf("fit failure not surfaced:\n%s", out)
	}
	if strings.Contains(out, "0.0 * perc^0.00") {
		t.Errorf("bogus zero fit still rendered:\n%s", out)
	}
}
