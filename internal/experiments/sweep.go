package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/extrapolate"
	"zatel/internal/metrics"
)

// SweepPoint is one (scene, percent) measurement of the Section IV-D sweep:
// Zatel run on a fixed fraction of pixels with no GPU downscaling.
type SweepPoint struct {
	Scene   string
	Percent int
	// Errors holds the per-metric absolute error against the reference.
	Errors map[metrics.Metric]float64
	// CIHalf holds the per-metric relative confidence half-width
	// (half-width / |mean|) when the sweep ran a replicated strategy; nil
	// otherwise. Tables render it as a ± error bar next to the cell value.
	CIHalf map[metrics.Metric]float64
	// SimWall is Zatel's preprocessing+simulation wall time; RefWall the
	// full simulation's.
	SimWall time.Duration
	RefWall time.Duration
	// Speedup is RefWall / SimWall.
	Speedup float64
	// Err is the point's failure after the prediction's own retries and
	// degradation ran out (nil on success); failed points render as ERR
	// cells instead of aborting the sweep.
	Err error
	// DegradedGroups counts groups the prediction lost to failures
	// (0 = clean).
	DegradedGroups int
}

// SweepResult is the shared data behind Figs. 13, 14, 15 and 16: the same
// {10%,…,90%} × scene grid viewed through four lenses.
type SweepResult struct {
	Settings Settings
	Config   string
	Scenes   []string
	Percents []int
	// Points is indexed [scene][percent position].
	Points map[string][]SweepPoint
	// FitA/FitB is the Eq. 4-style power fit speedup = A·perc^B derived
	// from all measured speedups; FitErr records why the fit is
	// unavailable when it failed.
	FitA, FitB float64
	FitErr     string
	// Pool is the grid's worker-pool accounting (cpu vs wall time).
	Pool PoolStats
	// Faults tallies failed and degraded grid points for the legend.
	Faults FaultTally
}

// PercentSweep runs Zatel at {10..90}% of pixels without downscaling on
// every scene (Section IV-D) and collects errors, running times and
// speedups.
func PercentSweep(s Settings, cfg config.Config, scenes []string) (*SweepResult, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(scenes) == 0 {
		scenes = AllScenes()
	}
	percents := []int{10, 20, 30, 40, 50, 60, 70, 80, 90}
	out := &SweepResult{
		Settings: s,
		Config:   cfg.Name,
		Scenes:   scenes,
		Percents: percents,
		Points:   map[string][]SweepPoint{},
	}
	// References run serially up front: their recorded wall time feeds the
	// speedup columns, so they must not time-slice against other jobs.
	refs := make(map[string]metrics.Report, len(scenes))
	for _, sc := range scenes {
		ref, err := s.reference(cfg, sc)
		if err != nil {
			return nil, err
		}
		refs[sc] = ref
	}

	// The (scene × percent) grid points are independent simulations —
	// exactly the short concurrent runs the methodology amortizes — so
	// they fan out on the worker pool in one flat grid.
	np := len(percents)
	rs, pool, _ := gridMap(s, len(scenes)*np, func(ctx context.Context, i int) (SweepPoint, error) {
		sc, p := scenes[i/np], percents[i%np]
		opts := s.baseOptions(cfg, sc)
		opts.NoDownscale = true
		opts.FixedFraction = float64(p) / 100
		// Re-root the injection stream per cell so grid points fail
		// independently (each K=1 prediction would otherwise draw the
		// identical first decision).
		opts.FT.Inject = opts.FT.Inject.SplitSeed(uint64(i))
		res, err := core.PredictContext(ctx, opts)
		if err != nil {
			// Fail-soft: the failed cell renders instead of killing the
			// whole sweep.
			return SweepPoint{Scene: sc, Percent: p,
				Err: fmt.Errorf("sweep %s@%d%%: %w", sc, p, err)}, nil
		}
		ref := refs[sc]
		pt := SweepPoint{
			Scene:   sc,
			Percent: p,
			Errors:  res.Errors(ref),
			SimWall: res.PreprocessTime + res.SimWallTime,
			RefWall: ref.WallTime,
			Speedup: res.Speedup(ref),
		}
		if res.Intervals != nil {
			pt.CIHalf = make(map[metrics.Metric]float64, len(res.Intervals))
			for m, iv := range res.Intervals {
				hw := iv.HalfWidth()
				if mean := math.Abs(iv.Mean); mean > 0 {
					hw /= mean
				}
				pt.CIHalf[m] = hw
			}
		}
		if res.Degraded != nil {
			pt.DegradedGroups = len(res.Degraded.FailedGroups)
		}
		return pt, nil
	})
	out.Pool = pool

	var xs, ys []float64
	for si, sc := range scenes {
		pts := make([]SweepPoint, np)
		for pi := range percents {
			pt := rs[si*np+pi].Value
			if e := rs[si*np+pi].Err; e != nil && pt.Err == nil {
				// Cancelled before starting: the value is zero, rebuild it.
				pt = SweepPoint{Scene: sc, Percent: percents[pi], Err: e}
			}
			out.Faults.noteErr(pt.Err)
			out.Faults.noteDegraded(pt.DegradedGroups)
			pts[pi] = pt
			if pt.Err == nil && pt.Speedup > 0 {
				xs = append(xs, float64(pt.Percent))
				ys = append(ys, pt.Speedup)
			}
		}
		out.Points[sc] = pts
	}
	if a, b, err := extrapolate.PowerFit(xs, ys); err == nil {
		out.FitA, out.FitB = a, b
	} else {
		// A failed fit must not masquerade as "0.0 * perc^0.00".
		out.FitErr = err.Error()
	}
	return out, nil
}

// RenderFig13 prints the simulation-cycles error per scene against the
// percentage of pixels traced; with a replicated strategy each cell carries
// its ± relative CI half-width.
func (r *SweepResult) RenderFig13(w io.Writer) {
	fmt.Fprintf(w, "Fig. 13 — simulation cycles error per scene (%s, %dx%d)\n",
		r.Config, r.Settings.Width, r.Settings.Height)
	r.renderPerScene(w, func(pt SweepPoint) string {
		return pctCI(pt.Errors[metrics.SimCycles], pt.CIHalf, metrics.SimCycles)
	})
	fmt.Fprintln(w, "(paper: errors converge exponentially to 0; SPRNG is the >100% outlier at 10%)")
}

// pctCI renders value as a percentage, appending the metric's ± relative CI
// half-width error bar when the point carries one.
func pctCI(value float64, ciHalf map[metrics.Metric]float64, m metrics.Metric) string {
	if hw, ok := ciHalf[m]; ok {
		return fmt.Sprintf("%.1f±%.1f%%", 100*value, 100*hw)
	}
	return pct(value)
}

// RenderFig14 prints Zatel's running time per scene.
func (r *SweepResult) RenderFig14(w io.Writer) {
	fmt.Fprintf(w, "Fig. 14 — Zatel running time per scene (%s, %dx%d)\n",
		r.Config, r.Settings.Width, r.Settings.Height)
	r.renderPerScene(w, func(pt SweepPoint) string { return fmtDur(pt.SimWall) })
	r.Pool.Render(w)
	fmt.Fprintln(w, "(cells are per-run serial-equivalent times; the pool line shows the grid's")
	fmt.Fprintln(w, " actual wall time; paper: time grows linearly with % pixels; BATH runs longest)")
}

// RenderFig15 prints the speedup per scene plus the Eq. 4 fit.
func (r *SweepResult) RenderFig15(w io.Writer) {
	fmt.Fprintf(w, "Fig. 15 — running-time speedup per scene (%s, %dx%d)\n",
		r.Config, r.Settings.Width, r.Settings.Height)
	r.renderPerScene(w, func(pt SweepPoint) string { return fmt.Sprintf("%.1fx", pt.Speedup) })
	r.Pool.Render(w)
	if r.FitErr != "" {
		fmt.Fprintf(w, "power fit unavailable: %s   (paper Eq. 4: 181 * perc^-1.15)\n", r.FitErr)
	} else {
		fmt.Fprintf(w, "power fit: speedup(perc) = %.1f * perc^%.2f   (paper Eq. 4: 181 * perc^-1.15)\n",
			r.FitA, r.FitB)
	}
	ref10, _ := extrapolate.SpeedupModel(10)
	ref50, _ := extrapolate.SpeedupModel(50)
	ref90, _ := extrapolate.SpeedupModel(90)
	fmt.Fprintf(w, "Eq. 4 reference at 10/50/90%%: %.1fx / %.1fx / %.1fx\n", ref10, ref50, ref90)
}

// RenderFig16 prints the per-metric mean/min/max absolute error over all
// scenes per percentage.
func (r *SweepResult) RenderFig16(w io.Writer) {
	fmt.Fprintf(w, "Fig. 16 — per-metric error over all scenes (%s, %dx%d): mean [min..max]\n",
		r.Config, r.Settings.Width, r.Settings.Height)
	hr(w, 110)
	fmt.Fprintf(w, "%-6s", "%px")
	for _, m := range metrics.All() {
		fmt.Fprintf(w, "%26s", m)
	}
	fmt.Fprintln(w)
	for pi, p := range r.Percents {
		fmt.Fprintf(w, "%-6d", p)
		for _, m := range metrics.All() {
			lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
			n := 0
			hwSum, hwN := 0.0, 0
			for _, sc := range r.Scenes {
				pt := r.Points[sc][pi]
				if pt.Err != nil {
					continue
				}
				e := pt.Errors[m]
				if math.IsInf(e, 0) {
					continue
				}
				lo, hi = math.Min(lo, e), math.Max(hi, e)
				sum += e
				n++
				if hw, ok := pt.CIHalf[m]; ok {
					hwSum += hw
					hwN++
				}
			}
			if n == 0 {
				fmt.Fprintf(w, "%26s", "-")
				continue
			}
			cell := pct(sum / float64(n))
			if hwN > 0 {
				// Mean ± mean relative CI half-width over the scenes.
				cell = fmt.Sprintf("%.1f±%.1f%%", 100*sum/float64(n), 100*hwSum/float64(hwN))
			}
			fmt.Fprintf(w, "%9s [%5.1f..%6.1f]", cell, 100*lo, 100*hi)
		}
		fmt.Fprintln(w)
	}
	r.Faults.Render(w)
	fmt.Fprintln(w, "(paper: MAE decreases exponentially with % traced; cache metrics saturate fastest)")
}

func (r *SweepResult) renderPerScene(w io.Writer, cell func(SweepPoint) string) {
	hr(w, 12+12*len(r.Scenes))
	fmt.Fprintf(w, "%-6s", "%px")
	for _, sc := range r.Scenes {
		fmt.Fprintf(w, "%12s", sc)
	}
	fmt.Fprintln(w)
	for pi, p := range r.Percents {
		fmt.Fprintf(w, "%-6d", p)
		for _, sc := range r.Scenes {
			fmt.Fprintf(w, "%12s", faultCell(r.Points[sc][pi], cell))
		}
		fmt.Fprintln(w)
	}
	r.Faults.Render(w)
}

// faultCell renders a point through cell, substituting ERR for failed
// points and marking degraded ones with †.
func faultCell(pt SweepPoint, cell func(SweepPoint) string) string {
	if pt.Err != nil {
		return "ERR"
	}
	s := cell(pt)
	if pt.DegradedGroups > 0 {
		s += "†"
	}
	return s
}
