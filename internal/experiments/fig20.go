package experiments

import (
	"context"
	"fmt"
	"io"

	"zatel/internal/combine"
	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
)

// Fig20Result reproduces the Section IV-F extrapolation study: exponential
// regression through runs at 20/30/40% of pixels versus simply tracing 40%
// and extrapolating linearly (the baseline). The paper found regression
// loses more than it gains; the WorseCount/total ratio captures that.
type Fig20Result struct {
	Settings Settings
	Config   string
	Scenes   []string
	// RegErr and DirectErr map [scene][metric] to the absolute error of
	// the regression prediction and of the direct 40% prediction. Failed
	// scenes have no entries.
	RegErr    map[string]map[metrics.Metric]float64
	DirectErr map[string]map[metrics.Metric]float64
	// Failed maps a scene to its failure; failed scenes render as ERR and
	// abstain from the WorseCount/Total ratio.
	Failed map[string]string
	// WorseCount counts (scene, metric) pairs where regression is less
	// accurate; Total is the number of pairs over surviving scenes.
	WorseCount int
	Total      int
	// Pool is the per-scene job grid's worker-pool accounting.
	Pool PoolStats
	// Faults tallies failed and degraded scenes for the legend.
	Faults FaultTally
}

// Fig20 runs the regression-vs-direct comparison on every scene. The
// regression prediction reuses its own 40% run as the direct baseline, so
// each scene costs three simulations.
func Fig20(s Settings, cfg config.Config, scenes []string) (*Fig20Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if len(scenes) == 0 {
		scenes = AllScenes()
	}
	out := &Fig20Result{
		Settings:  s,
		Config:    cfg.Name,
		Scenes:    scenes,
		RegErr:    map[string]map[metrics.Metric]float64{},
		DirectErr: map[string]map[metrics.Metric]float64{},
		Failed:    map[string]string{},
	}
	// One job per scene; each runs the three regression simulations and
	// derives the direct baseline from its own 40% run.
	type sceneErrs struct {
		reg      map[metrics.Metric]float64
		direct   map[metrics.Metric]float64
		degraded int
		err      error
	}
	rs, pool, _ := gridMap(s, len(scenes), func(ctx context.Context, i int) (sceneErrs, error) {
		sc := scenes[i]
		ref, err := s.reference(cfg, sc)
		if err != nil {
			return sceneErrs{err: fmt.Errorf("fig20 %s reference: %w", sc, err)}, nil
		}
		opts := s.baseOptions(cfg, sc)
		opts.NoDownscale = true
		opts.Regression = true
		opts.FT.Inject = opts.FT.Inject.SplitSeed(uint64(i))
		res, err := core.PredictContext(ctx, opts)
		if err != nil {
			return sceneErrs{err: fmt.Errorf("fig20 %s: %w", sc, err)}, nil
		}

		// The direct baseline: linear extrapolation of the 40% run the
		// regression already performed.
		direct, err := combine.Linear(res.Groups[0].Report, res.Groups[0].Fraction)
		if err != nil {
			return sceneErrs{err: fmt.Errorf("fig20 %s direct: %w", sc, err)}, nil
		}
		derr := map[metrics.Metric]float64{}
		for _, m := range metrics.All() {
			derr[m] = metrics.AbsErr(direct[m], ref.Value(m))
		}
		se := sceneErrs{reg: res.Errors(ref), direct: derr}
		if res.Degraded != nil {
			se.degraded = len(res.Degraded.FailedGroups)
		}
		return se, nil
	})
	out.Pool = pool
	for i, sc := range scenes {
		se := rs[i].Value
		if e := rs[i].Err; e != nil && se.err == nil {
			se.err = e
		}
		if out.Faults.noteErr(se.err) {
			out.Failed[sc] = se.err.Error()
			continue
		}
		out.Faults.noteDegraded(se.degraded)
		out.RegErr[sc] = se.reg
		out.DirectErr[sc] = se.direct
		for _, m := range metrics.All() {
			out.Total++
			if out.RegErr[sc][m] > out.DirectErr[sc][m]+1e-12 {
				out.WorseCount++
			}
		}
	}
	return out, nil
}

// Render prints per-scene regression vs direct errors and the paper's
// headline ratio.
func (r *Fig20Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 20 — exponential regression (20/30/40%%) vs direct 40%% (%s, %dx%d)\n",
		r.Config, r.Settings.Width, r.Settings.Height)
	for _, sc := range r.Scenes {
		fmt.Fprintf(w, "\n%s:\n", sc)
		hr(w, 64)
		if cause, failed := r.Failed[sc]; failed {
			fmt.Fprintf(w, "ERR: %s\n", cause)
			continue
		}
		fmt.Fprintf(w, "%-22s%14s%14s%10s\n", "Metric", "regression", "direct 40%", "worse?")
		for _, m := range metrics.All() {
			worse := ""
			if r.RegErr[sc][m] > r.DirectErr[sc][m]+1e-12 {
				worse = "yes"
			}
			fmt.Fprintf(w, "%-22s%14s%14s%10s\n",
				m, pct(r.RegErr[sc][m]), pct(r.DirectErr[sc][m]), worse)
		}
	}
	frac := 0.0
	if r.Total > 0 {
		frac = float64(r.WorseCount) / float64(r.Total)
	}
	fmt.Fprintf(w, "\nregression worse on %d/%d metric-scene pairs (%.0f%%)\n",
		r.WorseCount, r.Total, 100*frac)
	r.Pool.Render(w)
	r.Faults.Render(w)
	fmt.Fprintln(w, "(paper: 62% of metrics worse with regression on RTX 2060 — no clear advantage")
	fmt.Fprintln(w, " while costing three simulator runs)")
}
