package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
)

// Fig10Result reproduces Fig. 10 (absolute error of each metric for the
// fully optimized Zatel on PARK, both GPU configurations) together with the
// Section IV-B headline numbers: per-config MAE and speedup, plus the
// 10%-cap Mobile SoC variant the paper uses to reach ~50× speedup.
type Fig10Result struct {
	Settings Settings
	// Errors[config][metric] is the absolute error of the prediction.
	Errors map[string]map[metrics.Metric]float64
	// MAE and Speedup are per config name.
	MAE     map[string]float64
	Speedup map[string]float64
	// K records the downscaling factor per config.
	K map[string]int
	// Capped holds the MaxFraction=0.1 Mobile SoC run (MAE and speedup).
	CappedMAE     float64
	CappedSpeedup float64
	// CappedErr records the capped variant's failure ("" on success).
	CappedErr string
	// Failed maps a config name to its prediction's failure; failed
	// configs have no Errors/MAE/Speedup entries and render as ERR.
	Failed map[string]string
	// Degraded maps a config name to the number of groups its prediction
	// lost (present only when > 0).
	Degraded map[string]int
	// Pool is the prediction grid's worker-pool accounting.
	Pool PoolStats
	// Faults tallies failed and degraded predictions for the legend.
	Faults FaultTally
}

// Fig10 runs the fully optimized Zatel (fine-grained division, Eq. 1
// budget, uniform distribution, linear extrapolation) on PARK for both
// Table II configurations.
func Fig10(s Settings) (*Fig10Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	out := &Fig10Result{
		Settings: s,
		Errors:   map[string]map[metrics.Metric]float64{},
		MAE:      map[string]float64{},
		Speedup:  map[string]float64{},
		K:        map[string]int{},
		Failed:   map[string]string{},
		Degraded: map[string]int{},
	}
	// References first (serial: their wall time feeds the speedup rows),
	// then the three predictions — both configs plus the 10%-capped Mobile
	// SoC variant — fan out on the worker pool.
	cfgs := Configs()
	refs := make(map[string]metrics.Report, len(cfgs))
	for _, cfg := range cfgs {
		ref, err := s.reference(cfg, "PARK")
		if err != nil {
			return nil, err
		}
		refs[cfg.Name] = ref
	}

	type prediction struct {
		errs     map[metrics.Metric]float64
		mae      float64
		speedup  float64
		k        int
		degraded int
		err      error
	}
	jobs := append([]config.Config{}, cfgs...)
	jobs = append(jobs, cfgs[0]) // the capped variant reuses the SoC config
	rs, pool, _ := gridMap(s, len(jobs), func(ctx context.Context, i int) (prediction, error) {
		cfg := jobs[i]
		opts := s.baseOptions(cfg, "PARK")
		opts.FT.Inject = opts.FT.Inject.SplitSeed(uint64(i))
		capped := i == len(jobs)-1
		if capped {
			// The drastically-reduced variant: at most 10% of each group.
			opts.MaxFraction = 0.1
		}
		res, err := core.PredictContext(ctx, opts)
		if err != nil {
			return prediction{err: fmt.Errorf("fig10 %s capped=%v: %w", cfg.Name, capped, err)}, nil
		}
		errs := res.Errors(refs[cfg.Name])
		p := prediction{
			errs:    errs,
			mae:     metrics.MAE(errs, metrics.All()),
			speedup: res.Speedup(refs[cfg.Name]),
			k:       res.K,
		}
		if res.Degraded != nil {
			p.degraded = len(res.Degraded.FailedGroups)
		}
		return p, nil
	})
	out.Pool = pool
	point := func(i int) prediction {
		p := rs[i].Value
		if e := rs[i].Err; e != nil && p.err == nil {
			p.err = e
		}
		out.Faults.noteErr(p.err)
		out.Faults.noteDegraded(p.degraded)
		return p
	}
	for i, cfg := range cfgs {
		p := point(i)
		if p.err != nil {
			out.Failed[cfg.Name] = p.err.Error()
			continue
		}
		if p.degraded > 0 {
			out.Degraded[cfg.Name] = p.degraded
		}
		out.Errors[cfg.Name] = p.errs
		out.MAE[cfg.Name] = p.mae
		out.Speedup[cfg.Name] = p.speedup
		out.K[cfg.Name] = p.k
	}
	capped := point(len(jobs) - 1)
	if capped.err != nil {
		out.CappedErr = capped.err.Error()
	} else {
		out.CappedMAE = capped.mae
		out.CappedSpeedup = capped.speedup
	}
	return out, nil
}

// Render prints the figure as a table: one row per metric, one column per
// configuration.
func (r *Fig10Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 10 — absolute error per metric, fully optimized Zatel on PARK (%dx%d, %d spp)\n",
		r.Settings.Width, r.Settings.Height, r.Settings.SPP)
	hr(w, 72)
	names := make([]string, 0, len(r.Errors)+len(r.Failed))
	for name := range r.Errors {
		names = append(names, name)
	}
	for name := range r.Failed {
		names = append(names, name)
	}
	sort.Strings(names)
	cell := func(n, ok string) string {
		if _, failed := r.Failed[n]; failed {
			return "ERR"
		}
		if r.Degraded[n] > 0 {
			return ok + "†"
		}
		return ok
	}
	fmt.Fprintf(w, "%-22s", "Metric")
	for _, n := range names {
		fmt.Fprintf(w, "%16s", n)
	}
	fmt.Fprintln(w)
	for _, m := range metrics.All() {
		fmt.Fprintf(w, "%-22s", m)
		for _, n := range names {
			fmt.Fprintf(w, "%16s", cell(n, pct(r.Errors[n][m])))
		}
		fmt.Fprintln(w)
	}
	hr(w, 72)
	fmt.Fprintf(w, "%-22s", "MAE")
	for _, n := range names {
		fmt.Fprintf(w, "%16s", cell(n, pct(r.MAE[n])))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s", "Speedup")
	for _, n := range names {
		fmt.Fprintf(w, "%16s", cell(n, fmt.Sprintf("%.1fx", r.Speedup[n])))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s", "K")
	for _, n := range names {
		fmt.Fprintf(w, "%16s", cell(n, fmt.Sprintf("%d", r.K[n])))
	}
	fmt.Fprintln(w)
	if r.CappedErr != "" {
		fmt.Fprintf(w, "MobileSoC capped at 10%% pixels: ERR (%s)\n", r.CappedErr)
	} else {
		fmt.Fprintf(w, "MobileSoC capped at 10%% pixels: MAE %s, speedup %.1fx\n",
			pct(r.CappedMAE), r.CappedSpeedup)
	}
	r.Pool.Render(w)
	r.Faults.Render(w)
	fmt.Fprintf(w, "(paper: MAE 4.5%% SoC / 15.1%% RTX, ~10x speedup; 50x at 10%% cap with 5.2%% MAE)\n")
}
