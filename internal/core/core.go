// Package core implements Zatel itself: the seven-step prediction pipeline
// of Section III. Given a scene and a target GPU configuration it
//
//  1. profiles the per-pixel execution-time heatmap (functional mode),
//  2. quantizes the heatmap with K-means,
//  3. downscales the GPU by K = gcd(#SM, #MemPartitions),
//  4. divides the image plane into K groups (fine- or coarse-grained),
//  5. selects representative pixels per group (Eq. 1–3),
//  6. runs one downscaled simulator instance per group concurrently, and
//  7. extrapolates and combines the group statistics into the prediction.
package core

import (
	"context"
	"fmt"
	"time"

	"zatel/internal/combine"
	"zatel/internal/config"
	"zatel/internal/extrapolate"
	"zatel/internal/faults"
	"zatel/internal/gpu"
	"zatel/internal/heatmap"
	"zatel/internal/metrics"
	"zatel/internal/obs"
	"zatel/internal/partition"
	"zatel/internal/rt"
	"zatel/internal/runner"
	"zatel/internal/sampling"
	"zatel/internal/store"
	"zatel/internal/vecmath"
)

// Division selects the image-plane division method of Section III-D.
type Division uint8

const (
	// FineGrained deals small chunks to groups round-robin (the method
	// Zatel ships with: better and more stable accuracy).
	FineGrained Division = iota
	// CoarseGrained splits the plane into contiguous tiles; provided for
	// the Section IV-E comparison.
	CoarseGrained
)

// String implements fmt.Stringer.
func (d Division) String() string {
	if d == FineGrained {
		return "fine"
	}
	return "coarse"
}

// Valid reports whether d names one of the two division methods.
func (d Division) Valid() bool { return d == FineGrained || d == CoarseGrained }

// Options configures a prediction. Zero values select the paper's defaults.
type Options struct {
	// Config is the target (full-size) GPU.
	Config config.Config
	// Scene is a scene-library name.
	Scene string
	// Width, Height, SPP describe the frame (defaults 128×128×2).
	Width, Height, SPP int

	// K overrides the downscaling factor (0 = gcd rule).
	K int
	// NoDownscale runs the full GPU on one group — the Section IV-D mode
	// that isolates the representative-pixel optimization.
	NoDownscale bool
	// Division selects fine- or coarse-grained division.
	Division Division
	// ChunkW/ChunkH are the fine-grained chunk dimensions (default 32×2:
	// warp width, minimal height).
	ChunkW, ChunkH int
	// BlockW/BlockH are the coarse-grained section-block dimensions
	// (default 32×2).
	BlockW, BlockH int
	// QuantLevels is the K-means palette size (default 8).
	QuantLevels int
	// Dist is the colour distribution for pixel selection.
	Dist sampling.Distribution
	// Sampling tunes replicate counts, the confidence level and the
	// adaptive round schedule for the replicated strategies (stratified,
	// rankedset); ignored for the point-estimate strategies.
	Sampling SamplingOptions
	// TargetCIHalfWidth, when positive, enables adaptive sample sizing:
	// each group re-draws a Sampling.Growth-times-larger subset per round
	// until every metric's relative CI half-width (half-width divided by
	// |mean|) is at most this target, bounded by MaxFraction and
	// Sampling.MaxRounds. Requires a replicated strategy.
	TargetCIHalfWidth float64
	// FixedFraction forces each group to trace exactly this fraction
	// (0 = use Eq. 1).
	FixedFraction float64
	// MaxFraction caps the Eq. 1 budget (0 = no cap); the paper uses 0.1
	// to reach 50× speedup on PARK.
	MaxFraction float64
	// SingleGroup simulates only the first of the K groups and scales its
	// throughput by K — the Section IV-E downscaling experiment, where one
	// downscaled instance tracing 1/K of the pixels stands in for the
	// whole frame.
	SingleGroup bool
	// Regression enables the Section IV-F exponential-regression
	// extrapolation from runs at 20/30/40%.
	Regression bool
	// Parallel runs the group instances on the bounded worker pool
	// (internal/runner). The default runs them serially and reports the
	// slowest group as the simulation wall time — the honest model of the
	// paper's deployment (one simulator process per CPU core) that is also
	// correct on single-core hosts, where concurrent instances merely
	// time-slice.
	Parallel bool
	// Workers bounds the pool when Parallel is set (0 = one worker per
	// CPU core, runtime.GOMAXPROCS).
	Workers int
	// Seed roots block-selection randomness (default 1).
	Seed uint64
	// FT configures the step-6 fan-out's fault tolerance: per-group
	// retries, deadlines, the degradation quorum and fault injection. The
	// zero value runs each group once and degrades at quorum ceil(K/2).
	FT FaultTolerance
	// Store is the artifact store the pipeline's cacheable stages (the
	// workload trace via internal/rt, and the step-1/2 quantized heatmap)
	// go through. Nil selects the process-wide store.Default(). Note the
	// workload trace always lands in store.Default() regardless, since it
	// is shared infrastructure beyond this one prediction.
	Store *store.Store
}

// SamplingOptions tunes the repeated-subsampling machinery of the
// replicated selection strategies. Zero values select the defaults.
type SamplingOptions struct {
	// Replicates is the number of disjoint sub-draws per round (default 5).
	// Each replicate simulates and extrapolates independently; the spread
	// of the per-replicate estimates yields the confidence interval.
	Replicates int
	// Confidence is the interval's confidence level: 0.90, 0.95 (the
	// default) or 0.99 — the tabulated Student-t levels.
	Confidence float64
	// MaxRounds caps the adaptive re-draw rounds when TargetCIHalfWidth is
	// set (default 4); the last round's interval stands even if the target
	// was not met (GroupRun.TargetMet reports which).
	MaxRounds int
	// Growth multiplies the traced fraction between adaptive rounds
	// (default 1.5).
	Growth float64
}

// artifactStore resolves the store the prediction's stage hooks use.
func (o *Options) artifactStore() *store.Store {
	if o.Store != nil {
		return o.Store
	}
	return store.Default()
}

// FaultTolerance bundles the resilience knobs of the group fan-out. A
// failed or hung group instance no longer kills the whole prediction:
// groups retry with exponential backoff under per-attempt deadlines, and
// when a group exhausts its retries the prediction continues from the
// surviving groups as long as a quorum of them remains.
type FaultTolerance struct {
	// Attempts is the total number of times a failing group instance may
	// run (values <= 1 mean no retries).
	Attempts int
	// Backoff is the base wait before a group's second attempt; it doubles
	// per further attempt with seeded jitter (see runner.Policy).
	Backoff time.Duration
	// Timeout is the per-attempt deadline for one group instance (0 =
	// none).
	Timeout time.Duration
	// Quorum is the minimum number of surviving groups required to emit a
	// (possibly degraded) prediction: 0 selects the default ceil(K/2),
	// values above K clamp to K, and negative values demand every group
	// succeed (strict mode — any group failure is an error, the pre-fault-
	// tolerance behaviour).
	Quorum int
	// Inject configures the deterministic fault injector applied to every
	// group instance (zero = disabled); used by soak tests and the
	// -inject-* CLI flags.
	Inject faults.Config
}

// quorumFor resolves the configured quorum against the actual group count.
func (ft FaultTolerance) quorumFor(total int) int {
	switch {
	case ft.Quorum < 0, ft.Quorum > total:
		return total
	case ft.Quorum == 0:
		return (total + 1) / 2
	default:
		return ft.Quorum
	}
}

// Degradation reports a prediction that lost groups to failures but met
// quorum: which groups failed, why, after how many attempts, and what the
// surviving merge was re-weighted against.
type Degradation struct {
	// FailedGroups lists the indices of groups whose instances exhausted
	// their retries, in index order.
	FailedGroups []int
	// GroupErrors maps each failed group index to its final error.
	GroupErrors map[int]error
	// Attempts maps each failed group index to the attempts it consumed.
	Attempts map[int]int
	// Quorum is the surviving-group minimum that was in force.
	Quorum int
	// Survivors counts the groups that contributed to the prediction.
	Survivors int
	// Total is the number of groups the prediction fanned out to.
	Total int
}

// String summarises the degradation for logs and CLI output.
func (d *Degradation) String() string {
	return fmt.Sprintf("degraded: %d/%d groups failed %v (quorum %d, %d survivors re-weighted)",
		len(d.FailedGroups), d.Total, d.FailedGroups, d.Quorum, d.Survivors)
}

func (o *Options) fillDefaults() {
	if o.Width == 0 {
		o.Width = 128
	}
	if o.Height == 0 {
		o.Height = 128
	}
	if o.SPP == 0 {
		o.SPP = 2
	}
	if o.ChunkW == 0 {
		o.ChunkW = 32
	}
	if o.ChunkH == 0 {
		o.ChunkH = 2
	}
	if o.BlockW == 0 {
		o.BlockW = 32
	}
	if o.BlockH == 0 {
		o.BlockH = 2
	}
	if o.QuantLevels == 0 {
		o.QuantLevels = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Dist.Replicated() {
		if o.Sampling.Replicates == 0 {
			o.Sampling.Replicates = 5
		}
		if o.Sampling.Confidence == 0 {
			o.Sampling.Confidence = 0.95
		}
		if o.Sampling.MaxRounds == 0 {
			o.Sampling.MaxRounds = 4
		}
		if o.Sampling.Growth == 0 {
			o.Sampling.Growth = 1.5
		}
	}
}

// GroupRun records one group's simulation.
type GroupRun struct {
	// Report is the downscaled simulator's output for the group (for
	// regression mode, the run at the largest fraction).
	Report metrics.Report
	// Fraction is the traced-pixel fraction of the group.
	Fraction float64
	// Pixels and Selected count the group's pixels and traced pixels.
	Pixels   int
	Selected int
	// WallTime is the host time this group's simulation(s) took.
	WallTime time.Duration
	// QueueTime is how long the group waited for a pool worker — nonzero
	// when more groups than workers contend for the pool.
	QueueTime time.Duration
	// Attempts counts how many times the group's instance ran (retries
	// included; zero when the group was cancelled before starting).
	Attempts int
	// Err is the group's final error when it exhausted its retries; such
	// groups carry no Report and are excluded from the merged prediction.
	Err error
	// Intervals holds the group's per-metric confidence intervals when the
	// strategy is replicated (stratified, rankedset); nil otherwise. Report
	// then holds the final round's last replicate, and Fraction/Selected
	// cover the final round's replicates combined.
	Intervals combine.GroupIntervals
	// Replicates is the sub-draw count of the final round (0 for
	// point-estimate strategies).
	Replicates int
	// Rounds counts the adaptive re-draw rounds executed (1 when no CI
	// target was set; 0 for point-estimate strategies).
	Rounds int
	// TargetMet reports whether the CI half-width target was met (always
	// true when no target was set).
	TargetMet bool
}

// Result is a complete Zatel prediction.
type Result struct {
	// Predicted holds the final per-metric prediction.
	Predicted combine.GroupValues
	// Intervals holds the merged per-metric confidence intervals when the
	// strategy is replicated (stratified, rankedset); nil otherwise.
	// Predicted then equals the interval means.
	Intervals combine.GroupIntervals
	// Groups holds the per-group runs.
	Groups []GroupRun
	// K is the downscaling factor used.
	K int
	// Quantized is the heatmap the selection was driven by.
	Quantized *heatmap.Quantized
	// PreprocessTime covers heatmap generation and quantization.
	PreprocessTime time.Duration
	// SimWallTime is the simulation wall time: the slowest group when
	// groups run concurrently (they occupy separate CPU cores, as the
	// paper's methodology prescribes).
	SimWallTime time.Duration
	// TotalCPUTime sums all group simulation time.
	TotalCPUTime time.Duration
	// Degraded is non-nil when some groups failed but a quorum survived:
	// Predicted was merged from the survivors with fraction re-weighting.
	Degraded *Degradation
}

var filteredTrace = rt.FilteredTrace()

// StepSpanNames are the names of the seven top-level pipeline step spans
// PredictContext records, in pipeline order, when the context carries an
// obs.Tracer. They are the vocabulary of DESIGN.md's span taxonomy and the
// label values of zateld's zatel_step_latency_seconds histogram; together
// the seven spans cover (almost) the whole prediction wall time.
var StepSpanNames = []string{
	"step1_profile",   // functional workload trace fetch/build (heatmap source)
	"step2_quantize",  // K-means heatmap quantization (store-cached)
	"step3_downscale", // GPU config downscaling by K
	"step4_partition", // image-plane division into K groups
	"step5_select",    // representative-pixel selection (Eq. 1–3)
	"step6_simulate",  // per-group downscaled simulator fan-out
	"step7_combine",   // grading, degradation decision, extrapolate+merge
}

// Pipeline metrics, exposed through zateld's /metrics (see OPERATIONS.md).
var (
	mPredictions = obs.NewCounter("zatel_predictions_total",
		"pipeline executions completed successfully (degraded included)")
	mDegraded = obs.NewCounter("zatel_predict_degraded_total",
		"predictions that lost groups but met quorum")
	mGroupFailures = obs.NewCounter("zatel_predict_group_failures_total",
		"group instances that exhausted their retries")
)

// Predict runs the Zatel pipeline.
func Predict(opts Options) (*Result, error) {
	return PredictContext(context.Background(), opts)
}

// validate checks every option enum and range up front, before the
// expensive workload build: an invalid division or distribution must not
// cost a full path trace first.
func (o *Options) validate() error {
	if err := o.Config.Validate(); err != nil {
		return err
	}
	if o.FixedFraction < 0 || o.FixedFraction > 1 {
		return fmt.Errorf("core: FixedFraction %v out of [0,1]", o.FixedFraction)
	}
	if o.MaxFraction < 0 || o.MaxFraction > 1 {
		return fmt.Errorf("core: MaxFraction %v out of [0,1]", o.MaxFraction)
	}
	if !o.Division.Valid() {
		return fmt.Errorf("core: unknown division %d", o.Division)
	}
	if !o.Dist.Valid() {
		return fmt.Errorf("core: unknown distribution %d", o.Dist)
	}
	if o.TargetCIHalfWidth < 0 {
		return fmt.Errorf("core: negative TargetCIHalfWidth %v", o.TargetCIHalfWidth)
	}
	if o.TargetCIHalfWidth > 0 && !o.Dist.Replicated() {
		return fmt.Errorf("core: TargetCIHalfWidth requires a replicated strategy (stratified or rankedset), got %s", o.Dist)
	}
	if o.Dist.Replicated() {
		if o.Regression {
			return fmt.Errorf("core: Regression and replicated strategy %s are mutually exclusive extrapolation schemes", o.Dist)
		}
		if o.Sampling.Replicates < 2 {
			return fmt.Errorf("core: Sampling.Replicates %d < 2 (a confidence interval needs at least two sub-draws)", o.Sampling.Replicates)
		}
		switch o.Sampling.Confidence {
		case 0.90, 0.95, 0.99:
		default:
			return fmt.Errorf("core: Sampling.Confidence %v unsupported (want 0.90, 0.95 or 0.99)", o.Sampling.Confidence)
		}
		if o.Sampling.MaxRounds < 1 {
			return fmt.Errorf("core: Sampling.MaxRounds %d < 1", o.Sampling.MaxRounds)
		}
		if o.Sampling.Growth <= 1 {
			return fmt.Errorf("core: Sampling.Growth %v must exceed 1", o.Sampling.Growth)
		}
	}
	if o.K < 0 {
		return fmt.Errorf("core: negative downscaling factor %d", o.K)
	}
	if o.FT.Attempts < 0 {
		return fmt.Errorf("core: negative retry attempts %d", o.FT.Attempts)
	}
	if o.FT.Backoff < 0 || o.FT.Timeout < 0 {
		return fmt.Errorf("core: negative retry backoff %v or timeout %v", o.FT.Backoff, o.FT.Timeout)
	}
	if err := o.FT.Inject.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// PredictContext runs the Zatel pipeline. Cancelling ctx stops group
// simulations that have not started yet.
func PredictContext(ctx context.Context, opts Options) (*Result, error) {
	opts.fillDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}

	// Root span: everything below nests under it; the seven step spans
	// tile its duration (verified by TestTraceStepSpansCoverWallTime).
	ctx, root := obs.StartSpan(ctx, "predict")
	root.SetAttr("scene", opts.Scene)
	root.SetAttr("config", opts.Config.Name)
	defer root.End()

	// The functional workload (traces + per-pixel cost) is shared
	// infrastructure: the full simulation replays the same traces, and the
	// paper obtains the equivalent profile from a hardware GPU in seconds.
	// It is therefore fetched outside the timed preprocessing.
	s1ctx, sp1 := obs.StartSpan(ctx, "step1_profile")
	wl, err := rt.CachedWorkloadContext(s1ctx, opts.Scene, opts.Width, opts.Height, opts.SPP)
	sp1.End()
	if err != nil {
		return nil, err
	}

	// Step 1–2: heatmap generation and quantization, content-addressed in
	// the artifact store so the expensive K-means pass is paid once per
	// (workload, palette, seed) no matter how many predictions — with
	// different configs, fractions or divisions — reuse it. PreprocessTime
	// honestly reports what this call paid: the build on a miss, the
	// lookup on a hit.
	wkey := rt.WorkloadKey(opts.Scene, opts.Width, opts.Height, opts.SPP)
	preStart := time.Now()
	s2ctx, sp2 := obs.StartSpan(ctx, "step2_quantize")
	qv, _, err := opts.artifactStore().GetOrBuild(s2ctx,
		QuantizedKey(wkey, opts.QuantLevels, opts.Seed),
		func(context.Context) (any, int64, error) {
			hm, err := heatmap.FromCost(wl.Cost, wl.Width, wl.Height)
			if err != nil {
				return nil, 0, err
			}
			q, err := hm.Quantize(opts.QuantLevels, opts.Seed)
			if err != nil {
				return nil, 0, err
			}
			return q, quantizedSize(q), nil
		})
	sp2.End()
	if err != nil {
		return nil, err
	}
	quant := qv.(*heatmap.Quantized)
	preprocess := time.Since(preStart)

	// Step 3: GPU downscaling.
	_, sp3 := obs.StartSpan(ctx, "step3_downscale")
	k := opts.K
	if k == 0 {
		k = config.DownscaleFactor(opts.Config)
	}
	cfg := opts.Config
	if opts.NoDownscale {
		k = 1
	}
	if k > 1 {
		cfg, err = opts.Config.Downscale(k)
		if err != nil {
			sp3.End()
			return nil, err
		}
	}
	sp3.SetAttr("k", k)
	root.SetAttr("k", k)
	sp3.End()

	// Step 4: image-plane division.
	_, sp4 := obs.StartSpan(ctx, "step4_partition")
	var groups []partition.Group
	if opts.Division == FineGrained {
		groups, err = partition.Fine(wl.Width, wl.Height, k, opts.ChunkW, opts.ChunkH)
	} else {
		groups, err = partition.Coarse(wl.Width, wl.Height, k, opts.BlockW, opts.BlockH)
	}
	sp4.SetAttr("groups", len(groups))
	sp4.End()
	if err != nil {
		return nil, err
	}
	if opts.SingleGroup {
		groups = groups[:1]
	}

	// Step 5: representative pixel selection per group. The replicated
	// strategies only compute the budget here — their (possibly adaptive)
	// replicate draws happen inside the step-6 job, interleaved with the
	// simulations they grow from.
	_, sp5 := obs.StartSpan(ctx, "step5_select")
	rootRNG := vecmath.NewRNG(opts.Seed)
	type groupPlan struct {
		pixels   []int32
		selected map[int32]bool
		fraction float64
	}
	plans := make([]groupPlan, len(groups))
	for gi := range groups {
		g := &groups[gi]
		frac := opts.FixedFraction
		if frac == 0 {
			frac = sampling.Budget(quant, g)
			if opts.MaxFraction > 0 && frac > opts.MaxFraction {
				frac = opts.MaxFraction
			}
		}
		if opts.Dist.Replicated() {
			plans[gi] = groupPlan{pixels: g.AllPixels(), fraction: frac}
			continue
		}
		sel, err := sampling.Select(quant, g, frac, opts.Dist, rootRNG.Split(uint64(gi)+100))
		if err != nil {
			sp5.End()
			return nil, fmt.Errorf("core: group %d: %w", gi, err)
		}
		keep := make(map[int32]bool, len(sel.Pixels))
		for _, p := range sel.Pixels {
			keep[p] = true
		}
		plans[gi] = groupPlan{pixels: g.AllPixels(), selected: keep, fraction: sel.Fraction}
	}
	sp5.End()

	// Step 6: one downscaled simulator instance per group, scheduled on the
	// bounded worker pool. Serial mode is the one-worker pool, so ordering
	// and accounting are uniform; errors aggregate fail-soft across groups,
	// each group retrying per the fault-tolerance policy before it counts
	// as failed.
	workers := 1
	if opts.Parallel {
		workers = runner.PoolSize(opts.Workers)
	}
	type groupOut struct {
		run  GroupRun
		vals combine.GroupValues
	}
	job := func(_ context.Context, gi int) (groupOut, error) {
		if opts.Dist.Replicated() {
			run, err := simulateGroupReplicated(wl, cfg, quant, &groups[gi],
				plans[gi].pixels, plans[gi].fraction, &opts, gi)
			if err != nil {
				return groupOut{}, fmt.Errorf("group %d: %w", gi, err)
			}
			return groupOut{run: run, vals: run.Intervals.Means()}, nil
		}
		run, vals, err := simulateGroup(wl, cfg, plans[gi].pixels,
			plans[gi].selected, plans[gi].fraction, opts.Regression)
		if err != nil {
			return groupOut{}, fmt.Errorf("group %d: %w", gi, err)
		}
		return groupOut{run: run, vals: vals}, nil
	}
	if opts.FT.Inject.Enabled() {
		inj, err := faults.NewInjector(opts.FT.Inject)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		job = faults.Wrap(inj, job)
	}
	simStart := time.Now()
	s6ctx, sp6 := obs.StartSpan(ctx, "step6_simulate")
	results, jobErr := runner.MapPolicy(s6ctx, len(groups), runner.Policy{
		Workers:     workers,
		MaxAttempts: opts.FT.Attempts,
		Backoff:     opts.FT.Backoff,
		Timeout:     opts.FT.Timeout,
		JitterSeed:  opts.Seed,
		SpanPrefix:  "group",
	}, job)
	sp6.SetAttr("workers", workers)
	sp6.End()
	elapsed := time.Since(simStart)

	// Grade the fan-out: failed groups are recorded with their plan's
	// shape so callers can still render them; survivors feed the merge.
	_, sp7 := obs.StartSpan(ctx, "step7_combine")
	total := len(groups)
	runs := make([]GroupRun, total)
	values := make([]combine.GroupValues, 0, total)
	intervals := make([]combine.GroupIntervals, 0, total)
	var failed []int
	for gi := range results {
		r := &results[gi]
		if r.Err != nil {
			runs[gi] = GroupRun{
				Pixels:    len(plans[gi].pixels),
				Selected:  len(plans[gi].selected),
				Fraction:  plans[gi].fraction,
				WallTime:  r.WallTime,
				QueueTime: r.QueueTime,
				Attempts:  r.Attempts,
				Err:       r.Err,
			}
			failed = append(failed, gi)
			continue
		}
		runs[gi] = r.Value.run
		runs[gi].QueueTime = r.QueueTime
		runs[gi].Attempts = r.Attempts
		values = append(values, r.Value.vals)
		if r.Value.run.Intervals != nil {
			intervals = append(intervals, r.Value.run.Intervals)
		}
	}

	// Degradation decision: a quorum of surviving groups carries the
	// prediction (the stratified-sampling argument of DESIGN.md's failure
	// semantics); below quorum the aggregated failure is the result.
	quorum := opts.FT.quorumFor(total)
	survivors := total - len(failed)
	mGroupFailures.Add(uint64(len(failed)))
	if len(failed) > 0 && survivors < quorum {
		err := fmt.Errorf("core: %d/%d groups failed, quorum %d unmet: %w",
			len(failed), total, quorum, jobErr)
		sp7.SetAttr("error", err)
		sp7.End()
		return nil, err
	}

	// Step 7: combine the survivors, re-weighting throughput when groups
	// are missing.
	predicted, err := combine.MergeDegraded(values, total)
	if err != nil {
		sp7.SetAttr("error", err)
		sp7.End()
		return nil, err
	}
	var mergedIntervals combine.GroupIntervals
	if opts.Dist.Replicated() {
		mergedIntervals, err = combine.MergeIntervals(intervals, total, opts.Sampling.Confidence)
		if err != nil {
			sp7.SetAttr("error", err)
			sp7.End()
			return nil, err
		}
	}
	if opts.SingleGroup && k > 1 {
		// One group stands in for all K concurrent GPU slices: total
		// throughput is K times the measured slice.
		predicted[metrics.IPC] *= float64(k)
		if mergedIntervals != nil {
			iv := mergedIntervals[metrics.IPC]
			iv.Mean *= float64(k)
			iv.Low *= float64(k)
			iv.High *= float64(k)
			mergedIntervals[metrics.IPC] = iv
		}
	}
	sp7.SetAttr("survivors", survivors)
	sp7.End()

	res := &Result{
		Predicted:      predicted,
		Intervals:      mergedIntervals,
		Groups:         runs,
		K:              k,
		Quantized:      quant,
		PreprocessTime: preprocess,
	}
	mPredictions.Inc()
	if len(failed) > 0 {
		mDegraded.Inc()
		deg := &Degradation{
			FailedGroups: failed,
			GroupErrors:  make(map[int]error, len(failed)),
			Attempts:     make(map[int]int, len(failed)),
			Quorum:       quorum,
			Survivors:    survivors,
			Total:        total,
		}
		for _, gi := range failed {
			deg.GroupErrors[gi] = runs[gi].Err
			deg.Attempts[gi] = runs[gi].Attempts
		}
		res.Degraded = deg
	}
	// The deployed pipeline runs the K instances on K separate CPU cores,
	// so the user-visible simulation time is the slowest instance. When
	// the groups actually ran concurrently here, use the measured wall
	// time if it is larger (over-subscribed host).
	for _, r := range runs {
		res.TotalCPUTime += r.WallTime
		if r.WallTime > res.SimWallTime {
			res.SimWallTime = r.WallTime
		}
	}
	if opts.Parallel && elapsed > res.SimWallTime {
		res.SimWallTime = elapsed
	}
	return res, nil
}

// QuantizedKey addresses the step-1/2 artifact: the K-means-quantized
// heatmap is fully determined by the workload digest (which already
// canonicalises scene and resolution), the palette size, and the
// quantization seed.
func QuantizedKey(workload store.Digest, levels int, seed uint64) store.Digest {
	return store.NewKey("quant/v1").Str("workload", workload.String()).
		Int("levels", levels).Uint64("seed", seed).Digest()
}

// quantizedSize approximates a quantized heatmap's resident bytes for the
// store's budget accounting (the per-pixel index array dominates).
func quantizedSize(q *heatmap.Quantized) int64 {
	return int64(len(q.Index))*8 + int64(len(q.Levels))*8 + 64
}

// CacheKey returns the content address of the prediction these options
// describe: every field that influences the predicted values, the group
// outcomes or the degradation decision is canonicalised, after defaults
// are applied so explicit-default and zero-value options share a key.
//
// Parallel, Workers and Store are deliberately excluded: they choose an
// execution strategy, not a result. Group failures are deterministic in
// (injection seed, group index, attempt) regardless of pool size, so the
// same key always names the same prediction — only the recorded wall-clock
// timings vary, and a cached Result reports the timings of the build that
// produced it.
func (o Options) CacheKey() store.Digest {
	o.fillDefaults()
	// The sampling knobs only influence replicated strategies; normalise
	// them away otherwise so irrelevant settings don't split the cache.
	if !o.Dist.Replicated() {
		o.Sampling = SamplingOptions{}
		o.TargetCIHalfWidth = 0
	}
	k := store.NewKey("predict/v2")
	k.Str("scene", o.Scene).Int("w", o.Width).Int("h", o.Height).Int("spp", o.SPP)
	o.Config.KeyTo(k)
	k.Int("k", o.K).Bool("nodown", o.NoDownscale).Int("div", int(o.Division))
	k.Int("cw", o.ChunkW).Int("ch", o.ChunkH).Int("bw", o.BlockW).Int("bh", o.BlockH)
	k.Int("q", o.QuantLevels).Int("dist", int(o.Dist))
	k.Int("reps", o.Sampling.Replicates).Float("conf", o.Sampling.Confidence)
	k.Int("rounds", o.Sampling.MaxRounds).Float("growth", o.Sampling.Growth)
	k.Float("targetci", o.TargetCIHalfWidth)
	k.Float("frac", o.FixedFraction).Float("maxfrac", o.MaxFraction)
	k.Bool("single", o.SingleGroup).Bool("regr", o.Regression)
	k.Uint64("seed", o.Seed)
	k.Int("att", o.FT.Attempts).Dur("backoff", o.FT.Backoff).Dur("timeout", o.FT.Timeout)
	k.Int("quorum", o.FT.Quorum)
	k.Float("ierr", o.FT.Inject.ErrorRate).Float("ipanic", o.FT.Inject.PanicRate)
	k.Float("istrag", o.FT.Inject.StragglerRate).Dur("imean", o.FT.Inject.StragglerMean)
	k.Uint64("iseed", o.FT.Inject.Seed)
	return k.Digest()
}

// ResultSize approximates a Result's resident bytes for prediction-level
// caching (cmd/zateld): the quantized heatmap it retains dominates, plus
// the per-group runs and metric maps.
func ResultSize(r *Result) int64 {
	n := int64(len(r.Groups))*160 + int64(len(r.Predicted))*32 + 256
	if r.Quantized != nil {
		n += quantizedSize(r.Quantized)
	}
	return n
}

// simulateGroup runs one group's simulator instance(s) and produces its
// extrapolated metric values.
func simulateGroup(wl *rt.Workload, cfg config.Config, pixels []int32,
	selected map[int32]bool, fraction float64, regression bool) (GroupRun, combine.GroupValues, error) {

	run := GroupRun{Pixels: len(pixels), Selected: len(selected), Fraction: fraction}
	start := time.Now()

	if !regression {
		rep, err := gpu.Run(gpu.Job{Cfg: cfg, Source: groupSource{wl: wl, pixels: pixels, selected: selected}})
		if err != nil {
			return run, nil, err
		}
		run.Report = rep
		run.WallTime = time.Since(start)
		vals, err := combine.Linear(rep, fraction)
		return run, vals, err
	}

	// Regression mode (Section IV-F): simulate the group at 20/30/40% and
	// extrapolate each metric to 100% with an exponential fit, falling
	// back to linear extrapolation of the 40% run when the fit rejects
	// the samples.
	fracs := [3]float64{0.2, 0.3, 0.4}
	var reps [3]metrics.Report
	var sub map[int32]bool
	for i, f := range fracs {
		sub = subsetOf(pixels, selected, f)
		rep, err := gpu.Run(gpu.Job{Cfg: cfg, Source: groupSource{wl: wl, pixels: pixels, selected: sub}})
		if err != nil {
			return run, nil, err
		}
		reps[i] = rep
	}
	run.Report = reps[2]
	run.Fraction = fracs[2]
	// Report the actual subset size of the 40% run: subsetOf rounds, so
	// recomputing the count by truncation here could disagree by a pixel.
	run.Selected = len(sub)
	run.WallTime = time.Since(start)

	vals := make(combine.GroupValues, len(metrics.All()))
	for _, m := range metrics.All() {
		ys := [3]float64{reps[0].Value(m), reps[1].Value(m), reps[2].Value(m)}
		v, err := extrapolate.ExpRegression([3]float64{fracs[0], fracs[1], fracs[2]}, ys)
		if err != nil {
			// Fall back to the baseline extrapolation of the 40% run.
			if m.Absolute() {
				v, err = extrapolate.Linear(ys[2], fracs[2])
				if err != nil {
					return run, nil, err
				}
			} else {
				v = ys[2]
			}
		}
		vals[m] = v
	}
	return run, vals, nil
}

// simulateGroupReplicated runs one group under a replicated strategy: each
// round draws Sampling.Replicates disjoint sub-selections, simulates every
// replicate independently, extrapolates each by its own realized fraction,
// and builds the Student-t interval from the replicate spread. With a CI
// target set, rounds repeat with a Growth-times-larger fraction until every
// metric's relative half-width meets the target, the fraction hits its cap,
// or MaxRounds is exhausted. All draws derive from (seed, group index,
// round), so retries and re-runs are byte-identical.
func simulateGroupReplicated(wl *rt.Workload, cfg config.Config, quant *heatmap.Quantized,
	g *partition.Group, pixels []int32, frac0 float64, opts *Options, gi int) (GroupRun, error) {

	run := GroupRun{Pixels: len(pixels)}
	start := time.Now()
	sp := opts.Sampling
	maxFrac := 1.0
	if opts.MaxFraction > 0 {
		maxFrac = opts.MaxFraction
	}
	frac := frac0
	if frac > maxFrac {
		frac = maxFrac
	}
	groupRNG := vecmath.NewRNG(opts.Seed).Split(uint64(gi) + 100)
	for round := 1; ; round++ {
		sels, err := sampling.SelectReplicates(quant, g, frac, opts.Dist,
			sp.Replicates, groupRNG.Split(uint64(round)))
		if err != nil {
			return run, err
		}
		reps := make([]metrics.Report, len(sels))
		fracs := make([]float64, len(sels))
		selected := 0
		for i, sel := range sels {
			keep := make(map[int32]bool, len(sel.Pixels))
			for _, p := range sel.Pixels {
				keep[p] = true
			}
			rep, err := gpu.Run(gpu.Job{Cfg: cfg, Source: groupSource{wl: wl, pixels: pixels, selected: keep}})
			if err != nil {
				return run, err
			}
			reps[i] = rep
			fracs[i] = sel.Fraction
			selected += len(sel.Pixels)
		}
		ivs, err := combine.LinearReplicates(reps, fracs, sp.Confidence)
		if err != nil {
			return run, err
		}
		run.Report = reps[len(reps)-1]
		run.Fraction = float64(selected) / float64(len(pixels))
		run.Selected = selected
		run.Intervals = ivs
		run.Replicates = len(sels)
		run.Rounds = round
		run.TargetMet = opts.TargetCIHalfWidth == 0 ||
			ivs.MaxRelHalfWidth() <= opts.TargetCIHalfWidth
		if run.TargetMet || round >= sp.MaxRounds || frac >= maxFrac {
			break
		}
		frac *= sp.Growth
		if frac > maxFrac {
			frac = maxFrac
		}
	}
	run.WallTime = time.Since(start)
	return run, nil
}

// groupSource presents a group's thread list to the simulator without
// materialising it: selected pixels read their traces straight out of the
// workload, filtered pixels share the single two-instruction prologue
// trace. Groups used to copy one []rt.ThreadTrace per simulator call —
// for a full-resolution frame that was the largest per-prediction
// allocation after the workload itself.
type groupSource struct {
	wl       *rt.Workload
	pixels   []int32
	selected map[int32]bool
}

// Len implements rt.TraceSource.
func (g groupSource) Len() int { return len(g.pixels) }

// At implements rt.TraceSource.
func (g groupSource) At(i int) *rt.ThreadTrace {
	if p := g.pixels[i]; g.selected[p] {
		return &g.wl.Traces[p]
	}
	return &filteredTrace
}

// subsetOf trims a selection down to fraction f of the group, preferring
// already-selected pixels so the three regression runs nest.
func subsetOf(pixels []int32, selected map[int32]bool, f float64) map[int32]bool {
	target := int(f*float64(len(pixels)) + 0.5)
	out := make(map[int32]bool, target)
	for _, p := range pixels {
		if len(out) >= target {
			break
		}
		if selected[p] {
			out[p] = true
		}
	}
	if len(out) < target {
		for _, p := range pixels {
			if len(out) >= target {
				break
			}
			if !out[p] {
				out[p] = true
			}
		}
	}
	return out
}
