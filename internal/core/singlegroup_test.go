package core

import (
	"testing"

	"zatel/internal/config"
	"zatel/internal/metrics"
)

func TestSingleGroupMode(t *testing.T) {
	opts := small("BUNNY")
	opts.SingleGroup = true
	opts.FixedFraction = 1
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 {
		t.Fatalf("SingleGroup ran %d groups", len(res.Groups))
	}
	if res.K != 4 {
		t.Fatalf("K = %d", res.K)
	}
	// IPC must be the group's throughput scaled by K.
	groupIPC := res.Groups[0].Report.Value(metrics.IPC)
	if got := res.Predicted[metrics.IPC]; got < groupIPC*3.9 || got > groupIPC*4.1 {
		t.Errorf("predicted IPC %v, want ≈4x group IPC %v", got, groupIPC)
	}
	// Cycles are the group's own (one slice stands in for the frame).
	if got := res.Predicted[metrics.SimCycles]; got != float64(res.Groups[0].Report.Cycles) {
		t.Errorf("predicted cycles %v != group cycles %d", got, res.Groups[0].Report.Cycles)
	}
}

func TestSingleGroupPredictsReferenceShape(t *testing.T) {
	ref, err := Reference(config.MobileSoC(), "BUNNY", 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := small("BUNNY")
	opts.SingleGroup = true
	opts.FixedFraction = 1
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The downscaled single group must land in the right ballpark for
	// cycles (the Section IV-E result: <12% for fine division at paper
	// scale; allow a loose 60% at this tiny test frame).
	if e := res.Errors(ref)[metrics.SimCycles]; e > 0.6 {
		t.Errorf("single-group cycles error %v too high", e)
	}
}
