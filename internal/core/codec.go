package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"zatel/internal/combine"
	"zatel/internal/extrapolate"
	"zatel/internal/heatmap"
	"zatel/internal/metrics"
	"zatel/internal/store"
)

// Versioned disk-format tags of the pipeline's cacheable artifacts. Bump
// on any layout change so old entries read as unknown-kind misses.
const (
	QuantCodecKind   = "core.quant/v1"
	PredictCodecKind = "core.predict/v1"
)

func init() {
	store.RegisterCodec(quantCodec{})
	store.RegisterCodec(predictCodec{})
}

// quantCodec serializes the step-1/2 quantized heatmap: u32 width/height,
// u32 level count + f64 levels, u32 index count + u32 indices (little
// endian).
type quantCodec struct{}

// Kind implements store.Codec.
func (quantCodec) Kind() string { return QuantCodecKind }

// Encodes implements store.Codec.
func (quantCodec) Encodes(v any) bool {
	_, ok := v.(*heatmap.Quantized)
	return ok
}

// Encode implements store.Codec.
func (quantCodec) Encode(v any) ([]byte, error) {
	q, ok := v.(*heatmap.Quantized)
	if !ok {
		return nil, fmt.Errorf("core: quant codec cannot encode %T", v)
	}
	le := binary.LittleEndian
	buf := make([]byte, 0, 16+len(q.Levels)*8+len(q.Index)*4)
	buf = le.AppendUint32(buf, uint32(q.Width))
	buf = le.AppendUint32(buf, uint32(q.Height))
	buf = le.AppendUint32(buf, uint32(len(q.Levels)))
	for _, l := range q.Levels {
		buf = le.AppendUint64(buf, math.Float64bits(l))
	}
	buf = le.AppendUint32(buf, uint32(len(q.Index)))
	for _, i := range q.Index {
		if i < 0 || i >= len(q.Levels) {
			return nil, fmt.Errorf("core: quant index %d out of range for %d levels", i, len(q.Levels))
		}
		buf = le.AppendUint32(buf, uint32(i))
	}
	return buf, nil
}

// Decode implements store.Codec.
func (quantCodec) Decode(data []byte) (any, int64, error) {
	le := binary.LittleEndian
	if len(data) < 12 {
		return nil, 0, errors.New("core: quant payload truncated")
	}
	q := &heatmap.Quantized{
		Width:  int(le.Uint32(data[0:4])),
		Height: int(le.Uint32(data[4:8])),
	}
	nLevels := int(le.Uint32(data[8:12]))
	off := 12
	if nLevels <= 0 || len(data) < off+nLevels*8+4 {
		return nil, 0, fmt.Errorf("core: quant payload truncated at %d levels", nLevels)
	}
	q.Levels = make([]float64, nLevels)
	for i := range q.Levels {
		q.Levels[i] = math.Float64frombits(le.Uint64(data[off : off+8]))
		off += 8
	}
	nIndex := int(le.Uint32(data[off : off+4]))
	off += 4
	if nIndex != q.Width*q.Height || len(data) != off+nIndex*4 {
		return nil, 0, fmt.Errorf("core: quant index count %d disagrees with %dx%d / payload size",
			nIndex, q.Width, q.Height)
	}
	q.Index = make([]int, nIndex)
	for i := range q.Index {
		idx := int(le.Uint32(data[off : off+4]))
		off += 4
		if idx >= nLevels {
			return nil, 0, fmt.Errorf("core: quant index %d out of range for %d levels", idx, nLevels)
		}
		q.Index[i] = idx
	}
	return q, quantizedSize(q), nil
}

// predictCodec serializes whole predictions (core.Result) as a versioned
// JSON mirror: predictions are small (a few KB), so self-describing JSON
// beats hand-rolled binary here, and the mirror types keep the disk format
// decoupled from in-memory struct evolution. Metric maps are keyed by the
// Table I metric names; errors are carried as strings.
type predictCodec struct{}

// Kind implements store.Codec.
func (predictCodec) Kind() string { return PredictCodecKind }

// Encodes implements store.Codec.
func (predictCodec) Encodes(v any) bool {
	_, ok := v.(*Result)
	return ok
}

type intervalJSON struct {
	Mean       float64 `json:"mean"`
	Low        float64 `json:"low"`
	High       float64 `json:"high"`
	Replicates int     `json:"replicates"`
}

type groupRunJSON struct {
	Report     metrics.Report          `json:"report"`
	Fraction   float64                 `json:"fraction"`
	Pixels     int                     `json:"pixels"`
	Selected   int                     `json:"selected"`
	WallNs     int64                   `json:"wall_ns"`
	QueueNs    int64                   `json:"queue_ns"`
	Attempts   int                     `json:"attempts"`
	Err        string                  `json:"err,omitempty"`
	Intervals  map[string]intervalJSON `json:"intervals,omitempty"`
	Replicates int                     `json:"replicates,omitempty"`
	Rounds     int                     `json:"rounds,omitempty"`
	TargetMet  bool                    `json:"target_met"`
}

type degradationJSON struct {
	FailedGroups []int          `json:"failed_groups"`
	GroupErrors  map[int]string `json:"group_errors"`
	Attempts     map[int]int    `json:"attempts"`
	Quorum       int            `json:"quorum"`
	Survivors    int            `json:"survivors"`
	Total        int            `json:"total"`
}

type resultJSON struct {
	Predicted    map[string]float64      `json:"predicted"`
	Intervals    map[string]intervalJSON `json:"intervals,omitempty"`
	Groups       []groupRunJSON          `json:"groups"`
	K            int                     `json:"k"`
	QuantizedB64 []byte                  `json:"quantized,omitempty"`
	PreprocessNs int64                   `json:"preprocess_ns"`
	SimWallNs    int64                   `json:"sim_wall_ns"`
	TotalCPUNs   int64                   `json:"total_cpu_ns"`
	Degraded     *degradationJSON        `json:"degraded,omitempty"`
}

// metricByName resolves the Table I names used as JSON map keys.
var metricByName = func() map[string]metrics.Metric {
	m := make(map[string]metrics.Metric, len(metrics.All()))
	for _, mt := range metrics.All() {
		m[mt.String()] = mt
	}
	return m
}()

func valuesToJSON(v combine.GroupValues) map[string]float64 {
	if v == nil {
		return nil
	}
	out := make(map[string]float64, len(v))
	for m, x := range v {
		out[m.String()] = x
	}
	return out
}

func valuesFromJSON(v map[string]float64) (combine.GroupValues, error) {
	if v == nil {
		return nil, nil
	}
	out := make(combine.GroupValues, len(v))
	for name, x := range v {
		m, ok := metricByName[name]
		if !ok {
			return nil, fmt.Errorf("core: unknown metric %q in cached prediction", name)
		}
		out[m] = x
	}
	return out, nil
}

func intervalsToJSON(iv combine.GroupIntervals) map[string]intervalJSON {
	if iv == nil {
		return nil
	}
	out := make(map[string]intervalJSON, len(iv))
	for m, i := range iv {
		out[m.String()] = intervalJSON{Mean: i.Mean, Low: i.Low, High: i.High, Replicates: i.Replicates}
	}
	return out
}

func intervalsFromJSON(iv map[string]intervalJSON) (combine.GroupIntervals, error) {
	if iv == nil {
		return nil, nil
	}
	out := make(combine.GroupIntervals, len(iv))
	for name, i := range iv {
		m, ok := metricByName[name]
		if !ok {
			return nil, fmt.Errorf("core: unknown metric %q in cached intervals", name)
		}
		out[m] = extrapolate.Interval{Mean: i.Mean, Low: i.Low, High: i.High, Replicates: i.Replicates}
	}
	return out, nil
}

// Encode implements store.Codec.
func (predictCodec) Encode(v any) ([]byte, error) {
	r, ok := v.(*Result)
	if !ok {
		return nil, fmt.Errorf("core: predict codec cannot encode %T", v)
	}
	mirror := resultJSON{
		Predicted:    valuesToJSON(r.Predicted),
		Intervals:    intervalsToJSON(r.Intervals),
		Groups:       make([]groupRunJSON, len(r.Groups)),
		K:            r.K,
		PreprocessNs: int64(r.PreprocessTime),
		SimWallNs:    int64(r.SimWallTime),
		TotalCPUNs:   int64(r.TotalCPUTime),
	}
	if r.Quantized != nil {
		qb, err := (quantCodec{}).Encode(r.Quantized)
		if err != nil {
			return nil, err
		}
		mirror.QuantizedB64 = qb
	}
	for gi, g := range r.Groups {
		gj := groupRunJSON{
			Report:     g.Report,
			Fraction:   g.Fraction,
			Pixels:     g.Pixels,
			Selected:   g.Selected,
			WallNs:     int64(g.WallTime),
			QueueNs:    int64(g.QueueTime),
			Attempts:   g.Attempts,
			Intervals:  intervalsToJSON(g.Intervals),
			Replicates: g.Replicates,
			Rounds:     g.Rounds,
			TargetMet:  g.TargetMet,
		}
		if g.Err != nil {
			gj.Err = g.Err.Error()
		}
		mirror.Groups[gi] = gj
	}
	if d := r.Degraded; d != nil {
		dj := &degradationJSON{
			FailedGroups: d.FailedGroups,
			GroupErrors:  make(map[int]string, len(d.GroupErrors)),
			Attempts:     d.Attempts,
			Quorum:       d.Quorum,
			Survivors:    d.Survivors,
			Total:        d.Total,
		}
		for gi, err := range d.GroupErrors {
			dj.GroupErrors[gi] = err.Error()
		}
		mirror.Degraded = dj
	}
	return json.Marshal(mirror)
}

// Decode implements store.Codec.
func (predictCodec) Decode(data []byte) (any, int64, error) {
	var mirror resultJSON
	if err := json.Unmarshal(data, &mirror); err != nil {
		return nil, 0, fmt.Errorf("core: cached prediction: %w", err)
	}
	predicted, err := valuesFromJSON(mirror.Predicted)
	if err != nil {
		return nil, 0, err
	}
	intervals, err := intervalsFromJSON(mirror.Intervals)
	if err != nil {
		return nil, 0, err
	}
	r := &Result{
		Predicted:      predicted,
		Intervals:      intervals,
		Groups:         make([]GroupRun, len(mirror.Groups)),
		K:              mirror.K,
		PreprocessTime: time.Duration(mirror.PreprocessNs),
		SimWallTime:    time.Duration(mirror.SimWallNs),
		TotalCPUTime:   time.Duration(mirror.TotalCPUNs),
	}
	if len(mirror.QuantizedB64) > 0 {
		qv, _, err := (quantCodec{}).Decode(mirror.QuantizedB64)
		if err != nil {
			return nil, 0, err
		}
		r.Quantized = qv.(*heatmap.Quantized)
	}
	for gi, gj := range mirror.Groups {
		ivs, err := intervalsFromJSON(gj.Intervals)
		if err != nil {
			return nil, 0, err
		}
		g := GroupRun{
			Report:     gj.Report,
			Fraction:   gj.Fraction,
			Pixels:     gj.Pixels,
			Selected:   gj.Selected,
			WallTime:   time.Duration(gj.WallNs),
			QueueTime:  time.Duration(gj.QueueNs),
			Attempts:   gj.Attempts,
			Intervals:  ivs,
			Replicates: gj.Replicates,
			Rounds:     gj.Rounds,
			TargetMet:  gj.TargetMet,
		}
		if gj.Err != "" {
			g.Err = errors.New(gj.Err)
		}
		r.Groups[gi] = g
	}
	if dj := mirror.Degraded; dj != nil {
		d := &Degradation{
			FailedGroups: dj.FailedGroups,
			GroupErrors:  make(map[int]error, len(dj.GroupErrors)),
			Attempts:     dj.Attempts,
			Quorum:       dj.Quorum,
			Survivors:    dj.Survivors,
			Total:        dj.Total,
		}
		for gi, msg := range dj.GroupErrors {
			d.GroupErrors[gi] = errors.New(msg)
		}
		r.Degraded = d
	}
	return r, ResultSize(r), nil
}
