package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"zatel/internal/config"
	"zatel/internal/obs"
	"zatel/internal/store"
)

// TestTraceStepSpansCoverWallTime is the tracing acceptance check: a traced
// prediction records exactly one span per pipeline step, all parented on the
// root "predict" span, and the seven step durations tile the prediction's
// wall time (the steps run back-to-back, so their sum must account for
// nearly all of the root span — anything less means untraced time).
func TestTraceStepSpansCoverWallTime(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)
	_, err := PredictContext(ctx, Options{
		Config: config.MobileSoC(),
		Scene:  "SPRNG",
		Width:  48, Height: 48, SPP: 1,
		Parallel: true,
		Store:    store.New(0),
	})
	if err != nil {
		t.Fatalf("PredictContext: %v", err)
	}

	spans := tr.Snapshot()
	byName := map[string][]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	roots := byName["predict"]
	if len(roots) != 1 {
		t.Fatalf("got %d predict spans, want 1", len(roots))
	}
	root := roots[0]

	var sum time.Duration
	for _, name := range StepSpanNames {
		got := byName[name]
		if len(got) != 1 {
			t.Fatalf("got %d %q spans, want 1", len(got), name)
		}
		s := got[0]
		if s.Parent != root.ID {
			t.Errorf("%s parent = %d, want root %d", name, s.Parent, root.ID)
		}
		if s.Start < root.Start || s.Start+s.Dur > root.Start+root.Dur+time.Millisecond {
			t.Errorf("%s [%v +%v] escapes root [%v +%v]", name, s.Start, s.Dur, root.Start, root.Dur)
		}
		sum += s.Dur
	}
	if sum > root.Dur+time.Millisecond {
		t.Errorf("step spans sum %v exceeds root %v", sum, root.Dur)
	}
	if sum < root.Dur*7/10 {
		t.Errorf("step spans sum %v covers <70%% of root %v — untraced pipeline time", sum, root.Dur)
	}

	// The fan-out detail must be present too: per-group job spans under
	// step6 with nested attempt spans, and the store spans under steps 1–2.
	step6 := byName["step6_simulate"][0]
	groups := byName["group[0]"]
	if len(groups) != 1 || groups[0].Parent != step6.ID {
		t.Errorf("group[0] spans = %+v, want exactly one under step6 (id %d)", groups, step6.ID)
	}
	if len(byName["attempt"]) == 0 {
		t.Errorf("no attempt spans recorded under the group fan-out")
	}
	if len(byName["store.build"])+len(byName["store.hit"]) == 0 {
		t.Errorf("no store spans recorded for workload/quantize artifacts")
	}

	// And the whole thing must export as valid Chrome trace_event JSON.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) < len(StepSpanNames)+1 {
		t.Fatalf("trace export has %d events, want at least %d", len(parsed.TraceEvents), len(StepSpanNames)+1)
	}
}

// TestUntracedPredictRecordsNothing pins the zero-cost contract: without a
// tracer on the context the pipeline must not record spans anywhere.
func TestUntracedPredictRecordsNothing(t *testing.T) {
	_, err := Predict(Options{
		Config: config.MobileSoC(),
		Scene:  "SPRNG",
		Width:  32, Height: 32, SPP: 1,
		Store: store.New(0),
	})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if tr := obs.FromContext(context.Background()); tr != nil {
		t.Fatalf("background context unexpectedly carries a tracer")
	}
}
