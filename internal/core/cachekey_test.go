package core

import (
	"testing"

	"zatel/internal/config"
	"zatel/internal/rt"
	"zatel/internal/sampling"
	"zatel/internal/store"
)

// TestCacheKeyGolden pins the prediction cache key to a concrete digest.
// These digests are served to zateld clients and would address any on-disk
// cache layer, so a silent change to the canonical encoding — a reordered
// field, a renamed tag, a new Options or Config field not reflected in a
// version bump — must fail CI rather than silently splitting or colliding
// the cache.
func TestCacheKeyGolden(t *testing.T) {
	o := Options{Config: config.MobileSoC(), Scene: "PARK"}
	const want = "dbbb2a24aa5ba5b00cd007597aed6b29a2fef935bb921021793ba29e9d633e1d"
	if got := o.CacheKey().String(); got != want {
		t.Errorf("CacheKey = %s, want %s\n(deliberate format change? bump predict/v2 and update)", got, want)
	}

	wk := rt.WorkloadKey("PARK", 128, 128, 2)
	const wantWL = "511d438be28144494c058ce1551b941cfddd06e90380f5fb970d9bae95b680bc"
	if wk.String() != wantWL {
		t.Errorf("WorkloadKey = %s, want %s", wk, wantWL)
	}
	const wantQ = "3624b0d39ab0b2c4e0cf6300efefa2bcbda5eb8ea20b43005cf98dc15305dcaa"
	if got := QuantizedKey(wk, 8, 1).String(); got != wantQ {
		t.Errorf("QuantizedKey = %s, want %s", got, wantQ)
	}
}

// TestCacheKeyDefaultsApplied: zero-value options and options with the
// defaults spelled out are the same prediction, so they must share a key.
func TestCacheKeyDefaultsApplied(t *testing.T) {
	zero := Options{Config: config.MobileSoC(), Scene: "PARK"}
	explicit := Options{
		Config: config.MobileSoC(), Scene: "PARK",
		Width: 128, Height: 128, SPP: 2,
		ChunkW: 32, ChunkH: 2, BlockW: 32, BlockH: 2,
		QuantLevels: 8, Seed: 1,
	}
	if zero.CacheKey() != explicit.CacheKey() {
		t.Error("explicit defaults changed the cache key")
	}
}

// TestCacheKeyExecutionStrategyInvariant: Parallel/Workers/Store pick how a
// prediction runs, not what it predicts, so they must not split the cache.
func TestCacheKeyExecutionStrategyInvariant(t *testing.T) {
	base := Options{Config: config.RTX2060(), Scene: "BATH", Seed: 7}
	variant := base
	variant.Parallel = true
	variant.Workers = 4
	variant.Store = store.New(0)
	if base.CacheKey() != variant.CacheKey() {
		t.Error("execution-strategy fields leaked into the cache key")
	}
}

// TestCacheKeySamplingNormalised: the sampling knobs only influence
// replicated strategies, so setting them under a point-estimate strategy
// must not split the cache.
func TestCacheKeySamplingNormalised(t *testing.T) {
	base := Options{Config: config.MobileSoC(), Scene: "PARK"}
	variant := base
	variant.Sampling = SamplingOptions{Replicates: 9, Confidence: 0.99, MaxRounds: 7, Growth: 3}
	if base.CacheKey() != variant.CacheKey() {
		t.Error("sampling knobs split the cache for a point-estimate strategy")
	}
}

// TestCacheKeySensitivity: every class of semantic field must move the key.
func TestCacheKeySensitivity(t *testing.T) {
	base := Options{Config: config.MobileSoC(), Scene: "PARK"}
	mutate := map[string]func(*Options){
		"scene":       func(o *Options) { o.Scene = "BATH" },
		"config":      func(o *Options) { o.Config = config.RTX2060() },
		"resolution":  func(o *Options) { o.Width = 64 },
		"spp":         func(o *Options) { o.SPP = 4 },
		"division":    func(o *Options) { o.Division = CoarseGrained },
		"fraction":    func(o *Options) { o.FixedFraction = 0.4 },
		"maxfraction": func(o *Options) { o.MaxFraction = 0.1 },
		"k":           func(o *Options) { o.K = 2 },
		"regression":  func(o *Options) { o.Regression = true },
		"seed":        func(o *Options) { o.Seed = 99 },
		"attempts":    func(o *Options) { o.FT.Attempts = 3 },
		"quorum":      func(o *Options) { o.FT.Quorum = -1 },
		"injection":   func(o *Options) { o.FT.Inject.ErrorRate = 0.3 },
		"dist":        func(o *Options) { o.Dist = sampling.Stratified },
		"replicates":  func(o *Options) { o.Dist = sampling.Stratified; o.Sampling.Replicates = 8 },
		"confidence":  func(o *Options) { o.Dist = sampling.Stratified; o.Sampling.Confidence = 0.99 },
		"rounds":      func(o *Options) { o.Dist = sampling.Stratified; o.Sampling.MaxRounds = 6 },
		"growth":      func(o *Options) { o.Dist = sampling.Stratified; o.Sampling.Growth = 2 },
		"targetci":    func(o *Options) { o.Dist = sampling.Stratified; o.TargetCIHalfWidth = 0.05 },
	}
	seen := map[store.Digest]string{base.CacheKey(): "base"}
	for name, f := range mutate {
		o := base
		f(&o)
		d := o.CacheKey()
		if prev, dup := seen[d]; dup {
			t.Errorf("mutating %q collides with %q", name, prev)
		}
		seen[d] = name
	}
}
