package core

import (
	"math"
	"testing"

	"zatel/internal/config"
	"zatel/internal/metrics"
	"zatel/internal/sampling"
)

// small returns fast default options for unit tests (64×64, 1 spp).
func small(scene string) Options {
	return Options{
		Config: config.MobileSoC(),
		Scene:  scene,
		Width:  64, Height: 64, SPP: 1,
		Dist: sampling.Uniform,
	}
}

func TestPredictValidation(t *testing.T) {
	opts := small("PARK")
	opts.FixedFraction = 1.5
	if _, err := Predict(opts); err == nil {
		t.Error("fraction 1.5 accepted")
	}
	opts = small("NOPE")
	if _, err := Predict(opts); err == nil {
		t.Error("unknown scene accepted")
	}
	opts = small("PARK")
	opts.Config.NumSMs = 0
	if _, err := Predict(opts); err == nil {
		t.Error("invalid config accepted")
	}
	opts = small("PARK")
	opts.K = 3 // does not divide 8 SMs / 4 partitions
	if _, err := Predict(opts); err == nil {
		t.Error("non-dividing K accepted")
	}
}

func TestPredictPipelineShape(t *testing.T) {
	res, err := Predict(small("PARK"))
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Errorf("K = %d, want gcd(8,4)=4", res.K)
	}
	if len(res.Groups) != 4 {
		t.Errorf("%d groups", len(res.Groups))
	}
	for gi, g := range res.Groups {
		if g.Fraction < sampling.MinPercent-0.05 || g.Fraction > sampling.MaxPercent+0.05 {
			t.Errorf("group %d fraction %v outside Eq.1 clamp", gi, g.Fraction)
		}
		if g.Pixels != 64*64/4 {
			t.Errorf("group %d has %d pixels", gi, g.Pixels)
		}
		if g.Report.Cycles == 0 {
			t.Errorf("group %d simulated nothing", gi)
		}
	}
	for _, m := range metrics.All() {
		v, ok := res.Predicted[m]
		if !ok {
			t.Fatalf("missing predicted metric %s", m)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("%s predicted %v", m, v)
		}
	}
	if res.Quantized == nil || len(res.Quantized.Levels) == 0 {
		t.Error("no quantized heatmap")
	}
}

func TestPredictAccuracyAgainstReference(t *testing.T) {
	ref, err := Reference(config.MobileSoC(), "PARK", 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Predict(small("PARK"))
	if err != nil {
		t.Fatal(err)
	}
	errs := res.Errors(ref)
	// Headline sanity: the default pipeline must land within 50% on
	// simulation cycles and IPC even at this small test resolution.
	if errs[metrics.SimCycles] > 0.5 {
		t.Errorf("cycles error %v too high", errs[metrics.SimCycles])
	}
	if errs[metrics.IPC] > 0.5 {
		t.Errorf("IPC error %v too high", errs[metrics.IPC])
	}
	if sp := res.Speedup(ref); sp <= 0 {
		t.Errorf("speedup %v", sp)
	}
}

func TestFullFractionNoDownscaleMatchesReference(t *testing.T) {
	// Tracing 100% of pixels on the full GPU must reproduce the reference
	// closely (only warp launch order differs).
	ref, err := Reference(config.MobileSoC(), "SPNZA", 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := small("SPNZA")
	opts.NoDownscale = true
	opts.FixedFraction = 1
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 1 || res.K != 1 {
		t.Fatalf("NoDownscale gave K=%d groups=%d", res.K, len(res.Groups))
	}
	errs := res.Errors(ref)
	for _, m := range metrics.All() {
		if errs[m] > 0.1 {
			t.Errorf("%s error %v at 100%% pixels, want <10%%", m, errs[m])
		}
	}
	// Instructions must match exactly: same threads, same GPU.
	if res.Groups[0].Report.Instructions != ref.Instructions {
		t.Errorf("instructions %d != reference %d",
			res.Groups[0].Report.Instructions, ref.Instructions)
	}
}

func TestFixedFractionHonoured(t *testing.T) {
	opts := small("BUNNY")
	opts.FixedFraction = 0.2
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range res.Groups {
		if math.Abs(g.Fraction-0.2) > 0.08 {
			t.Errorf("group %d fraction %v, want ≈0.2", gi, g.Fraction)
		}
	}
}

func TestMaxFractionCap(t *testing.T) {
	opts := small("SHIP") // cold scene: Eq.1 would choose 0.6
	opts.MaxFraction = 0.1
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range res.Groups {
		if g.Fraction > 0.15 {
			t.Errorf("group %d fraction %v exceeds 0.1 cap", gi, g.Fraction)
		}
	}
}

func TestKOverride(t *testing.T) {
	opts := small("SPRNG")
	opts.K = 2
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 || len(res.Groups) != 2 {
		t.Errorf("K=%d groups=%d, want 2/2", res.K, len(res.Groups))
	}
}

func TestCoarseDivision(t *testing.T) {
	opts := small("CHSNT")
	opts.Division = CoarseGrained
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("%d groups", len(res.Groups))
	}
	for _, m := range metrics.All() {
		if v := res.Predicted[m]; math.IsNaN(v) || v < 0 {
			t.Errorf("coarse %s = %v", m, v)
		}
	}
}

func TestSeedDeterminism(t *testing.T) {
	a, err := Predict(small("WKND"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Predict(small("WKND"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metrics.All() {
		if a.Predicted[m] != b.Predicted[m] {
			t.Errorf("%s differs across identical runs: %v vs %v", m, a.Predicted[m], b.Predicted[m])
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	seq := small("SPRNG")
	par := small("SPRNG")
	par.Parallel = true
	a, err := Predict(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Predict(par)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metrics.All() {
		if a.Predicted[m] != b.Predicted[m] {
			t.Errorf("%s differs between sequential and parallel", m)
		}
	}
}

func TestRegressionMode(t *testing.T) {
	opts := small("BUNNY")
	opts.Regression = true
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range metrics.All() {
		v := res.Predicted[m]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("regression %s = %v", m, v)
		}
	}
	// The recorded group runs are the 40% simulations.
	for gi, g := range res.Groups {
		if math.Abs(g.Fraction-0.4) > 1e-9 {
			t.Errorf("group %d recorded fraction %v, want 0.4", gi, g.Fraction)
		}
	}
}

func TestReferenceCaching(t *testing.T) {
	a, err := Reference(config.MobileSoC(), "SHIP", 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reference(config.MobileSoC(), "SHIP", 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cached reference differs (WallTime must be preserved)")
	}
	if a.WallTime == 0 {
		t.Error("reference wall time not recorded")
	}
}

func TestErrorsAndSpeedupHelpers(t *testing.T) {
	ref, err := Reference(config.MobileSoC(), "SPRNG", 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Predict(small("SPRNG"))
	if err != nil {
		t.Fatal(err)
	}
	errs := res.Errors(ref)
	if len(errs) != len(metrics.All()) {
		t.Errorf("Errors returned %d metrics", len(errs))
	}
	for m, e := range errs {
		if e < 0 {
			t.Errorf("%s error negative: %v", m, e)
		}
	}
	if res.Speedup(ref) <= 0 {
		t.Error("non-positive speedup")
	}
}

func TestDivisionString(t *testing.T) {
	if FineGrained.String() != "fine" || CoarseGrained.String() != "coarse" {
		t.Error("division names wrong")
	}
}
