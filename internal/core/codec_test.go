package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"zatel/internal/combine"
	"zatel/internal/heatmap"
	"zatel/internal/metrics"
)

func testQuantized() *heatmap.Quantized {
	q := &heatmap.Quantized{
		Width:  4,
		Height: 3,
		Levels: []float64{0.5, 1.25, 7.75},
		Index:  make([]int, 12),
	}
	for i := range q.Index {
		q.Index[i] = i % len(q.Levels)
	}
	return q
}

func TestQuantCodecRoundTrip(t *testing.T) {
	q := testQuantized()
	c := quantCodec{}
	if !c.Encodes(q) {
		t.Fatal("Encodes(*Quantized) = false")
	}
	data, err := c.Encode(q)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	v, size, err := c.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got := v.(*heatmap.Quantized)
	if !reflect.DeepEqual(q, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", q, got)
	}
	if size <= 0 {
		t.Fatalf("size = %d, want > 0", size)
	}
}

func TestQuantCodecRejectsCorruption(t *testing.T) {
	c := quantCodec{}
	data, err := c.Encode(testQuantized())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for _, n := range []int{0, 11, len(data) / 2, len(data) - 1} {
		if _, _, err := c.Decode(data[:n]); err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", n, len(data))
		}
	}
	// An index pointing past the level table must be rejected.
	bad := append([]byte{}, data...)
	bad[len(bad)-4] = 0xFF
	if _, _, err := c.Decode(bad); err == nil {
		t.Fatal("Decode with out-of-range index succeeded")
	}
}

func testResult() *Result {
	iv := combine.GroupIntervals{
		metrics.IPC: {Mean: 1.5, Low: 1.2, High: 1.8, Replicates: 9},
	}
	return &Result{
		Predicted: combine.GroupValues{
			metrics.IPC:           1.5,
			metrics.BWUtilization: 0.62,
		},
		Intervals: iv,
		Groups: []GroupRun{
			{
				Report:     metrics.Report{Cycles: 9000, Instructions: 12600, WallTime: 80 * time.Millisecond},
				Fraction:   0.25,
				Pixels:     144,
				Selected:   36,
				WallTime:   90 * time.Millisecond,
				QueueTime:  5 * time.Millisecond,
				Attempts:   1,
				Intervals:  iv,
				Replicates: 9,
				Rounds:     2,
				TargetMet:  true,
			},
			{
				Fraction: 0.5,
				Pixels:   144,
				Attempts: 3,
				Err:      errors.New("runner: injected failure"),
			},
		},
		K:              4,
		Quantized:      testQuantized(),
		PreprocessTime: 12 * time.Millisecond,
		SimWallTime:    200 * time.Millisecond,
		TotalCPUTime:   800 * time.Millisecond,
		Degraded: &Degradation{
			FailedGroups: []int{1},
			GroupErrors:  map[int]error{1: errors.New("runner: injected failure")},
			Attempts:     map[int]int{0: 1, 1: 3},
			Quorum:       3,
			Survivors:    3,
			Total:        4,
		},
	}
}

func TestPredictCodecRoundTrip(t *testing.T) {
	r := testResult()
	c := predictCodec{}
	if !c.Encodes(r) {
		t.Fatal("Encodes(*Result) = false")
	}
	data, err := c.Encode(r)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	v, size, err := c.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got := v.(*Result)
	if size <= 0 {
		t.Fatalf("size = %d, want > 0", size)
	}
	if !reflect.DeepEqual(r.Predicted, got.Predicted) {
		t.Fatalf("Predicted mismatch: %+v vs %+v", r.Predicted, got.Predicted)
	}
	if !reflect.DeepEqual(r.Intervals, got.Intervals) {
		t.Fatalf("Intervals mismatch: %+v vs %+v", r.Intervals, got.Intervals)
	}
	if !reflect.DeepEqual(r.Quantized, got.Quantized) {
		t.Fatalf("Quantized mismatch")
	}
	if got.K != r.K || got.PreprocessTime != r.PreprocessTime ||
		got.SimWallTime != r.SimWallTime || got.TotalCPUTime != r.TotalCPUTime {
		t.Fatalf("scalar fields mismatch: %+v", got)
	}
	if len(got.Groups) != len(r.Groups) {
		t.Fatalf("group count mismatch: %d vs %d", len(got.Groups), len(r.Groups))
	}
	for i := range r.Groups {
		want, have := r.Groups[i], got.Groups[i]
		if (want.Err == nil) != (have.Err == nil) {
			t.Fatalf("group %d Err presence mismatch", i)
		}
		if want.Err != nil && want.Err.Error() != have.Err.Error() {
			t.Fatalf("group %d Err mismatch: %q vs %q", i, want.Err, have.Err)
		}
		// Errors decode as fresh values; blank them for the struct compare.
		want.Err, have.Err = nil, nil
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("group %d mismatch:\nwant %+v\nhave %+v", i, want, have)
		}
	}
	d, gd := r.Degraded, got.Degraded
	if gd == nil {
		t.Fatal("Degraded lost in round trip")
	}
	if !reflect.DeepEqual(d.FailedGroups, gd.FailedGroups) ||
		!reflect.DeepEqual(d.Attempts, gd.Attempts) ||
		d.Quorum != gd.Quorum || d.Survivors != gd.Survivors || d.Total != gd.Total {
		t.Fatalf("Degraded mismatch:\nwant %+v\nhave %+v", d, gd)
	}
	for gi, err := range d.GroupErrors {
		if gd.GroupErrors[gi] == nil || gd.GroupErrors[gi].Error() != err.Error() {
			t.Fatalf("Degraded.GroupErrors[%d] mismatch", gi)
		}
	}
}

func TestPredictCodecRejectsCorruption(t *testing.T) {
	c := predictCodec{}
	if _, _, err := c.Decode([]byte(`{"predicted":{"no such metric":1}}`)); err == nil {
		t.Fatal("Decode with unknown metric name succeeded")
	}
	if _, _, err := c.Decode([]byte(`not json`)); err == nil {
		t.Fatal("Decode of garbage succeeded")
	}
}
