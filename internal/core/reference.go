package core

import (
	"context"
	"sync"
	"time"

	"zatel/internal/config"
	"zatel/internal/gpu"
	"zatel/internal/metrics"
	"zatel/internal/rt"
)

// Reference runs the full workload on the full GPU configuration — the
// ground truth Zatel's predictions are evaluated against. Threads launch in
// natural row-major warp order.
//
// References are memoised: the evaluation recomputes the same ground truth
// for every sweep point, and a cache turns that into a one-time cost (the
// recorded WallTime is always the original simulation time, so speedup
// measurements stay honest).
func Reference(cfgFull config.Config, sceneName string, width, height, spp int) (metrics.Report, error) {
	return ReferenceContext(context.Background(), cfgFull, sceneName, width, height, spp)
}

// ReferenceContext is Reference honouring ctx: cancellation interrupts the
// workload build between rows and is checked again before the full
// simulation starts (the cycle-level replay itself runs to completion once
// launched).
func ReferenceContext(ctx context.Context, cfgFull config.Config, sceneName string, width, height, spp int) (metrics.Report, error) {
	key := refKey{cfg: cfgFull, scene: sceneName, w: width, h: height, spp: spp}
	refMu.Lock()
	if rep, ok := refCache[key]; ok {
		refMu.Unlock()
		return rep, nil
	}
	refMu.Unlock()

	wl, err := rt.CachedWorkloadContext(ctx, sceneName, width, height, spp)
	if err != nil {
		return metrics.Report{}, err
	}
	if err := ctx.Err(); err != nil {
		return metrics.Report{}, err
	}
	start := time.Now()
	rep, err := gpu.Run(gpu.Job{Cfg: cfgFull, Traces: wl.Traces})
	if err != nil {
		return metrics.Report{}, err
	}
	rep.WallTime = time.Since(start)

	refMu.Lock()
	refCache[key] = rep
	refMu.Unlock()
	return rep, nil
}

type refKey struct {
	cfg       config.Config
	scene     string
	w, h, spp int
}

var (
	refMu    sync.Mutex
	refCache = map[refKey]metrics.Report{}
)

// Errors compares a prediction against a reference report and returns the
// per-metric absolute errors.
func (r *Result) Errors(ref metrics.Report) map[metrics.Metric]float64 {
	out := make(map[metrics.Metric]float64, len(metrics.All()))
	for _, m := range metrics.All() {
		out[m] = metrics.AbsErr(r.Predicted[m], ref.Value(m))
	}
	return out
}

// Speedup returns the simulation-time speedup of this prediction relative
// to the reference full simulation: reference wall time divided by Zatel's
// preprocessing plus (parallel) simulation wall time.
func (r *Result) Speedup(ref metrics.Report) float64 {
	own := r.PreprocessTime + r.SimWallTime
	if own <= 0 {
		return 0
	}
	return float64(ref.WallTime) / float64(own)
}
