package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"zatel/internal/metrics"
	"zatel/internal/rt"
)

// TestPredictParallelConcurrentWithWarmup drives the concurrency paths the
// runner rewiring touches, under -race: several Predict calls with
// Parallel groups race against CachedWorkload warm-ups for the same frame
// from other goroutines. Every prediction must succeed and agree.
func TestPredictParallelConcurrentWithWarmup(t *testing.T) {
	const w, h = 48, 48
	opts := small("CHSNT")
	opts.Width, opts.Height = w, h
	opts.Parallel = true
	opts.Workers = 4

	const predictors, warmers = 4, 4
	var wg sync.WaitGroup
	preds := make([]*Result, predictors)
	errs := make([]error, predictors+warmers)
	start := make(chan struct{})
	for i := 0; i < predictors; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			preds[i], errs[i] = Predict(opts)
		}(i)
	}
	for i := 0; i < warmers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[predictors+i] = rt.CachedWorkload("CHSNT", w, h, 1)
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < predictors; i++ {
		for _, m := range metrics.All() {
			if preds[i].Predicted[m] != preds[0].Predicted[m] {
				t.Errorf("predictor %d: %s differs under concurrency", i, m)
			}
		}
	}
}

func TestPredictContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := small("SPRNG")
	opts.Parallel = true
	if _, err := PredictContext(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context gave %v", err)
	}
}

func TestPredictValidatesBeforeWorkloadBuild(t *testing.T) {
	// An invalid enum must be rejected up front — even when the scene does
	// not exist, proving no workload build was attempted first.
	opts := small("NO-SUCH-SCENE")
	opts.Division = Division(9)
	if _, err := Predict(opts); err == nil || err.Error() != "core: unknown division 9" {
		t.Errorf("division validation: %v", err)
	}
	opts = small("NO-SUCH-SCENE")
	opts.Dist = 77
	if _, err := Predict(opts); err == nil || err.Error() != "core: unknown distribution 77" {
		t.Errorf("distribution validation: %v", err)
	}
	opts = small("PARK")
	opts.MaxFraction = 1.2
	if _, err := Predict(opts); err == nil {
		t.Error("MaxFraction 1.2 accepted")
	}
	opts = small("PARK")
	opts.K = -1
	if _, err := Predict(opts); err == nil {
		t.Error("negative K accepted")
	}
}
