package core

import (
	"math"
	"reflect"
	"testing"

	"zatel/internal/metrics"
	"zatel/internal/sampling"
)

// replicatedOpts returns small options running a replicated strategy.
func replicatedOpts(scene string, dist sampling.Distribution) Options {
	opts := small(scene)
	opts.Dist = dist
	opts.FixedFraction = 0.3
	return opts
}

func TestReplicatedPredictProducesIntervals(t *testing.T) {
	for _, dist := range []sampling.Distribution{sampling.Stratified, sampling.RankedSet} {
		res, err := Predict(replicatedOpts("PARK", dist))
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if res.Intervals == nil {
			t.Fatalf("%s: no intervals on a replicated run", dist)
		}
		for _, m := range metrics.All() {
			iv, ok := res.Intervals[m]
			if !ok {
				t.Fatalf("%s: missing interval for %s", dist, m)
			}
			if iv.Low > iv.Mean || iv.Mean > iv.High {
				t.Errorf("%s: %s interval [%v,%v] does not bracket mean %v",
					dist, m, iv.Low, iv.High, iv.Mean)
			}
			if iv.Replicates < 2 {
				t.Errorf("%s: %s built from %d replicates", dist, m, iv.Replicates)
			}
			if res.Predicted[m] != iv.Mean {
				t.Errorf("%s: predicted %s %v != interval mean %v",
					dist, m, res.Predicted[m], iv.Mean)
			}
		}
		for gi, g := range res.Groups {
			if g.Replicates < 2 || g.Rounds != 1 {
				t.Errorf("%s: group %d replicates=%d rounds=%d, want ≥2 and 1",
					dist, gi, g.Replicates, g.Rounds)
			}
			if !g.TargetMet {
				t.Errorf("%s: group %d target unmet with no target set", dist, gi)
			}
		}
	}
}

// TestReplicatedSeedByteIdentical is the determinism gate: the same seed must
// yield byte-identical selections and intervals across runs, sequential or
// parallel.
func TestReplicatedSeedByteIdentical(t *testing.T) {
	opts := replicatedOpts("WKND", sampling.Stratified)
	opts.TargetCIHalfWidth = 0.05
	a, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Parallel = true
	b, err := Predict(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Intervals, b.Intervals) {
		t.Errorf("intervals differ across identical-seed runs:\n%v\nvs\n%v", a.Intervals, b.Intervals)
	}
	for gi := range a.Groups {
		ga, gb := a.Groups[gi], b.Groups[gi]
		if ga.Selected != gb.Selected || ga.Fraction != gb.Fraction ||
			ga.Rounds != gb.Rounds || ga.Replicates != gb.Replicates {
			t.Errorf("group %d run shape differs across identical-seed runs", gi)
		}
		if !reflect.DeepEqual(ga.Intervals, gb.Intervals) {
			t.Errorf("group %d intervals differ across identical-seed runs", gi)
		}
	}
	c, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Intervals, c.Intervals) {
		t.Error("intervals differ across repeated identical runs")
	}
}

func TestAdaptiveStopsWithinRoundCap(t *testing.T) {
	opts := replicatedOpts("SHIP", sampling.RankedSet)
	opts.FixedFraction = 0.1
	opts.TargetCIHalfWidth = 1e-6 // unattainable: must hit the round cap
	opts.Sampling.MaxRounds = 3
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range res.Groups {
		if g.Rounds < 1 || g.Rounds > 3 {
			t.Errorf("group %d ran %d rounds, cap is 3", gi, g.Rounds)
		}
	}
	// A generous target stops in the first round without growing the sample.
	opts.TargetCIHalfWidth = 100
	opts.Sampling.MaxRounds = 4
	res, err = Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range res.Groups {
		if g.Rounds != 1 || !g.TargetMet {
			t.Errorf("group %d: rounds=%d targetMet=%v with a trivial target",
				gi, g.Rounds, g.TargetMet)
		}
	}
}

// TestAdaptiveGrowsFractionUntilTarget checks the adaptive loop actually
// enlarges the sample between rounds and reports the final realized fraction.
func TestAdaptiveGrowsFractionUntilTarget(t *testing.T) {
	base := replicatedOpts("PARK", sampling.Stratified)
	base.FixedFraction = 0.1
	fixed, err := Predict(base)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := base
	adaptive.TargetCIHalfWidth = 1e-6
	adaptive.Sampling.MaxRounds = 3
	grown, err := Predict(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	for gi := range grown.Groups {
		g, f := grown.Groups[gi], fixed.Groups[gi]
		if g.Rounds <= 1 {
			t.Errorf("group %d never re-drew despite an unattainable target", gi)
		}
		if g.Fraction <= f.Fraction {
			t.Errorf("group %d adaptive fraction %v did not grow beyond fixed %v",
				gi, g.Fraction, f.Fraction)
		}
	}
}

// TestReplicatedCIShrinksWithFraction: tracing more pixels must tighten the
// intervals — the sample-complexity story the strategies exist for.
func TestReplicatedCIShrinksWithFraction(t *testing.T) {
	narrow := replicatedOpts("BUNNY", sampling.RankedSet)
	narrow.FixedFraction = 0.15
	small, err := Predict(narrow)
	if err != nil {
		t.Fatal(err)
	}
	wide := replicatedOpts("BUNNY", sampling.RankedSet)
	wide.FixedFraction = 0.6
	big, err := Predict(wide)
	if err != nil {
		t.Fatal(err)
	}
	hwSmall := small.Intervals.MaxRelHalfWidth()
	hwBig := big.Intervals.MaxRelHalfWidth()
	if hwBig >= hwSmall {
		t.Errorf("60%% sample half-width %v not below 15%% sample %v", hwBig, hwSmall)
	}
}

// TestReplicatedFractionRespectsCap is the realized-budget regression test
// for the replicated path: with MaxFraction set, no adaptive round may push
// the realized per-group fraction past the cap by more than one pixel.
func TestReplicatedFractionRespectsCap(t *testing.T) {
	opts := replicatedOpts("SHIP", sampling.Stratified)
	opts.FixedFraction = 0
	opts.MaxFraction = 0.2
	opts.TargetCIHalfWidth = 1e-6 // pressure to grow into the cap
	opts.Sampling.MaxRounds = 4
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range res.Groups {
		if g.Fraction > 0.2+1/float64(g.Pixels)+1e-9 {
			t.Errorf("group %d realized fraction %v exceeds the 0.2 cap by more than one pixel",
				gi, g.Fraction)
		}
	}
}

// TestPointEstimateFractionRespectsCap pins the same budget guarantee for
// the point-estimate strategies (the MaxFraction overshoot bugfix).
func TestPointEstimateFractionRespectsCap(t *testing.T) {
	for _, dist := range []sampling.Distribution{sampling.Uniform, sampling.LinTmp, sampling.ExpTmp} {
		opts := small("SHIP") // cold scene: Eq. 1 wants 0.6, cap forces 0.1
		opts.Dist = dist
		opts.MaxFraction = 0.1
		res, err := Predict(opts)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		for gi, g := range res.Groups {
			if g.Fraction > 0.1+1/float64(g.Pixels)+1e-9 {
				t.Errorf("%s group %d realized fraction %v exceeds the 0.1 cap by more than one pixel",
					dist, gi, g.Fraction)
			}
		}
	}
}

func TestReplicatedValidation(t *testing.T) {
	opts := replicatedOpts("PARK", sampling.Stratified)
	opts.Regression = true
	if _, err := Predict(opts); err == nil {
		t.Error("replicated strategy with regression extrapolation accepted")
	}
	opts = small("PARK")
	opts.TargetCIHalfWidth = 0.05
	if _, err := Predict(opts); err == nil {
		t.Error("CI target with a point-estimate strategy accepted")
	}
	opts = small("PARK")
	opts.TargetCIHalfWidth = -1
	if _, err := Predict(opts); err == nil {
		t.Error("negative CI target accepted")
	}
	opts = replicatedOpts("PARK", sampling.RankedSet)
	opts.Sampling.Replicates = 1
	if _, err := Predict(opts); err == nil {
		t.Error("single replicate accepted")
	}
	opts = replicatedOpts("PARK", sampling.RankedSet)
	opts.Sampling.Confidence = 0.5
	if _, err := Predict(opts); err == nil {
		t.Error("untabulated confidence accepted")
	}
	opts = replicatedOpts("PARK", sampling.RankedSet)
	opts.Sampling.Growth = 0.5
	if _, err := Predict(opts); err == nil {
		t.Error("shrinking growth factor accepted")
	}
}

// TestReplicatedPredictionsStayAccurate keeps the new estimators honest
// against the ground truth. At this tiny test resolution each replicate
// extrapolates from only ~8% of pixels, so the replicated mean is noisier
// than one big draw — the bound is relative to uniform, not absolute.
func TestReplicatedPredictionsStayAccurate(t *testing.T) {
	ref, err := Reference(small("BUNNY").Config, "BUNNY", 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := small("BUNNY")
	base.FixedFraction = 0.4
	uni, err := Predict(base)
	if err != nil {
		t.Fatal(err)
	}
	uniMAE := metrics.MAE(uni.Errors(ref), metrics.All())
	opts := replicatedOpts("BUNNY", sampling.Stratified)
	opts.FixedFraction = 0.4
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	mae := metrics.MAE(res.Errors(ref), metrics.All())
	if math.IsNaN(mae) || mae > 2.5*uniMAE {
		t.Errorf("stratified MAE %v vs uniform %v at 40%% pixels; estimator looks broken",
			mae, uniMAE)
	}
}
