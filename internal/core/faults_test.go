package core

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"zatel/internal/faults"
	"zatel/internal/metrics"
)

// injected returns small() options with the acceptance-criteria injection:
// 30% per-attempt group error rate at a fixed seed, K=4 (the MobileSoC
// gcd default at 64x64).
func injected(seed uint64) Options {
	opts := small("PARK")
	opts.FT.Inject = faults.Config{ErrorRate: 0.3, Seed: seed}
	return opts
}

func TestPredictDegradedDeterministic(t *testing.T) {
	// Seed 3 deterministically fails groups 2 and 3 on their single
	// attempt; the surviving half meets the default quorum ceil(4/2)=2.
	run := func() *Result {
		t.Helper()
		res, err := Predict(injected(3))
		if err != nil {
			t.Fatalf("degraded prediction errored: %v", err)
		}
		return res
	}
	res := run()
	d := res.Degraded
	if d == nil {
		t.Fatal("no Degraded metadata on a prediction that lost groups")
	}
	if !reflect.DeepEqual(d.FailedGroups, []int{2, 3}) {
		t.Errorf("FailedGroups = %v, want [2 3]", d.FailedGroups)
	}
	if d.Total != 4 || d.Survivors != 2 || d.Quorum != 2 {
		t.Errorf("degradation %+v, want 2/4 survivors at quorum 2", d)
	}
	for _, gi := range d.FailedGroups {
		g := res.Groups[gi]
		if g.Err == nil || !errors.Is(g.Err, faults.ErrInjected) {
			t.Errorf("group %d error %v does not wrap ErrInjected", gi, g.Err)
		}
		if g.Attempts != 1 {
			t.Errorf("group %d consumed %d attempts without retries enabled", gi, g.Attempts)
		}
		if d.Attempts[gi] != 1 || !errors.Is(d.GroupErrors[gi], faults.ErrInjected) {
			t.Errorf("degradation bookkeeping for group %d: %d attempts, %v",
				gi, d.Attempts[gi], d.GroupErrors[gi])
		}
	}
	for _, m := range metrics.All() {
		v := res.Predicted[m]
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("degraded %s = %v, want finite non-negative", m, v)
		}
	}
	if s := d.String(); !strings.Contains(s, "degraded") || !strings.Contains(s, "2/4") {
		t.Errorf("degradation summary %q", s)
	}

	// The whole degraded outcome must reproduce bit-for-bit.
	again := run()
	if !reflect.DeepEqual(again.Degraded.FailedGroups, d.FailedGroups) {
		t.Errorf("second run failed %v, first %v", again.Degraded.FailedGroups, d.FailedGroups)
	}
	if !reflect.DeepEqual(again.Predicted, res.Predicted) {
		t.Errorf("degraded predictions differ between identical runs:\n%v\n%v",
			again.Predicted, res.Predicted)
	}
}

func TestPredictDegradedDeterministicAcrossPoolSizes(t *testing.T) {
	// Injection decisions are keyed by (seed, group, attempt), so the same
	// groups must fail whether the fan-out runs serially or on a pool.
	serial, err := Predict(injected(3))
	if err != nil {
		t.Fatal(err)
	}
	par := injected(3)
	par.Parallel = true
	par.Workers = 4
	pooled, err := Predict(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Degraded.FailedGroups, pooled.Degraded.FailedGroups) {
		t.Errorf("serial failed %v, pooled failed %v",
			serial.Degraded.FailedGroups, pooled.Degraded.FailedGroups)
	}
	if !reflect.DeepEqual(serial.Predicted, pooled.Predicted) {
		t.Error("pool size changed the degraded prediction")
	}
}

func TestPredictQuorumUnmet(t *testing.T) {
	opts := small("PARK")
	opts.FT.Inject = faults.Config{ErrorRate: 1, Seed: 1}
	_, err := Predict(opts)
	if err == nil {
		t.Fatal("total group failure produced a prediction")
	}
	if !strings.Contains(err.Error(), "quorum") {
		t.Errorf("error %v does not mention the quorum", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Errorf("aggregated error %v does not wrap the injected cause", err)
	}
}

func TestPredictStrictQuorum(t *testing.T) {
	// Quorum < 0 restores the strict pre-fault-tolerance behaviour: the
	// seed-3 double failure that degrades by default becomes an error.
	opts := injected(3)
	opts.FT.Quorum = -1
	if _, err := Predict(opts); err == nil || !strings.Contains(err.Error(), "quorum 4 unmet") {
		t.Errorf("strict quorum let a degraded prediction through (err=%v)", err)
	}
	// And an explicit quorum above the group count clamps to all-groups.
	opts.FT.Quorum = 99
	if _, err := Predict(opts); err == nil {
		t.Error("quorum 99 (clamped to 4) let a degraded prediction through")
	}
}

func TestPredictRetriesRecover(t *testing.T) {
	// At seed 3, group 2 fails only attempt 1 and group 3 fails attempts
	// 1-3; four attempts recover every group, so the prediction is clean
	// and must equal the injection-free one.
	opts := injected(3)
	opts.FT.Attempts = 4
	res, err := Predict(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != nil {
		t.Fatalf("retries left degradation behind: %v", res.Degraded)
	}
	if got := res.Groups[2].Attempts; got != 2 {
		t.Errorf("group 2 recovered after %d attempts, want 2", got)
	}
	if got := res.Groups[3].Attempts; got != 4 {
		t.Errorf("group 3 recovered after %d attempts, want 4", got)
	}
	clean, err := Predict(small("PARK"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Predicted, clean.Predicted) {
		t.Error("recovered prediction differs from the injection-free one")
	}
}

func TestPredictInjectionValidation(t *testing.T) {
	opts := small("PARK")
	opts.FT.Inject = faults.Config{ErrorRate: 2}
	if _, err := Predict(opts); err == nil {
		t.Error("invalid injection config accepted")
	}
	opts = small("PARK")
	opts.FT.Attempts = -1
	if _, err := Predict(opts); err == nil {
		t.Error("negative attempts accepted")
	}
	opts = small("PARK")
	opts.FT.Timeout = -time.Second
	if _, err := Predict(opts); err == nil {
		t.Error("negative timeout accepted")
	}
}

// TestFaultInjectionSoak drives predictions through mixed error, panic and
// straggler injection across many seeds: every run must either produce a
// finite (possibly degraded) prediction or fail the quorum cleanly —
// never hang, crash or emit NaNs. check.sh runs this under -race.
func TestFaultInjectionSoak(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			opts := small("PARK")
			opts.Parallel = true
			opts.FT = FaultTolerance{
				Attempts: 2,
				Backoff:  time.Millisecond,
				Timeout:  30 * time.Second,
				Inject: faults.Config{
					ErrorRate:     0.25,
					PanicRate:     0.1,
					StragglerRate: 0.2,
					StragglerMean: time.Millisecond,
					Seed:          uint64(seed),
				},
			}
			res, err := Predict(opts)
			if err != nil {
				if !strings.Contains(err.Error(), "quorum") {
					t.Errorf("seed %d: non-quorum failure: %v", seed, err)
				}
				return
			}
			for _, m := range metrics.All() {
				if v := res.Predicted[m]; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Errorf("seed %d: %s = %v", seed, m, v)
				}
			}
			if res.Degraded != nil {
				d := res.Degraded
				if d.Survivors < d.Quorum || d.Survivors+len(d.FailedGroups) != d.Total {
					t.Errorf("seed %d: inconsistent degradation %+v", seed, d)
				}
			}
		})
	}
}
