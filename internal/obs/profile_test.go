package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to record.
	sink := 0
	buf := make([]byte, 1<<16)
	for i := range buf {
		sink += int(buf[i]) + i
	}
	_ = sink
	stop()
	stop() // idempotent

	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesDisabled(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Error("unwritable cpu profile path accepted")
	}
}
