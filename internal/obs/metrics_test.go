package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRegistry(t *testing.T) {
	c := NewCounter("test_obs_events_total", "test counter")
	c2 := NewCounter("test_obs_events_total", "redefinition ignored")
	if c != c2 {
		t.Fatalf("re-registering a counter returned a different instance")
	}
	g := NewGauge("test_obs_depth", "test gauge")

	before := c.Value()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value() - before; got != 800 {
		t.Errorf("counter advanced by %d, want 800", got)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}

	var b strings.Builder
	WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_obs_events_total counter",
		"# TYPE test_obs_depth gauge",
		"test_obs_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Fatalf("two request IDs collided: %s", a)
	}
	if len(a) != 16 {
		t.Fatalf("request ID %q not 16 hex chars", a)
	}
}

func TestParseLevel(t *testing.T) {
	for in, ok := range map[string]bool{
		"debug": true, "info": true, "warn": true, "warning": true,
		"error": true, "": true, "DEBUG": true, "verbose": false,
	} {
		_, err := ParseLevel(in)
		if ok != (err == nil) {
			t.Errorf("ParseLevel(%q) err=%v, want ok=%v", in, err, ok)
		}
	}
}
