package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a clock that advances one millisecond per reading, so
// span timings (and therefore the Chrome export) are fully deterministic.
func fakeClock() func() time.Time {
	base := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func newFakeTracer() *Tracer {
	t := NewTracer()
	t.clock = fakeClock()
	t.epoch = t.clock()
	return t
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "predict")
	root.SetAttr("scene", "PARK")
	ctx2, child := StartSpan(ctx1, "step1_profile")
	_, grand := StartSpan(ctx2, "store.build")
	grand.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["predict"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["predict"].Parent)
	}
	if got, want := byName["step1_profile"].Parent, byName["predict"].ID; got != want {
		t.Errorf("child parent = %d, want %d", got, want)
	}
	if got, want := byName["store.build"].Parent, byName["step1_profile"].ID; got != want {
		t.Errorf("grandchild parent = %d, want %d", got, want)
	}
	if byName["predict"].Attrs["scene"] != "PARK" {
		t.Errorf("attrs = %v, want scene=PARK", byName["predict"].Attrs)
	}
}

func TestNoTracerIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatalf("StartSpan without tracer returned non-nil span")
	}
	if ctx2 != ctx {
		t.Fatalf("StartSpan without tracer returned a new context")
	}
	// All nil-span methods must no-op rather than panic.
	sp.SetAttr("k", "v")
	sp.End()
	sp.End()
	if FromContext(ctx) != nil {
		t.Fatalf("FromContext on bare context not nil")
	}
	if got := (*Tracer)(nil).Snapshot(); got != nil {
		t.Fatalf("nil tracer Snapshot = %v, want nil", got)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "once")
	sp.End()
	sp.End()
	sp.SetAttr("late", true) // after End: dropped, not racy
	if n := len(tr.Snapshot()); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
	if attrs := tr.Snapshot()[0].Attrs; attrs["late"] != "" {
		t.Fatalf("SetAttr after End leaked: %v", attrs)
	}
}

// TestConcurrentSpans hammers one tracer from many goroutines — the shape
// of the step-6 worker pool — and is meaningful under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	rootCtx, root := StartSpan(ctx, "root")

	const workers, jobs = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		lane := tr.Lane(fmt.Sprintf("worker %d", w))
		go func() {
			defer wg.Done()
			for j := 0; j < jobs; j++ {
				jctx, sp := StartSpan(rootCtx, "job", InLane(lane))
				sp.SetAttr("j", j)
				_, inner := StartSpan(jctx, "attempt")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()

	spans := tr.Snapshot()
	if want := workers*jobs*2 + 1; len(spans) != want {
		t.Fatalf("got %d spans, want %d", len(spans), want)
	}
	ids := map[int64]bool{}
	for _, s := range spans {
		if ids[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		ids[s.ID] = true
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
}

func TestDurations(t *testing.T) {
	tr := newFakeTracer()
	ctx := WithTracer(context.Background(), tr)
	// Clock: each reading +1ms. StartSpan reads once, End reads once.
	_, a := StartSpan(ctx, "a") // start 1ms after epoch
	a.End()                     // dur 1ms
	_, b := StartSpan(ctx, "a")
	b.End()
	_, c := StartSpan(ctx, "b")
	c.End()
	d := tr.Durations()
	if d["a"] != 2*time.Millisecond {
		t.Errorf(`Durations["a"] = %v, want 2ms`, d["a"])
	}
	if d["b"] != time.Millisecond {
		t.Errorf(`Durations["b"] = %v, want 1ms`, d["b"])
	}
}

// goldenTrace is the exact Chrome trace_event JSON the fake-clock scenario
// below must export: byte-for-byte stability is the contract that keeps
// traces loadable across refactors.
const goldenTrace = `{
 "traceEvents": [
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 0,
   "args": {
    "name": "pipeline"
   }
  },
  {
   "name": "thread_name",
   "ph": "M",
   "ts": 0,
   "pid": 1,
   "tid": 1,
   "args": {
    "name": "worker 0"
   }
  },
  {
   "name": "predict",
   "cat": "zatel",
   "ph": "X",
   "ts": 1000,
   "dur": 5000,
   "pid": 1,
   "tid": 0,
   "args": {
    "scene": "SPRNG"
   }
  },
  {
   "name": "group[0]",
   "cat": "zatel",
   "ph": "X",
   "ts": 2000,
   "dur": 3000,
   "pid": 1,
   "tid": 1
  },
  {
   "name": "attempt",
   "cat": "zatel",
   "ph": "X",
   "ts": 3000,
   "dur": 1000,
   "pid": 1,
   "tid": 1
  }
 ],
 "displayTimeUnit": "ms",
 "metadata": {
  "request_id": "deadbeef00000000"
 }
}
`

func TestChromeTraceGolden(t *testing.T) {
	tr := newFakeTracer()
	tr.SetMeta("request_id", "deadbeef00000000")
	ctx := WithTracer(context.Background(), tr)

	rctx, root := StartSpan(ctx, "predict") // start epoch+1ms
	root.SetAttr("scene", "SPRNG")
	lane := tr.Lane("worker 0")
	gctx, g := StartSpan(rctx, "group[0]", InLane(lane)) // epoch+2ms
	_, a := StartSpan(gctx, "attempt")                   // epoch+3ms
	a.End()                                              // ends epoch+4ms: dur 1ms
	g.End()                                              // ends epoch+5ms: dur 3ms
	root.End()                                           // ends epoch+6ms: dur 5ms

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	got := buf.String()
	if got != goldenTrace {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, goldenTrace)
	}

	// Belt and braces: the export must be valid JSON with the object keys
	// Chrome/Perfetto require.
	var parsed map[string]any
	if err := json.Unmarshal([]byte(got), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if _, ok := parsed["traceEvents"].([]any); !ok {
		t.Fatalf("export lacks traceEvents array")
	}
	if !strings.Contains(got, `"request_id": "deadbeef00000000"`) {
		t.Fatalf("metadata lost in export")
	}
}
