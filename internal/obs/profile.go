package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts the pprof collectors behind the commands'
// -cpuprofile/-memprofile flags. Either path may be empty to disable that
// profile. The returned stop function flushes both files; it is idempotent
// so commands can invoke it on every exit path — including the SIGINT
// path — the same way -trace files are flushed, and an interrupted run
// still leaves analysable profiles. Flush failures are reported to stderr
// rather than returned: by that point the command's real work is done.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			// Collect garbage first so the heap profile reflects live
			// memory, not whatever the last GC cycle happened to leave.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}
