package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// ParseLevel maps the -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// SetupLogger installs the process-default slog logger all commands and the
// service log through: level from the -log-level flag value, text handler
// for humans or JSON for log pipelines (zateld -log-format json).
func SetupLogger(w io.Writer, level string, jsonFormat bool) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}

// reqCounter backs NewRequestID when the system randomness source fails.
var reqCounter atomic.Uint64

// NewRequestID returns a fresh 16-hex-character request correlation ID.
// zateld assigns one to every request that does not already carry an
// X-Zatel-Request-Id header; it flows through logs, error bodies and trace
// exports so one ID ties all three together.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("fallback-%012x", reqCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID ("" when none is attached).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
