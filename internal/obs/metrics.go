package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
// Obtain one with NewCounter; it registers in the process-wide registry
// WritePrometheus exposes.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable signed metric, safe for concurrent use.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// registry is the process-wide metric set. Registration happens at package
// init across the repo (runner, core), exposition in zateld's /metrics.
var registry = struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}{
	counters: map[string]*Counter{},
	gauges:   map[string]*Gauge{},
}

// NewCounter registers (or returns the already-registered) counter under
// name. Metric names follow Prometheus conventions and every exported name
// must be documented in OPERATIONS.md (enforced by scripts/lint_docs.sh).
func NewCounter(name, help string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	registry.counters[name] = c
	return c
}

// NewGauge registers (or returns the already-registered) gauge under name.
func NewGauge(name, help string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	registry.gauges[name] = g
	return g
}

// WritePrometheus writes every registered counter and gauge in Prometheus
// text exposition format, sorted by name for deterministic output.
func WritePrometheus(w io.Writer) {
	registry.mu.Lock()
	counters := make([]*Counter, 0, len(registry.counters))
	for _, c := range registry.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(registry.gauges))
	for _, g := range registry.gauges {
		gauges = append(gauges, g)
	}
	registry.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.Value())
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.Value())
	}
}
