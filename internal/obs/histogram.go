package obs

import (
	"fmt"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning the
// range a prediction can take: a warm store hit lands in the sub-millisecond
// buckets, a cold 256×256 regression run in the tens of seconds.
var latencyBuckets = []float64{
	.0005, .001, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram with lock-free observation,
// exposed in Prometheus text format. Counts per bucket are non-cumulative
// internally and summed cumulatively at exposition time, as the format
// requires. Unlike Counter/Gauge it is not registered process-wide: each
// owner (the service's per-stage latencies, a cluster's peer-fetch
// latencies) holds its own instance and writes it with WriteProm, so two
// servers in one test process never share buckets.
type Histogram struct {
	counts []atomic.Uint64 // len(latencyBuckets)+1; last is +Inf
	count  atomic.Uint64
	sumNs  atomic.Int64
}

// NewHistogram returns an empty histogram over the standard latency buckets.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, len(latencyBuckets)+1)}
}

// ObserveValue records a unitless value (e.g. a relative CI half-width)
// against the same bucket bounds, read as plain ratios rather than seconds.
func (h *Histogram) ObserveValue(v float64) {
	h.Observe(time.Duration(v * 1e9))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBuckets) && s > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// WriteProm emits the histogram under the given metric name with one fixed
// label pair, e.g. WriteProm(w, "zatel_stage_latency_seconds",
// `stage="build"`). An empty label emits only the le label.
func (h *Histogram) WriteProm(w io.Writer, name, label string) {
	sep := ""
	if label != "" {
		sep = ","
	}
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, label, sep, formatBound(ub), cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, label, sep, cum)
	if label != "" {
		label = "{" + label + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, label, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, label, h.count.Load())
}

func formatBound(ub float64) string {
	if ub == math.Trunc(ub) {
		return fmt.Sprintf("%g", ub)
	}
	return fmt.Sprintf("%v", ub)
}
