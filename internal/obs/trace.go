// Package obs is the repository's observability layer: span tracing,
// process-wide Prometheus-style counters and gauges, structured-logging
// setup, and request-ID propagation — all dependency-free (stdlib only),
// matching the paper's own premise that you cannot optimize what you cannot
// attribute time to.
//
// The three concerns compose but do not require each other:
//
//   - Tracing. A Tracer travels on a context.Context (WithTracer /
//     FromContext); instrumentation sites call StartSpan unconditionally and
//     pay nothing when no tracer is attached (nil-span methods no-op). The
//     recorded spans export as Chrome trace_event JSON, loadable in
//     chrome://tracing or https://ui.perfetto.dev.
//   - Metrics. NewCounter/NewGauge register named series in a global
//     registry that WritePrometheus exposes in text format; the zateld
//     /metrics handler appends it to its own exposition.
//   - Logging. SetupLogger configures the process-default log/slog logger
//     (level + text/JSON handler); WithRequestID/RequestID thread the
//     per-request correlation ID that zateld also returns as
//     X-Zatel-Request-Id and embeds in error bodies and trace exports.
//
// Span-name taxonomy, lane semantics and the no-third-party-deps rationale
// are documented in DESIGN.md ("Observability").
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	requestIDKey
)

// Tracer records a tree of timed spans for one traced unit of work (a CLI
// invocation, one zateld request's build). It is safe for concurrent use:
// pool workers record spans from many goroutines at once.
//
// Lanes map to Chrome trace "threads" (tid): spans in the same lane nest by
// time containment, spans in different lanes render as parallel tracks.
// Lane 0 is the caller's track; worker pools allocate one lane per worker
// with Lane.
type Tracer struct {
	clock func() time.Time // test hook; time.Now outside tests

	mu       sync.Mutex
	epoch    time.Time
	spans    []SpanRecord
	meta     map[string]string
	lanes    map[int64]string
	nextID   int64
	nextLane int64
}

// NewTracer returns an empty tracer whose span timestamps are offsets from
// this call.
func NewTracer() *Tracer {
	t := &Tracer{clock: time.Now, meta: map[string]string{}, lanes: map[int64]string{}}
	t.epoch = t.clock()
	return t
}

// SpanRecord is one finished span as exported and as returned to tests.
type SpanRecord struct {
	// Name is the span name (see DESIGN.md for the taxonomy).
	Name string
	// ID and Parent identify the span and its enclosing span (Parent 0 =
	// root).
	ID, Parent int64
	// Lane is the Chrome-trace thread the span renders on.
	Lane int64
	// Start is the offset from the tracer's epoch; Dur the span length.
	Start, Dur time.Duration
	// Attrs are the span's key/value annotations.
	Attrs map[string]string
}

// SetMeta attaches trace-level metadata (e.g. the request ID) exported in
// the Chrome JSON "metadata" object.
func (t *Tracer) SetMeta(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta[key] = value
	t.mu.Unlock()
}

// Lane allocates a fresh lane (Chrome tid) with a display name; worker
// pools call it once per worker so parallel jobs render as parallel tracks.
func (t *Tracer) Lane(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.nextLane++
	lane := t.nextLane
	t.lanes[lane] = name
	t.mu.Unlock()
	return lane
}

// Snapshot returns a copy of the spans recorded so far, ordered by start
// time (ties by ID, i.e. creation order).
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Durations sums the recorded span time by span name — the bridge from
// traces to metrics: zateld feeds the per-step sums into its latency
// histograms, tests assert the step spans cover the prediction wall time.
func (t *Tracer) Durations() map[string]time.Duration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]time.Duration, len(t.spans))
	for i := range t.spans {
		out[t.spans[i].Name] += t.spans[i].Dur
	}
	return out
}

// Span is one live timed region. The zero/nil span is valid and inert, so
// instrumentation sites never check whether tracing is enabled.
type Span struct {
	tracer *Tracer
	record SpanRecord
	start  time.Time

	mu    sync.Mutex
	ended bool
}

// WithTracer attaches tr to the context; StartSpan below it records there.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, tr)
}

// FromContext returns the attached tracer, or nil when the context carries
// none (every obs entry point accepts that nil).
func FromContext(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	return tr
}

// SpanOption adjusts StartSpan.
type SpanOption func(*Span)

// InLane places the span on an explicit lane (see Tracer.Lane) instead of
// inheriting the parent span's.
func InLane(lane int64) SpanOption {
	return func(s *Span) { s.record.Lane = lane }
}

// StartSpan opens a span named name under the context's current span and
// returns the child context carrying it. Without a tracer on ctx it returns
// (ctx, nil) — and the nil *Span's methods all no-op — so call sites are
// unconditional. End the span exactly once.
func StartSpan(ctx context.Context, name string, opts ...SpanOption) (context.Context, *Span) {
	tr := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	s := &Span{tracer: tr, start: tr.clock()}
	s.record.Name = name
	if parent, _ := ctx.Value(spanKey).(*Span); parent != nil {
		s.record.Parent = parent.record.ID
		s.record.Lane = parent.record.Lane
	}
	tr.mu.Lock()
	tr.nextID++
	s.record.ID = tr.nextID
	tr.mu.Unlock()
	for _, o := range opts {
		o(s)
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr annotates the span; values render with fmt.Sprint. No-op on nil
// or ended spans.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.record.Attrs == nil {
		s.record.Attrs = make(map[string]string, 4)
	}
	s.record.Attrs[key] = fmt.Sprint(value)
}

// End closes the span and records it on the tracer. Safe on nil spans;
// second and later calls no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.tracer.clock()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := s.record
	s.mu.Unlock()
	rec.Start = s.start.Sub(s.tracer.epoch)
	rec.Dur = end.Sub(s.start)
	if rec.Dur < 0 {
		rec.Dur = 0
	}
	t := s.tracer
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// chromeEvent is one trace_event JSON object. Complete events ("ph":"X")
// carry their own duration, so no begin/end pairing is needed; name
// metadata events ("ph":"M") label the lanes.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`            // microseconds since epoch
	Dur  *int64            `json:"dur,omitempty"` // microseconds
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of the Chrome trace-event spec;
// viewers ignore unknown top-level keys, so metadata rides along.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata,omitempty"`
}

// WriteChromeTrace exports the recorded spans as Chrome trace_event JSON
// (the object form: {"traceEvents": [...], "metadata": {...}}), loadable
// in chrome://tracing and Perfetto. Output is deterministic given
// deterministic span timings: events sort by start time then creation
// order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	spans := t.Snapshot()
	t.mu.Lock()
	meta := make(map[string]string, len(t.meta))
	for k, v := range t.meta {
		meta[k] = v
	}
	laneIDs := make([]int64, 0, len(t.lanes))
	for id := range t.lanes {
		laneIDs = append(laneIDs, id)
	}
	lanes := make(map[int64]string, len(t.lanes))
	for id, name := range t.lanes {
		lanes[id] = name
	}
	t.mu.Unlock()
	sort.Slice(laneIDs, func(i, j int) bool { return laneIDs[i] < laneIDs[j] })

	events := make([]chromeEvent, 0, len(spans)+len(laneIDs)+1)
	events = append(events, chromeEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": "pipeline"},
	})
	for _, id := range laneIDs {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]string{"name": lanes[id]},
		})
	}
	for i := range spans {
		sp := &spans[i]
		dur := sp.Dur.Microseconds()
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  "zatel",
			Ph:   "X",
			TS:   sp.Start.Microseconds(),
			Dur:  &dur,
			PID:  1,
			TID:  sp.Lane,
			Args: sp.Attrs,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        meta,
	})
}
