package heatmap_test

import (
	"fmt"

	"zatel/internal/heatmap"
)

// A per-pixel cost profile normalises into temperatures and quantizes into
// a small palette; the Eq. 1 "shifted hue" coldness is 1 − temperature.
func ExampleHeatmap_Quantize() {
	cost := []float64{1, 1, 9, 9, 1, 9, 1, 9} // two obvious clusters
	hm, _ := heatmap.FromCost(cost, 4, 2)
	q, _ := hm.Quantize(2, 1)
	fmt.Printf("levels: %d\n", len(q.Levels))
	fmt.Printf("cold pixel coldness: %.2f\n", q.Cold(0))
	fmt.Printf("hot pixel coldness:  %.2f\n", q.Cold(2))
	// Output:
	// levels: 2
	// cold pixel coldness: 0.89
	// hot pixel coldness:  0.00
}
