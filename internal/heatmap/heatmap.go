// Package heatmap builds the per-pixel execution-time heatmap that drives
// Zatel's representative-pixel selection (steps 1 and 2 of the pipeline):
// per-pixel cost profiles are normalised to temperatures, mapped through a
// re-implementation of the NVIDIA heat gradient, and quantized with K-means
// to remove noise.
package heatmap

import (
	"fmt"
	"io"

	"zatel/internal/kmeans"
)

// Heatmap is a normalised per-pixel temperature field. Temperature 1 is the
// most expensive pixel of the frame, 0 the cheapest possible.
type Heatmap struct {
	Width  int
	Height int
	// Temp holds row-major temperatures in [0,1].
	Temp []float64
}

// FromCost normalises a per-pixel cost profile (as produced by
// rt.Workload.Cost) into a heatmap. The profile is divided by the longest
// runtime, exactly as Section III-B describes.
func FromCost(cost []float64, width, height int) (*Heatmap, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("heatmap: invalid dimensions %dx%d", width, height)
	}
	if len(cost) != width*height {
		return nil, fmt.Errorf("heatmap: %d costs for %dx%d pixels", len(cost), width, height)
	}
	maxC := 0.0
	for _, c := range cost {
		if c < 0 {
			return nil, fmt.Errorf("heatmap: negative cost %v", c)
		}
		if c > maxC {
			maxC = c
		}
	}
	h := &Heatmap{Width: width, Height: height, Temp: make([]float64, len(cost))}
	if maxC == 0 {
		return h, nil
	}
	for i, c := range cost {
		h.Temp[i] = c / maxC
	}
	return h, nil
}

// Quantized is a heatmap reduced to a small palette of temperature levels —
// the output of the colour-quantization step.
type Quantized struct {
	Width  int
	Height int
	// Levels holds the quantized temperatures in ascending (cold→hot)
	// order.
	Levels []float64
	// Index maps each pixel to its level.
	Index []int
}

// Quantize clusters the heatmap's temperatures into at most k levels using
// K-means (Section III-B's colour quantization).
func (h *Heatmap) Quantize(k int, seed uint64) (*Quantized, error) {
	res, err := kmeans.Cluster(h.Temp, k, seed, 25)
	if err != nil {
		return nil, fmt.Errorf("heatmap: quantize: %w", err)
	}
	return &Quantized{
		Width:  h.Width,
		Height: h.Height,
		Levels: res.Centers,
		Index:  res.Assign,
	}, nil
}

// Temp returns pixel i's quantized temperature.
func (q *Quantized) TempOf(i int) float64 { return q.Levels[q.Index[i]] }

// Cold returns pixel i's shifted-hue coldness c_i ∈ [0,1] used by Eq. 1:
// 0 means hot, 1 means cold.
func (q *Quantized) Cold(i int) float64 { return 1 - clamp01(q.TempOf(i)) }

// Warmth returns level j's warmth c'_j = 1 − c_j used by Eq. 2 and 3.
func (q *Quantized) Warmth(level int) float64 { return clamp01(q.Levels[level]) }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// GradientRGB maps a temperature to the NVIDIA-style heat gradient:
// black → blue → cyan → green → yellow → red → white. The mapping is
// strictly monotone in temperature, so colour quantization and temperature
// quantization are interchangeable.
func GradientRGB(t float64) (r, g, b uint8) {
	t = clamp01(t)
	type stop struct {
		at      float64
		r, g, b float64
	}
	stops := []stop{
		{0.00, 0, 0, 0},
		{0.15, 0, 0, 255},
		{0.35, 0, 255, 255},
		{0.50, 0, 255, 0},
		{0.65, 255, 255, 0},
		{0.85, 255, 0, 0},
		{1.00, 255, 255, 255},
	}
	for i := 0; i < len(stops)-1; i++ {
		a, c := stops[i], stops[i+1]
		if t > c.at {
			continue
		}
		f := 0.0
		if c.at > a.at {
			f = (t - a.at) / (c.at - a.at)
		}
		return uint8(a.r + f*(c.r-a.r)), uint8(a.g + f*(c.g-a.g)), uint8(a.b + f*(c.b-a.b))
	}
	return 255, 255, 255
}

// WritePPM renders the heatmap as a binary PPM image.
func (h *Heatmap) WritePPM(w io.Writer) error {
	return writePPM(w, h.Width, h.Height, func(i int) float64 { return h.Temp[i] })
}

// WritePPM renders the quantized heatmap as a binary PPM image.
func (q *Quantized) WritePPM(w io.Writer) error {
	return writePPM(w, q.Width, q.Height, q.TempOf)
}

func writePPM(w io.Writer, width, height int, temp func(int) float64) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	buf := make([]byte, 0, width*3)
	for y := 0; y < height; y++ {
		buf = buf[:0]
		for x := 0; x < width; x++ {
			r, g, b := GradientRGB(temp(y*width + x))
			buf = append(buf, r, g, b)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
