package heatmap

import (
	"bytes"
	"math"
	"testing"

	"zatel/internal/rt"
)

func TestFromCostValidation(t *testing.T) {
	if _, err := FromCost([]float64{1, 2}, 3, 1); err == nil {
		t.Error("mismatched length accepted")
	}
	if _, err := FromCost([]float64{1}, 0, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := FromCost([]float64{-1}, 1, 1); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestFromCostNormalises(t *testing.T) {
	h, err := FromCost([]float64{0, 5, 10, 2.5}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1, 0.25}
	for i, w := range want {
		if math.Abs(h.Temp[i]-w) > 1e-12 {
			t.Errorf("temp[%d] = %v, want %v", i, h.Temp[i], w)
		}
	}
}

func TestFromCostAllZero(t *testing.T) {
	h, err := FromCost([]float64{0, 0}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Temp[0] != 0 || h.Temp[1] != 0 {
		t.Errorf("all-zero cost gave %v", h.Temp)
	}
}

func TestQuantizeLevelsOrderedAndIndexed(t *testing.T) {
	cost := make([]float64, 64)
	for i := range cost {
		cost[i] = float64(i % 4) // 4 distinct cost levels
	}
	h, err := FromCost(cost, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	q, err := h.Quantize(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Levels) != 4 {
		t.Fatalf("levels = %v", q.Levels)
	}
	for i := 1; i < len(q.Levels); i++ {
		if q.Levels[i] < q.Levels[i-1] {
			t.Fatalf("levels not ascending: %v", q.Levels)
		}
	}
	for i := range cost {
		if q.Index[i] != int(cost[i]) {
			t.Fatalf("pixel %d (cost %v) at level %d", i, cost[i], q.Index[i])
		}
	}
}

func TestColdAndWarmthComplement(t *testing.T) {
	h, err := FromCost([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := h.Quantize(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q.Index {
		cold := q.Cold(i)
		warm := q.Warmth(q.Index[i])
		if math.Abs(cold+warm-1) > 1e-12 {
			t.Errorf("pixel %d: cold %v + warmth %v != 1", i, cold, warm)
		}
		if cold < 0 || cold > 1 {
			t.Errorf("cold out of range: %v", cold)
		}
	}
	// The hottest pixel must be the least cold.
	if q.Cold(3) >= q.Cold(0) {
		t.Errorf("hottest pixel colder than coldest: %v vs %v", q.Cold(3), q.Cold(0))
	}
}

func TestGradientMonotoneWarmth(t *testing.T) {
	// The gradient must order as black→blue→...→red→white; we check the
	// perceptual proxy r-b difference grows with temperature in the warm
	// half and that endpoints are black and white.
	r, g, b := GradientRGB(0)
	if r != 0 || g != 0 || b != 0 {
		t.Errorf("t=0 not black: %d,%d,%d", r, g, b)
	}
	r, g, b = GradientRGB(1)
	if r != 255 || g != 255 || b != 255 {
		t.Errorf("t=1 not white: %d,%d,%d", r, g, b)
	}
	// Cool temperatures are blue-dominant, warm are red-dominant.
	r, _, b = GradientRGB(0.2)
	if b <= r {
		t.Errorf("t=0.2 not blue-dominant: r=%d b=%d", r, b)
	}
	r, _, b = GradientRGB(0.8)
	if r <= b {
		t.Errorf("t=0.8 not red-dominant: r=%d b=%d", r, b)
	}
	// Out-of-range inputs clamp.
	if r1, g1, b1 := GradientRGB(-5); r1 != 0 || g1 != 0 || b1 != 0 {
		t.Error("negative temperature not clamped")
	}
}

func TestWritePPM(t *testing.T) {
	h, err := FromCost([]float64{0, 1, 0.5, 0.25}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	want := len("P6\n2 2\n255\n") + 2*2*3
	if buf.Len() != want {
		t.Errorf("PPM size %d, want %d", buf.Len(), want)
	}
	q, err := h.Quantize(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := q.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != want {
		t.Errorf("quantized PPM size %d, want %d", buf.Len(), want)
	}
}

func TestWorkloadHeatmapCharacterisation(t *testing.T) {
	// SHIP's heatmap must be mostly cold; BUNNY's mostly warm — the scene
	// properties Table III's analysis rests on.
	meanTemp := func(name string) float64 {
		w, err := rt.CachedWorkload(name, 48, 48, 1)
		if err != nil {
			t.Fatal(err)
		}
		h, err := FromCost(w.Cost, w.Width, w.Height)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range h.Temp {
			sum += v
		}
		return sum / float64(len(h.Temp))
	}
	ship, bunny := meanTemp("SHIP"), meanTemp("BUNNY")
	if ship >= bunny {
		t.Errorf("SHIP mean temp %v not below BUNNY %v", ship, bunny)
	}
}
