// Package faults provides a deterministic, seeded fault injector for
// worker-pool jobs. The north-star deployment runs K downscaled simulator
// instances per prediction under heavy traffic, where instance crashes,
// transient errors and stragglers are the norm rather than the exception;
// this package lets tests and operators soak the whole pipeline against
// those failure modes reproducibly.
//
// Every injection decision is a pure function of (Seed, job index, attempt
// number): two runs with the same configuration inject exactly the same
// faults into exactly the same attempts, regardless of pool size or
// goroutine scheduling. That determinism is what makes degraded-mode
// predictions testable — the set of surviving groups, and therefore the
// degraded output, is identical run to run.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"zatel/internal/vecmath"
)

// ErrInjected is the sentinel cause wrapped by every injected (non-panic)
// failure; tests distinguish injected faults from real ones with
// errors.Is(err, faults.ErrInjected).
var ErrInjected = errors.New("faults: injected failure")

// Config describes the fault distribution. The zero value injects nothing.
type Config struct {
	// ErrorRate is the per-attempt probability of failing with ErrInjected.
	ErrorRate float64
	// PanicRate is the per-attempt probability of panicking (the pool's
	// panic capture turns it into that attempt's error).
	PanicRate float64
	// StragglerRate is the per-attempt probability of delaying the job by a
	// draw from an exponential latency distribution before it runs.
	StragglerRate float64
	// StragglerMean is the mean of the straggler delay distribution
	// (individual delays are capped at 8x the mean). Required when
	// StragglerRate > 0.
	StragglerMean time.Duration
	// Seed roots every injection decision.
	Seed uint64
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.ErrorRate > 0 || c.PanicRate > 0 || c.StragglerRate > 0
}

// Validate checks the rates and the straggler distribution parameters.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"ErrorRate", c.ErrorRate},
		{"PanicRate", c.PanicRate},
		{"StragglerRate", c.StragglerRate},
	} {
		if r.rate < 0 || r.rate > 1 || math.IsNaN(r.rate) {
			return fmt.Errorf("faults: %s %v out of [0,1]", r.name, r.rate)
		}
	}
	if c.StragglerRate > 0 && c.StragglerMean <= 0 {
		return fmt.Errorf("faults: StragglerRate %v needs a positive StragglerMean", c.StragglerRate)
	}
	return nil
}

// SplitSeed returns a copy of the configuration whose decision stream is
// re-rooted for the given stratum (e.g. an experiment-grid cell index).
// Many single-group predictions sharing one config would otherwise draw
// the identical (seed, 0, 1) decision and fail in lockstep; splitting
// keeps each stratum's faults independent yet still fully deterministic.
// A disabled config is returned unchanged.
func (c Config) SplitSeed(n uint64) Config {
	if !c.Enabled() {
		return c
	}
	c.Seed = vecmath.NewRNG(c.Seed).Split(n).Uint64()
	return c
}

// Stats counts the faults an Injector has delivered.
type Stats struct {
	Errors    int64
	Panics    int64
	Straggles int64
}

// Injector wraps jobs with seeded fault decisions. It tracks per-job-index
// attempt counts so retried attempts draw fresh, yet still deterministic,
// decisions.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[int]int

	errors    atomic.Int64
	panics    atomic.Int64
	straggles atomic.Int64
}

// NewInjector validates cfg and returns an injector for it.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, attempts: map[int]int{}}, nil
}

// Config returns the injector's configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Stats snapshots the injected-fault counters.
func (inj *Injector) Stats() Stats {
	return Stats{
		Errors:    inj.errors.Load(),
		Panics:    inj.panics.Load(),
		Straggles: inj.straggles.Load(),
	}
}

// next returns the 1-based attempt number of the upcoming run of job index.
// Attempts per index advance sequentially (a job retries only after its
// previous attempt finished), so the counter is deterministic per index.
func (inj *Injector) next(index int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.attempts[index]++
	return inj.attempts[index]
}

// Wrap decorates fn with the injector's faults: the decorated job may be
// delayed (straggler), panic, or fail with ErrInjected before fn runs —
// each decision drawn from a stream keyed by (Seed, index, attempt). A nil
// or disabled injector returns fn unchanged. Straggler delays honour ctx,
// so per-attempt deadlines cut hung stragglers short.
func Wrap[T any](inj *Injector, fn func(context.Context, int) (T, error)) func(context.Context, int) (T, error) {
	if inj == nil || !inj.cfg.Enabled() {
		return fn
	}
	return func(ctx context.Context, index int) (T, error) {
		attempt := inj.next(index)
		rng := vecmath.NewRNG(inj.cfg.Seed).Split(uint64(index)).Split(uint64(attempt))
		if rng.Float64() < inj.cfg.StragglerRate {
			inj.straggles.Add(1)
			d := stragglerDelay(inj.cfg.StragglerMean, rng.Float64())
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				var zero T
				return zero, fmt.Errorf("faults: job %d attempt %d straggling (%v injected): %w",
					index, attempt, d, ctx.Err())
			}
		}
		if rng.Float64() < inj.cfg.PanicRate {
			inj.panics.Add(1)
			panic(fmt.Sprintf("faults: injected panic (job %d attempt %d)", index, attempt))
		}
		if rng.Float64() < inj.cfg.ErrorRate {
			inj.errors.Add(1)
			var zero T
			return zero, fmt.Errorf("faults: job %d attempt %d: %w", index, attempt, ErrInjected)
		}
		return fn(ctx, index)
	}
}

// stragglerDelay maps a uniform draw u onto the exponential distribution
// with the given mean, capped at 8x the mean so one straggler stays
// bounded (the cap is what lets deadline-free soaks still terminate).
func stragglerDelay(mean time.Duration, u float64) time.Duration {
	d := time.Duration(-float64(mean) * math.Log(1-u))
	if d < 0 {
		d = 0
	}
	if max := 8 * mean; d > max {
		d = max
	}
	return d
}
