package faults

import (
	"fmt"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"zatel/internal/vecmath"
)

// FS is the filesystem surface the disk artifact tier (internal/store's
// disk store) runs on. It is deliberately whole-file: the disk store's
// crash-safety discipline is temp-file → durable write → rename, and a
// whole-file WriteFile is the natural unit for deterministic fault
// injection (a torn write tears one entry, not one syscall).
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string) error
	// ReadFile returns the whole file contents.
	ReadFile(name string) ([]byte, error)
	// WriteFile durably writes data to name (create-or-truncate, then
	// fsync): after a nil return the bytes are expected to survive a crash.
	WriteFile(name string, data []byte) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the file.
	Remove(name string) error
	// ReadDir lists the directory.
	ReadDir(name string) ([]fs.DirEntry, error)
}

// OSFS is the real operating-system filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS: create-or-truncate, write, fsync, close. The
// sync before close is what makes the disk store's rename discipline
// crash-safe — without it a power cut can leave a renamed entry with
// unwritten pages (a torn entry the integrity header then catches).
func (OSFS) WriteFile(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// FSConfig describes the filesystem fault distribution. The zero value
// injects nothing. Every decision is a pure function of (Seed, operation
// kind, operation ordinal), mirroring the job injector's determinism
// contract: two runs issuing the same operation sequence see exactly the
// same faults.
type FSConfig struct {
	// TornWriteRate is the per-WriteFile probability that the write
	// silently persists only a seeded prefix of the data — the lying-disk /
	// power-cut model. The call still returns nil; only the integrity
	// header on the read side can catch it.
	TornWriteRate float64
	// ENOSPCRate is the per-WriteFile probability of failing with ENOSPC.
	ENOSPCRate float64
	// ReadErrRate is the per-ReadFile probability of failing with EIO.
	ReadErrRate float64
	// BitFlipRate is the per-ReadFile probability of returning the data
	// with one seeded bit inverted — bitrot at rest.
	BitFlipRate float64
	// Seed roots every injection decision.
	Seed uint64
}

// Enabled reports whether the configuration injects any fault at all.
func (c FSConfig) Enabled() bool {
	return c.TornWriteRate > 0 || c.ENOSPCRate > 0 || c.ReadErrRate > 0 || c.BitFlipRate > 0
}

// Validate checks that every rate is a probability.
func (c FSConfig) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"TornWriteRate", c.TornWriteRate},
		{"ENOSPCRate", c.ENOSPCRate},
		{"ReadErrRate", c.ReadErrRate},
		{"BitFlipRate", c.BitFlipRate},
	} {
		if r.rate < 0 || r.rate > 1 {
			return fmt.Errorf("faults: %s %v out of [0,1]", r.name, r.rate)
		}
	}
	return nil
}

// FSStats counts the filesystem faults a FaultFS has delivered.
type FSStats struct {
	TornWrites int64
	ENOSPCs    int64
	ReadErrors int64
	BitFlips   int64
}

// FaultFS wraps an FS with seeded fault injection. Writes and reads draw
// from independent decision streams keyed by their own ordinal, so the
// fault sequence does not depend on how reads and writes interleave.
type FaultFS struct {
	inner FS

	mu  sync.Mutex
	cfg FSConfig

	writeOps atomic.Uint64
	readOps  atomic.Uint64

	torn     atomic.Int64
	enospcs  atomic.Int64
	readErrs atomic.Int64
	bitFlips atomic.Int64
}

// Decision-stream discriminators, so write and read draws never collide.
const (
	fsStreamWrite = 1
	fsStreamRead  = 2
)

// NewFaultFS validates cfg and wraps inner (nil = the real OS filesystem).
func NewFaultFS(inner FS, cfg FSConfig) (*FaultFS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner, cfg: cfg}, nil
}

// SetConfig replaces the fault distribution. Soaks use it to heal or break
// the disk mid-run (e.g. lift a full-disk condition so a degraded store's
// re-probe can recover); decisions stay deterministic because the operation
// ordinals keep advancing.
func (f *FaultFS) SetConfig(cfg FSConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	f.cfg = cfg
	f.mu.Unlock()
	return nil
}

// Stats snapshots the injected-fault counters.
func (f *FaultFS) Stats() FSStats {
	return FSStats{
		TornWrites: f.torn.Load(),
		ENOSPCs:    f.enospcs.Load(),
		ReadErrors: f.readErrs.Load(),
		BitFlips:   f.bitFlips.Load(),
	}
}

func (f *FaultFS) config() FSConfig {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg
}

// MkdirAll implements FS (never injected: directory creation failures are
// a setup error, not a runtime degradation mode worth modelling).
func (f *FaultFS) MkdirAll(path string) error { return f.inner.MkdirAll(path) }

// WriteFile implements FS with ENOSPC and torn-write injection. An
// injected ENOSPC writes nothing; an injected torn write persists only a
// seeded prefix of data and reports success, modelling a disk that
// acknowledged a write it never completed.
func (f *FaultFS) WriteFile(name string, data []byte) error {
	cfg := f.config()
	op := f.writeOps.Add(1)
	rng := vecmath.NewRNG(cfg.Seed).Split(fsStreamWrite).Split(op)
	if rng.Float64() < cfg.ENOSPCRate {
		f.enospcs.Add(1)
		return fmt.Errorf("faults: injected ENOSPC writing %s: %w (%w)", name, syscall.ENOSPC, ErrInjected)
	}
	if rng.Float64() < cfg.TornWriteRate && len(data) > 0 {
		f.torn.Add(1)
		n := int(rng.Uint64() % uint64(len(data)))
		return f.inner.WriteFile(name, data[:n])
	}
	return f.inner.WriteFile(name, data)
}

// ReadFile implements FS with EIO and bit-flip injection.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	cfg := f.config()
	op := f.readOps.Add(1)
	rng := vecmath.NewRNG(cfg.Seed).Split(fsStreamRead).Split(op)
	if rng.Float64() < cfg.ReadErrRate {
		f.readErrs.Add(1)
		return nil, fmt.Errorf("faults: injected EIO reading %s: %w (%w)", name, syscall.EIO, ErrInjected)
	}
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if rng.Float64() < cfg.BitFlipRate && len(data) > 0 {
		f.bitFlips.Add(1)
		bit := rng.Uint64() % uint64(len(data)*8)
		flipped := make([]byte, len(data))
		copy(flipped, data)
		flipped[bit/8] ^= 1 << (bit % 8)
		return flipped, nil
	}
	return data, nil
}

// Rename implements FS (never injected: the disk store treats a failed
// rename like a failed write, which ENOSPCRate already models, and an
// interrupted rename is atomic on POSIX — either name survives, covered by
// the torn-write and orphan-temp paths).
func (f *FaultFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }

// Remove implements FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// ReadDir implements FS.
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }
