package faults

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func newTestFS(t *testing.T, cfg FSConfig) (*FaultFS, string) {
	t.Helper()
	f, err := NewFaultFS(nil, cfg)
	if err != nil {
		t.Fatalf("NewFaultFS: %v", err)
	}
	return f, t.TempDir()
}

func TestFSConfigValidate(t *testing.T) {
	if err := (FSConfig{}).Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	if (FSConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	if !(FSConfig{BitFlipRate: 0.1}).Enabled() {
		t.Error("bit-flip config reports disabled")
	}
	for _, bad := range []FSConfig{
		{TornWriteRate: -0.1}, {ENOSPCRate: 1.5}, {ReadErrRate: 2}, {BitFlipRate: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v validated", bad)
		}
	}
	if _, err := NewFaultFS(nil, FSConfig{ENOSPCRate: 7}); err == nil {
		t.Error("NewFaultFS accepted an invalid config")
	}
}

func TestFaultFSPassThrough(t *testing.T) {
	f, dir := newTestFS(t, FSConfig{})
	name := filepath.Join(dir, "sub", "a.bin")
	if err := f.MkdirAll(filepath.Dir(name)); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	want := []byte("payload bytes")
	if err := f.WriteFile(name, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := f.ReadFile(name)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("ReadFile: %q %v", got, err)
	}
	ents, err := f.ReadDir(filepath.Dir(name))
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v %v", ents, err)
	}
	moved := name + ".moved"
	if err := f.Rename(name, moved); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := f.Remove(moved); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if s := f.Stats(); s != (FSStats{}) {
		t.Errorf("fault-free run counted faults: %+v", s)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	f, dir := newTestFS(t, FSConfig{TornWriteRate: 1, Seed: 11})
	name := filepath.Join(dir, "torn.bin")
	data := bytes.Repeat([]byte{0xAB}, 256)
	// The lying-disk model: the call reports success...
	if err := f.WriteFile(name, data); err != nil {
		t.Fatalf("torn WriteFile returned error: %v", err)
	}
	// ...but only a strict prefix landed.
	got, err := os.ReadFile(name)
	if err != nil {
		t.Fatalf("readback: %v", err)
	}
	if len(got) >= len(data) {
		t.Fatalf("torn write persisted %d of %d bytes, want a strict prefix", len(got), len(data))
	}
	if !bytes.Equal(got, data[:len(got)]) {
		t.Error("torn write persisted non-prefix bytes")
	}
	if s := f.Stats(); s.TornWrites != 1 {
		t.Errorf("stats = %+v, want 1 torn write", s)
	}
}

func TestFaultFSENOSPC(t *testing.T) {
	f, dir := newTestFS(t, FSConfig{ENOSPCRate: 1, Seed: 3})
	name := filepath.Join(dir, "full.bin")
	err := f.WriteFile(name, []byte("x"))
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ENOSPC wrapping ErrInjected", err)
	}
	if _, statErr := os.Stat(name); !os.IsNotExist(statErr) {
		t.Error("ENOSPC write left a file behind")
	}
	if s := f.Stats(); s.ENOSPCs != 1 {
		t.Errorf("stats = %+v, want 1 ENOSPC", s)
	}
}

func TestFaultFSReadErrAndBitFlip(t *testing.T) {
	f, dir := newTestFS(t, FSConfig{ReadErrRate: 1, Seed: 5})
	name := filepath.Join(dir, "r.bin")
	data := bytes.Repeat([]byte{0x5C}, 64)
	if err := f.WriteFile(name, data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := f.ReadFile(name); !errors.Is(err, syscall.EIO) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want EIO wrapping ErrInjected", err)
	}

	// Heal the EIO, turn on bitrot: exactly one bit of the result differs.
	if err := f.SetConfig(FSConfig{BitFlipRate: 1, Seed: 5}); err != nil {
		t.Fatalf("SetConfig: %v", err)
	}
	got, err := f.ReadFile(name)
	if err != nil {
		t.Fatalf("bit-flip read errored: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("bit-flip read returned %d bytes, want %d", len(got), len(data))
	}
	diffBits := 0
	for i := range got {
		for b := got[i] ^ data[i]; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Errorf("%d bits flipped, want exactly 1", diffBits)
	}
	// The file itself is untouched — bitrot is modelled at read time.
	onDisk, _ := os.ReadFile(name)
	if !bytes.Equal(onDisk, data) {
		t.Error("bit-flip modified the underlying file")
	}
	if s := f.Stats(); s.ReadErrors != 1 || s.BitFlips != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestFaultFSDeterminism: two FaultFS instances with the same seed issue
// identical fault sequences for identical operation sequences, regardless
// of wall clock or interleaving with reads.
func TestFaultFSDeterminism(t *testing.T) {
	run := func(dir string) []bool {
		f, err := NewFaultFS(nil, FSConfig{ENOSPCRate: 0.5, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		outcomes := make([]bool, 40)
		for i := range outcomes {
			err := f.WriteFile(filepath.Join(dir, "d.bin"), []byte("data"))
			outcomes[i] = err != nil
			// Interleave reads; the write decision stream must not shift.
			f.ReadFile(filepath.Join(dir, "d.bin"))
		}
		return outcomes
	}
	a := run(t.TempDir())
	b := run(t.TempDir())
	var faults int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at op %d", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Errorf("rate 0.5 delivered %d/%d faults; draw looks broken", faults, len(a))
	}
}
