package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// ok is a job that always succeeds, returning its index.
func ok(ctx context.Context, i int) (int, error) { return i, nil }

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want bool // valid?
	}{
		{"zero", Config{}, true},
		{"all rates", Config{ErrorRate: 0.3, PanicRate: 0.1, StragglerRate: 0.2, StragglerMean: time.Millisecond}, true},
		{"error rate 1", Config{ErrorRate: 1}, true},
		{"negative rate", Config{ErrorRate: -0.1}, false},
		{"rate above 1", Config{PanicRate: 1.5}, false},
		{"straggle without mean", Config{StragglerRate: 0.5}, false},
		{"straggle negative mean", Config{StragglerRate: 0.5, StragglerMean: -time.Second}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.want && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.want && err == nil {
			t.Errorf("%s: invalid config accepted", c.name)
		}
	}
	if (Config{}).Enabled() {
		t.Error("zero config reports Enabled")
	}
	if !(Config{StragglerRate: 0.1, StragglerMean: time.Millisecond}).Enabled() {
		t.Error("straggler-only config reports disabled")
	}
}

func TestWrapDisabledPassesThrough(t *testing.T) {
	if v, err := Wrap[int](nil, ok)(context.Background(), 7); err != nil || v != 7 {
		t.Errorf("nil injector: got (%d, %v)", v, err)
	}
	inj, err := NewInjector(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := Wrap(inj, ok)(context.Background(), 3); err != nil || v != 3 {
		t.Errorf("disabled injector: got (%d, %v)", v, err)
	}
}

func TestNewInjectorRejectsInvalid(t *testing.T) {
	if _, err := NewInjector(Config{ErrorRate: 2}); err == nil {
		t.Error("invalid config accepted")
	}
}

// outcomes runs the wrapped job once for every index in [0, n) over the
// given number of attempts per index and records which (index, attempt)
// pairs failed.
func outcomes(t *testing.T, cfg Config, n, attempts int) []bool {
	t.Helper()
	inj, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Wrap(inj, ok)
	fails := make([]bool, 0, n*attempts)
	for i := 0; i < n; i++ {
		for a := 0; a < attempts; a++ {
			_, err := wrapped(context.Background(), i)
			fails = append(fails, err != nil)
		}
	}
	return fails
}

func TestInjectionIsDeterministic(t *testing.T) {
	cfg := Config{ErrorRate: 0.4, Seed: 99}
	first := outcomes(t, cfg, 200, 3)
	second := outcomes(t, cfg, 200, 3)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
	// A different seed must produce a different fault pattern.
	other := outcomes(t, Config{ErrorRate: 0.4, Seed: 100}, 200, 3)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 99 and 100 injected identical fault patterns")
	}
}

func TestErrorRateApproximatelyHolds(t *testing.T) {
	const n = 2000
	fails := outcomes(t, Config{ErrorRate: 0.3, Seed: 1}, n, 1)
	count := 0
	for _, f := range fails {
		if f {
			count++
		}
	}
	// 0.3 ± generous tolerance; the draws are deterministic, so this can
	// never flake once it passes.
	if count < n*20/100 || count > n*40/100 {
		t.Errorf("%d/%d injected errors, want ~30%%", count, n)
	}
}

func TestInjectedErrorWrapsSentinel(t *testing.T) {
	inj, err := NewInjector(Config{ErrorRate: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, jerr := Wrap(inj, ok)(context.Background(), 0)
	if !errors.Is(jerr, ErrInjected) {
		t.Errorf("injected error %v does not wrap ErrInjected", jerr)
	}
	if got := inj.Stats(); got.Errors != 1 || got.Panics != 0 || got.Straggles != 0 {
		t.Errorf("stats = %+v, want 1 error", got)
	}
}

func TestInjectedPanic(t *testing.T) {
	inj, err := NewInjector(Config{PanicRate: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Wrap(inj, ok)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic injected at rate 1")
		}
		if !strings.Contains(r.(string), "injected panic") {
			t.Errorf("panic value %v", r)
		}
		if got := inj.Stats(); got.Panics != 1 {
			t.Errorf("stats = %+v, want 1 panic", got)
		}
	}()
	wrapped(context.Background(), 0)
}

func TestStragglerHonoursContext(t *testing.T) {
	// Mean 10s: the exponential draw exceeds the 20ms deadline for any
	// plausible uniform draw, and the decision stream is deterministic, so
	// at least one of the first few indices must report a cut-short
	// straggle quickly.
	inj, err := NewInjector(Config{StragglerRate: 1, StragglerMean: 10 * time.Second, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Wrap(inj, ok)
	start := time.Now()
	sawDeadline := false
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, jerr := wrapped(ctx, i)
		cancel()
		if errors.Is(jerr, context.DeadlineExceeded) {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Error("no straggler was interrupted by its deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("stragglers ignored their contexts (took %v)", elapsed)
	}
	if got := inj.Stats(); got.Straggles != 5 {
		t.Errorf("stats = %+v, want 5 straggles", got)
	}
}

func TestAttemptsDrawFreshDecisions(t *testing.T) {
	// At rate 0.5 the per-attempt decisions for one index must not all
	// agree across many attempts — retried attempts draw new faults.
	inj, err := NewInjector(Config{ErrorRate: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Wrap(inj, ok)
	saw := map[bool]bool{}
	for a := 0; a < 32; a++ {
		_, jerr := wrapped(context.Background(), 0)
		saw[jerr != nil] = true
	}
	if !saw[true] || !saw[false] {
		t.Errorf("32 attempts at rate 0.5 all agreed: %v", saw)
	}
}

func TestSplitSeedDecorrelatesStrata(t *testing.T) {
	cfg := Config{ErrorRate: 0.5, Seed: 9}
	a, b := cfg.SplitSeed(0), cfg.SplitSeed(1)
	if a.Seed == b.Seed || a.Seed == cfg.Seed {
		t.Errorf("strata share seeds: base %d, split %d / %d", cfg.Seed, a.Seed, b.Seed)
	}
	if a != cfg.SplitSeed(0) {
		t.Error("SplitSeed not deterministic")
	}
	disabled := Config{Seed: 9}
	if disabled.SplitSeed(3) != disabled {
		t.Error("disabled config was re-seeded")
	}
}

func TestStragglerDelayShape(t *testing.T) {
	mean := 100 * time.Millisecond
	if d := stragglerDelay(mean, 0); d != 0 {
		t.Errorf("u=0 delay %v, want 0", d)
	}
	if d := stragglerDelay(mean, 0.9999999999999); d != 8*mean {
		t.Errorf("extreme draw delay %v, want the 8x-mean cap %v", d, 8*mean)
	}
	// ln(2) quantile: median of the exponential distribution is mean*ln 2.
	if d := stragglerDelay(mean, 0.5); d < 60*time.Millisecond || d > 80*time.Millisecond {
		t.Errorf("median delay %v, want ~%v", d, time.Duration(float64(mean)*0.6931))
	}
}
