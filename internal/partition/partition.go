// Package partition implements step 4 of the Zatel pipeline: dividing the
// image plane into K equal groups, either coarse-grained (a contiguous
// rows×cols grid, Fig. 5) or fine-grained (small chunks dealt round-robin
// to groups, Fig. 6/7). Groups are expressed as lists of section blocks —
// the unit the representative-pixel selector picks (Section III-E) and the
// unit warps are formed from (block width 32 maps one block row to one
// warp).
package partition

import "fmt"

// Block is one section block: a rectangle of pixel indices (row-major
// within the block, top-left first).
type Block struct {
	Pixels []int32
}

// Group is one of the K simulation groups.
type Group struct {
	Blocks []Block
}

// NumPixels returns the group's pixel count.
func (g *Group) NumPixels() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Pixels)
	}
	return n
}

// AllPixels returns the group's pixels in block order — the thread order
// its simulator instance launches warps in.
func (g *Group) AllPixels() []int32 {
	out := make([]int32, 0, g.NumPixels())
	for _, b := range g.Blocks {
		out = append(out, b.Pixels...)
	}
	return out
}

// Coarse splits the width×height plane directly into k contiguous tiles
// arranged in a rows×cols grid with rows ≥ cols (Fig. 5 uses 3×2 for K=6),
// then subdivides each tile into blockW×blockH section blocks.
func Coarse(width, height, k, blockW, blockH int) ([]Group, error) {
	if err := checkArgs(width, height, k, blockW, blockH); err != nil {
		return nil, err
	}
	rows, cols := gridShape(k)
	groups := make([]Group, 0, k)
	for r := 0; r < rows; r++ {
		y0 := r * height / rows
		y1 := (r + 1) * height / rows
		for c := 0; c < cols; c++ {
			x0 := c * width / cols
			x1 := (c + 1) * width / cols
			g := Group{}
			for by := y0; by < y1; by += blockH {
				for bx := x0; bx < x1; bx += blockW {
					g.Blocks = append(g.Blocks,
						makeBlock(width, bx, by, min(bx+blockW, x1), min(by+blockH, y1)))
				}
			}
			groups = append(groups, g)
		}
	}
	return groups, nil
}

// Fine divides the plane into chunkW×chunkH chunks and deals them to the k
// groups round-robin in row-major chunk order (Fig. 6). The chunks are the
// groups' section blocks.
func Fine(width, height, k, chunkW, chunkH int) ([]Group, error) {
	if err := checkArgs(width, height, k, chunkW, chunkH); err != nil {
		return nil, err
	}
	groups := make([]Group, k)
	cy := 0
	for y := 0; y < height; y += chunkH {
		cx := 0
		for x := 0; x < width; x += chunkW {
			b := makeBlock(width, x, y, min(x+chunkW, width), min(y+chunkH, height))
			// Diagonal stagger (cx+cy) mod k matches Fig. 6 and keeps
			// every group sampling all regions even when the chunk-row
			// width is a multiple of k (plain round-robin would stripe
			// whole columns into one group).
			gi := (cx + cy) % k
			groups[gi].Blocks = append(groups[gi].Blocks, b)
			cx++
		}
		cy++
	}
	return groups, nil
}

func makeBlock(width, x0, y0, x1, y1 int) Block {
	b := Block{Pixels: make([]int32, 0, (x1-x0)*(y1-y0))}
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			b.Pixels = append(b.Pixels, int32(y*width+x))
		}
	}
	return b
}

// gridShape factorises k into rows×cols with rows ≥ cols and cols the
// largest divisor of k not exceeding √k.
func gridShape(k int) (rows, cols int) {
	cols = 1
	for d := 1; d*d <= k; d++ {
		if k%d == 0 {
			cols = d
		}
	}
	return k / cols, cols
}

func checkArgs(width, height, k, bw, bh int) error {
	if width <= 0 || height <= 0 {
		return fmt.Errorf("partition: invalid plane %dx%d", width, height)
	}
	if k <= 0 {
		return fmt.Errorf("partition: k=%d must be positive", k)
	}
	if bw <= 0 || bh <= 0 {
		return fmt.Errorf("partition: invalid block %dx%d", bw, bh)
	}
	if k > width*height {
		return fmt.Errorf("partition: k=%d exceeds %d pixels", k, width*height)
	}
	return nil
}
