package partition

import (
	"testing"
	"testing/quick"
)

// collectAll gathers every pixel across groups and checks the partition
// property: each pixel appears exactly once.
func assertPartition(t *testing.T, groups []Group, width, height int) {
	t.Helper()
	seen := make([]bool, width*height)
	for gi, g := range groups {
		for _, b := range g.Blocks {
			for _, p := range b.Pixels {
				if p < 0 || int(p) >= len(seen) {
					t.Fatalf("group %d: pixel %d out of range", gi, p)
				}
				if seen[p] {
					t.Fatalf("pixel %d assigned twice", p)
				}
				seen[p] = true
			}
		}
	}
	for p, ok := range seen {
		if !ok {
			t.Fatalf("pixel %d unassigned", p)
		}
	}
}

func TestArgsValidation(t *testing.T) {
	if _, err := Coarse(0, 8, 2, 4, 2); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Fine(8, 8, 0, 4, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Fine(8, 8, 2, 0, 2); err == nil {
		t.Error("zero chunk accepted")
	}
	if _, err := Coarse(2, 2, 100, 1, 1); err == nil {
		t.Error("k > pixels accepted")
	}
}

func TestGridShapeMatchesPaper(t *testing.T) {
	// Fig. 5: K=6 → 3 rows × 2 columns.
	rows, cols := gridShape(6)
	if rows != 3 || cols != 2 {
		t.Errorf("gridShape(6) = %dx%d, want 3x2", rows, cols)
	}
	cases := []struct{ k, r, c int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {5, 5, 1}, {9, 3, 3}, {12, 4, 3},
	}
	for _, tc := range cases {
		r, c := gridShape(tc.k)
		if r != tc.r || c != tc.c {
			t.Errorf("gridShape(%d) = %dx%d, want %dx%d", tc.k, r, c, tc.r, tc.c)
		}
		if r*c != tc.k {
			t.Errorf("gridShape(%d) does not multiply back", tc.k)
		}
	}
}

func TestCoarseIsPartitionWithEqualGroups(t *testing.T) {
	groups, err := Coarse(128, 128, 4, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("%d groups", len(groups))
	}
	assertPartition(t, groups, 128, 128)
	for gi, g := range groups {
		if g.NumPixels() != 128*128/4 {
			t.Errorf("group %d has %d pixels", gi, g.NumPixels())
		}
	}
}

func TestCoarseGroupsAreContiguousTiles(t *testing.T) {
	// With K=4 on a 64x64 plane, group 0 must be the top-left 32x32 tile.
	groups, err := Coarse(64, 64, 4, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range groups[0].AllPixels() {
		x, y := int(p)%64, int(p)/64
		if x >= 32 || y >= 32 {
			t.Fatalf("group 0 pixel (%d,%d) outside top-left tile", x, y)
		}
	}
}

func TestFineIsPartitionWithEqualGroups(t *testing.T) {
	groups, err := Fine(128, 128, 4, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, groups, 128, 128)
	for gi, g := range groups {
		if g.NumPixels() != 128*128/4 {
			t.Errorf("group %d has %d pixels", gi, g.NumPixels())
		}
	}
}

func TestFineStaggeredAssignmentMatchesFig6(t *testing.T) {
	// Fig. 6: a 5-chunk-wide plane with K=4 numbers chunks 0 1 2 3 0 on
	// the first row and 1 2 3 0 1 on the second (diagonal stagger).
	groups, err := Fine(5, 2, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int32{
		{0, 4, 8}, // group 0: (0,0), (4,0), (3,1)
		{1, 5, 9}, // group 1: (1,0), (0,1), (4,1)
		{2, 6},    // group 2
		{3, 7},    // group 3
	}
	for gi, pix := range want {
		got := groups[gi].AllPixels()
		if len(got) != len(pix) {
			t.Fatalf("group %d pixels %v, want %v", gi, got, pix)
		}
		for i := range pix {
			if got[i] != pix[i] {
				t.Fatalf("group %d pixels %v, want %v", gi, got, pix)
			}
		}
	}
}

func TestFineSamplesWholePlanePerGroup(t *testing.T) {
	// Fine-grained groups must span the full image area (the paper's
	// homogeneous-sampling property): each group's pixels must touch all
	// four quadrants of the plane.
	groups, err := Fine(64, 64, 4, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range groups {
		var quad [4]bool
		for _, p := range g.AllPixels() {
			x, y := int(p)%64, int(p)/64
			q := 0
			if x >= 32 {
				q = 1
			}
			if y >= 32 {
				q += 2
			}
			quad[q] = true
		}
		for q, ok := range quad {
			if !ok {
				t.Errorf("fine group %d misses quadrant %d", gi, q)
			}
		}
	}
}

func TestBlockShape(t *testing.T) {
	groups, err := Coarse(64, 64, 1, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := groups[0]
	// 64x64 tile with 32x2 blocks → 2 per row, 32 rows.
	if len(g.Blocks) != 64 {
		t.Fatalf("%d blocks", len(g.Blocks))
	}
	b := g.Blocks[0]
	if len(b.Pixels) != 64 {
		t.Fatalf("block has %d pixels", len(b.Pixels))
	}
	// Row-major inside the block: second row starts at plane offset 64.
	if b.Pixels[32] != 64 {
		t.Errorf("block second row starts at %d", b.Pixels[32])
	}
}

func TestRaggedDimensions(t *testing.T) {
	// Plane not divisible by chunk size still partitions exactly.
	groups, err := Fine(50, 30, 3, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, groups, 50, 30)
}

// Property: both division methods produce exact partitions for arbitrary
// shapes.
func TestPartitionProperty(t *testing.T) {
	f := func(w8, h8, k8, bw8, bh8 uint8) bool {
		w := int(w8%40) + 1
		h := int(h8%40) + 1
		k := int(k8%6) + 1
		bw := int(bw8%8) + 1
		bh := int(bh8%8) + 1
		if k > w*h {
			return true
		}
		for _, fn := range []func(int, int, int, int, int) ([]Group, error){Coarse, Fine} {
			groups, err := fn(w, h, k, bw, bh)
			if err != nil {
				return false
			}
			seen := make([]bool, w*h)
			for _, g := range groups {
				for _, p := range g.AllPixels() {
					if p < 0 || int(p) >= len(seen) || seen[p] {
						return false
					}
					seen[p] = true
				}
			}
			for _, ok := range seen {
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
