package vecmath

import (
	"testing"
	"testing/quick"
)

func box(lo, hi Vec3) AABB { return AABB{Lo: lo, Hi: hi} }

func TestEmptyAABBIdentity(t *testing.T) {
	e := EmptyAABB()
	if e.Valid() {
		t.Fatalf("empty box reports valid")
	}
	b := box(V(0, 0, 0), V(1, 2, 3))
	if got := e.Extend(b); got != b {
		t.Errorf("Extend(empty, b) = %v, want %v", got, b)
	}
	if got := b.Extend(e); got != b {
		t.Errorf("Extend(b, empty) = %v, want %v", got, b)
	}
	if e.SurfaceArea() != 0 {
		t.Errorf("empty surface area = %v", e.SurfaceArea())
	}
}

func TestExtendPoint(t *testing.T) {
	b := EmptyAABB().ExtendPoint(V(1, 1, 1)).ExtendPoint(V(-1, 2, 0))
	want := box(V(-1, 1, 0), V(1, 2, 1))
	if b != want {
		t.Errorf("ExtendPoint = %v, want %v", b, want)
	}
}

func TestSurfaceAreaUnitCube(t *testing.T) {
	b := box(V(0, 0, 0), V(1, 1, 1))
	if b.SurfaceArea() != 6 {
		t.Errorf("unit cube area = %v", b.SurfaceArea())
	}
}

func TestCenterDiagonal(t *testing.T) {
	b := box(V(0, 0, 0), V(2, 4, 6))
	if b.Center() != V(1, 2, 3) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Diagonal() != V(2, 4, 6) {
		t.Errorf("Diagonal = %v", b.Diagonal())
	}
}

func TestAABBHitThroughCenter(t *testing.T) {
	b := box(V(-1, -1, -1), V(1, 1, 1))
	r := NewRay(V(0, 0, -5), V(0, 0, 1))
	tHit, ok := b.Hit(r)
	if !ok {
		t.Fatalf("ray through center misses")
	}
	if !approx(tHit, 4, 1e-4) {
		t.Errorf("entry t = %v, want 4", tHit)
	}
}

func TestAABBHitMiss(t *testing.T) {
	b := box(V(-1, -1, -1), V(1, 1, 1))
	r := NewRay(V(0, 5, -5), V(0, 0, 1)) // passes above the box
	if _, ok := b.Hit(r); ok {
		t.Errorf("ray above the box reported hit")
	}
	// Ray pointing away from the box.
	r2 := NewRay(V(0, 0, -5), V(0, 0, -1))
	if _, ok := b.Hit(r2); ok {
		t.Errorf("ray pointing away reported hit")
	}
}

func TestAABBHitAxisParallel(t *testing.T) {
	b := box(V(-1, -1, -1), V(1, 1, 1))
	// Ray with zero X and Y direction components, inside the slab.
	r := NewRay(V(0.5, 0.5, -5), V(0, 0, 1))
	if _, ok := b.Hit(r); !ok {
		t.Errorf("axis-parallel ray inside slabs missed")
	}
	// Same but outside the X slab.
	r2 := NewRay(V(2, 0.5, -5), V(0, 0, 1))
	if _, ok := b.Hit(r2); ok {
		t.Errorf("axis-parallel ray outside slab hit")
	}
}

func TestAABBHitOriginInside(t *testing.T) {
	b := box(V(-1, -1, -1), V(1, 1, 1))
	r := NewRay(V(0, 0, 0), V(1, 0, 0))
	if _, ok := b.Hit(r); !ok {
		t.Errorf("ray starting inside missed")
	}
}

func TestAABBHitRespectsTMax(t *testing.T) {
	b := box(V(-1, -1, -1), V(1, 1, 1))
	r := NewRay(V(0, 0, -5), V(0, 0, 1))
	r.TMax = 3 // box entry is at t=4, beyond TMax
	if _, ok := b.Hit(r); ok {
		t.Errorf("hit beyond TMax accepted")
	}
}

// Property: a box always contains its center, and extending by a point makes
// the box contain that point.
func TestAABBContainsProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, px, py, pz float32) bool {
		clamp := func(x float32) float32 {
			if x > 1e6 {
				return 1e6
			}
			if x < -1e6 {
				return -1e6
			}
			if x != x { // NaN
				return 0
			}
			return x
		}
		a := V(clamp(ax), clamp(ay), clamp(az))
		b := V(clamp(bx), clamp(by), clamp(bz))
		p := V(clamp(px), clamp(py), clamp(pz))
		bb := EmptyAABB().ExtendPoint(a).ExtendPoint(b)
		if !bb.Contains(bb.Center()) {
			return false
		}
		return bb.ExtendPoint(p).Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rays aimed at a point inside the box always hit the box.
func TestAABBHitAimedProperty(t *testing.T) {
	rng := NewRNG(7)
	b := box(V(-2, -1, -3), V(1, 2, 0.5))
	for i := 0; i < 500; i++ {
		target := V(
			rng.Range(b.Lo.X, b.Hi.X),
			rng.Range(b.Lo.Y, b.Hi.Y),
			rng.Range(b.Lo.Z, b.Hi.Z),
		)
		origin := rng.UnitSphere().Scale(20)
		r := NewRay(origin, target.Sub(origin).Norm())
		if _, ok := b.Hit(r); !ok {
			t.Fatalf("aimed ray %d missed: origin=%v target=%v", i, origin, target)
		}
	}
}
