package vecmath

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/64 draws collided across seeds", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(9)
	s1 := root.Split(1)
	s2 := root.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Errorf("adjacent split ids produced identical first draw")
	}
	// Splitting must not advance the parent stream.
	r1 := NewRNG(9)
	r2 := NewRNG(9)
	_ = r2.Split(5)
	if r1.Uint64() != r2.Uint64() {
		t.Errorf("Split advanced the parent stream")
	}
}

func TestFloat32Bounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestFloat32Uniformity(t *testing.T) {
	// Coarse uniformity: 10 buckets should each hold roughly n/10 samples.
	r := NewRNG(11)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float32()*10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d count %d far from %d", i, c, n/10)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUnitSphereIsUnit(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		v := r.UnitSphere()
		if math.Abs(float64(v.Len())-1) > 1e-4 {
			t.Fatalf("UnitSphere length %v", v.Len())
		}
	}
}

func TestHemisphereSide(t *testing.T) {
	r := NewRNG(17)
	n := V(0, 1, 0)
	neg := 0
	for i := 0; i < 2000; i++ {
		d := r.Hemisphere(n)
		if d.Dot(n) < -1e-3 {
			neg++
		}
	}
	// The perturbed-normal construction keeps directions on the normal's
	// side of the tangent plane.
	if neg > 0 {
		t.Errorf("%d/2000 hemisphere samples below the surface", neg)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(23)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestRangeBounds(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 1000; i++ {
		v := r.Range(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Range(-3,5) = %v", v)
		}
	}
}
