package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func vecApprox(a, b Vec3, eps float32) bool {
	return approx(a.X, b.X, eps) && approx(a.Y, b.Y, eps) && approx(a.Z, b.Z, eps)
}

func TestVecBasicOps(t *testing.T) {
	a, b := V(1, 2, 3), V(4, 5, 6)
	if got := a.Add(b); got != V(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != V(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != V(4, 10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	a, b := V(1, 0, 0), V(0, 1, 0)
	if got := a.Cross(b); got != V(0, 0, 1) {
		t.Errorf("x cross y = %v, want z", got)
	}
	// Cross product is orthogonal to both inputs.
	c := V(1, 2, 3).Cross(V(-2, 1, 0.5))
	if !approx(c.Dot(V(1, 2, 3)), 0, 1e-4) || !approx(c.Dot(V(-2, 1, 0.5)), 0, 1e-4) {
		t.Errorf("cross not orthogonal: %v", c)
	}
}

func TestNorm(t *testing.T) {
	v := V(3, 4, 0).Norm()
	if !approx(v.Len(), 1, 1e-6) {
		t.Errorf("Norm length = %v", v.Len())
	}
	zero := Vec3{}
	if zero.Norm() != zero {
		t.Errorf("Norm of zero changed the vector")
	}
}

func TestMinMaxAxis(t *testing.T) {
	a, b := V(1, 5, 3), V(2, 4, 9)
	if got := a.Min(b); got != V(1, 4, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != V(2, 5, 9) {
		t.Errorf("Max = %v", got)
	}
	if V(3, 1, 2).MaxAxis() != 0 || V(1, -5, 2).MaxAxis() != 1 || V(1, 2, -3).MaxAxis() != 2 {
		t.Errorf("MaxAxis wrong")
	}
	for i, want := range []float32{7, 8, 9} {
		if got := V(7, 8, 9).Axis(i); got != want {
			t.Errorf("Axis(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, 20, 30)
	if got := a.Lerp(b, 0.5); got != V(5, 10, 15) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp t=1 = %v", got)
	}
}

func TestReflect(t *testing.T) {
	// 45° incidence onto the y=0 plane flips the y component.
	in := V(1, -1, 0).Norm()
	out := in.Reflect(V(0, 1, 0))
	if !vecApprox(out, V(1, 1, 0).Norm(), 1e-6) {
		t.Errorf("Reflect = %v", out)
	}
}

func TestReflectPreservesLength(t *testing.T) {
	f := func(vx, vy, vz float32) bool {
		v := V(vx, vy, vz)
		if v.Len() == 0 || v.Len() > 1e10 || math.IsNaN(float64(v.Len())) {
			return true
		}
		out := v.Reflect(V(0, 1, 0))
		return approx(out.Len(), v.Len(), v.Len()*1e-3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotCauchySchwarz(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float32) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		la, lb := float64(a.Len()), float64(b.Len())
		if math.IsInf(la, 0) || math.IsInf(lb, 0) || math.IsNaN(la) || math.IsNaN(lb) || la > 1e15 || lb > 1e15 {
			return true
		}
		d := math.Abs(float64(a.Dot(b)))
		if math.IsInf(d, 0) {
			return true
		}
		return d <= la*lb*(1+1e-3)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
