// Package vecmath provides the small linear-algebra kernel used by the
// ray-tracing substrate: 3-component float32 vectors, rays, axis-aligned
// bounding boxes and a splittable deterministic PRNG.
//
// Everything in this package is allocation-free and safe for concurrent use
// by value.
package vecmath

import "math"

// Vec3 is a 3-component single-precision vector. Single precision matches
// what GPU ray-tracing hardware operates on and halves trace memory.
type Vec3 struct {
	X, Y, Z float32
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float32) Vec3 { return Vec3{x, y, z} }

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Mul returns the component-wise product v ⊙ u.
func (v Vec3) Mul(u Vec3) Vec3 { return Vec3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float32) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the inner product v·u.
func (v Vec3) Dot(u Vec3) float32 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v × u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Len returns the Euclidean norm of v.
func (v Vec3) Len() float32 {
	return float32(math.Sqrt(float64(v.Dot(v))))
}

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Norm() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Min returns the component-wise minimum of v and u.
func (v Vec3) Min(u Vec3) Vec3 {
	return Vec3{min(v.X, u.X), min(v.Y, u.Y), min(v.Z, u.Z)}
}

// Max returns the component-wise maximum of v and u.
func (v Vec3) Max(u Vec3) Vec3 {
	return Vec3{max(v.X, u.X), max(v.Y, u.Y), max(v.Z, u.Z)}
}

// Axis returns the i-th component (0=X, 1=Y, 2=Z).
func (v Vec3) Axis(i int) float32 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// MaxAxis returns the index of the component with the largest magnitude.
func (v Vec3) MaxAxis() int {
	ax, ay, az := abs(v.X), abs(v.Y), abs(v.Z)
	switch {
	case ax >= ay && ax >= az:
		return 0
	case ay >= az:
		return 1
	default:
		return 2
	}
}

// Lerp returns v + t·(u−v), the linear interpolation between v and u.
func (v Vec3) Lerp(u Vec3, t float32) Vec3 {
	return v.Add(u.Sub(v).Scale(t))
}

// Reflect returns the reflection of the incident direction v about the
// (unit) normal n: v − 2(v·n)n.
func (v Vec3) Reflect(n Vec3) Vec3 {
	return v.Sub(n.Scale(2 * v.Dot(n)))
}

func abs(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
