package vecmath

// RNG is a small splittable deterministic generator (SplitMix64). Every
// stochastic choice in the repository — scene generation, path sampling,
// section-block selection — draws from an RNG seeded from a fixed root so
// experiments are reproducible run to run and independent of execution
// order across goroutines.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent stream keyed by id without disturbing the
// parent stream's sequence. Two Splits with different ids are decorrelated.
func (r *RNG) Split(id uint64) *RNG {
	// Mix the id through the same finalizer so adjacent ids diverge.
	return &RNG{state: mix64(r.state ^ mix64(id^0x9e3779b97f4a7c15))}
}

// Uint64 advances the stream and returns 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vecmath: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float32 in [lo, hi).
func (r *RNG) Range(lo, hi float32) float32 {
	return lo + (hi-lo)*r.Float32()
}

// UnitSphere returns a point uniformly distributed on the unit sphere.
func (r *RNG) UnitSphere() Vec3 {
	for {
		v := Vec3{r.Range(-1, 1), r.Range(-1, 1), r.Range(-1, 1)}
		if l := v.Len(); l > 1e-4 && l <= 1 {
			return v.Scale(1 / l)
		}
	}
}

// Hemisphere returns a direction on the hemisphere around normal n,
// cosine-ish weighted by perturbing the normal with a sphere sample.
func (r *RNG) Hemisphere(n Vec3) Vec3 {
	d := n.Add(r.UnitSphere())
	if d.Len() < 1e-4 {
		return n
	}
	return d.Norm()
}

// Shuffle permutes the first n indices using swaps chosen by the generator,
// invoking swap(i, j) like sort's interface.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
