package vecmath

// AABB is an axis-aligned bounding box described by its two extreme corners.
type AABB struct {
	Lo, Hi Vec3
}

// EmptyAABB returns the identity element for Extend: a box that contains
// nothing and leaves any box it is merged with unchanged.
func EmptyAABB() AABB {
	return AABB{
		Lo: Vec3{inf, inf, inf},
		Hi: Vec3{-inf, -inf, -inf},
	}
}

// Extend returns the smallest box containing both b and other.
func (b AABB) Extend(other AABB) AABB {
	return AABB{Lo: b.Lo.Min(other.Lo), Hi: b.Hi.Max(other.Hi)}
}

// ExtendPoint returns the smallest box containing b and point p.
func (b AABB) ExtendPoint(p Vec3) AABB {
	return AABB{Lo: b.Lo.Min(p), Hi: b.Hi.Max(p)}
}

// Center returns the box midpoint.
func (b AABB) Center() Vec3 { return b.Lo.Add(b.Hi).Scale(0.5) }

// Diagonal returns Hi − Lo.
func (b AABB) Diagonal() Vec3 { return b.Hi.Sub(b.Lo) }

// SurfaceArea returns the total surface area, the quantity minimised by the
// SAH builder. An empty box reports zero.
func (b AABB) SurfaceArea() float32 {
	d := b.Diagonal()
	if d.X < 0 || d.Y < 0 || d.Z < 0 {
		return 0
	}
	return 2 * (d.X*d.Y + d.Y*d.Z + d.Z*d.X)
}

// Contains reports whether point p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Lo.X && p.X <= b.Hi.X &&
		p.Y >= b.Lo.Y && p.Y <= b.Hi.Y &&
		p.Z >= b.Lo.Z && p.Z <= b.Hi.Z
}

// Valid reports whether the box is non-empty (Lo ≤ Hi on every axis).
func (b AABB) Valid() bool {
	return b.Lo.X <= b.Hi.X && b.Lo.Y <= b.Hi.Y && b.Lo.Z <= b.Hi.Z
}

// Hit performs the slab intersection test against ray r and returns the
// entry distance and whether the ray's [TMin, TMax] interval overlaps the
// box. It is the test executed by the RT unit's box pipeline.
func (b AABB) Hit(r Ray) (float32, bool) {
	t0, t1 := r.TMin, r.TMax

	tx0 := (b.Lo.X - r.Origin.X) * r.InvDir.X
	tx1 := (b.Hi.X - r.Origin.X) * r.InvDir.X
	if tx0 > tx1 {
		tx0, tx1 = tx1, tx0
	}
	t0, t1 = max(t0, tx0), min(t1, tx1)

	ty0 := (b.Lo.Y - r.Origin.Y) * r.InvDir.Y
	ty1 := (b.Hi.Y - r.Origin.Y) * r.InvDir.Y
	if ty0 > ty1 {
		ty0, ty1 = ty1, ty0
	}
	t0, t1 = max(t0, ty0), min(t1, ty1)

	tz0 := (b.Lo.Z - r.Origin.Z) * r.InvDir.Z
	tz1 := (b.Hi.Z - r.Origin.Z) * r.InvDir.Z
	if tz0 > tz1 {
		tz0, tz1 = tz1, tz0
	}
	t0, t1 = max(t0, tz0), min(t1, tz1)

	return t0, t0 <= t1
}
