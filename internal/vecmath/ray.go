package vecmath

// Ray is a parametric half-line Origin + t·Dir for t in [TMin, TMax].
type Ray struct {
	Origin Vec3
	Dir    Vec3
	// InvDir caches 1/Dir per component for slab tests. Call Finalize
	// after setting Dir.
	InvDir Vec3
	TMin   float32
	TMax   float32
}

// NewRay returns a ray from origin along dir (normalised by the caller if
// required) with the standard [epsilon, +inf) interval, ready for slab tests.
func NewRay(origin, dir Vec3) Ray {
	r := Ray{Origin: origin, Dir: dir, TMin: 1e-4, TMax: inf}
	r.Finalize()
	return r
}

const inf = float32(3.4e38)

// Finalize recomputes the cached reciprocal direction. It must be called
// whenever Dir changes.
func (r *Ray) Finalize() {
	r.InvDir = Vec3{safeInv(r.Dir.X), safeInv(r.Dir.Y), safeInv(r.Dir.Z)}
}

// At returns the point Origin + t·Dir.
func (r Ray) At(t float32) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }

func safeInv(x float32) float32 {
	if x == 0 {
		// Signed infinity keeps the slab test correct for axis-parallel
		// rays: 0·inf produces NaN which the min/max ordering rejects.
		return inf
	}
	return 1 / x
}
