package service

import (
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"

	"zatel/internal/cluster"
	"zatel/internal/store"
)

// handleArtifacts serves GET /v1/artifacts/{digest}: the peer artifact
// endpoint of the cluster tier. The response body is the artifact's
// verified "ZATL"-framed encoding — exactly the bytes the disk tier
// persists — so the fetching peer re-verifies the same header and payload
// SHA-256 before decoding. Misses are 404; this endpoint never builds
// (builds belong to the owner's /v1/predict path).
func (s *Server) handleArtifacts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, "artifacts", http.MethodGet)
		return
	}
	hexDigest := strings.TrimPrefix(r.URL.Path, cluster.ArtifactsPath)
	raw, err := hex.DecodeString(hexDigest)
	if err != nil || len(raw) != len(store.Digest{}) {
		s.countRequest("artifacts", http.StatusBadRequest)
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad artifact digest %q (want 64 hex chars)", hexDigest))
		return
	}
	var key store.Digest
	copy(key[:], raw)
	data, ok := s.st.Export(key)
	if !ok {
		s.countRequest("artifacts", http.StatusNotFound)
		writeError(w, r, http.StatusNotFound, "artifact not found")
		return
	}
	s.countRequest("artifacts", http.StatusOK)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.Write(data)
}
