package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zatel/internal/core"
	"zatel/internal/faults"
	"zatel/internal/store"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postPredict(t *testing.T, url string, body string) (*http.Response, PredictResponse, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/predict: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var pr PredictResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatalf("decode response: %v\n%s", err, raw)
		}
	}
	return resp, pr, string(raw)
}

// TestPredictShapeAndWarmHit: a cold request returns the full JSON shape
// with cache=miss; the identical repeat is a store hit with the same key
// and identical predicted values.
func TestPredictShapeAndWarmHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"scene":"SPRNG","config":"mobile","width":40,"height":40,"spp":1}`

	resp, cold, _ := postPredict(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", resp.StatusCode)
	}
	if cold.Cache != "miss" {
		t.Errorf("cold cache = %q, want miss", cold.Cache)
	}
	if len(cold.Key) != 64 {
		t.Errorf("key %q not a sha256 hex digest", cold.Key)
	}
	if cold.Scene != "SPRNG" || cold.Config != "MobileSoC" || cold.K < 1 {
		t.Errorf("header fields: %+v", cold)
	}
	if len(cold.Predicted) != 7 {
		t.Errorf("predicted has %d metrics, want 7", len(cold.Predicted))
	}
	if _, ok := cold.Predicted["GPU IPC"]; !ok {
		t.Errorf("predicted missing GPU IPC: %v", cold.Predicted)
	}
	if len(cold.Groups) != cold.K {
		t.Errorf("%d groups for K=%d", len(cold.Groups), cold.K)
	}
	if resp.Header.Get("X-Zatel-Cache") != "miss" {
		t.Errorf("X-Zatel-Cache = %q", resp.Header.Get("X-Zatel-Cache"))
	}

	resp, warm, _ := postPredict(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", resp.StatusCode)
	}
	if warm.Cache != "hit" {
		t.Errorf("warm cache = %q, want hit", warm.Cache)
	}
	if warm.Key != cold.Key {
		t.Errorf("warm key %s != cold key %s", warm.Key, cold.Key)
	}
	for m, v := range cold.Predicted {
		if warm.Predicted[m] != v {
			t.Errorf("metric %s drifted: %v vs %v", m, warm.Predicted[m], v)
		}
	}
}

// TestPredictCoalescing: 8 concurrent identical cold requests perform
// exactly one prediction build — one responder reports miss, the rest
// coalesced, everyone gets the same key and values.
func TestPredictCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const body = `{"scene":"SPRNG","config":"mobile","width":44,"height":44,"spp":1,"seed":3}`

	const callers = 8
	var wg sync.WaitGroup
	codes := make([]int, callers)
	resps := make([]PredictResponse, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			json.NewDecoder(resp.Body).Decode(&resps[i])
		}(i)
	}
	close(start)
	wg.Wait()

	var miss, coalesced, hit int
	for i := 0; i < callers; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("caller %d: status %d", i, codes[i])
		}
		switch resps[i].Cache {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		case "hit":
			hit++ // possible if a caller arrived after the build landed
		}
		if resps[i].Key != resps[0].Key {
			t.Errorf("caller %d key %s != %s", i, resps[i].Key, resps[0].Key)
		}
		if resps[i].Predicted["GPU IPC"] != resps[0].Predicted["GPU IPC"] {
			t.Errorf("caller %d IPC differs", i)
		}
	}
	if miss != 1 {
		t.Errorf("%d misses (plus %d coalesced, %d hits), want exactly 1 build", miss, coalesced, hit)
	}
	// The service store holds exactly two artifacts for this workload: the
	// quantized heatmap and the prediction — so exactly two builds ran no
	// matter how many requests raced.
	if c := s.Store().Snapshot(); c.Builds != 2 {
		t.Errorf("store builds = %d, want 2 (quant + predict): %+v", c.Builds, c)
	}
}

func TestScenesConfigsHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/scenes")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/scenes: %v %v", resp.StatusCode, err)
	}
	var scenes struct {
		Scenes []string `json:"scenes"`
	}
	json.NewDecoder(resp.Body).Decode(&scenes)
	resp.Body.Close()
	if len(scenes.Scenes) < 5 {
		t.Errorf("scene list too short: %v", scenes.Scenes)
	}

	resp, err = http.Get(ts.URL + "/v1/configs")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/configs: %v %v", resp.StatusCode, err)
	}
	var configs struct {
		Configs []configInfo `json:"configs"`
	}
	json.NewDecoder(resp.Body).Decode(&configs)
	resp.Body.Close()
	if len(configs.Configs) != 2 || configs.Configs[1].DownscaleK != 6 {
		t.Errorf("configs = %+v", configs.Configs)
	}

	resp, _ = http.Get(ts.URL + "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Draining flips healthz and predict to 503.
	s.SetDraining(true)
	resp, _ = http.Get(ts.URL + "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	resp2, _, _ := postPredict(t, ts.URL, `{"scene":"SPRNG","config":"mobile","width":16,"height":16,"spp":1}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining predict status %d, want 503", resp2.StatusCode)
	}
}

func TestPredictBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"invalid json", `{"scene":`},
		{"unknown field", `{"scene":"SPRNG","bogus":1}`},
		{"missing scene", `{"config":"mobile"}`},
		{"unknown scene", `{"scene":"NOPE"}`},
		{"unknown config", `{"scene":"SPRNG","config":"voodoo"}`},
		{"unknown division", `{"scene":"SPRNG","division":"diagonal"}`},
		{"unknown dist", `{"scene":"SPRNG","dist":"gauss"}`},
		{"bad percent", `{"scene":"SPRNG","percent":1.5}`},
		{"negative timeout", `{"scene":"SPRNG","timeout_ms":-5}`},
	}
	for _, c := range cases {
		resp, _, raw := postPredict(t, ts.URL, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, raw)
		}
		if !strings.Contains(raw, `"error"`) {
			t.Errorf("%s: error body missing: %s", c.name, raw)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d, want 405", resp.StatusCode)
	}
}

// TestPredictDeadline: a 1ms deadline cannot cover a cold full pipeline;
// the request must come back 504 with the deadline mapped through ctx.
func TestPredictDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"scene":"PARK","config":"rtx2060","width":96,"height":96,"spp":1,"timeout_ms":1}`
	resp, _, raw := postPredict(t, ts.URL, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504 (%s)", resp.StatusCode, raw)
	}
}

// TestMetricsExposition: the Prometheus page carries the store counters,
// admission gauges, request totals and stage histograms, and the store hit
// from a warm request is visible in it.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"scene":"SPRNG","config":"mobile","width":36,"height":36,"spp":1}`
	postPredict(t, ts.URL, body)
	postPredict(t, ts.URL, body) // warm: one store hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %v %v", resp, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	var buf bytes.Buffer
	io.Copy(&buf, resp.Body)
	resp.Body.Close()
	page := buf.String()

	for _, want := range []string{
		"zatel_store_hits_total 1",
		"zatel_store_misses_total",
		"zatel_store_coalesced_total",
		"zatel_store_evictions_total",
		"zatel_store_inflight 0",
		"zatel_predict_capacity",
		"zatel_predict_running 0",
		`zatel_http_requests_total{handler="predict",code="200"} 2`,
		`zatel_stage_latency_seconds_bucket{stage="request",le="+Inf"} 2`,
		`zatel_stage_latency_seconds_bucket{stage="build",le="+Inf"} 1`,
		`zatel_stage_latency_seconds_count{stage="request"} 2`,
		"zatel_uptime_seconds",
		`zatel_step_latency_seconds_bucket{step="step1_profile",le="+Inf"} 1`,
		`zatel_step_latency_seconds_count{step="step7_combine"} 1`,
		"zatel_predictions_total",
		"zatel_runner_jobs_total",
		"zatel_runner_active_workers",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

// TestRequestIDRoundTrip: a caller-supplied X-Zatel-Request-Id is echoed on
// the response header and body; without one the server mints a 16-hex id.
func TestRequestIDRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"scene":"SPRNG","config":"mobile","width":32,"height":32,"spp":1,"seed":7}`

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "req-roundtrip-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var pr PredictResponse
	json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "req-roundtrip-1" {
		t.Errorf("response header %s = %q, want caller's id echoed", RequestIDHeader, got)
	}
	if pr.RequestID != "req-roundtrip-1" {
		t.Errorf("body request_id = %q, want caller's id echoed", pr.RequestID)
	}

	// No header: the server mints one and reports it in both places.
	resp2, pr2, _ := postPredict(t, ts.URL, body)
	minted := resp2.Header.Get(RequestIDHeader)
	if len(minted) != 16 {
		t.Errorf("minted request id %q, want 16 hex chars", minted)
	}
	if pr2.RequestID != minted {
		t.Errorf("body request_id %q != header %q", pr2.RequestID, minted)
	}
}

// TestPredictTraceExport: ?trace=1 embeds a Chrome trace_event export in
// the response whose metadata carries the request id and whose events
// include every pipeline step span.
func TestPredictTraceExport(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"scene":"SPRNG","config":"mobile","width":32,"height":32,"spp":1,"seed":9}`

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict?trace=1", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "req-traced-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if len(pr.Trace) == 0 {
		t.Fatalf("trace=1 response has no trace field")
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(pr.Trace, &trace); err != nil {
		t.Fatalf("trace field is not valid Chrome trace JSON: %v", err)
	}
	if trace.Metadata["request_id"] != "req-traced-1" {
		t.Errorf("trace metadata request_id = %q, want req-traced-1", trace.Metadata["request_id"])
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		names[ev.Name] = true
	}
	for _, step := range core.StepSpanNames {
		if !names[step] {
			t.Errorf("trace export missing %s span", step)
		}
	}

	// Without ?trace=1 the response must not carry the trace payload.
	_, plain, _ := postPredict(t, ts.URL, body)
	if len(plain.Trace) != 0 {
		t.Errorf("untraced response carries a trace field (%d bytes)", len(plain.Trace))
	}
}

// TestErrorBodyCarriesRequestID: error responses are structured JSON with
// both the message and the request id, so clients can quote the id when
// reporting failures.
func TestErrorBodyCarriesRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(`{"scene":"NOPE"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "req-err-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var eb struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
	if eb.Error == "" || eb.RequestID != "req-err-1" {
		t.Errorf("error body = %+v, want error message and request_id req-err-1", eb)
	}
}

// TestAdmissionControl: with one slot and a queue of one, a third builder
// is shed with errTooBusy, and a queued builder honours its context.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, MaxQueue: 1, Store: store.New(0)})

	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second builder parks in the queue.
	queuedErr := make(chan error, 1)
	go func() {
		err := s.acquire(context.Background())
		if err == nil {
			s.release()
		}
		queuedErr <- err
	}()
	for s.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Third is shed immediately.
	if err := s.acquire(context.Background()); !errors.Is(err, errTooBusy) {
		t.Errorf("third acquire: %v, want errTooBusy", err)
	}
	// Releasing the slot admits the queued builder.
	s.release()
	if err := <-queuedErr; err != nil {
		t.Errorf("queued acquire: %v", err)
	}

	// A queued builder with a dead context gives up with its ctx error.
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("refill: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled queued acquire: %v", err)
	}
	s.release()
}

// healthzBody fetches and decodes /healthz regardless of status code.
func healthzBody(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /healthz: %v", err)
	}
	return resp.StatusCode, body
}

// TestHealthzReportsStoreAndDisk: /healthz carries memory-store occupancy
// and the disk tier's state — "disabled" without a tier, "ok" with one.
func TestHealthzReportsStoreAndDisk(t *testing.T) {
	st := store.New(1 << 20)
	_, ts := newTestServer(t, Config{Store: st})

	code, body := healthzBody(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	sb, ok := body["store"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing store block: %v", body)
	}
	if sb["max_bytes"].(float64) != 1<<20 {
		t.Errorf("store.max_bytes = %v, want %d", sb["max_bytes"], 1<<20)
	}
	db, ok := body["disk"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing disk block: %v", body)
	}
	if db["state"] != "disabled" {
		t.Errorf("disk.state = %v, want disabled", db["state"])
	}

	d, err := store.OpenDisk(store.DiskConfig{Dir: t.TempDir(), MaxBytes: 1 << 20})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer d.Close()
	st.AttachDisk(d)
	_, body = healthzBody(t, ts.URL)
	db = body["disk"].(map[string]any)
	if db["state"] != "ok" {
		t.Errorf("disk.state = %v, want ok", db["state"])
	}
	if _, ok := db["max_bytes"]; !ok {
		t.Errorf("disk block missing max_bytes: %v", db)
	}
}

// TestPredictServesWhileDiskDegraded: a disk tier on a "full" filesystem
// (every write draws ENOSPC) flips to degraded — and predictions keep
// answering 200 from the memory tier, which is the whole point of the
// fail-soft design. /healthz and /metrics both surface the degradation.
func TestPredictServesWhileDiskDegraded(t *testing.T) {
	st := store.New(0)
	ffs, err := faults.NewFaultFS(nil, faults.FSConfig{ENOSPCRate: 1, Seed: 7})
	if err != nil {
		t.Fatalf("NewFaultFS: %v", err)
	}
	d, err := store.OpenDisk(store.DiskConfig{Dir: t.TempDir(), FS: ffs})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer d.Close()
	st.AttachDisk(d)
	_, ts := newTestServer(t, Config{Store: st})

	resp, pr, raw := postPredict(t, ts.URL, `{"scene":"SPRNG","config":"mobile","width":36,"height":36,"spp":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with failing disk: status %d\n%s", resp.StatusCode, raw)
	}
	if pr.Cache != "miss" {
		t.Errorf("cache = %q, want miss", pr.Cache)
	}
	d.Flush()
	if s := d.State(); s != store.DiskDegraded {
		t.Fatalf("disk state = %v, want degraded", s)
	}

	_, body := healthzBody(t, ts.URL)
	if db := body["disk"].(map[string]any); db["state"] != "degraded" {
		t.Errorf("healthz disk.state = %v, want degraded", db["state"])
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"zatel_store_disk_enabled 1",
		"zatel_store_disk_degraded 1",
		"zatel_store_disk_write_errors_total",
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The prediction itself is still served warm from memory.
	resp2, warm, _ := postPredict(t, ts.URL, `{"scene":"SPRNG","config":"mobile","width":36,"height":36,"spp":1}`)
	if resp2.StatusCode != http.StatusOK || warm.Cache != "hit" {
		t.Errorf("warm repeat: status %d cache %q", resp2.StatusCode, warm.Cache)
	}
}
