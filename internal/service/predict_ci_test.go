package service

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPredictCIResponse: a replicated-strategy request returns per-metric
// ci_low/ci_high brackets, the replicate count, per-group round info, and
// feeds the zatel_ci_halfwidth histogram.
func TestPredictCIResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"scene":"SPRNG","config":"mobile","width":40,"height":40,"spp":1,
		"dist":"rankedset","percent":0.4,"replicates":4}`

	resp, pr, raw := postPredict(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if pr.Replicates < 2 {
		t.Errorf("replicates = %d, want the requested 4 (min over groups)", pr.Replicates)
	}
	if len(pr.CILow) != len(pr.Predicted) || len(pr.CIHigh) != len(pr.Predicted) {
		t.Fatalf("ci_low/ci_high cover %d/%d metrics, predicted has %d",
			len(pr.CILow), len(pr.CIHigh), len(pr.Predicted))
	}
	for m, v := range pr.Predicted {
		lo, hi := pr.CILow[m], pr.CIHigh[m]
		if lo > v || v > hi {
			t.Errorf("%s: interval [%v,%v] does not bracket prediction %v", m, lo, hi, v)
		}
	}
	for gi, g := range pr.Groups {
		if g.Error == "" && (g.Replicates < 2 || g.Rounds < 1) {
			t.Errorf("group %d: replicates=%d rounds=%d", gi, g.Replicates, g.Rounds)
		}
	}

	// The CI histogram observed the prediction.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metricsText := string(mraw)
	if !strings.Contains(metricsText, `zatel_ci_halfwidth_count{kind="relative"} 1`) {
		t.Errorf("zatel_ci_halfwidth did not record the replicated prediction:\n%s",
			grepLines(metricsText, "zatel_ci_halfwidth"))
	}
}

// TestPredictPointEstimateOmitsCI: point-estimate strategies keep the old
// response shape — no intervals, no replicate fields.
func TestPredictPointEstimateOmitsCI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"scene":"SPRNG","config":"mobile","width":40,"height":40,"spp":1,"dist":"exptmp"}`
	resp, pr, raw := postPredict(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if pr.CILow != nil || pr.CIHigh != nil || pr.Replicates != 0 {
		t.Errorf("point-estimate response carries CI fields: %s", raw)
	}
}

func TestPredictCIValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []string{
		// target_ci without a replicated strategy
		`{"scene":"SPRNG","config":"mobile","width":40,"height":40,"spp":1,"target_ci":0.05}`,
		// negative target
		`{"scene":"SPRNG","config":"mobile","width":40,"height":40,"spp":1,"dist":"stratified","target_ci":-1}`,
		// single replicate
		`{"scene":"SPRNG","config":"mobile","width":40,"height":40,"spp":1,"dist":"stratified","replicates":1}`,
		// untabulated confidence
		`{"scene":"SPRNG","config":"mobile","width":40,"height":40,"spp":1,"dist":"stratified","confidence":0.5}`,
		// unknown strategy name
		`{"scene":"SPRNG","config":"mobile","width":40,"height":40,"spp":1,"dist":"gaussian"}`,
	}
	for _, body := range cases {
		resp, _, raw := postPredict(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d for %s: %s", resp.StatusCode, body, raw)
		}
	}
}

// grepLines returns the lines of text containing sub, for error messages.
func grepLines(text, sub string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
