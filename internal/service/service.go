// Package service implements zateld, the long-lived Zatel prediction
// server: the amortization the paper argues for, operated at the fleet
// level. Expensive pipeline artifacts (workload traces, quantized heatmaps,
// whole predictions) live in a content-addressed store; identical requests
// arriving concurrently coalesce onto one pipeline execution; an admission
// semaphore bounds how many predictions build at once; and every request
// carries a deadline mapped onto core.PredictContext so a slow build cannot
// hold a client past its budget.
//
// Endpoints:
//
//	POST /v1/predict  — JSON request → cached-or-computed prediction
//	GET  /v1/scenes   — the scene library
//	GET  /v1/configs  — the Table II GPU configurations
//	GET  /healthz     — liveness; 503 while draining
//	GET  /metrics     — Prometheus text exposition
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zatel/internal/cluster"
	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/obs"
	"zatel/internal/scene"
	"zatel/internal/store"
)

// Config sizes the server. Zero values select production-sane defaults.
type Config struct {
	// Store holds the artifacts (nil = a new unbounded store). The same
	// store instance backs workload traces, quantized heatmaps and whole
	// predictions when it is installed as store.Default's budget via
	// SetMaxBytes; the server itself only inserts predictions.
	Store *store.Store
	// MaxConcurrent bounds how many predictions may build simultaneously
	// (0 = one per CPU core). Cache hits and coalesced waiters do not
	// consume slots.
	MaxConcurrent int
	// MaxQueue bounds how many builders may wait for a slot before the
	// server sheds load with 503 (0 = 4×MaxConcurrent).
	MaxQueue int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (0 = 60s); MaxTimeout clamps client-requested deadlines (0 = 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Parallel/Workers configure the step-6 group fan-out of every
	// prediction this server runs (see core.Options).
	Parallel bool
	Workers  int
	// Cluster joins this server to a zateld fleet (nil = single-node):
	// /v1/predict routes by ring ownership, /v1/artifacts serves framed
	// artifacts to peers, and the store's peer tier should be attached to
	// the same Cluster by the caller (store.AttachPeers).
	Cluster *cluster.Cluster
	// NodeName is stamped into every response's X-Zatel-Node header and
	// request log line (default: the cluster node name, else the hostname,
	// else "zateld").
	NodeName string
}

func (c *Config) fillDefaults() {
	if c.Store == nil {
		c.Store = store.New(0)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.NodeName == "" {
		if c.Cluster != nil {
			c.NodeName = c.Cluster.Name()
		} else if host, err := os.Hostname(); err == nil && host != "" {
			c.NodeName = host
		} else {
			c.NodeName = "zateld"
		}
	}
}

// Server is the zateld HTTP service. Construct with New; it is safe for
// concurrent use.
type Server struct {
	cfg   Config
	st    *store.Store
	mux   *http.ServeMux
	start time.Time

	sem      chan struct{}
	queued   atomic.Int64
	running  atomic.Int64
	draining atomic.Bool

	reqMu     sync.Mutex
	reqCounts map[reqKey]uint64

	histRequest *obs.Histogram // end-to-end predict request latency
	histBuild   *obs.Histogram // cold pipeline executions only
	histWait    *obs.Histogram // admission-queue wait of builders
	histCI      *obs.Histogram // worst relative CI half-width of replicated predictions

	// histStep holds one latency histogram per pipeline step span name
	// (core.StepSpanNames), fed from the per-build tracer; exposed as
	// zatel_step_latency_seconds{step="..."}.
	histStep map[string]*obs.Histogram
}

type reqKey struct {
	handler string
	code    int
}

// New returns a ready-to-serve server.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:         cfg,
		st:          cfg.Store,
		mux:         http.NewServeMux(),
		start:       time.Now(),
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		reqCounts:   make(map[reqKey]uint64),
		histRequest: obs.NewHistogram(),
		histBuild:   obs.NewHistogram(),
		histWait:    obs.NewHistogram(),
		histCI:      obs.NewHistogram(),
		histStep:    make(map[string]*obs.Histogram, len(core.StepSpanNames)),
	}
	for _, name := range core.StepSpanNames {
		s.histStep[name] = obs.NewHistogram()
	}
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/scenes", s.handleScenes)
	s.mux.HandleFunc("/v1/configs", s.handleConfigs)
	s.mux.HandleFunc(cluster.ArtifactsPath, s.handleArtifacts)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the root http.Handler: the mux wrapped in the request-ID
// and logging middleware. Every response carries X-Zatel-Request-Id (the
// client's own, when it sent one, so IDs correlate across services) and
// X-Zatel-Node (which fleet member answered — single-node servers stamp it
// too, so traces stay attributable when a node later joins a fleet), and
// every request emits one structured log line — predictions at info,
// read-only endpoints at debug.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		w.Header().Set(NodeHeader, s.cfg.NodeName)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		s.mux.ServeHTTP(sw, r)

		lvl := slog.LevelDebug
		if r.URL.Path == "/v1/predict" {
			lvl = slog.LevelInfo
		}
		slog.Default().Log(r.Context(), lvl, "request",
			"request_id", id,
			"node", s.cfg.NodeName,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.code,
			"elapsed_ms", float64(time.Since(start))/1e6,
		)
	})
}

// RequestIDHeader is the request/response header carrying the per-request
// correlation ID that also appears in log lines, error bodies and trace
// exports.
const RequestIDHeader = "X-Zatel-Request-Id"

// NodeHeader names the fleet member that answered the request; OwnerHeader
// names the consistent-hash owner of a /v1/predict request's artifact key
// (cluster mode only). Together they make routing observable: node != owner
// on a response means the peer tier or a local fallback served it.
const (
	NodeHeader  = "X-Zatel-Node"
	OwnerHeader = "X-Zatel-Owner"
)

// statusWriter captures the response code for the request log line.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the status before delegating.
func (s *statusWriter) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

// Store exposes the artifact store (tests and metrics).
func (s *Server) Store() *store.Store { return s.st }

// SetDraining flips drain mode: /healthz turns 503 so load balancers stop
// routing here, and new predictions are refused while in-flight ones finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) countRequest(handler string, code int) {
	s.reqMu.Lock()
	s.reqCounts[reqKey{handler, code}]++
	s.reqMu.Unlock()
}

// errTooBusy is the load-shedding sentinel: the admission queue is full.
var errTooBusy = errors.New("service: admission queue full")

// acquire takes one build slot, waiting in the bounded admission queue.
// It fails fast with errTooBusy when the queue is full and with ctx's
// error when the request deadline fires first.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		s.running.Add(1)
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return errTooBusy
	}
	defer s.queued.Add(-1)
	waitStart := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.histWait.Observe(time.Since(waitStart))
		s.running.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() {
	s.running.Add(-1)
	<-s.sem
}

// deadlineFor maps the request's timeout_ms onto the context every pipeline
// stage below runs under: absent → DefaultTimeout, always clamped to
// MaxTimeout.
func (s *Server) deadlineFor(timeoutMs int) time.Duration {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func (s *Server) handleScenes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, "scenes", http.MethodGet)
		return
	}
	s.countRequest("scenes", http.StatusOK)
	writeJSON(w, http.StatusOK, map[string]any{"scenes": scene.Names()})
}

type configInfo struct {
	Name          string `json:"name"`
	NumSMs        int    `json:"num_sms"`
	MemPartitions int    `json:"mem_partitions"`
	DownscaleK    int    `json:"downscale_k"`
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, "configs", http.MethodGet)
		return
	}
	var infos []configInfo
	for _, c := range []config.Config{config.MobileSoC(), config.RTX2060()} {
		infos = append(infos, configInfo{
			Name:          c.Name,
			NumSMs:        c.NumSMs,
			MemPartitions: c.NumMemPartitions,
			DownscaleK:    config.DownscaleFactor(c),
		})
	}
	s.countRequest("configs", http.StatusOK)
	writeJSON(w, http.StatusOK, map[string]any{"configs": infos})
}

// handleHealthz reports liveness plus the state an operator triages first:
// memory-store occupancy, the disk tier's mode and the cluster's peer
// health. "degraded" in the disk block means the tier stopped persisting
// (full or failing disk) and the server is running memory-only — still
// healthy for serving, but worth an alert (see OPERATIONS.md). All store
// figures come from one store.Stats snapshot, the same call /metrics
// reads, so the two endpoints cannot disagree about which tiers exist.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stats := s.st.Stats()
	c := stats.Mem
	body := map[string]any{
		"uptime_s": time.Since(s.start).Seconds(),
		"node":     s.cfg.NodeName,
		"store": map[string]any{
			"entries":   c.Entries,
			"bytes":     c.Bytes,
			"max_bytes": c.MaxBytes,
		},
	}
	disk := map[string]any{"state": "disabled"}
	if stats.DiskEnabled {
		dc := stats.Disk
		disk["state"] = dc.State
		disk["entries"] = dc.Entries
		disk["bytes"] = dc.Bytes
		disk["max_bytes"] = dc.MaxBytes
		disk["quarantined"] = dc.Quarantined
	}
	body["disk"] = disk
	clusterBody := map[string]any{"state": "disabled"}
	if cl := s.cfg.Cluster; cl != nil && stats.PeerEnabled {
		pc := stats.Peer
		clusterBody["state"] = "ok"
		clusterBody["self"] = cl.Self()
		clusterBody["peers"] = pc.Peers
		clusterBody["peers_healthy"] = pc.Healthy
		if pc.Healthy < pc.Peers {
			clusterBody["state"] = "peer-degraded"
		}
	}
	body["cluster"] = clusterBody
	if s.draining.Load() {
		body["status"] = "draining"
		s.countRequest("healthz", http.StatusServiceUnavailable)
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body["status"] = "ok"
	s.countRequest("healthz", http.StatusOK)
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics is the Prometheus text exposition: store counters, admission
// state, per-handler request totals and the per-stage latency histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.methodNotAllowed(w, r, "metrics", http.MethodGet)
		return
	}
	s.countRequest("metrics", http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	stats := s.st.Stats()
	c := stats.Mem
	counter := func(name string, v uint64, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name string, v int64, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("zatel_store_hits_total", c.Hits, "artifact lookups served from residency")
	counter("zatel_store_misses_total", c.Misses, "artifact lookups that built")
	counter("zatel_store_coalesced_total", c.Coalesced, "lookups that joined an in-flight build")
	counter("zatel_store_builds_total", c.Builds, "artifact build executions")
	counter("zatel_store_build_errors_total", c.BuildErrors, "failed artifact builds")
	counter("zatel_store_evictions_total", c.Evictions, "artifacts evicted for the byte budget")
	gauge("zatel_store_entries", int64(c.Entries), "resident artifacts")
	gauge("zatel_store_bytes", c.Bytes, "resident artifact bytes")
	gauge("zatel_store_max_bytes", c.MaxBytes, "artifact byte budget (0 = unbounded)")
	gauge("zatel_store_inflight", int64(c.Inflight), "artifact builds executing")

	// Disk tier. zatel_store_disk_enabled stays 0 when no -store-dir was
	// given so dashboards can distinguish "off" from "degraded".
	if dc := stats.Disk; stats.DiskEnabled {
		gauge("zatel_store_disk_enabled", 1, "1 when a disk tier is attached")
		gauge("zatel_store_disk_degraded", boolGauge(dc.State == store.DiskDegraded.String()), "1 while the disk tier sheds writes (memory-only)")
		counter("zatel_store_disk_hits_total", dc.Hits, "lookups served from the disk tier")
		counter("zatel_store_disk_misses_total", dc.Misses, "disk-tier lookups that found no valid entry")
		counter("zatel_store_disk_read_errors_total", dc.ReadErrors, "disk-tier read failures (I/O, not corruption)")
		counter("zatel_store_disk_writes_total", dc.Writes, "entries persisted by the write-behind queue")
		counter("zatel_store_disk_write_errors_total", dc.WriteErrors, "failed disk-tier writes")
		counter("zatel_store_disk_writes_dropped_total", dc.WritesDropped, "writes shed while degraded or queue-full")
		counter("zatel_store_disk_quarantined_total", dc.Quarantined, "corrupt entries renamed aside")
		counter("zatel_store_disk_evictions_total", dc.Evictions, "disk entries evicted for the byte budget")
		counter("zatel_store_disk_degraded_total", dc.DegradedCount, "transitions into degraded mode")
		gauge("zatel_store_disk_entries", int64(dc.Entries), "valid entries on disk")
		gauge("zatel_store_disk_bytes", dc.Bytes, "bytes of valid entries on disk")
		gauge("zatel_store_disk_max_bytes", dc.MaxBytes, "disk byte budget (0 = unbounded)")
	} else {
		gauge("zatel_store_disk_enabled", 0, "1 when a disk tier is attached")
	}

	// Cluster tier. Fetch outcomes are disjoint (hits + misses + errors +
	// rejects == fetches issued); the store-level peer counters above
	// (zatel_store_peer_*) count the same events from the tier chain's
	// point of view and include self-owned/unhealthy-skipped consultations
	// as misses.
	counter("zatel_store_peer_hits_total", c.PeerHits, "lookups served from the peer tier")
	counter("zatel_store_peer_misses_total", c.PeerMisses, "peer-tier consultations that returned nothing")
	if cl := s.cfg.Cluster; cl != nil && stats.PeerEnabled {
		pc := stats.Peer
		gauge("zatel_cluster_enabled", 1, "1 when this node is part of a fleet")
		gauge("zatel_cluster_peers", int64(pc.Peers), "fleet size including this node")
		gauge("zatel_cluster_peers_healthy", int64(pc.Healthy), "peers currently considered reachable (self included)")
		counter("zatel_cluster_fetch_hits_total", pc.Hits, "peer artifact fetches that returned a verified artifact")
		counter("zatel_cluster_fetch_misses_total", pc.Misses, "peer artifact fetches the owner 404ed")
		counter("zatel_cluster_fetch_errors_total", pc.Errors, "peer artifact fetches that failed in transport")
		counter("zatel_cluster_fetch_rejects_total", pc.Rejects, "peer artifacts rejected by frame verification or codec decode")
		counter("zatel_cluster_fetch_skipped_total", pc.Skipped, "peer fetches skipped because the owner was unhealthy")
		counter("zatel_cluster_proxied_total", pc.Proxied, "predict requests forwarded to the owning peer")
		counter("zatel_cluster_proxy_errors_total", pc.ProxyErrors, "forwards that failed and fell back to a local build")
		counter("zatel_cluster_local_fallbacks_total", pc.LocalFallbacks, "predicts built locally because the owner was unavailable")
		fmt.Fprintf(w, "# HELP zatel_cluster_fetch_seconds latency of successful peer artifact fetches\n# TYPE zatel_cluster_fetch_seconds histogram\n")
		cl.FetchLatency().WriteProm(w, "zatel_cluster_fetch_seconds", "")
		fmt.Fprintf(w, "# HELP zatel_cluster_proxy_seconds latency of successful forwarded predict requests\n# TYPE zatel_cluster_proxy_seconds histogram\n")
		cl.ProxyLatency().WriteProm(w, "zatel_cluster_proxy_seconds", "")
	} else {
		gauge("zatel_cluster_enabled", 0, "1 when this node is part of a fleet")
	}

	gauge("zatel_predict_running", s.running.Load(), "predictions building now")
	gauge("zatel_predict_queued", s.queued.Load(), "builders waiting for an admission slot")
	gauge("zatel_predict_capacity", int64(s.cfg.MaxConcurrent), "admission slots")
	gauge("zatel_draining", boolGauge(s.draining.Load()), "1 while the server drains")
	fmt.Fprintf(w, "# HELP zatel_uptime_seconds time since server start\n# TYPE zatel_uptime_seconds gauge\nzatel_uptime_seconds %g\n",
		time.Since(s.start).Seconds())

	s.reqMu.Lock()
	keys := make([]reqKey, 0, len(s.reqCounts))
	for k := range s.reqCounts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].handler != keys[j].handler {
			return keys[i].handler < keys[j].handler
		}
		return keys[i].code < keys[j].code
	})
	fmt.Fprintf(w, "# HELP zatel_http_requests_total requests by handler and status\n# TYPE zatel_http_requests_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "zatel_http_requests_total{handler=%q,code=\"%d\"} %d\n", k.handler, k.code, s.reqCounts[k])
	}
	s.reqMu.Unlock()

	fmt.Fprintf(w, "# HELP zatel_stage_latency_seconds per-stage latency\n# TYPE zatel_stage_latency_seconds histogram\n")
	s.histRequest.WriteProm(w, "zatel_stage_latency_seconds", `stage="request"`)
	s.histBuild.WriteProm(w, "zatel_stage_latency_seconds", `stage="build"`)
	s.histWait.WriteProm(w, "zatel_stage_latency_seconds", `stage="admission_wait"`)

	// Prediction quality: the worst relative CI half-width across metrics
	// of every served replicated (stratified/rankedset) prediction. The
	// bucket bounds are reused from the latency histograms and read as
	// unitless ratios here (0.05 = ±5%).
	fmt.Fprintf(w, "# HELP zatel_ci_halfwidth worst relative confidence-interval half-width of served replicated predictions\n# TYPE zatel_ci_halfwidth histogram\n")
	s.histCI.WriteProm(w, "zatel_ci_halfwidth", `kind="relative"`)

	// Per-pipeline-step latencies, one series per step span of DESIGN.md's
	// taxonomy, fed from the tracer of each request that ran a build.
	fmt.Fprintf(w, "# HELP zatel_step_latency_seconds per-pipeline-step latency of cold builds\n# TYPE zatel_step_latency_seconds histogram\n")
	for _, name := range core.StepSpanNames {
		s.histStep[name].WriteProm(w, "zatel_step_latency_seconds", fmt.Sprintf("step=%q", name))
	}

	// Process-wide registry: runner pool occupancy/retries and core
	// pipeline counters (see internal/obs and OPERATIONS.md).
	obs.WritePrometheus(w)
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) methodNotAllowed(w http.ResponseWriter, r *http.Request, handler string, allow string) {
	s.countRequest(handler, http.StatusMethodNotAllowed)
	w.Header().Set("Allow", allow)
	writeError(w, r, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed", r.Method))
}
