package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zatel/internal/cluster"
	"zatel/internal/store"
)

// testNode is one in-process fleet member: its own store, cluster view and
// HTTP server, all on a real TCP port so peers reach it over the wire.
type testNode struct {
	name string
	url  string
	st   *store.Store
	cl   *cluster.Cluster
	srv  *Server
	ts   *httptest.Server
}

// newTestFleet starts n zateld nodes that know each other: listeners come
// up first (the ring needs every URL before any server exists), then each
// node gets its own store + cluster and a server bound to its listener.
func newTestFleet(t *testing.T, n int) []*testNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		name := fmt.Sprintf("node-%c", 'a'+i)
		cl, err := cluster.New(cluster.Config{
			Self:         urls[i],
			Name:         name,
			Peers:        urls,
			FetchTimeout: 5 * time.Second,
			Probe:        cluster.ProbeConfig{Interval: -1}, // no background goroutine in tests
		})
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", name, err)
		}
		t.Cleanup(cl.Close)
		st := store.New(0)
		st.AttachPeers(cl)
		srv := New(Config{Store: st, Cluster: cl, NodeName: name})
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
		nodes[i] = &testNode{name: name, url: urls[i], st: st, cl: cl, srv: srv, ts: ts}
	}
	return nodes
}

// bodyOwnedBy searches request seeds until the request's cache key lands on
// the wanted node, returning the body and its key. Both nodes share every
// key-relevant option, so any node's optionsFor computes the fleet's key.
func bodyOwnedBy(t *testing.T, nodes []*testNode, owner *testNode, salt uint64) (string, store.Digest) {
	t.Helper()
	for seed := salt * 1000; seed < salt*1000+200; seed++ {
		body := fmt.Sprintf(`{"scene":"SPRNG","config":"mobile","width":32,"height":32,"spp":1,"seed":%d}`, seed)
		req := PredictRequest{Scene: "SPRNG", Width: 32, Height: 32, SPP: 1, Seed: seed}
		opts, err := nodes[0].srv.optionsFor(&req)
		if err != nil {
			t.Fatal(err)
		}
		if nodes[0].cl.Owner(opts.CacheKey()) == owner.url {
			return body, opts.CacheKey()
		}
	}
	t.Fatalf("no request owned by %s in 200 seeds", owner.name)
	return "", store.Digest{}
}

// TestClusterPeerFetch is the tentpole acceptance test: a workload built on
// node A is FETCHED by node B — verified, decoded, promoted — not rebuilt.
// B's build counter stays zero and the prediction is identical.
func TestClusterPeerFetch(t *testing.T) {
	nodes := newTestFleet(t, 2)
	a, b := nodes[0], nodes[1]
	body, key := bodyOwnedBy(t, nodes, a, 1)

	// Build on the owner.
	resp, cold, _ := postPredict(t, a.url, body)
	if resp.StatusCode != http.StatusOK || cold.Cache != "miss" {
		t.Fatalf("cold build on owner: status %d cache %q", resp.StatusCode, cold.Cache)
	}
	if got := resp.Header.Get(NodeHeader); got != "node-a" {
		t.Errorf("%s = %q, want node-a", NodeHeader, got)
	}
	if got := resp.Header.Get(OwnerHeader); got != a.url {
		t.Errorf("%s = %q, want %q", OwnerHeader, got, a.url)
	}

	// The same request on the non-owner must be served from the peer tier.
	resp, warm, _ := postPredict(t, b.url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer-backed status %d", resp.StatusCode)
	}
	if warm.Cache != "peer" {
		t.Fatalf("cache = %q on the non-owner, want peer", warm.Cache)
	}
	if got := resp.Header.Get(NodeHeader); got != "node-b" {
		t.Errorf("%s = %q, want node-b (request must not have been proxied)", NodeHeader, got)
	}
	if bs := b.st.Snapshot(); bs.Builds != 0 {
		t.Fatalf("node B ran %d builds, want 0 — the artifact must come over the wire", bs.Builds)
	}
	if warm.Key != key.String() || warm.Key != cold.Key {
		t.Errorf("key mismatch: cold %s warm %s want %s", cold.Key, warm.Key, key)
	}
	if len(warm.Predicted) != len(cold.Predicted) {
		t.Fatalf("predicted metric count differs: %d vs %d", len(warm.Predicted), len(cold.Predicted))
	}
	for m, v := range cold.Predicted {
		if warm.Predicted[m] != v {
			t.Errorf("metric %q: peer copy %v != original %v", m, warm.Predicted[m], v)
		}
	}
	pc := b.cl.Counters()
	if pc.Hits != 1 {
		t.Errorf("node B fetch hits = %d, want 1 (counters %+v)", pc.Hits, pc)
	}
	// B promoted the artifact: a repeat is now a pure local hit.
	if _, again, _ := postPredict(t, b.url, body); again.Cache != "hit" {
		t.Errorf("post-promotion cache = %q, want hit", again.Cache)
	}
}

// TestClusterForwardsToOwner: a fleet-wide miss landing on a non-owner is
// proxied to the owner, which builds; the non-owner builds nothing.
func TestClusterForwardsToOwner(t *testing.T) {
	nodes := newTestFleet(t, 2)
	a, b := nodes[0], nodes[1]
	body, _ := bodyOwnedBy(t, nodes, a, 2)

	resp, pr, raw := postPredict(t, b.url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded status %d: %s", resp.StatusCode, raw)
	}
	if pr.Cache != "miss" {
		t.Errorf("forwarded cache = %q, want miss (the owner built)", pr.Cache)
	}
	if got := resp.Header.Get(NodeHeader); got != "node-b" {
		t.Errorf("%s = %q, want the node the client hit", NodeHeader, got)
	}
	if got := resp.Header.Get(OwnerHeader); got != a.url {
		t.Errorf("%s = %q, want %q", OwnerHeader, got, a.url)
	}
	// The owner runs the prediction build (plus its workload sub-builds in
	// the same store); the non-owner must run none at all.
	if as, bs := a.st.Snapshot(), b.st.Snapshot(); as.Builds == 0 || bs.Builds != 0 {
		t.Errorf("builds: owner %d (want >0), non-owner %d (want 0)", as.Builds, bs.Builds)
	}
	if pc := b.cl.Counters(); pc.Proxied != 1 || pc.ProxyErrors != 0 {
		t.Errorf("proxy counters = %+v", pc)
	}
}

// TestClusterOwnerDownDegrades: killing the owner must not fail requests —
// the survivor notices, falls back to a local build and keeps answering.
func TestClusterOwnerDownDegrades(t *testing.T) {
	nodes := newTestFleet(t, 2)
	a, b := nodes[0], nodes[1]
	body, _ := bodyOwnedBy(t, nodes, a, 3)

	a.ts.Close() // the owner dies before ever seeing the key

	resp, pr, raw := postPredict(t, b.url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request failed with the owner down: status %d: %s", resp.StatusCode, raw)
	}
	if pr.Cache != "miss" {
		t.Errorf("cache = %q, want miss (local fallback build)", pr.Cache)
	}
	if bs := b.st.Snapshot(); bs.Builds == 0 {
		t.Error("survivor ran no builds; where did the prediction come from?")
	}
	pc := b.cl.Counters()
	if pc.LocalFallbacks == 0 && pc.ProxyErrors == 0 && pc.Errors == 0 {
		t.Errorf("no failure recorded anywhere: %+v", pc)
	}
	if b.cl.Healthy(a.url) {
		t.Error("dead owner still marked healthy on the survivor")
	}
	// Repeats keep working (and are now local hits).
	if _, again, _ := postPredict(t, b.url, body); again.Cache != "hit" {
		t.Errorf("repeat with owner down: cache %q, want hit", again.Cache)
	}
}

// TestClusterHealthzAndMetrics: both endpoints expose the cluster block and
// agree with each other about the peer tier.
func TestClusterHealthzAndMetrics(t *testing.T) {
	nodes := newTestFleet(t, 2)
	b := nodes[1]

	hresp, err := http.Get(b.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hz struct {
		Node    string `json:"node"`
		Cluster struct {
			State        string `json:"state"`
			Self         string `json:"self"`
			Peers        int    `json:"peers"`
			PeersHealthy int    `json:"peers_healthy"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if hz.Node != "node-b" {
		t.Errorf("healthz node = %q", hz.Node)
	}
	if hz.Cluster.State != "ok" || hz.Cluster.Self != b.url ||
		hz.Cluster.Peers != 2 || hz.Cluster.PeersHealthy != 2 {
		t.Errorf("healthz cluster block = %+v", hz.Cluster)
	}

	mresp, err := http.Get(b.url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prom := string(raw)
	for _, want := range []string{
		"zatel_cluster_enabled 1",
		"zatel_cluster_peers 2",
		"zatel_cluster_peers_healthy 2",
		"zatel_cluster_fetch_hits_total 0",
		"zatel_store_peer_hits_total 0",
		"zatel_cluster_proxied_total 0",
		"zatel_cluster_local_fallbacks_total 0",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSingleNodeHasNodeHeader: satellite 2 — even without a cluster every
// response names its serving node.
func TestSingleNodeHasNodeHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{NodeName: "solo"})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(NodeHeader); got != "solo" {
		t.Errorf("%s = %q, want solo", NodeHeader, got)
	}
	// And without an explicit name there is still always some identity.
	_, ts2 := newTestServer(t, Config{})
	resp2, err := http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get(NodeHeader) == "" {
		t.Errorf("%s empty on a default server", NodeHeader)
	}
}
