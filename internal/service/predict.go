package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"zatel/internal/cluster"
	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
	"zatel/internal/obs"
	"zatel/internal/sampling"
	"zatel/internal/scene"
	"zatel/internal/store"
)

// PredictRequest is the POST /v1/predict body. Zero values select the
// paper's defaults (128×128, 2 spp, fine division, uniform distribution,
// Eq. 1 budget, seed 1).
type PredictRequest struct {
	Scene  string `json:"scene"`
	Config string `json:"config"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	SPP    int    `json:"spp"`

	Division    string  `json:"division,omitempty"`
	Dist        string  `json:"dist,omitempty"`
	Percent     float64 `json:"percent,omitempty"`
	MaxPercent  float64 `json:"max_percent,omitempty"`
	K           int     `json:"k,omitempty"`
	NoDownscale bool    `json:"no_downscale,omitempty"`
	Regression  bool    `json:"regression,omitempty"`
	QuantLevels int     `json:"quant_levels,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`

	// TargetCI enables adaptive sample sizing for the replicated
	// distributions (stratified, rankedset): each group grows its subset
	// until every metric's relative CI half-width is at most this value.
	TargetCI float64 `json:"target_ci,omitempty"`
	// Replicates overrides the sub-draws per round (0 = default 5, else ≥2);
	// Confidence the CI level (0 = 0.95; 0.90 and 0.99 also supported);
	// MaxRounds the adaptive round cap (0 = default 4). All three apply to
	// the replicated distributions only.
	Replicates int     `json:"replicates,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	MaxRounds  int     `json:"max_rounds,omitempty"`

	Attempts int `json:"attempts,omitempty"`
	Quorum   int `json:"quorum,omitempty"`
	// TimeoutMs is this request's whole-prediction deadline; absent or 0
	// selects the server default and values above the server maximum clamp.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// GroupInfo summarises one group run for the response. Replicates, Rounds
// and TargetMet appear only for the replicated distributions; TargetMet is
// meaningful when Rounds > 0 (it is trivially true when no target_ci was
// requested).
type GroupInfo struct {
	Pixels     int     `json:"pixels"`
	Selected   int     `json:"selected"`
	Fraction   float64 `json:"fraction"`
	Attempts   int     `json:"attempts"`
	Cycles     uint64  `json:"cycles"`
	Replicates int     `json:"replicates,omitempty"`
	Rounds     int     `json:"rounds,omitempty"`
	TargetMet  bool    `json:"target_met,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// DegradedInfo reports a prediction that lost groups but met quorum.
type DegradedInfo struct {
	FailedGroups []int  `json:"failed_groups"`
	Quorum       int    `json:"quorum"`
	Survivors    int    `json:"survivors"`
	Total        int    `json:"total"`
	Detail       string `json:"detail"`
}

// PredictResponse is the POST /v1/predict result.
type PredictResponse struct {
	Scene  string `json:"scene"`
	Config string `json:"config"`
	K      int    `json:"k"`
	// Key is the prediction's content address in the artifact store;
	// identical requests report identical keys.
	Key string `json:"key"`
	// Cache is how this request was served: "miss" (this request built),
	// "hit" (already resident), "coalesced" (joined another request's
	// in-flight build), "disk" (loaded and integrity-verified from the
	// persistent tier, e.g. after a restart) or "peer" (fetched, verified
	// and promoted from the owning cluster peer).
	Cache     string             `json:"cache"`
	Predicted map[string]float64 `json:"predicted"`
	// CILow/CIHigh bound each metric's confidence interval and Replicates
	// reports the sub-draws behind it; present only for the replicated
	// distributions (stratified, rankedset), where Predicted holds the
	// interval means.
	CILow      map[string]float64 `json:"ci_low,omitempty"`
	CIHigh     map[string]float64 `json:"ci_high,omitempty"`
	Replicates int                `json:"replicates,omitempty"`
	Groups     []GroupInfo        `json:"groups"`
	Degraded   *DegradedInfo      `json:"degraded,omitempty"`
	// PreprocessMs/SimWallMs/TotalCPUMs are the timings of the build that
	// produced the artifact (a cached result keeps its original build's
	// timings); ElapsedMs is what this request actually took.
	PreprocessMs float64 `json:"preprocess_ms"`
	SimWallMs    float64 `json:"sim_wall_ms"`
	TotalCPUMs   float64 `json:"total_cpu_ms"`
	ElapsedMs    float64 `json:"elapsed_ms"`
	// RequestID echoes the X-Zatel-Request-Id header: the server's log
	// lines for this request carry the same ID.
	RequestID string `json:"request_id"`
	// Trace is the Chrome trace_event JSON of this request's pipeline
	// execution, present only with ?trace=1. Save it to a file and load it
	// in chrome://tracing or https://ui.perfetto.dev. A cache hit traces
	// only the store lookup — the steps ran (and were traced) by whichever
	// request built the artifact.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// errorBody is every non-2xx JSON payload: the message plus the request's
// correlation ID, so a client-side error report and the server-side log
// line it corresponds to can be matched without timestamps.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits the structured JSON error body; the request ID comes
// from the middleware via r's context.
func writeError(w http.ResponseWriter, r *http.Request, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg, RequestID: obs.RequestID(r.Context())})
}

// ConfigByName resolves the Table II configuration names accepted across
// the CLIs and the HTTP API.
func ConfigByName(name string) (config.Config, error) {
	switch strings.ToLower(name) {
	case "", "mobile", "mobilesoc", "soc":
		return config.MobileSoC(), nil
	case "rtx2060", "rtx", "turing":
		return config.RTX2060(), nil
	default:
		return config.Config{}, fmt.Errorf("unknown config %q (want mobile or rtx2060)", name)
	}
}

// optionsFor validates the request and translates it into pipeline options.
// Every error it returns is a client error (HTTP 400).
func (s *Server) optionsFor(req *PredictRequest) (core.Options, error) {
	var o core.Options

	sceneName := req.Scene
	if sceneName == "" {
		return o, errors.New("missing scene")
	}
	known := false
	for _, n := range scene.Names() {
		if n == sceneName {
			known = true
			break
		}
	}
	if !known {
		return o, fmt.Errorf("unknown scene %q (want one of %s)", sceneName, strings.Join(scene.Names(), ", "))
	}
	cfg, err := ConfigByName(req.Config)
	if err != nil {
		return o, err
	}
	switch strings.ToLower(req.Division) {
	case "", "fine":
		o.Division = core.FineGrained
	case "coarse":
		o.Division = core.CoarseGrained
	default:
		return o, fmt.Errorf("unknown division %q (want fine or coarse)", req.Division)
	}
	o.Dist, err = sampling.ParseDistribution(strings.ToLower(req.Dist))
	if err != nil {
		return o, err
	}
	if req.Width < 0 || req.Height < 0 || req.SPP < 0 {
		return o, fmt.Errorf("negative frame dimensions %dx%d spp=%d", req.Width, req.Height, req.SPP)
	}
	if req.Percent < 0 || req.Percent > 1 {
		return o, fmt.Errorf("percent %v out of [0,1]", req.Percent)
	}
	if req.MaxPercent < 0 || req.MaxPercent > 1 {
		return o, fmt.Errorf("max_percent %v out of [0,1]", req.MaxPercent)
	}
	if req.K < 0 {
		return o, fmt.Errorf("negative downscaling factor %d", req.K)
	}
	if req.Attempts < 0 {
		return o, fmt.Errorf("negative attempts %d", req.Attempts)
	}
	if req.TimeoutMs < 0 {
		return o, fmt.Errorf("negative timeout_ms %d", req.TimeoutMs)
	}
	if req.TargetCI < 0 {
		return o, fmt.Errorf("negative target_ci %v", req.TargetCI)
	}
	if req.TargetCI > 0 && !o.Dist.Replicated() {
		return o, fmt.Errorf("target_ci requires dist stratified or rankedset, got %q", o.Dist)
	}
	if req.Replicates < 0 || req.Replicates == 1 {
		return o, fmt.Errorf("replicates %d must be 0 (default) or at least 2", req.Replicates)
	}
	switch req.Confidence {
	case 0, 0.90, 0.95, 0.99:
	default:
		return o, fmt.Errorf("confidence %v unsupported (want 0.90, 0.95 or 0.99)", req.Confidence)
	}
	if req.MaxRounds < 0 {
		return o, fmt.Errorf("negative max_rounds %d", req.MaxRounds)
	}

	o.Config = cfg
	o.Scene = sceneName
	o.Width, o.Height, o.SPP = req.Width, req.Height, req.SPP
	o.FixedFraction = req.Percent
	o.MaxFraction = req.MaxPercent
	o.K = req.K
	o.NoDownscale = req.NoDownscale
	o.Regression = req.Regression
	o.QuantLevels = req.QuantLevels
	o.Seed = req.Seed
	o.TargetCIHalfWidth = req.TargetCI
	o.Sampling.Replicates = req.Replicates
	o.Sampling.Confidence = req.Confidence
	o.Sampling.MaxRounds = req.MaxRounds
	o.FT.Attempts = req.Attempts
	o.FT.Quorum = req.Quorum
	o.Parallel = s.cfg.Parallel
	o.Workers = s.cfg.Workers
	o.Store = s.st
	return o, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.methodNotAllowed(w, r, "predict", http.MethodPost)
		return
	}
	reqStart := time.Now()
	reqID := obs.RequestID(r.Context())
	finish := func(code int) {
		s.countRequest("predict", code)
		s.histRequest.Observe(time.Since(reqStart))
	}
	if s.draining.Load() {
		finish(http.StatusServiceUnavailable)
		writeError(w, r, http.StatusServiceUnavailable, "server draining")
		return
	}

	// The body is read whole rather than stream-decoded: cluster routing may
	// need the raw bytes again to forward the request to the owning peer.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		finish(http.StatusBadRequest)
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	var req PredictRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		finish(http.StatusBadRequest)
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	opts, err := s.optionsFor(&req)
	if err != nil {
		finish(http.StatusBadRequest)
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}

	// The request deadline governs everything below: admission wait, a
	// coalesced wait on someone else's build, and every pipeline stage of
	// a build this request runs itself.
	ctx, cancel := context.WithTimeout(r.Context(), s.deadlineFor(req.TimeoutMs))
	defer cancel()

	// Every predict request carries a tracer. If this request ends up
	// running the build, the tracer captures the seven step spans (feeding
	// the per-step histograms); a hit or coalesced wait records only its
	// store span. ?trace=1 returns the Chrome trace_event export inline.
	wantTrace := r.URL.Query().Get("trace") == "1"
	tr := obs.NewTracer()
	tr.SetMeta("request_id", reqID)
	ctx = obs.WithTracer(ctx, tr)

	key := opts.CacheKey()

	// Cluster routing: on a non-owner, anything the fleet already has —
	// local memory/disk, an in-flight local build, or the owner's copy via
	// the peer tier — serves locally; a true fleet-wide miss forwards the
	// request to the owner so every key is built where it lives. A request
	// already forwarded once is served here unconditionally (no loops), and
	// an unreachable owner degrades to a local build, never an error.
	if cl := s.cfg.Cluster; cl != nil {
		owner := cl.Owner(key)
		w.Header().Set(OwnerHeader, owner)
		if owner != cl.Self() && r.Header.Get(cluster.ForwardedHeader) == "" {
			if v, outcome, ok := s.st.TryGet(ctx, key); ok {
				s.writePredictOK(w, r, opts, key, outcome.String(), v.(*core.Result), reqStart, tr, wantTrace, finish)
				return
			}
			if cl.Healthy(owner) && s.proxyToOwner(w, r, cl, owner, body, finish) {
				return
			}
			cl.CountLocalFallback()
			slog.Warn("cluster: owner unavailable, building locally",
				"request_id", reqID, "key", key.Short(), "owner", owner)
		}
	}

	v, outcome, err := s.st.GetOrBuild(ctx, key, func(ctx context.Context) (any, int64, error) {
		// Admission control bounds cold builds only — hits and coalesced
		// waiters cost no slot.
		if err := s.acquire(ctx); err != nil {
			return nil, 0, err
		}
		defer s.release()
		buildStart := time.Now()
		res, err := core.PredictContext(ctx, opts)
		s.histBuild.Observe(time.Since(buildStart))
		if err != nil {
			return nil, 0, err
		}
		return res, core.ResultSize(res), nil
	})
	// Whatever happened above, fold the step spans this request recorded
	// (only a build records any) into the per-step latency histograms.
	durations := tr.Durations()
	for _, name := range core.StepSpanNames {
		if d, ok := durations[name]; ok {
			s.histStep[name].Observe(d)
		}
	}
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, errTooBusy):
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, context.DeadlineExceeded):
			code = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			code = http.StatusServiceUnavailable
		}
		finish(code)
		writeError(w, r, code, err.Error())
		return
	}
	s.writePredictOK(w, r, opts, key, outcome.String(), v.(*core.Result), reqStart, tr, wantTrace, finish)
}

// proxyToOwner forwards the predict request to the owning peer and relays
// its response verbatim (plus this node's own routing headers, already
// set). Returns false when the forward failed — the caller then builds
// locally, honouring the never-an-error contract.
func (s *Server) proxyToOwner(w http.ResponseWriter, r *http.Request, cl *cluster.Cluster, owner string, body []byte, finish func(int)) bool {
	reqID := obs.RequestID(r.Context())
	resp, err := cl.ProxyPredict(r.Context(), owner, r.URL.RawQuery, r.Header, body)
	if err != nil {
		slog.Warn("cluster: forward to owner failed",
			"request_id", reqID, "owner", owner, "err", err)
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Zatel-Cache", "X-Zatel-Key"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	finish(resp.StatusCode)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	slog.Info("predict forwarded to owner",
		"request_id", reqID,
		"owner", owner,
		"status", resp.StatusCode,
		"cache", resp.Header.Get("X-Zatel-Cache"),
	)
	return true
}

// writePredictOK renders the successful prediction response; both the
// build path and the cluster TryGet fast path end here.
func (s *Server) writePredictOK(w http.ResponseWriter, r *http.Request, opts core.Options, key store.Digest, cache string, res *core.Result, reqStart time.Time, tr *obs.Tracer, wantTrace bool, finish func(int)) {
	reqID := obs.RequestID(r.Context())
	resp := PredictResponse{
		Scene:        opts.Scene,
		Config:       opts.Config.Name,
		K:            res.K,
		Key:          key.String(),
		Cache:        cache,
		Predicted:    make(map[string]float64, len(res.Predicted)),
		Groups:       make([]GroupInfo, len(res.Groups)),
		PreprocessMs: durMs(res.PreprocessTime),
		SimWallMs:    durMs(res.SimWallTime),
		TotalCPUMs:   durMs(res.TotalCPUTime),
		ElapsedMs:    durMs(time.Since(reqStart)),
		RequestID:    reqID,
	}
	if wantTrace {
		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err == nil {
			resp.Trace = json.RawMessage(buf.Bytes())
		}
	}
	for _, m := range metrics.All() {
		resp.Predicted[m.String()] = res.Predicted[m]
	}
	if res.Intervals != nil {
		resp.CILow = make(map[string]float64, len(res.Intervals))
		resp.CIHigh = make(map[string]float64, len(res.Intervals))
		for m, iv := range res.Intervals {
			resp.CILow[m.String()] = iv.Low
			resp.CIHigh[m.String()] = iv.High
			if resp.Replicates == 0 || iv.Replicates < resp.Replicates {
				resp.Replicates = iv.Replicates
			}
		}
		s.histCI.ObserveValue(res.Intervals.MaxRelHalfWidth())
	}
	for gi, g := range res.Groups {
		info := GroupInfo{
			Pixels:     g.Pixels,
			Selected:   g.Selected,
			Fraction:   g.Fraction,
			Attempts:   g.Attempts,
			Cycles:     g.Report.Cycles,
			Replicates: g.Replicates,
			Rounds:     g.Rounds,
			TargetMet:  g.TargetMet,
		}
		if g.Err != nil {
			info.Error = g.Err.Error()
		}
		resp.Groups[gi] = info
	}
	if d := res.Degraded; d != nil {
		resp.Degraded = &DegradedInfo{
			FailedGroups: d.FailedGroups,
			Quorum:       d.Quorum,
			Survivors:    d.Survivors,
			Total:        d.Total,
			Detail:       d.String(),
		}
	}
	w.Header().Set("X-Zatel-Cache", resp.Cache)
	w.Header().Set("X-Zatel-Key", key.Short())
	finish(http.StatusOK)
	slog.Info("predict served",
		"request_id", reqID,
		"scene", opts.Scene,
		"config", opts.Config.Name,
		"cache", resp.Cache,
		"key", key.Short(),
		"degraded", resp.Degraded != nil,
		"elapsed_ms", resp.ElapsedMs,
	)
	writeJSON(w, http.StatusOK, resp)
}

func durMs(d time.Duration) float64 { return float64(d) / 1e6 }
