package gpu

import "testing"

// dedupLines is a warp-sized address stream with the duplicate density the
// coalescer sees in practice: 32 lanes touching ~16 distinct cache lines.
func dedupLines() []uint64 {
	lines := make([]uint64, 32)
	for i := range lines {
		lines[i] = uint64(i/2) * 128
	}
	return lines
}

// BenchmarkLineDedup compares the replaced per-lane coalescing dedup
// strategies on one warp's worth of accesses: the old O(n) containsLine
// scan over scratchLines against the generation-stamped lineSet now used
// by issueWarp.
func BenchmarkLineDedup(b *testing.B) {
	lines := dedupLines()

	b.Run("scan", func(b *testing.B) {
		scratch := make([]uint64, 0, len(lines))
		for i := 0; i < b.N; i++ {
			scratch = scratch[:0]
			for _, l := range lines {
				if !containsLine(scratch, l) {
					scratch = append(scratch, l)
				}
			}
			if len(scratch) != 16 {
				b.Fatalf("deduped to %d lines, want 16", len(scratch))
			}
		}
	})

	b.Run("lineSet", func(b *testing.B) {
		var ls lineSet
		ls.init(len(lines))
		for i := 0; i < b.N; i++ {
			ls.begin()
			distinct := 0
			for _, l := range lines {
				if ls.add(l) {
					distinct++
				}
			}
			if distinct != 16 {
				b.Fatalf("deduped to %d lines, want 16", distinct)
			}
		}
	})
}
