package gpu

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestDoneQOrdering(t *testing.T) {
	var q doneQ
	for _, c := range []uint64{5, 1, 9, 3, 7} {
		q.push(c)
	}
	want := []uint64{1, 3, 5, 7, 9}
	for i, w := range want {
		if q.len() != len(want)-i {
			t.Fatalf("len = %d", q.len())
		}
		if m := q.min(); m != w {
			t.Fatalf("min = %d, want %d", m, w)
		}
		if got := q.pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
}

func TestDoneQDrain(t *testing.T) {
	var q doneQ
	for _, c := range []uint64{10, 20, 30, 40} {
		q.push(c)
	}
	if n := q.drain(25); n != 2 {
		t.Errorf("drain(25) retired %d, want 2", n)
	}
	if q.len() != 2 || q.min() != 30 {
		t.Errorf("after drain: len=%d min=%d", q.len(), q.min())
	}
	if n := q.drain(5); n != 0 {
		t.Errorf("drain(5) retired %d, want 0", n)
	}
}

func TestDoneQHeapProperty(t *testing.T) {
	f := func(xs []uint64) bool {
		var q doneQ
		for _, x := range xs {
			q.push(x)
		}
		got := make([]uint64, 0, len(xs))
		for q.len() > 0 {
			got = append(got, q.pop())
		}
		want := append([]uint64(nil), xs...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	for _, c := range []uint64{50, 10, 90, 30, 70} {
		h.push(mkEvent(c, evRayWork, int(c%7), int32(c), int64(c)))
	}
	prev := uint64(0)
	for h.len() > 0 {
		if h.minCycle() < prev {
			t.Fatalf("minCycle went backwards")
		}
		e := h.pop()
		if e.cycle < prev {
			t.Fatalf("pop out of order: %d after %d", e.cycle, prev)
		}
		if e.kind() != evRayWork || e.sm() != int32(e.cycle%7) ||
			e.id() != int32(e.cycle) || e.uid() != uint32(e.cycle) {
			t.Fatalf("event payload corrupted: cycle %d kind %d sm %d id %d uid %d",
				e.cycle, e.kind(), e.sm(), e.id(), e.uid())
		}
		prev = e.cycle
	}
}

func TestEventPackingRoundtrip(t *testing.T) {
	cases := []struct {
		kind evKind
		sm   int
		id   int32
		uid  int64
	}{
		{evWarpWake, 0, 0, 0},
		{evRayWork, evSMLimit - 1, evIDLimit - 1, evUIDLimit - 1},
		{evFetchDone, 17, 12345, 987654321},
	}
	for _, c := range cases {
		e := mkEvent(42, c.kind, c.sm, c.id, c.uid)
		if e.kind() != c.kind || e.sm() != int32(c.sm) || e.id() != c.id ||
			e.uid() != uint32(c.uid) || e.cycle != 42 {
			t.Errorf("roundtrip %+v -> kind %d sm %d id %d uid %d",
				c, e.kind(), e.sm(), e.id(), e.uid())
		}
	}
}

func TestEventHeapStableUnderInterleaving(t *testing.T) {
	var h eventHeap
	// Interleave pushes and pops.
	h.push(event{cycle: 5})
	h.push(event{cycle: 2})
	if e := h.pop(); e.cycle != 2 {
		t.Fatalf("pop = %d", e.cycle)
	}
	h.push(event{cycle: 1})
	h.push(event{cycle: 9})
	if e := h.pop(); e.cycle != 1 {
		t.Fatalf("pop = %d", e.cycle)
	}
	if e := h.pop(); e.cycle != 5 {
		t.Fatalf("pop = %d", e.cycle)
	}
	if e := h.pop(); e.cycle != 9 {
		t.Fatalf("pop = %d", e.cycle)
	}
}

func TestContainsLine(t *testing.T) {
	lines := []uint64{0x100, 0x200}
	if !containsLine(lines, 0x100) || containsLine(lines, 0x300) {
		t.Error("containsLine wrong")
	}
	if containsLine(nil, 0) {
		t.Error("empty slice contains something")
	}
}
