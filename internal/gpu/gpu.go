// Package gpu is the cycle-level GPU timing model — the stand-in for the
// Vulkan-Sim simulator the paper builds Zatel on. It replays the per-pixel
// traces recorded by internal/rt on a configurable GPU (internal/config):
// SIMT warps scheduled greedy-then-oldest across SMs, per-SM RT accelerator
// units with MSHRs, fully-associative L1D caches, address-interleaved L2
// slices behind a crossbar, and per-partition DRAM channels.
//
// The model is trace-driven and analytic on the memory side: loads receive
// completion cycles from queue/bandwidth equations rather than per-cycle
// ticking, which keeps full-frame simulations fast while preserving the
// contention behaviour Zatel's accuracy depends on (cache capacity, DRAM
// saturation, RT-unit occupancy).
//
// Simulator state is pooled per configuration: Zatel sweeps run thousands
// of group simulations against a handful of configs, and rebuilding the
// caches, heaps and warp arrays for each one dominated the allocation
// profile. Run draws a simulator from the pool, replays the job, and
// returns it scrubbed of trace pointers; a warm Run allocates almost
// nothing. Pooling is invisible to simulated timing — reset restores
// exactly the state newSim constructs, and the cycle-exactness golden test
// pins cold and warm runs to identical reports.
package gpu

import (
	"fmt"
	"sync"
	"time"

	"zatel/internal/cache"
	"zatel/internal/config"
	"zatel/internal/dram"
	"zatel/internal/flatmap"
	"zatel/internal/metrics"
	"zatel/internal/noc"
	"zatel/internal/rt"
)

// Job describes one simulation run: a GPU configuration and the thread
// traces to execute, in warp order (consecutive groups of WarpSize threads
// form warps). Pixels excluded by Zatel's filter mask must already be
// replaced with rt.FilteredTrace() by the caller.
//
// Traces may be supplied either as a slice or, to avoid materialising a
// per-run copy, through Source. When Source is non-nil it wins.
type Job struct {
	Cfg    config.Config
	Traces []rt.ThreadTrace
	// Source supplies the threads without requiring a contiguous slice;
	// see rt.TraceSource. The simulator only reads through it.
	Source rt.TraceSource
}

// Sim is the run state. Construct with newSim; drive with run.
type Sim struct {
	cfg    config.Config
	events eventHeap
	sms    []*sm
	mem    *memSystem

	// activeSMs lists, in ascending id order, the SMs with issuable warps
	// or ready RT-unit rays. The issue phase walks only this list; the
	// ascending order matters because same-cycle accesses to the shared
	// memory system are served in SM iteration order.
	activeSMs []int32

	src         rt.TraceSource // not-yet-launched threads
	srcAt       int
	totalWarps  int
	retired     int
	nextWarpUID int64
	nextWarpAge int64

	now      uint64
	endCycle uint64

	// Integrated RT statistics (value × cycles).
	activeRaysTotal    int
	residentWarpsTotal int
	rtActiveRayCycles  uint64
	rtWarpSlotCycles   uint64

	l1Latency uint64
}

// simPools holds one free-list of idle simulators per configuration.
// config.Config is comparable (scalars and strings only), so it keys the
// map directly; two jobs share a pool exactly when their simulators are
// structurally interchangeable.
var simPools sync.Map // config.Config -> *sync.Pool

// DrainPools discards all pooled simulator state. It exists for benchmarks
// and tests that need to measure or exercise cold-start behaviour;
// production callers never need it.
func DrainPools() {
	simPools.Range(func(k, _ any) bool {
		simPools.Delete(k)
		return true
	})
}

func getSim(cfg config.Config, src rt.TraceSource) (*Sim, error) {
	if pv, ok := simPools.Load(cfg); ok {
		if v := pv.(*sync.Pool).Get(); v != nil {
			sim := v.(*Sim)
			sim.reset()
			sim.start(src)
			return sim, nil
		}
	}
	return newSim(cfg, src)
}

// putSim returns a finished simulator to its configuration's pool. The
// caller must not touch sim afterwards.
func putSim(sim *Sim) {
	sim.scrub()
	pv, _ := simPools.LoadOrStore(sim.cfg, &sync.Pool{})
	pv.(*sync.Pool).Put(sim)
}

// Run simulates the job to completion and returns the metric report.
func Run(job Job) (metrics.Report, error) {
	if err := job.Cfg.Validate(); err != nil {
		return metrics.Report{}, err
	}
	src := job.Source
	if src == nil {
		src = rt.TraceSlice(job.Traces)
	}
	if src.Len() == 0 {
		return metrics.Report{}, fmt.Errorf("gpu: no threads to run")
	}
	if err := checkEventLimits(job.Cfg, src.Len()); err != nil {
		return metrics.Report{}, err
	}
	start := time.Now()
	sim, err := getSim(job.Cfg, src)
	if err != nil {
		return metrics.Report{}, err
	}
	if err := sim.run(); err != nil {
		// A failed run leaves partially-consumed state; drop the simulator
		// rather than pooling it.
		return metrics.Report{}, err
	}
	rep := sim.report()
	putSim(sim)
	rep.WallTime = time.Since(start)
	return rep, nil
}

// checkEventLimits rejects jobs whose identifiers would not fit the packed
// event word (see events.go). Real configurations sit orders of magnitude
// below every limit.
func checkEventLimits(cfg config.Config, threads int) error {
	if cfg.NumSMs > evSMLimit {
		return fmt.Errorf("gpu: NumSMs %d exceeds event limit %d", cfg.NumSMs, evSMLimit)
	}
	if cfg.MaxWarpsPerSM > evIDLimit {
		return fmt.Errorf("gpu: MaxWarpsPerSM %d exceeds event limit %d", cfg.MaxWarpsPerSM, evIDLimit)
	}
	if cfg.RTMaxWarps*cfg.WarpSize > evIDLimit {
		return fmt.Errorf("gpu: RT ray pool %d exceeds event limit %d",
			cfg.RTMaxWarps*cfg.WarpSize, evIDLimit)
	}
	warps := (threads + cfg.WarpSize - 1) / cfg.WarpSize
	if uint64(warps) >= evUIDLimit {
		return fmt.Errorf("gpu: %d warps exceeds event uid limit %d", warps, uint64(evUIDLimit))
	}
	return nil
}

func newSim(cfg config.Config, src rt.TraceSource) (*Sim, error) {
	sim := &Sim{
		cfg:       cfg,
		l1Latency: uint64(cfg.L1DLatency),
	}

	xbar, err := noc.New(cfg.NumSMs, cfg.NumMemPartitions, cfg.NoCLatency)
	if err != nil {
		return nil, err
	}
	sim.mem = &memSystem{
		xbar:      xbar,
		lineBytes: uint64(cfg.LineBytes),
		l2Latency: uint64(cfg.L2Latency),
		l2MSHRs:   cfg.L2MSHRs,
		l2TagLat:  uint64(cfg.L2Latency) / 4,
	}
	for p := 0; p < cfg.NumMemPartitions; p++ {
		l2, err := cache.New(cache.Config{
			SizeBytes: cfg.L2BytesPerPartition(),
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L2Assoc,
		})
		if err != nil {
			return nil, err
		}
		ch, err := dram.NewChannel(dram.Config{
			BytesPerCycle: cfg.DRAMBytesPerCoreCycle(),
			RowBytes:      cfg.DRAMRowBytes,
			RowMissCycles: cfg.DRAMRowMissLat,
			BaseLatency:   30,
			QueueDepth:    cfg.DRAMQueueDepth,
		})
		if err != nil {
			return nil, err
		}
		sim.mem.partitions = append(sim.mem.partitions, &partition{
			l2:       l2,
			l2Flight: flatmap.New(8 * cfg.L2MSHRs),
			channel:  ch,
		})
	}

	sim.activeSMs = make([]int32, 0, cfg.NumSMs)
	for i := 0; i < cfg.NumSMs; i++ {
		l1, err := cache.New(cache.Config{
			SizeBytes: cfg.L1DBytes,
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L1DAssoc,
		})
		if err != nil {
			return nil, err
		}
		core := &sm{
			id:         i,
			warps:      make([]warp, cfg.MaxWarpsPerSM),
			l1:         l1,
			l1Flight:   flatmap.New(8 * cfg.L1DMSHRs),
			l1MSHRs:    cfg.L1DMSHRs,
			lastIssued: -1,
			rt: rtUnit{
				maxWarps:     cfg.RTMaxWarps,
				mshrSize:     cfg.RTMSHRSize,
				raysPerCycle: cfg.RTRaysPerCycle,
				boxCycles:    uint64(cfg.RTBoxCycles),
				triCycles:    uint64(cfg.RTTriCycles),
			},
			scratchLanes: make([]int32, 0, cfg.WarpSize),
			scratchLines: make([]uint64, 0, cfg.WarpSize),
		}
		for slot := range core.warps {
			core.warps[slot].phase = wEmpty
		}
		core.dedup.init(cfg.WarpSize)
		sim.sms = append(sim.sms, core)
	}

	sim.start(src)
	return sim, nil
}

// reset restores a pooled simulator to the state newSim leaves it in before
// start, reusing every allocation.
func (sim *Sim) reset() {
	sim.events.items = sim.events.items[:0]
	for _, s := range sim.sms {
		s.reset()
	}
	sim.mem.reset()
	sim.activeSMs = sim.activeSMs[:0]
	sim.src = nil
	sim.srcAt = 0
	sim.totalWarps = 0
	sim.retired = 0
	sim.nextWarpUID = 0
	sim.nextWarpAge = 0
	sim.now = 0
	sim.endCycle = 0
	sim.activeRaysTotal = 0
	sim.residentWarpsTotal = 0
	sim.rtActiveRayCycles = 0
	sim.rtWarpSlotCycles = 0
}

// start binds the trace source and performs the initial breadth-first
// launch: warp slots fill across SMs so work spreads evenly, as a GPU's
// thread-block scheduler does.
func (sim *Sim) start(src rt.TraceSource) {
	sim.src = src
	sim.totalWarps = (src.Len() + sim.cfg.WarpSize - 1) / sim.cfg.WarpSize
	for slot := 0; slot < sim.cfg.MaxWarpsPerSM && sim.srcAt < src.Len(); slot++ {
		for _, core := range sim.sms {
			if sim.srcAt >= src.Len() {
				break
			}
			sim.launchWarp(core, int32(slot))
		}
	}
}

// scrub drops every reference into the job's traces so a pooled simulator
// does not pin a retired workload in memory. Capacity is kept everywhere.
func (sim *Sim) scrub() {
	sim.src = nil
	for _, s := range sim.sms {
		for i := range s.warps {
			w := &s.warps[i]
			threads := w.threads[:cap(w.threads)]
			for j := range threads {
				threads[j].tr = nil
			}
			refs := w.rayRefs[:cap(w.rayRefs)]
			for j := range refs {
				refs[j] = nil
			}
		}
		rays := s.rt.rays[:cap(s.rt.rays)]
		for j := range rays {
			rays[j].steps = nil
		}
	}
}

// activate inserts the SM into the active list, keeping ascending id
// order. Idempotent; called whenever an SM gains issue-phase work outside
// the issue loop (event delivery and RT-slot handoff).
func (sim *Sim) activate(s *sm) {
	if s.active {
		return
	}
	s.active = true
	sim.activeSMs = append(sim.activeSMs, 0)
	i := len(sim.activeSMs) - 1
	for i > 0 && sim.activeSMs[i-1] > int32(s.id) {
		sim.activeSMs[i] = sim.activeSMs[i-1]
		i--
	}
	sim.activeSMs[i] = int32(s.id)
}

// launchWarp builds the next pending warp into the given slot, reusing the
// slot's thread array from any previous occupant.
func (sim *Sim) launchWarp(s *sm, slot int32) {
	n := sim.cfg.WarpSize
	if remain := sim.src.Len() - sim.srcAt; remain < n {
		n = remain
	}
	w := &s.warps[slot]
	threads := w.threads
	if cap(threads) < n {
		threads = make([]thread, n, sim.cfg.WarpSize)
	} else {
		threads = threads[:n]
	}
	*w = warp{
		uid:     sim.nextWarpUID,
		age:     sim.nextWarpAge,
		threads: threads,
		rayRefs: w.rayRefs[:0],
	}
	sim.nextWarpUID++
	sim.nextWarpAge++
	live := int32(0)
	for i := 0; i < n; i++ {
		tr := sim.src.At(sim.srcAt + i)
		threads[i] = thread{tr: tr}
		if len(tr.Ops) > 0 {
			live++
		}
	}
	w.live = live
	sim.srcAt += n
	s.markReady(slot)
	sim.activate(s)
}

// retireWarp finishes a warp, reuses its slot for pending work and records
// the completion cycle.
func (sim *Sim) retireWarp(s *sm, slot int32, now uint64) {
	s.warps[slot].phase = wEmpty
	sim.retired++
	sim.endCycle = now
	if sim.srcAt < sim.src.Len() {
		sim.launchWarp(s, slot)
	}
}

// run executes the main loop until every warp retires.
func (sim *Sim) run() error {
	for sim.retired < sim.totalWarps {
		now := sim.now

		// Deliver due events.
		for sim.events.len() > 0 && sim.events.minCycle() <= now {
			e := sim.events.pop()
			s := sim.sms[e.sm()]
			switch e.kind() {
			case evWarpWake:
				slot := e.id()
				w := &s.warps[slot]
				if uint32(w.uid) != e.uid() || w.phase != wBlocked {
					break // stale wake for a reused slot
				}
				if w.live == 0 && w.pendingRays == 0 {
					sim.retireWarp(s, slot, now)
				} else {
					s.markReady(slot)
					sim.activate(s)
				}
			case evRayWork:
				sim.rayWork(s, e.id(), now)
			case evFetchDone:
				sim.fetchDone(s)
			}
		}

		// Issue and tick RT units on the active SMs only. During this phase
		// an SM can only add work to itself (retire→relaunch, RT admit), so
		// the active list cannot gain members mid-walk and the ascending
		// walk order matches the full scan it replaces.
		for _, si := range sim.activeSMs {
			s := sim.sms[si]
			for k := 0; k < sim.cfg.IssuePerCycle; k++ {
				slot := s.pickWarp(sim.cfg.Scheduler)
				if slot < 0 {
					break
				}
				s.lastIssued = slot
				sim.issueWarp(s, slot, now)
			}
			sim.rtTick(s, now)
		}

		// Deactivate the SMs the issue phase drained (in place, preserving
		// order).
		live := sim.activeSMs[:0]
		for _, si := range sim.activeSMs {
			s := sim.sms[si]
			if s.ready.len() > 0 || s.rt.ready.len() > 0 {
				live = append(live, si)
			} else {
				s.active = false
			}
		}
		sim.activeSMs = live

		// Advance time, skipping dead cycles when nothing is issuable.
		next := now + 1
		if len(sim.activeSMs) == 0 {
			if sim.events.len() == 0 {
				if sim.retired < sim.totalWarps {
					return fmt.Errorf("gpu: deadlock at cycle %d: %d/%d warps retired",
						now, sim.retired, sim.totalWarps)
				}
				break
			}
			if mc := sim.events.minCycle(); mc > next {
				next = mc
			}
		}
		dt := next - now
		sim.rtActiveRayCycles += uint64(sim.activeRaysTotal) * dt
		sim.rtWarpSlotCycles += uint64(sim.residentWarpsTotal) * dt
		sim.now = next
	}
	return nil
}

// issueWarp replays one SIMT instruction for the warp in the given slot.
// Threads whose current op kind matches the leader's execute together;
// divergent threads wait for a later issue (kind-grouped serialization).
func (sim *Sim) issueWarp(s *sm, slot int32, now uint64) {
	w := &s.warps[slot]
	if w.live == 0 {
		// All threads finished; the warp retires immediately.
		sim.retireWarp(s, slot, now)
		return
	}
	lanes := s.scratchLanes[:0]
	var kind rt.OpKind
	for i := range w.threads {
		t := &w.threads[i]
		if t.finished() {
			continue
		}
		k := t.tr.Ops[t.op].Kind
		if len(lanes) == 0 {
			kind = k
		}
		if k == kind {
			lanes = append(lanes, int32(i))
		}
	}

	switch kind {
	case rt.OpCompute:
		var maxArg, sumArg uint64
		for _, li := range lanes {
			t := &w.threads[li]
			arg := uint64(t.tr.Ops[t.op].Arg)
			if arg > maxArg {
				maxArg = arg
			}
			sumArg += arg
			t.op++
			if t.finished() {
				w.live--
			}
		}
		if maxArg == 0 {
			maxArg = 1
		}
		s.instructions += sumArg
		sim.block(s, slot, now+maxArg)

	case rt.OpLoad:
		lines := s.scratchLines[:0]
		s.dedup.begin()
		for _, li := range lanes {
			t := &w.threads[li]
			line := s.l1.LineAddr(uint64(t.tr.Ops[t.op].Arg))
			t.op++
			if t.finished() {
				w.live--
			}
			if s.dedup.add(line) {
				lines = append(lines, line)
			}
		}
		var done uint64
		for _, line := range lines {
			if d := sim.loadLine(s, line, now); d > done {
				done = d
			}
		}
		s.instructions += uint64(len(lanes))
		sim.block(s, slot, done)

	case rt.OpStore:
		lines := s.scratchLines[:0]
		s.dedup.begin()
		for _, li := range lanes {
			t := &w.threads[li]
			line := s.l1.LineAddr(uint64(t.tr.Ops[t.op].Arg))
			t.op++
			if t.finished() {
				w.live--
			}
			if s.dedup.add(line) {
				lines = append(lines, line)
			}
		}
		for _, line := range lines {
			sim.storeLine(s, line, now)
		}
		s.instructions += uint64(len(lanes))
		sim.block(s, slot, now+1)

	case rt.OpTrace:
		w.rayRefs = w.rayRefs[:0]
		for _, li := range lanes {
			t := &w.threads[li]
			w.rayRefs = append(w.rayRefs, &t.tr.Rays[t.tr.Ops[t.op].Arg])
			t.op++
			if t.finished() {
				w.live--
			}
		}
		s.instructions += uint64(len(lanes))
		sim.tryAdmit(s, slot, now)
	}
}

// block parks the warp until cycle until.
func (sim *Sim) block(s *sm, slot int32, until uint64) {
	w := &s.warps[slot]
	w.phase = wBlocked
	sim.events.push(mkEvent(until, evWarpWake, s.id, slot, w.uid))
}

// loadLine issues a load of one cache line from SM s at cycle now and
// returns the data-arrival cycle, walking L1 (with MSHR merge) and, on a
// miss, the shared memory system.
func (sim *Sim) loadLine(s *sm, addr uint64, now uint64) uint64 {
	line := s.l1.LineAddr(addr)
	// The LSU performs one L1 access per cycle.
	at := max(now, s.lsuNextFree)
	s.lsuNextFree = at + 1

	// Single flight-map probe; see l2Load for why this is exact.
	fd, inFlight := s.l1Flight.Get(line)
	if inFlight && fd <= at {
		s.l1Flight.Delete(line)
		inFlight = false
	}
	hit := s.l1.Load(line)
	if inFlight {
		// Merged into an outstanding fill.
		return max(fd, at+sim.l1Latency)
	}
	if hit {
		return at + sim.l1Latency
	}

	// Primary miss: reserve the tag, allocate an MSHR and fetch from L2.
	s.l1Out -= s.l1Done.drain(at)
	start := at + 1
	if s.l1Out >= s.l1MSHRs {
		// The file is full; this request takes the slot of the earliest
		// completing fill.
		m := s.l1Done.pop()
		s.l1Out--
		start = max(start, m)
	}
	done := sim.mem.l2Load(s.id, line, start)
	s.l1.Install(line)
	s.l1Flight.Set(line, done)
	s.l1Done.push(done)
	s.l1Out++
	if s.l1Flight.Len() > 8*s.l1MSHRs {
		s.l1Flight.DeleteIf(func(_, v uint64) bool { return v <= at })
	}
	return done
}

// storeLine issues a write-through store of one line.
func (sim *Sim) storeLine(s *sm, addr uint64, now uint64) {
	line := s.l1.LineAddr(addr)
	at := max(now, s.lsuNextFree)
	s.lsuNextFree = at + 1
	s.l1.Store(line)
	sim.mem.l2Store(line, at+1)
}

// report aggregates statistics into the Table I metric report.
func (sim *Sim) report() metrics.Report {
	rep := metrics.Report{
		Cycles: sim.endCycle,
		Warps:  sim.totalWarps,
	}
	var l1 cache.Stats
	for _, s := range sim.sms {
		l1.Add(s.l1.Stats())
		rep.Instructions += s.instructions
		rep.RTRaysTraced += s.rt.raysTraced
	}
	rep.L1DAccesses = l1.LoadAccesses
	rep.L1DMisses = l1.LoadMisses

	var l2 cache.Stats
	var bytesRead, busy, pending uint64
	for _, p := range sim.mem.partitions {
		l2.Add(p.l2.Stats())
		ds := p.channel.Stats(sim.endCycle)
		bytesRead += ds.BytesRead
		busy += ds.BusyCycles
		pending += ds.PendingCycles
		rep.DRAMReads += ds.Reads
	}
	rep.L2Accesses = l2.LoadAccesses
	rep.L2Misses = l2.LoadMisses
	rep.DRAMBytesRead = bytesRead
	rep.DRAMBusyCycles = busy
	rep.DRAMPendingCycles = pending

	peak := sim.cfg.DRAMBytesPerCoreCycle()
	if pending > 0 {
		rep.DRAMEff = float64(bytesRead) / (float64(pending) * peak)
	}
	if sim.endCycle > 0 {
		total := float64(sim.endCycle) * peak * float64(len(sim.mem.partitions))
		rep.DRAMBWUtil = float64(bytesRead) / total
	}

	rep.RTActiveRayCycles = sim.rtActiveRayCycles
	rep.RTWarpSlotCycles = sim.rtWarpSlotCycles
	return rep
}
