// Package gpu is the cycle-level GPU timing model — the stand-in for the
// Vulkan-Sim simulator the paper builds Zatel on. It replays the per-pixel
// traces recorded by internal/rt on a configurable GPU (internal/config):
// SIMT warps scheduled greedy-then-oldest across SMs, per-SM RT accelerator
// units with MSHRs, fully-associative L1D caches, address-interleaved L2
// slices behind a crossbar, and per-partition DRAM channels.
//
// The model is trace-driven and analytic on the memory side: loads receive
// completion cycles from queue/bandwidth equations rather than per-cycle
// ticking, which keeps full-frame simulations fast while preserving the
// contention behaviour Zatel's accuracy depends on (cache capacity, DRAM
// saturation, RT-unit occupancy).
package gpu

import (
	"fmt"
	"time"

	"zatel/internal/cache"
	"zatel/internal/config"
	"zatel/internal/dram"
	"zatel/internal/metrics"
	"zatel/internal/noc"
	"zatel/internal/rt"
)

// Job describes one simulation run: a GPU configuration and the thread
// traces to execute, in warp order (consecutive groups of WarpSize threads
// form warps). Pixels excluded by Zatel's filter mask must already be
// replaced with rt.FilteredTrace() by the caller.
type Job struct {
	Cfg    config.Config
	Traces []rt.ThreadTrace
}

// Sim is the run state. Construct with newSim; drive with run.
type Sim struct {
	cfg    config.Config
	events eventHeap
	sms    []*sm
	mem    *memSystem

	pending     []rt.ThreadTrace // not-yet-launched threads
	pendingAt   int
	totalWarps  int
	retired     int
	nextWarpUID int64
	nextWarpAge int64

	now      uint64
	endCycle uint64

	// Integrated RT statistics (value × cycles).
	activeRaysTotal    int
	residentWarpsTotal int
	rtActiveRayCycles  uint64
	rtWarpSlotCycles   uint64

	l1Latency uint64
}

// Run simulates the job to completion and returns the metric report.
func Run(job Job) (metrics.Report, error) {
	if err := job.Cfg.Validate(); err != nil {
		return metrics.Report{}, err
	}
	if len(job.Traces) == 0 {
		return metrics.Report{}, fmt.Errorf("gpu: no threads to run")
	}
	start := time.Now()
	sim, err := newSim(job)
	if err != nil {
		return metrics.Report{}, err
	}
	if err := sim.run(); err != nil {
		return metrics.Report{}, err
	}
	rep := sim.report()
	rep.WallTime = time.Since(start)
	return rep, nil
}

func newSim(job Job) (*Sim, error) {
	cfg := job.Cfg
	sim := &Sim{
		cfg:       cfg,
		pending:   job.Traces,
		l1Latency: uint64(cfg.L1DLatency),
	}

	xbar, err := noc.New(cfg.NumSMs, cfg.NumMemPartitions, cfg.NoCLatency)
	if err != nil {
		return nil, err
	}
	sim.mem = &memSystem{
		xbar:      xbar,
		lineBytes: uint64(cfg.LineBytes),
		l2Latency: uint64(cfg.L2Latency),
		l2MSHRs:   cfg.L2MSHRs,
		l2TagLat:  uint64(cfg.L2Latency) / 4,
	}
	for p := 0; p < cfg.NumMemPartitions; p++ {
		l2, err := cache.New(cache.Config{
			SizeBytes: cfg.L2BytesPerPartition(),
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L2Assoc,
		})
		if err != nil {
			return nil, err
		}
		ch, err := dram.NewChannel(dram.Config{
			BytesPerCycle: cfg.DRAMBytesPerCoreCycle(),
			RowBytes:      cfg.DRAMRowBytes,
			RowMissCycles: cfg.DRAMRowMissLat,
			BaseLatency:   30,
			QueueDepth:    cfg.DRAMQueueDepth,
		})
		if err != nil {
			return nil, err
		}
		sim.mem.partitions = append(sim.mem.partitions, &partition{
			l2:       l2,
			l2Flight: make(map[uint64]uint64),
			channel:  ch,
		})
	}

	for i := 0; i < cfg.NumSMs; i++ {
		l1, err := cache.New(cache.Config{
			SizeBytes: cfg.L1DBytes,
			LineBytes: cfg.LineBytes,
			Assoc:     cfg.L1DAssoc,
		})
		if err != nil {
			return nil, err
		}
		core := &sm{
			id:         i,
			warps:      make([]warp, cfg.MaxWarpsPerSM),
			l1:         l1,
			l1Flight:   make(map[uint64]uint64),
			l1MSHRs:    cfg.L1DMSHRs,
			lastIssued: -1,
			rt: rtUnit{
				maxWarps:     cfg.RTMaxWarps,
				mshrSize:     cfg.RTMSHRSize,
				raysPerCycle: cfg.RTRaysPerCycle,
				boxCycles:    uint64(cfg.RTBoxCycles),
				triCycles:    uint64(cfg.RTTriCycles),
			},
			scratchLanes: make([]int32, 0, cfg.WarpSize),
			scratchLines: make([]uint64, 0, cfg.WarpSize),
		}
		for slot := range core.warps {
			core.warps[slot].phase = wEmpty
		}
		core.ready = &ageHeap{age: func(slot int32) int64 { return core.warps[slot].age }}
		sim.sms = append(sim.sms, core)
	}

	sim.totalWarps = (len(job.Traces) + cfg.WarpSize - 1) / cfg.WarpSize

	// Initial launch: fill warp slots breadth-first across SMs so work
	// spreads evenly, as a GPU's thread-block scheduler does.
	for slot := 0; slot < cfg.MaxWarpsPerSM && sim.pendingAt < len(sim.pending); slot++ {
		for _, core := range sim.sms {
			if sim.pendingAt >= len(sim.pending) {
				break
			}
			sim.launchWarp(core, int32(slot))
		}
	}
	return sim, nil
}

// launchWarp builds the next pending warp into the given slot.
func (sim *Sim) launchWarp(s *sm, slot int32) {
	n := sim.cfg.WarpSize
	if remain := len(sim.pending) - sim.pendingAt; remain < n {
		n = remain
	}
	w := &s.warps[slot]
	*w = warp{
		uid:     sim.nextWarpUID,
		age:     sim.nextWarpAge,
		threads: make([]thread, n),
	}
	sim.nextWarpUID++
	sim.nextWarpAge++
	for i := 0; i < n; i++ {
		w.threads[i] = thread{tr: &sim.pending[sim.pendingAt+i]}
	}
	sim.pendingAt += n
	s.markReady(slot)
}

// retireWarp finishes a warp, reuses its slot for pending work and records
// the completion cycle.
func (sim *Sim) retireWarp(s *sm, slot int32, now uint64) {
	s.warps[slot].phase = wEmpty
	sim.retired++
	sim.endCycle = now
	if sim.pendingAt < len(sim.pending) {
		sim.launchWarp(s, slot)
	}
}

func warpFinished(w *warp) bool {
	for i := range w.threads {
		if !w.threads[i].finished() {
			return false
		}
	}
	return true
}

// run executes the main loop until every warp retires.
func (sim *Sim) run() error {
	for sim.retired < sim.totalWarps {
		now := sim.now

		// Deliver due events.
		for sim.events.len() > 0 && sim.events.minCycle() <= now {
			e := sim.events.pop()
			s := sim.sms[e.sm]
			switch e.kind {
			case evWarpWake:
				w := &s.warps[e.id]
				if w.uid != e.uid || w.phase != wBlocked {
					break // stale wake for a reused slot
				}
				if warpFinished(w) && w.pendingRays == 0 {
					sim.retireWarp(s, e.id, now)
				} else {
					s.markReady(e.id)
				}
			case evRayWork:
				sim.rayWork(s, e.id, now)
			case evFetchDone:
				sim.fetchDone(s)
			}
		}

		// Issue and tick RT units.
		for _, s := range sim.sms {
			for k := 0; k < sim.cfg.IssuePerCycle; k++ {
				slot := s.pickWarp(sim.cfg.Scheduler)
				if slot < 0 {
					break
				}
				s.lastIssued = slot
				sim.issueWarp(s, slot, now)
			}
			sim.rtTick(s, now)
		}

		// Advance time, skipping dead cycles when nothing is issuable.
		next := now + 1
		if !sim.hasImmediateWork() {
			if sim.events.len() == 0 {
				if sim.retired < sim.totalWarps {
					return fmt.Errorf("gpu: deadlock at cycle %d: %d/%d warps retired",
						now, sim.retired, sim.totalWarps)
				}
				break
			}
			if mc := sim.events.minCycle(); mc > next {
				next = mc
			}
		}
		dt := next - now
		sim.rtActiveRayCycles += uint64(sim.activeRaysTotal) * dt
		sim.rtWarpSlotCycles += uint64(sim.residentWarpsTotal) * dt
		sim.now = next
	}
	return nil
}

func (sim *Sim) hasImmediateWork() bool {
	for _, s := range sim.sms {
		if s.ready.len() > 0 || len(s.rt.ready) > 0 {
			return true
		}
	}
	return false
}

// issueWarp replays one SIMT instruction for the warp in the given slot.
// Threads whose current op kind matches the leader's execute together;
// divergent threads wait for a later issue (kind-grouped serialization).
func (sim *Sim) issueWarp(s *sm, slot int32, now uint64) {
	w := &s.warps[slot]
	lanes := s.scratchLanes[:0]
	var kind rt.OpKind
	for i := range w.threads {
		t := &w.threads[i]
		if t.finished() {
			continue
		}
		k := t.tr.Ops[t.op].Kind
		if len(lanes) == 0 {
			kind = k
		}
		if k == kind {
			lanes = append(lanes, int32(i))
		}
	}
	if len(lanes) == 0 {
		// All threads finished; the warp retires immediately.
		sim.retireWarp(s, slot, now)
		return
	}

	switch kind {
	case rt.OpCompute:
		var maxArg, sumArg uint64
		for _, li := range lanes {
			t := &w.threads[li]
			arg := uint64(t.tr.Ops[t.op].Arg)
			if arg > maxArg {
				maxArg = arg
			}
			sumArg += arg
			t.op++
		}
		if maxArg == 0 {
			maxArg = 1
		}
		s.instructions += sumArg
		sim.block(s, slot, now+maxArg)

	case rt.OpLoad:
		lines := s.scratchLines[:0]
		for _, li := range lanes {
			t := &w.threads[li]
			line := s.l1.LineAddr(uint64(t.tr.Ops[t.op].Arg))
			t.op++
			if !containsLine(lines, line) {
				lines = append(lines, line)
			}
		}
		var done uint64
		for _, line := range lines {
			if d := sim.loadLine(s, line, now); d > done {
				done = d
			}
		}
		s.instructions += uint64(len(lanes))
		sim.block(s, slot, done)

	case rt.OpStore:
		lines := s.scratchLines[:0]
		for _, li := range lanes {
			t := &w.threads[li]
			line := s.l1.LineAddr(uint64(t.tr.Ops[t.op].Arg))
			t.op++
			if !containsLine(lines, line) {
				lines = append(lines, line)
			}
		}
		for _, line := range lines {
			sim.storeLine(s, line, now)
		}
		s.instructions += uint64(len(lanes))
		sim.block(s, slot, now+1)

	case rt.OpTrace:
		w.rayRefs = w.rayRefs[:0]
		for _, li := range lanes {
			t := &w.threads[li]
			w.rayRefs = append(w.rayRefs, &t.tr.Rays[t.tr.Ops[t.op].Arg])
			t.op++
		}
		s.instructions += uint64(len(lanes))
		sim.tryAdmit(s, slot, now)
	}
}

// block parks the warp until cycle until.
func (sim *Sim) block(s *sm, slot int32, until uint64) {
	w := &s.warps[slot]
	w.phase = wBlocked
	sim.events.push(event{cycle: until, kind: evWarpWake, sm: int32(s.id), id: slot, uid: w.uid})
}

func containsLine(lines []uint64, line uint64) bool {
	for _, l := range lines {
		if l == line {
			return true
		}
	}
	return false
}

// loadLine issues a load of one cache line from SM s at cycle now and
// returns the data-arrival cycle, walking L1 (with MSHR merge) and, on a
// miss, the shared memory system.
func (sim *Sim) loadLine(s *sm, addr uint64, now uint64) uint64 {
	line := s.l1.LineAddr(addr)
	// The LSU performs one L1 access per cycle.
	at := max(now, s.lsuNextFree)
	s.lsuNextFree = at + 1

	if done, ok := s.l1Flight[line]; ok && done <= at {
		delete(s.l1Flight, line)
	}
	hit := s.l1.Load(line)
	if done, ok := s.l1Flight[line]; ok {
		// Merged into an outstanding fill.
		return max(done, at+sim.l1Latency)
	}
	if hit {
		return at + sim.l1Latency
	}

	// Primary miss: reserve the tag, allocate an MSHR and fetch from L2.
	s.l1Out -= s.l1Done.drain(at)
	start := at + 1
	if s.l1Out >= s.l1MSHRs {
		// The file is full; this request takes the slot of the earliest
		// completing fill.
		m := s.l1Done.pop()
		s.l1Out--
		start = max(start, m)
	}
	done := sim.mem.l2Load(s.id, line, start)
	s.l1.Install(line)
	s.l1Flight[line] = done
	s.l1Done.push(done)
	s.l1Out++
	if len(s.l1Flight) > 8*s.l1MSHRs {
		sweep(s.l1Flight, at)
	}
	return done
}

// storeLine issues a write-through store of one line.
func (sim *Sim) storeLine(s *sm, addr uint64, now uint64) {
	line := s.l1.LineAddr(addr)
	at := max(now, s.lsuNextFree)
	s.lsuNextFree = at + 1
	s.l1.Store(line)
	sim.mem.l2Store(line, at+1)
}

// report aggregates statistics into the Table I metric report.
func (sim *Sim) report() metrics.Report {
	rep := metrics.Report{
		Cycles: sim.endCycle,
		Warps:  sim.totalWarps,
	}
	var l1 cache.Stats
	for _, s := range sim.sms {
		l1.Add(s.l1.Stats())
		rep.Instructions += s.instructions
		rep.RTRaysTraced += s.rt.raysTraced
	}
	rep.L1DAccesses = l1.LoadAccesses
	rep.L1DMisses = l1.LoadMisses

	var l2 cache.Stats
	var bytesRead, busy, pending uint64
	for _, p := range sim.mem.partitions {
		l2.Add(p.l2.Stats())
		ds := p.channel.Stats(sim.endCycle)
		bytesRead += ds.BytesRead
		busy += ds.BusyCycles
		pending += ds.PendingCycles
		rep.DRAMReads += ds.Reads
	}
	rep.L2Accesses = l2.LoadAccesses
	rep.L2Misses = l2.LoadMisses
	rep.DRAMBytesRead = bytesRead
	rep.DRAMBusyCycles = busy
	rep.DRAMPendingCycles = pending

	peak := sim.cfg.DRAMBytesPerCoreCycle()
	if pending > 0 {
		rep.DRAMEff = float64(bytesRead) / (float64(pending) * peak)
	}
	if sim.endCycle > 0 {
		total := float64(sim.endCycle) * peak * float64(len(sim.mem.partitions))
		rep.DRAMBWUtil = float64(bytesRead) / total
	}

	rep.RTActiveRayCycles = sim.rtActiveRayCycles
	rep.RTWarpSlotCycles = sim.rtWarpSlotCycles
	return rep
}
