package gpu

// The simulator is cycle-driven but event-assisted: components schedule
// wakeups on a global min-heap so the main loop can skip cycles where
// nothing can happen. The heap is a hand-rolled binary heap over a struct
// slice (no interface boxing) because tens of millions of events flow
// through it per simulated frame.

type evKind uint8

const (
	// evWarpWake moves a blocked warp back to its SM's ready set.
	evWarpWake evKind = iota
	// evRayWork makes an RT-unit ray ready to issue its next step.
	evRayWork
	// evRayDone retires a ray and, when it is the warp's last, wakes the
	// warp that issued the trace.
	evRayDone
	// evFetchDone releases one RT-unit MSHR slot and unstalls a waiting
	// ray if any.
	evFetchDone
)

type event struct {
	cycle uint64
	kind  evKind
	sm    int32
	id    int32 // warp slot or ray pool index
	uid   int64 // warp generation tag for wake validation
}

type eventHeap struct {
	items []event
}

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].cycle <= h.items[i].cycle {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].cycle < h.items[smallest].cycle {
			smallest = l
		}
		if r < last && h.items[r].cycle < h.items[smallest].cycle {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) minCycle() uint64 { return h.items[0].cycle }
