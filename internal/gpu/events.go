// The simulator is cycle-driven but event-assisted: components schedule
// wakeups on a global min-heap so the main loop can skip cycles where
// nothing can happen. The heap is a hand-rolled binary heap over a struct
// slice (no interface boxing) because tens of millions of events flow
// through it per simulated frame.
//
// Events are packed into 16 bytes (cycle + one payload word) — heap pushes
// and pops dominated the pre-optimization CPU profile and their cost is
// almost entirely memory traffic, so halving the element size directly
// halves it. Packing is invisible to simulated timing: heap order depends
// only on the cycle field and the push/pop algorithms are unchanged, so
// the pop sequence (including ties) is identical to the unpacked heap's.

package gpu

type evKind uint8

const (
	// evWarpWake moves a blocked warp back to its SM's ready set.
	evWarpWake evKind = iota
	// evRayWork makes an RT-unit ray ready to issue its next step.
	evRayWork
	// evFetchDone releases one RT-unit MSHR slot and unstalls a waiting
	// ray if any.
	evFetchDone
)

// Payload word layout: kind(2) | sm(10) | id(20) | uid(32), most
// significant first. newSim rejects configurations that exceed the field
// widths (1024 SMs, 2^20 warp slots / resident rays) and Run rejects jobs
// with 2^32 or more warps, so packing never truncates.
const (
	evKindShift = 62
	evSMShift   = 52
	evIDShift   = 32

	evSMLimit  = 1 << 10
	evIDLimit  = 1 << 20
	evUIDLimit = 1 << 32
)

type event struct {
	cycle uint64
	word  uint64
}

// mkEvent packs an event. id is a warp slot (evWarpWake) or ray pool index
// (evRayWork); uid is the warp generation tag validating wakes against slot
// reuse (unused by ray events).
func mkEvent(cycle uint64, kind evKind, sm int, id int32, uid int64) event {
	return event{
		cycle: cycle,
		word: uint64(kind)<<evKindShift |
			uint64(sm)<<evSMShift |
			(uint64(uint32(id))&(evIDLimit-1))<<evIDShift |
			uint64(uid)&(evUIDLimit-1),
	}
}

func (e event) kind() evKind { return evKind(e.word >> evKindShift) }
func (e event) sm() int32    { return int32(e.word >> evSMShift & (evSMLimit - 1)) }
func (e event) id() int32    { return int32(e.word >> evIDShift & (evIDLimit - 1)) }
func (e event) uid() uint32  { return uint32(e.word) }

type eventHeap struct {
	items []event
}

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].cycle <= h.items[i].cycle {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].cycle < h.items[smallest].cycle {
			smallest = l
		}
		if r < last && h.items[r].cycle < h.items[smallest].cycle {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) minCycle() uint64 { return h.items[0].cycle }
