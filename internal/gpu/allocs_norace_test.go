//go:build !race

package gpu

// warmAllocsBudget bounds allocations per warm pooled Run in
// TestWarmRunAllocs. The pre-pooling simulator allocated ~1.45M objects
// per run on the same job; the warm pooled path measures ~3 (the
// trace-source boxing and the report struct). The budget leaves three
// orders of magnitude of slack so a GC evicting the pooled simulator
// between iterations cannot flake the test, while still catching any
// real pooling regression (which reappears at ~10^4 allocs or more).
const (
	warmAllocsBudget = 5000
	checkWarmAllocs  = true
)
