package gpu

import (
	"zatel/internal/cache"
	"zatel/internal/dram"
	"zatel/internal/flatmap"
	"zatel/internal/noc"
)

// The memory hierarchy is modelled analytically: every load is assigned a
// completion cycle by walking L1 → NoC → L2 slice → DRAM channel, with
// per-component queue serialization and in-flight merge (MSHR) at each
// cache level. Only the SMs and RT units are ticked per cycle; the memory
// side never is, which is what makes full-frame simulation tractable.

// partition is one memory partition: an L2 slice fed by the crossbar and
// backed by one DRAM channel.
type partition struct {
	l2       *cache.Cache
	l2Flight *flatmap.Map // line -> completion cycle
	// l2Done/l2Out track the slice's MSHR occupancy.
	l2Done doneQ
	l2Out  int
	// nextFree implements the slice's one-access-per-cycle port.
	nextFree uint64
	channel  *dram.Channel
}

// memSystem owns the shared memory side of the simulated GPU.
type memSystem struct {
	xbar       *noc.Crossbar
	partitions []*partition
	lineBytes  uint64
	l2Latency  uint64
	l2MSHRs    int
	l2TagLat   uint64
}

// reset restores the memory system to its post-construction state for a
// pooled rerun, keeping the caches' node arenas and the flight maps'
// tables.
func (ms *memSystem) reset() {
	ms.xbar.Reset()
	for _, p := range ms.partitions {
		p.l2.Reset()
		p.l2Flight.Clear()
		p.l2Done.reset()
		p.l2Out = 0
		p.nextFree = 0
		p.channel.Reset()
	}
}

// route hashes a line address to its home partition. Bits above the line
// offset interleave lines across partitions, as GPU address mappings do to
// spread BVH traversal traffic.
func (ms *memSystem) route(line uint64) (int, *partition) {
	idx := int((line / ms.lineBytes) % uint64(len(ms.partitions)))
	return idx, ms.partitions[idx]
}

// l2Load walks a load through the crossbar, the home L2 slice and — on a
// miss — the DRAM channel. It returns the cycle the data arrives back at
// SM sm. now is the cycle the request leaves the L1.
func (ms *memSystem) l2Load(sm int, line uint64, now uint64) uint64 {
	pidx, p := ms.route(line)
	arrive := ms.xbar.ToPartition(pidx, now)

	// Slice port serialization.
	svc := max(arrive, p.nextFree)
	p.nextFree = svc + 1

	// One flight-map probe answers both questions the walk asks: "did an
	// earlier fetch of this line already complete" (lazy cleanup) and "is
	// one still outstanding" (secondary-miss merge). Load never touches the
	// flight map, so remembering the probed value is exact.
	fd, inFlight := p.l2Flight.Get(line)
	if inFlight && fd <= svc {
		p.l2Flight.Delete(line)
		inFlight = false
	}
	hit := p.l2.Load(line)
	if inFlight {
		// Merged into an in-flight fetch (secondary miss).
		return ms.xbar.ToSM(sm, max(fd, svc))
	}
	if hit {
		return ms.xbar.ToSM(sm, svc+ms.l2Latency)
	}

	// Primary miss: allocate the tag and fetch from DRAM. A full MSHR file
	// delays the fetch until the earliest outstanding fill completes.
	p.l2Out -= p.l2Done.drain(svc)
	start := svc + ms.l2TagLat
	if p.l2Out >= ms.l2MSHRs {
		m := p.l2Done.pop()
		p.l2Out--
		start = max(start, m)
	}
	done := p.channel.Read(line, int(ms.lineBytes), start)
	p.l2.Install(line)
	p.l2Flight.Set(line, done)
	p.l2Done.push(done)
	p.l2Out++
	if p.l2Flight.Len() > 8*ms.l2MSHRs {
		// Expired entries read as absent on access, so the sweep is purely
		// about memory; timing is unaffected by when (or whether) it runs.
		p.l2Flight.DeleteIf(func(_, v uint64) bool { return v <= svc })
	}
	return ms.xbar.ToSM(sm, done)
}

// l2Store forwards a write-through store to its home slice. Stores are
// fire-and-forget: they consume crossbar and slice bandwidth but nothing
// waits on them, and the slice absorbs them (no DRAM write traffic).
func (ms *memSystem) l2Store(line uint64, now uint64) {
	pidx, p := ms.route(line)
	arrive := ms.xbar.ToPartition(pidx, now)
	svc := max(arrive, p.nextFree)
	p.nextFree = svc + 1
	p.l2.Store(line)
}
