package gpu

import (
	"zatel/internal/cache"
	"zatel/internal/dram"
	"zatel/internal/noc"
)

// The memory hierarchy is modelled analytically: every load is assigned a
// completion cycle by walking L1 → NoC → L2 slice → DRAM channel, with
// per-component queue serialization and in-flight merge (MSHR) at each
// cache level. Only the SMs and RT units are ticked per cycle; the memory
// side never is, which is what makes full-frame simulation tractable.

// partition is one memory partition: an L2 slice fed by the crossbar and
// backed by one DRAM channel.
type partition struct {
	l2       *cache.Cache
	l2Flight map[uint64]uint64 // line -> completion cycle
	// l2Done/l2Out track the slice's MSHR occupancy.
	l2Done doneQ
	l2Out  int
	// nextFree implements the slice's one-access-per-cycle port.
	nextFree uint64
	channel  *dram.Channel
}

// memSystem owns the shared memory side of the simulated GPU.
type memSystem struct {
	xbar       *noc.Crossbar
	partitions []*partition
	lineBytes  uint64
	l2Latency  uint64
	l2MSHRs    int
	l2TagLat   uint64
}

// route hashes a line address to its home partition. Bits above the line
// offset interleave lines across partitions, as GPU address mappings do to
// spread BVH traversal traffic.
func (ms *memSystem) route(line uint64) (int, *partition) {
	idx := int((line / ms.lineBytes) % uint64(len(ms.partitions)))
	return idx, ms.partitions[idx]
}

// l2Load walks a load through the crossbar, the home L2 slice and — on a
// miss — the DRAM channel. It returns the cycle the data arrives back at
// SM sm. now is the cycle the request leaves the L1.
func (ms *memSystem) l2Load(sm int, line uint64, now uint64) uint64 {
	pidx, p := ms.route(line)
	arrive := ms.xbar.ToPartition(pidx, now)

	// Slice port serialization.
	svc := max(arrive, p.nextFree)
	p.nextFree = svc + 1

	// Lazy completion of an earlier fetch of the same line.
	if done, ok := p.l2Flight[line]; ok && done <= svc {
		delete(p.l2Flight, line)
	}
	hit := p.l2.Load(line)
	if done, ok := p.l2Flight[line]; ok {
		// Merged into an in-flight fetch (secondary miss).
		return ms.xbar.ToSM(sm, max(done, svc))
	}
	if hit {
		return ms.xbar.ToSM(sm, svc+ms.l2Latency)
	}

	// Primary miss: allocate the tag and fetch from DRAM. A full MSHR file
	// delays the fetch until the earliest outstanding fill completes.
	p.l2Out -= p.l2Done.drain(svc)
	start := svc + ms.l2TagLat
	if p.l2Out >= ms.l2MSHRs {
		m := p.l2Done.pop()
		p.l2Out--
		start = max(start, m)
	}
	done := p.channel.Read(line, int(ms.lineBytes), start)
	p.l2.Install(line)
	p.l2Flight[line] = done
	p.l2Done.push(done)
	p.l2Out++
	if len(p.l2Flight) > 8*ms.l2MSHRs {
		sweep(p.l2Flight, svc)
	}
	return ms.xbar.ToSM(sm, done)
}

// l2Store forwards a write-through store to its home slice. Stores are
// fire-and-forget: they consume crossbar and slice bandwidth but nothing
// waits on them, and the slice absorbs them (no DRAM write traffic).
func (ms *memSystem) l2Store(line uint64, now uint64) {
	pidx, p := ms.route(line)
	arrive := ms.xbar.ToPartition(pidx, now)
	svc := max(arrive, p.nextFree)
	p.nextFree = svc + 1
	p.l2.Store(line)
}

// sweep drops completed entries from an in-flight map. The maps are
// otherwise cleaned lazily on re-access, so lines fetched exactly once
// would accumulate forever without this.
func sweep(m map[uint64]uint64, now uint64) {
	for line, done := range m {
		if done <= now {
			delete(m, line)
		}
	}
}
