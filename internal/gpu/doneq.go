package gpu

// doneQ is a min-heap of completion cycles used to track MSHR occupancy
// without scanning the in-flight maps: the heap answers "when does the
// earliest outstanding fill complete" in O(log n).
type doneQ struct {
	items []uint64
}

func (q *doneQ) push(c uint64) {
	q.items = append(q.items, c)
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.items[p] <= q.items[i] {
			break
		}
		q.items[p], q.items[i] = q.items[i], q.items[p]
		i = p
	}
}

func (q *doneQ) pop() uint64 {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < last && q.items[l] < q.items[least] {
			least = l
		}
		if r < last && q.items[r] < q.items[least] {
			least = r
		}
		if least == i {
			break
		}
		q.items[i], q.items[least] = q.items[least], q.items[i]
		i = least
	}
	return top
}

func (q *doneQ) len() int    { return len(q.items) }
func (q *doneQ) min() uint64 { return q.items[0] }

// reset empties the queue, keeping its backing array for a pooled rerun.
func (q *doneQ) reset() { q.items = q.items[:0] }

// drain pops all completions at or before cycle now and returns how many
// were retired.
func (q *doneQ) drain(now uint64) int {
	n := 0
	for len(q.items) > 0 && q.items[0] <= now {
		q.pop()
		n++
	}
	return n
}

// fifo is a first-in-first-out queue of int32 ids that fronts its backing
// array with an index instead of re-slicing. Popping via items = items[1:]
// permanently discards the popped element's capacity, so a queue cycling
// millions of ids (the RT unit's ready list) re-grows its array for the
// whole run; the index front lets the array be recycled once drained.
type fifo struct {
	items []int32
	head  int
}

func (q *fifo) push(v int32) { q.items = append(q.items, v) }

func (q *fifo) pop() int32 {
	v := q.items[q.head]
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

func (q *fifo) len() int { return len(q.items) - q.head }

func (q *fifo) reset() {
	q.items = q.items[:0]
	q.head = 0
}
