package gpu

import (
	"testing"

	"zatel/internal/config"
)

// TestWarmRunAllocs pins the simulator-pooling contract: once a
// configuration's pool is warm, Run reuses the simulator arena and its
// steady-state allocation count stays bounded, instead of rebuilding
// caches, heaps and warp arrays per call. The budget deliberately has
// headroom: a GC between iterations may evict the pooled simulator and
// force one cold rebuild, which the average absorbs.
func TestWarmRunAllocs(t *testing.T) {
	traces := loadWorkload(t, "PARK", 32, 32, 1)
	cfg := config.MobileSoC()
	runJob(t, cfg, traces) // warm the pool for this config

	avg := testing.AllocsPerRun(5, func() {
		if _, err := Run(Job{Cfg: cfg, Traces: traces}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm gpu.Run: %.0f allocs/op (budget %d, enforced=%v)",
		avg, warmAllocsBudget, checkWarmAllocs)
	if checkWarmAllocs && avg > warmAllocsBudget {
		t.Errorf("warm pooled Run allocates %.0f objects/op, budget %d — state pooling regressed",
			avg, warmAllocsBudget)
	}
}
