//go:build race

package gpu

// The race detector instruments allocations heavily enough that a numeric
// budget would only pin the instrumentation; under -race the test still
// exercises the pooled path but skips the count assertion.
const (
	warmAllocsBudget = 0
	checkWarmAllocs  = false
)
