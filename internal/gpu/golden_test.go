package gpu

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"zatel/internal/config"
	"zatel/internal/metrics"
)

// goldenPath holds the frozen reference reports captured from the naive
// (pre-optimization) simulator. The cycle-exactness contract of the hot-path
// overhaul is that every scheduling, pooling and storage optimization keeps
// the metrics.Report byte-identical to these values; regenerate only when
// the timing MODEL intentionally changes, via
//
//	ZATEL_UPDATE_GOLDEN=1 go test ./internal/gpu -run TestCycleExactGolden
const goldenPath = "testdata/golden_reports.json"

// goldenCase is one (scene, config) cell of the exactness matrix.
type goldenCase struct {
	scene string
	cfg   config.Config
}

// goldenMatrix spans ≥3 scenes × ≥2 configs including full-size and
// downscaled GPUs, so active-set scheduling is exercised both when every SM
// has work (downscaled) and when most sit idle (full GPU, small frame).
func goldenMatrix(t testing.TB) []goldenCase {
	soc := config.MobileSoC()
	socDown, err := soc.Downscale(config.DownscaleFactor(soc))
	if err != nil {
		t.Fatal(err)
	}
	rtx := config.RTX2060()
	rtxDown, err := rtx.Downscale(config.DownscaleFactor(rtx))
	if err != nil {
		t.Fatal(err)
	}
	var cases []goldenCase
	for _, scene := range []string{"PARK", "BUNNY", "SPNZA"} {
		for _, cfg := range []config.Config{soc, socDown, rtx, rtxDown} {
			cases = append(cases, goldenCase{scene: scene, cfg: cfg})
		}
	}
	return cases
}

func goldenKey(c goldenCase) string { return c.scene + "/" + c.cfg.Name }

// TestCycleExactGolden runs the full golden matrix and asserts every report
// matches the frozen pre-optimization reference field for field. Each cell
// runs twice so the second run exercises the warm (pooled) simulator state —
// a reset that leaks any cache line, MSHR slot or counter fails here.
func TestCycleExactGolden(t *testing.T) {
	cases := goldenMatrix(t)

	got := make(map[string]metrics.Report, len(cases))
	for _, c := range cases {
		traces := loadWorkload(t, c.scene, 32, 32, 1)
		cold := runJob(t, c.cfg, traces)
		warm := runJob(t, c.cfg, traces)
		cold.WallTime, warm.WallTime = 0, 0
		if cold != warm {
			t.Errorf("%s: warm (pooled) run diverged from cold run:\ncold %+v\nwarm %+v",
				goldenKey(c), cold, warm)
		}
		got[goldenKey(c)] = cold
	}

	if os.Getenv("ZATEL_UPDATE_GOLDEN") != "" {
		writeGolden(t, got)
		t.Logf("regenerated %s with %d reports", goldenPath, len(got))
		return
	}

	want := readGolden(t)
	for _, c := range cases {
		key := goldenKey(c)
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: missing from %s (regenerate with ZATEL_UPDATE_GOLDEN=1)", key, goldenPath)
			continue
		}
		if g := got[key]; g != w {
			t.Errorf("%s: report diverged from frozen reference:\ngot  %+v\nwant %+v", key, g, w)
		}
	}
}

func writeGolden(t testing.TB, reports map[string]metrics.Report) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readGolden(t testing.TB) map[string]metrics.Report {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (generate with ZATEL_UPDATE_GOLDEN=1 go test ./internal/gpu -run TestCycleExactGolden)", err)
	}
	var want map[string]metrics.Report
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	return want
}
