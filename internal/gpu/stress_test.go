package gpu

import (
	"testing"

	"zatel/internal/rt"
)

// Stress tests for the structural-hazard paths: tiny MSHR files, divergent
// warps, store-heavy traffic. Each must complete (no deadlock) and shift
// timing in the physically expected direction.

func TestRTMSHRStallPathCompletes(t *testing.T) {
	traces := loadWorkload(t, "BUNNY", 32, 32, 1)
	roomy := testConfig()
	tight := testConfig()
	tight.RTMSHRSize = 2 // forces constant ray stalling
	repRoomy := runJob(t, roomy, traces)
	repTight := runJob(t, tight, traces)
	if repTight.Instructions != repRoomy.Instructions {
		t.Errorf("MSHR size changed instruction count: %d vs %d",
			repTight.Instructions, repRoomy.Instructions)
	}
	if repTight.Cycles <= repRoomy.Cycles {
		t.Errorf("2-entry RT MSHR (%d cycles) not slower than 64-entry (%d)",
			repTight.Cycles, repRoomy.Cycles)
	}
	if repTight.RTRaysTraced != repRoomy.RTRaysTraced {
		t.Errorf("rays lost under MSHR pressure: %d vs %d",
			repTight.RTRaysTraced, repRoomy.RTRaysTraced)
	}
}

func TestL1MSHRPressureCompletes(t *testing.T) {
	traces := loadWorkload(t, "CHSNT", 32, 32, 1)
	tight := testConfig()
	tight.L1DMSHRs = 2
	rep := runJob(t, tight, traces)
	if rep.Cycles == 0 || rep.RTRaysTraced == 0 {
		t.Fatalf("degenerate run under L1 MSHR pressure: %+v", rep)
	}
	roomy := runJob(t, testConfig(), traces)
	if rep.Cycles < roomy.Cycles {
		t.Errorf("2-entry L1 MSHR (%d cycles) faster than 64-entry (%d)",
			rep.Cycles, roomy.Cycles)
	}
}

func TestTinyRTWarpSlots(t *testing.T) {
	traces := loadWorkload(t, "SPNZA", 32, 32, 1)
	tight := testConfig()
	tight.RTMaxWarps = 1 // heavy rtQueue usage
	rep := runJob(t, tight, traces)
	roomy := runJob(t, testConfig(), traces)
	if rep.Instructions != roomy.Instructions {
		t.Errorf("RT warp slots changed instructions")
	}
	if rep.Cycles <= roomy.Cycles {
		t.Errorf("1 RT warp slot (%d cycles) not slower than 4 (%d)",
			rep.Cycles, roomy.Cycles)
	}
}

func TestDivergentWarpSerializes(t *testing.T) {
	// A warp whose lanes alternate between compute-only and load-only
	// streams must still execute every lane's instructions.
	traces := make([]rt.ThreadTrace, 32)
	for i := range traces {
		if i%2 == 0 {
			traces[i] = rt.ThreadTrace{Ops: []rt.Op{
				{Kind: rt.OpCompute, Arg: 10},
				{Kind: rt.OpCompute, Arg: 5}, // merged streams differ in shape
			}}
		} else {
			traces[i] = rt.ThreadTrace{Ops: []rt.Op{
				{Kind: rt.OpLoad, Arg: uint32(0x1000 + i*128)},
				{Kind: rt.OpCompute, Arg: 7},
			}}
		}
	}
	rep := runJob(t, testConfig(), traces)
	var want uint64
	for i := range traces {
		want += traces[i].Instructions()
	}
	if rep.Instructions != want {
		t.Errorf("divergent warp executed %d instructions, want %d", rep.Instructions, want)
	}
	// 16 distinct lines loaded.
	if rep.L1DAccesses != 16 {
		t.Errorf("L1 accesses = %d, want 16", rep.L1DAccesses)
	}
}

func TestStoreHeavyTraffic(t *testing.T) {
	// Stores are fire-and-forget: a store-only workload must finish almost
	// immediately and generate no DRAM reads.
	traces := make([]rt.ThreadTrace, 64)
	for i := range traces {
		ops := make([]rt.Op, 0, 20)
		for j := 0; j < 20; j++ {
			ops = append(ops, rt.Op{Kind: rt.OpStore, Arg: uint32(0x4000_0000 + (i*20+j)*16)})
		}
		traces[i] = rt.ThreadTrace{Ops: ops}
	}
	rep := runJob(t, testConfig(), traces)
	if rep.DRAMReads != 0 {
		t.Errorf("stores generated %d DRAM reads", rep.DRAMReads)
	}
	if rep.Instructions != 64*20 {
		t.Errorf("instructions = %d", rep.Instructions)
	}
	if rep.L1DAccesses != 0 {
		t.Errorf("stores counted as load accesses: %d", rep.L1DAccesses)
	}
}

func TestCoalescingReducesTraffic(t *testing.T) {
	// 32 lanes loading the same line must coalesce to one L1 access; 32
	// lanes loading distinct lines must not.
	same := make([]rt.ThreadTrace, 32)
	for i := range same {
		same[i] = rt.ThreadTrace{Ops: []rt.Op{{Kind: rt.OpLoad, Arg: 0x1000}}}
	}
	spread := make([]rt.ThreadTrace, 32)
	for i := range spread {
		spread[i] = rt.ThreadTrace{Ops: []rt.Op{{Kind: rt.OpLoad, Arg: uint32(0x1000 + i*128)}}}
	}
	repSame := runJob(t, testConfig(), same)
	repSpread := runJob(t, testConfig(), spread)
	if repSame.L1DAccesses != 1 {
		t.Errorf("coalesced warp made %d L1 accesses, want 1", repSame.L1DAccesses)
	}
	if repSpread.L1DAccesses != 32 {
		t.Errorf("spread warp made %d L1 accesses, want 32", repSpread.L1DAccesses)
	}
	if repSpread.Cycles <= repSame.Cycles {
		t.Errorf("uncoalesced warp (%d cycles) not slower than coalesced (%d)",
			repSpread.Cycles, repSame.Cycles)
	}
}

func TestGTOPrefersLastIssuedWarp(t *testing.T) {
	// Two warps of pure compute: under GTO the first warp should run to
	// completion with the second interleaved only at stalls. We assert the
	// scheduler-visible outcome: both policies finish, same instructions.
	traces := make([]rt.ThreadTrace, 64)
	for i := range traces {
		traces[i] = rt.ThreadTrace{Ops: []rt.Op{
			{Kind: rt.OpCompute, Arg: 3},
			{Kind: rt.OpCompute, Arg: 3},
		}}
	}
	cfg := testConfig()
	cfg.NumSMs = 1
	cfg.NumMemPartitions = 1
	rep := runJob(t, cfg, traces)
	if rep.Instructions != 64*6 {
		t.Errorf("instructions = %d", rep.Instructions)
	}
	if rep.Warps != 2 {
		t.Errorf("warps = %d", rep.Warps)
	}
}

func TestManyWavesPerSM(t *testing.T) {
	// More warps than slots: the pending queue must drain through slot
	// reuse. 1 SM × 32 slots with 100 warps of work.
	traces := make([]rt.ThreadTrace, 3200)
	for i := range traces {
		traces[i] = rt.ThreadTrace{Ops: []rt.Op{{Kind: rt.OpCompute, Arg: 5}}}
	}
	cfg := testConfig()
	cfg.NumSMs = 1
	cfg.NumMemPartitions = 1
	rep := runJob(t, cfg, traces)
	if rep.Warps != 100 {
		t.Errorf("warps = %d", rep.Warps)
	}
	if rep.Instructions != 3200*5 {
		t.Errorf("instructions = %d", rep.Instructions)
	}
}
