package gpu

import (
	"zatel/internal/cache"
	"zatel/internal/config"
	"zatel/internal/rt"
)

// warpPhase tracks where a resident warp is in its lifecycle.
type warpPhase uint8

const (
	wReady warpPhase = iota
	wBlocked
	wRTQueued // waiting for a free RT-unit warp slot
	wRTWait   // rays in flight inside the RT unit
	wDone
	wEmpty // slot unoccupied
)

// thread is one lane's replay cursor over its recorded trace.
type thread struct {
	tr *rt.ThreadTrace
	op int32
}

func (t *thread) finished() bool { return int(t.op) >= len(t.tr.Ops) }

// warp is a resident warp context: up to WarpSize threads replayed in
// SIMT lockstep with kind-grouped divergence serialization.
type warp struct {
	uid         int64 // generation tag, unique across the run
	age         int64 // launch order, GTO tie-break
	phase       warpPhase
	threads     []thread
	pendingRays int32 // outstanding RT-unit rays for the blocking trace op
	// rayRefs stages the rays of an issued trace op until the RT unit
	// admits the warp.
	rayRefs []*rt.RayTrace
}

// sm is one streaming multiprocessor: warp slots, a GTO/RR scheduler, an
// L1D cache with analytic MSHRs, and one RT accelerator unit.
type sm struct {
	id    int
	warps []warp // fixed-size slot array (MaxWarpsPerSM)

	// ready holds the slots of issuable warps ordered by age (oldest
	// first); lastIssued implements GTO's greedy preference.
	ready      *ageHeap
	lastIssued int32

	l1       *cache.Cache
	l1Flight map[uint64]uint64 // line -> data-arrival cycle
	l1MSHRs  int
	// l1Done/l1Out track MSHR occupancy: l1Out fills are outstanding and
	// l1Done holds their completion cycles.
	l1Done doneQ
	l1Out  int
	// lsuNextFree serializes L1 accesses (one line per cycle).
	lsuNextFree uint64

	rt rtUnit

	// instructions counts thread-level instructions issued by this SM.
	instructions uint64

	// Scratch buffers reused across issues to avoid allocation.
	scratchLanes []int32
	scratchLines []uint64
}

// ageHeap is a min-heap of warp slots keyed by warp age.
type ageHeap struct {
	slots []int32
	age   func(slot int32) int64
}

func (h *ageHeap) push(slot int32) {
	h.slots = append(h.slots, slot)
	i := len(h.slots) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.age(h.slots[p]) <= h.age(h.slots[i]) {
			break
		}
		h.slots[p], h.slots[i] = h.slots[i], h.slots[p]
		i = p
	}
}

func (h *ageHeap) pop() int32 {
	top := h.slots[0]
	last := len(h.slots) - 1
	h.slots[0] = h.slots[last]
	h.slots = h.slots[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < last && h.age(h.slots[l]) < h.age(h.slots[least]) {
			least = l
		}
		if r < last && h.age(h.slots[r]) < h.age(h.slots[least]) {
			least = r
		}
		if least == i {
			break
		}
		h.slots[i], h.slots[least] = h.slots[least], h.slots[i]
		i = least
	}
	return top
}

func (h *ageHeap) remove(slot int32) bool {
	for i, s := range h.slots {
		if s == slot {
			last := len(h.slots) - 1
			h.slots[i] = h.slots[last]
			h.slots = h.slots[:last]
			// Restore heap order by rebuilding the affected path; the
			// heap is small (≤ MaxWarpsPerSM), a full sift is cheap.
			h.heapify()
			return true
		}
	}
	return false
}

func (h *ageHeap) heapify() {
	for i := len(h.slots)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *ageHeap) siftDown(i int) {
	n := len(h.slots)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.age(h.slots[l]) < h.age(h.slots[least]) {
			least = l
		}
		if r < n && h.age(h.slots[r]) < h.age(h.slots[least]) {
			least = r
		}
		if least == i {
			return
		}
		h.slots[i], h.slots[least] = h.slots[least], h.slots[i]
		i = least
	}
}

func (h *ageHeap) len() int { return len(h.slots) }

// pickWarp selects the next warp to issue according to the scheduling
// policy. GTO prefers the last-issued warp when it is still ready and
// otherwise takes the oldest ready warp; RoundRobin rotates through slots
// starting after the last issued one. It returns -1 when nothing is ready.
func (s *sm) pickWarp(policy config.SchedulerKind) int32 {
	if s.ready.len() == 0 {
		return -1
	}
	switch policy {
	case config.RoundRobin:
		n := len(s.warps)
		for i := 1; i <= n; i++ {
			slot := int32((int(s.lastIssued) + i + n) % n)
			if s.warps[slot].phase == wReady && s.ready.remove(slot) {
				return slot
			}
		}
		return -1
	default: // GTO
		if s.lastIssued >= 0 && s.warps[s.lastIssued].phase == wReady {
			if s.ready.remove(s.lastIssued) {
				return s.lastIssued
			}
		}
		return s.ready.pop()
	}
}

// markReady transitions a warp slot into the ready set.
func (s *sm) markReady(slot int32) {
	s.warps[slot].phase = wReady
	s.ready.push(slot)
}
