package gpu

import (
	"zatel/internal/cache"
	"zatel/internal/config"
	"zatel/internal/flatmap"
	"zatel/internal/rt"
)

// warpPhase tracks where a resident warp is in its lifecycle.
type warpPhase uint8

const (
	wReady warpPhase = iota
	wBlocked
	wRTQueued // waiting for a free RT-unit warp slot
	wRTWait   // rays in flight inside the RT unit
	wDone
	wEmpty // slot unoccupied
)

// thread is one lane's replay cursor over its recorded trace.
type thread struct {
	tr *rt.ThreadTrace
	op int32
}

func (t *thread) finished() bool { return int(t.op) >= len(t.tr.Ops) }

// warp is a resident warp context: up to WarpSize threads replayed in
// SIMT lockstep with kind-grouped divergence serialization.
type warp struct {
	uid   int64 // generation tag, unique across the run
	age   int64 // launch order, GTO tie-break
	phase warpPhase
	// live counts threads that have not yet exhausted their trace. It is
	// maintained at every op-cursor advance so warp completion is an O(1)
	// check instead of a WarpSize-wide rescan on every wake and ray retire.
	live        int32
	threads     []thread
	pendingRays int32 // outstanding RT-unit rays for the blocking trace op
	// rayRefs stages the rays of an issued trace op until the RT unit
	// admits the warp.
	rayRefs []*rt.RayTrace
}

// sm is one streaming multiprocessor: warp slots, a GTO/RR scheduler, an
// L1D cache with analytic MSHRs, and one RT accelerator unit.
type sm struct {
	id    int
	warps []warp // fixed-size slot array (MaxWarpsPerSM)

	// active mirrors membership in Sim.activeSMs: the SM has at least one
	// issuable warp or a ready RT-unit ray this cycle.
	active bool

	// ready holds the slots of issuable warps ordered by age (oldest
	// first); lastIssued implements GTO's greedy preference.
	ready      ageHeap
	lastIssued int32

	l1       *cache.Cache
	l1Flight *flatmap.Map // line -> data-arrival cycle
	l1MSHRs  int
	// l1Done/l1Out track MSHR occupancy: l1Out fills are outstanding and
	// l1Done holds their completion cycles.
	l1Done doneQ
	l1Out  int
	// lsuNextFree serializes L1 accesses (one line per cycle).
	lsuNextFree uint64

	rt rtUnit

	// instructions counts thread-level instructions issued by this SM.
	instructions uint64

	// Scratch buffers reused across issues to avoid allocation.
	scratchLanes []int32
	scratchLines []uint64
	dedup        lineSet
}

// reset returns the SM to its just-constructed state while keeping every
// allocation (caches, heaps, flight map, warp slot array, scratch) for the
// next pooled run. Trace pointers held by warp slots are cleared by
// Sim.scrub, not here, so a pooled simulator never pins a retired workload.
func (s *sm) reset() {
	for i := range s.warps {
		w := &s.warps[i]
		w.phase = wEmpty
		w.live = 0
		w.pendingRays = 0
	}
	s.active = false
	s.ready.clear()
	s.lastIssued = -1
	s.l1.Reset()
	s.l1Flight.Clear()
	s.l1Done.reset()
	s.l1Out = 0
	s.lsuNextFree = 0
	s.rt.reset()
	s.instructions = 0
}

// ageHeap is a min-heap of warp slots keyed by warp age. Ages ride in a
// parallel slice instead of being read back through a closure: the heap is
// hot in pickWarp and the indirect call dominated its cost. Ages are unique
// across a run (launch order), so pop order is fully determined by the
// contents and the internal layout is free to differ from older versions.
type ageHeap struct {
	slots []int32
	ages  []int64
}

func (h *ageHeap) push(slot int32, age int64) {
	h.slots = append(h.slots, slot)
	h.ages = append(h.ages, age)
	i := len(h.slots) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.ages[p] <= h.ages[i] {
			break
		}
		h.swap(p, i)
		i = p
	}
}

func (h *ageHeap) swap(i, j int) {
	h.slots[i], h.slots[j] = h.slots[j], h.slots[i]
	h.ages[i], h.ages[j] = h.ages[j], h.ages[i]
}

func (h *ageHeap) pop() int32 {
	top := h.slots[0]
	last := len(h.slots) - 1
	h.swap(0, last)
	h.slots = h.slots[:last]
	h.ages = h.ages[:last]
	h.siftDown(0)
	return top
}

func (h *ageHeap) remove(slot int32) bool {
	for i, s := range h.slots {
		if s == slot {
			last := len(h.slots) - 1
			h.swap(i, last)
			h.slots = h.slots[:last]
			h.ages = h.ages[:last]
			h.heapify()
			return true
		}
	}
	return false
}

func (h *ageHeap) heapify() {
	for i := len(h.slots)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *ageHeap) siftDown(i int) {
	n := len(h.slots)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.ages[l] < h.ages[least] {
			least = l
		}
		if r < n && h.ages[r] < h.ages[least] {
			least = r
		}
		if least == i {
			return
		}
		h.swap(i, least)
		i = least
	}
}

func (h *ageHeap) len() int { return len(h.slots) }

func (h *ageHeap) clear() {
	h.slots = h.slots[:0]
	h.ages = h.ages[:0]
}

// pickWarp selects the next warp to issue according to the scheduling
// policy. GTO prefers the last-issued warp when it is still ready and
// otherwise takes the oldest ready warp; RoundRobin rotates through slots
// starting after the last issued one. It returns -1 when nothing is ready.
func (s *sm) pickWarp(policy config.SchedulerKind) int32 {
	if s.ready.len() == 0 {
		return -1
	}
	switch policy {
	case config.RoundRobin:
		n := len(s.warps)
		for i := 1; i <= n; i++ {
			slot := int32((int(s.lastIssued) + i + n) % n)
			if s.warps[slot].phase == wReady && s.ready.remove(slot) {
				return slot
			}
		}
		return -1
	default: // GTO
		if s.lastIssued >= 0 && s.warps[s.lastIssued].phase == wReady {
			if s.ready.remove(s.lastIssued) {
				return s.lastIssued
			}
		}
		return s.ready.pop()
	}
}

// markReady transitions a warp slot into the ready set. Callers outside the
// issue phase must also activate the SM (Sim.activate).
func (s *sm) markReady(slot int32) {
	s.warps[slot].phase = wReady
	s.ready.push(slot, s.warps[slot].age)
}

// lineSet deduplicates the cache lines touched by one warp-wide memory op.
// It replaces a linear scan of the lines-so-far slice (O(WarpSize²)
// comparisons per divergent access pattern) with a generation-stamped
// open-addressed probe. Stamping makes per-issue clearing free: begin()
// bumps the generation and every slot from earlier issues reads as empty.
type lineSet struct {
	keys []uint64
	gen  []uint32
	cur  uint32
	mask uint64
}

// init sizes the table for at most maxAdds insertions per generation; the
// 4× slack keeps the probe sequences short.
func (ls *lineSet) init(maxAdds int) {
	n := 4
	for n < 4*maxAdds {
		n *= 2
	}
	ls.keys = make([]uint64, n)
	ls.gen = make([]uint32, n)
	ls.cur = 0
	ls.mask = uint64(n - 1)
}

// begin starts a new deduplication scope.
func (ls *lineSet) begin() {
	ls.cur++
	if ls.cur == 0 { // generation counter wrapped: stamp everything stale
		clear(ls.gen)
		ls.cur = 1
	}
}

// add inserts line into the current scope, reporting whether it was absent.
func (ls *lineSet) add(line uint64) bool {
	i := (line * 0x9E3779B97F4A7C15) >> 32 & ls.mask
	for {
		if ls.gen[i] != ls.cur {
			ls.keys[i] = line
			ls.gen[i] = ls.cur
			return true
		}
		if ls.keys[i] == line {
			return false
		}
		i = (i + 1) & ls.mask
	}
}

// containsLine is the pre-lineSet linear dedup scan, kept for the
// before/after benchmark (BenchmarkLineDedup) and as executable
// documentation of the replaced behaviour.
func containsLine(lines []uint64, line uint64) bool {
	for _, l := range lines {
		if l == line {
			return true
		}
	}
	return false
}
