package gpu

import (
	"testing"

	"zatel/internal/config"
	"zatel/internal/metrics"
	"zatel/internal/rt"
)

func testConfig() config.Config {
	c := config.MobileSoC()
	c.Name = "test"
	c.NumSMs = 2
	c.NumMemPartitions = 2
	return c
}

func loadWorkload(t testing.TB, name string, w, h, spp int) []rt.ThreadTrace {
	t.Helper()
	wl, err := rt.CachedWorkload(name, w, h, spp)
	if err != nil {
		t.Fatal(err)
	}
	return wl.Traces
}

func runJob(t testing.TB, cfg config.Config, traces []rt.ThreadTrace) metrics.Report {
	t.Helper()
	rep, err := Run(Job{Cfg: cfg, Traces: traces})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunRejectsBadJobs(t *testing.T) {
	if _, err := Run(Job{Cfg: testConfig()}); err == nil {
		t.Error("empty trace list accepted")
	}
	bad := testConfig()
	bad.NumSMs = 0
	if _, err := Run(Job{Cfg: bad, Traces: make([]rt.ThreadTrace, 1)}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSyntheticComputeOnly(t *testing.T) {
	// 32 identical compute-only threads form one warp: cycles ≈ arg and
	// instructions = 32 × arg.
	traces := make([]rt.ThreadTrace, 32)
	for i := range traces {
		traces[i] = rt.ThreadTrace{Ops: []rt.Op{{Kind: rt.OpCompute, Arg: 100}}}
	}
	rep := runJob(t, testConfig(), traces)
	if rep.Instructions != 3200 {
		t.Errorf("instructions = %d, want 3200", rep.Instructions)
	}
	if rep.Cycles < 100 || rep.Cycles > 110 {
		t.Errorf("cycles = %d, want ~100", rep.Cycles)
	}
	if rep.Warps != 1 {
		t.Errorf("warps = %d", rep.Warps)
	}
}

func TestEmptyThreadsRetire(t *testing.T) {
	// Threads with no ops (and a partial final warp) must still retire.
	traces := make([]rt.ThreadTrace, 40)
	rep := runJob(t, testConfig(), traces)
	if rep.Warps != 2 {
		t.Errorf("warps = %d, want 2", rep.Warps)
	}
	if rep.Instructions != 0 {
		t.Errorf("instructions = %d", rep.Instructions)
	}
}

func TestFilteredTracesAreCheap(t *testing.T) {
	full := loadWorkload(t, "SPNZA", 32, 32, 1)
	filtered := make([]rt.ThreadTrace, len(full))
	for i := range filtered {
		filtered[i] = rt.FilteredTrace()
	}
	repFull := runJob(t, testConfig(), full)
	repFiltered := runJob(t, testConfig(), filtered)
	if repFiltered.Cycles*10 > repFull.Cycles {
		t.Errorf("filtered run %d cycles not ≪ full run %d", repFiltered.Cycles, repFull.Cycles)
	}
	if repFiltered.L1DAccesses != 0 {
		t.Errorf("filtered run touched memory %d times", repFiltered.L1DAccesses)
	}
}

func TestInstructionConservation(t *testing.T) {
	traces := loadWorkload(t, "SPRNG", 32, 32, 1)
	var want uint64
	for i := range traces {
		want += traces[i].Instructions()
	}
	rep := runJob(t, testConfig(), traces)
	if rep.Instructions != want {
		t.Errorf("instructions = %d, functional count = %d", rep.Instructions, want)
	}
	if rep.RTRaysTraced == 0 {
		t.Error("no rays traced")
	}
}

func TestDeterminism(t *testing.T) {
	traces := loadWorkload(t, "CHSNT", 24, 24, 1)
	a := runJob(t, testConfig(), traces)
	b := runJob(t, testConfig(), traces)
	a.WallTime, b.WallTime = 0, 0
	if a != b {
		t.Errorf("two runs differ:\n%+v\n%+v", a, b)
	}
}

func TestMetricsWithinBounds(t *testing.T) {
	traces := loadWorkload(t, "BUNNY", 32, 32, 1)
	rep := runJob(t, config.MobileSoC(), traces)
	vals := rep.Values()
	if v := vals[metrics.L1DMissRate]; v < 0 || v > 1 {
		t.Errorf("L1D miss rate %v", v)
	}
	if v := vals[metrics.L2MissRate]; v < 0 || v > 1 {
		t.Errorf("L2 miss rate %v", v)
	}
	if v := vals[metrics.RTAvgEfficiency]; v < 0 || v > 32 {
		t.Errorf("RT efficiency %v", v)
	}
	if v := vals[metrics.DRAMEfficiency]; v < 0 || v > 1.0001 {
		t.Errorf("DRAM efficiency %v", v)
	}
	if v := vals[metrics.BWUtilization]; v < 0 || v > vals[metrics.DRAMEfficiency]+1e-9 {
		t.Errorf("BW utilization %v > efficiency %v", v, vals[metrics.DRAMEfficiency])
	}
	if vals[metrics.IPC] <= 0 || vals[metrics.SimCycles] <= 0 {
		t.Errorf("IPC/cycles non-positive: %v / %v", vals[metrics.IPC], vals[metrics.SimCycles])
	}
}

func TestMoreSMsRunFaster(t *testing.T) {
	traces := loadWorkload(t, "SPNZA", 48, 48, 1)
	small := testConfig()
	small.NumSMs = 2
	small.NumMemPartitions = 2
	big := testConfig()
	big.NumSMs = 8
	big.NumMemPartitions = 4
	repSmall := runJob(t, small, traces)
	repBig := runJob(t, big, traces)
	if repBig.Cycles >= repSmall.Cycles {
		t.Errorf("8-SM GPU (%d cycles) not faster than 2-SM (%d cycles)",
			repBig.Cycles, repSmall.Cycles)
	}
}

func TestRTX2060BeatsMobileSoC(t *testing.T) {
	traces := loadWorkload(t, "BUNNY", 48, 48, 1)
	soc := runJob(t, config.MobileSoC(), traces)
	rtx := runJob(t, config.RTX2060(), traces)
	if rtx.Cycles >= soc.Cycles {
		t.Errorf("RTX 2060 (%d cycles) not faster than Mobile SoC (%d)", rtx.Cycles, soc.Cycles)
	}
	if rtx.Value(metrics.IPC) <= soc.Value(metrics.IPC) {
		t.Errorf("RTX 2060 IPC %v not above SoC %v",
			rtx.Value(metrics.IPC), soc.Value(metrics.IPC))
	}
}

func TestSchedulerAblation(t *testing.T) {
	traces := loadWorkload(t, "SPRNG", 32, 32, 1)
	gto := testConfig()
	rr := testConfig()
	rr.Scheduler = config.RoundRobin
	repGTO := runJob(t, gto, traces)
	repRR := runJob(t, rr, traces)
	// Both must complete all work identically in functional terms.
	if repGTO.Instructions != repRR.Instructions {
		t.Errorf("instruction counts differ across schedulers: %d vs %d",
			repGTO.Instructions, repRR.Instructions)
	}
	if repRR.Cycles == 0 || repGTO.Cycles == 0 {
		t.Error("zero cycles")
	}
}

func TestSmallerL1RaisesMissRate(t *testing.T) {
	traces := loadWorkload(t, "PARK", 32, 32, 1)
	big := testConfig()
	small := testConfig()
	small.L1DBytes = 4 << 10
	repBig := runJob(t, big, traces)
	repSmall := runJob(t, small, traces)
	if repSmall.Value(metrics.L1DMissRate) <= repBig.Value(metrics.L1DMissRate) {
		t.Errorf("4KB L1 miss rate %v not above 64KB %v",
			repSmall.Value(metrics.L1DMissRate), repBig.Value(metrics.L1DMissRate))
	}
}

func TestAgeHeapOrdering(t *testing.T) {
	ages := map[int32]int64{0: 5, 1: 3, 2: 8, 3: 1, 4: 9}
	var h ageHeap
	for s, a := range ages {
		h.push(s, a)
	}
	want := []int32{3, 1, 0, 2, 4}
	for i, w := range want {
		if got := h.pop(); got != w {
			t.Fatalf("pop %d = slot %d, want %d", i, got, w)
		}
	}
}

func TestAgeHeapRemove(t *testing.T) {
	var h ageHeap
	h.push(0, 5)
	h.push(1, 3)
	h.push(2, 8)
	if !h.remove(1) {
		t.Fatal("remove failed")
	}
	if h.remove(1) {
		t.Fatal("double remove succeeded")
	}
	if got := h.pop(); got != 0 {
		t.Errorf("pop after remove = %d, want 0", got)
	}
	h.clear()
	if h.len() != 0 {
		t.Errorf("len after clear = %d", h.len())
	}
}
