package gpu

import (
	"zatel/internal/bvh"
	"zatel/internal/rt"
)

// rayState is one ray resident in an RT unit, replaying its recorded
// traversal steps: fetch the node (and, at leaves, the triangle block),
// run the intersection pipeline, advance.
type rayState struct {
	warpSlot int32
	steps    []uint32
	idx      int32
}

// rtUnit is the per-SM ray tracing accelerator: a small number of resident
// warp slots (Table II: 4), an MSHR file bounding outstanding memory
// fetches (Table II: 64), and an intersection pipeline advancing a bounded
// number of rays per cycle.
type rtUnit struct {
	maxWarps     int
	mshrSize     int
	raysPerCycle int
	boxCycles    uint64
	triCycles    uint64

	residentWarps int
	activeRays    int
	outstanding   int // in-flight memory fetches

	rays     []rayState
	freeRays []int32
	ready    fifo // rays ready to issue their next step
	stalled  fifo // rays blocked on a full MSHR file
	queue    fifo // warp slots awaiting a resident-warp slot

	raysTraced uint64
}

// reset empties the unit for a pooled rerun, keeping slice capacity. The
// step slices still referenced by the rays array are cleared by Sim.scrub.
func (u *rtUnit) reset() {
	u.residentWarps = 0
	u.activeRays = 0
	u.outstanding = 0
	u.rays = u.rays[:0]
	u.freeRays = u.freeRays[:0]
	u.ready.reset()
	u.stalled.reset()
	u.queue.reset()
	u.raysTraced = 0
}

// allocRay takes a ray from the pool.
func (u *rtUnit) allocRay(warpSlot int32, steps []uint32) int32 {
	var rid int32
	if n := len(u.freeRays); n > 0 {
		rid = u.freeRays[n-1]
		u.freeRays = u.freeRays[:n-1]
		u.rays[rid] = rayState{warpSlot: warpSlot, steps: steps}
	} else {
		rid = int32(len(u.rays))
		u.rays = append(u.rays, rayState{warpSlot: warpSlot, steps: steps})
	}
	return rid
}

// tryAdmit gives warp slot a resident RT-unit slot if one is free,
// creating its rays; otherwise the warp queues. Returns true if admitted.
func (sim *Sim) tryAdmit(s *sm, slot int32, now uint64) bool {
	u := &s.rt
	w := &s.warps[slot]
	if u.residentWarps >= u.maxWarps {
		w.phase = wRTQueued
		u.queue.push(slot)
		return false
	}
	u.residentWarps++
	sim.residentWarpsTotal++
	w.phase = wRTWait
	created := int32(0)
	for _, ray := range w.rayRefs {
		if len(ray.Steps) == 0 {
			// Root-miss ray: the root AABB test rejects it immediately.
			continue
		}
		rid := u.allocRay(slot, ray.Steps)
		u.ready.push(rid)
		created++
	}
	w.rayRefs = w.rayRefs[:0]
	w.pendingRays = created
	u.activeRays += int(created)
	sim.activeRaysTotal += int(created)
	if created == 0 {
		// Every lane's ray missed the root: the warp resumes after one
		// box-test latency and the RT slot frees right away.
		sim.releaseRTSlot(s, now)
		w.phase = wBlocked
		sim.events.push(mkEvent(now+u.boxCycles, evWarpWake, s.id, slot, w.uid))
		return true
	}
	sim.activate(s)
	return true
}

// releaseRTSlot frees one resident-warp slot and admits the next queued
// warp, if any.
func (sim *Sim) releaseRTSlot(s *sm, now uint64) {
	u := &s.rt
	u.residentWarps--
	sim.residentWarpsTotal--
	if u.queue.len() > 0 {
		sim.tryAdmit(s, u.queue.pop(), now)
	}
}

// rtTick advances up to raysPerCycle ready rays by one traversal step.
func (sim *Sim) rtTick(s *sm, now uint64) {
	u := &s.rt
	budget := u.raysPerCycle
	for budget > 0 && u.ready.len() > 0 {
		rid := u.ready.pop()
		r := &u.rays[rid]

		node, triTests := rt.UnpackStep(r.steps[r.idx])
		fetches := 1
		if triTests > 0 {
			fetches = 2
		}
		if u.outstanding+fetches > u.mshrSize {
			u.stalled.push(rid)
			continue
		}

		done := sim.loadLine(s, bvh.NodeAddr(node), now)
		if triTests > 0 {
			if d := sim.loadLine(s, bvh.TriAddr(node), now); d > done {
				done = d
			}
		}
		u.outstanding += fetches
		for f := 0; f < fetches; f++ {
			sim.events.push(mkEvent(done, evFetchDone, s.id, 0, 0))
		}

		testLat := u.boxCycles
		if triTests > 0 {
			testLat = u.triCycles * uint64(triTests)
		}
		r.idx++
		sim.events.push(mkEvent(done+testLat, evRayWork, s.id, rid, 0))
		budget--
	}
}

// rayWork handles an evRayWork event: the ray's current step finished; it
// either becomes ready for its next step or retires.
func (sim *Sim) rayWork(s *sm, rid int32, now uint64) {
	u := &s.rt
	r := &u.rays[rid]
	if int(r.idx) < len(r.steps) {
		u.ready.push(rid)
		sim.activate(s)
		return
	}
	// Ray complete.
	u.raysTraced++
	u.activeRays--
	sim.activeRaysTotal--
	warpSlot := r.warpSlot
	u.freeRays = append(u.freeRays, rid)

	w := &s.warps[warpSlot]
	w.pendingRays--
	if w.pendingRays > 0 {
		return
	}
	// Last ray of the warp's trace call: free the slot and resume the warp.
	sim.releaseRTSlot(s, now)
	if w.live == 0 {
		sim.retireWarp(s, warpSlot, now)
	} else {
		s.markReady(warpSlot)
		sim.activate(s)
	}
}

// fetchDone handles an evFetchDone event: one MSHR slot freed; unstall the
// oldest stalled ray.
func (sim *Sim) fetchDone(s *sm) {
	u := &s.rt
	u.outstanding--
	if u.stalled.len() > 0 {
		u.ready.push(u.stalled.pop())
		sim.activate(s)
	}
}
