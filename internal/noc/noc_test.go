package noc

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 8); err == nil {
		t.Error("0 SMs accepted")
	}
	if _, err := New(4, 0, 8); err == nil {
		t.Error("0 partitions accepted")
	}
	if _, err := New(4, 4, -1); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestUncontendedLatency(t *testing.T) {
	x, err := New(2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.ToPartition(0, 100); got != 108 {
		t.Errorf("delivery = %d, want 108", got)
	}
	if got := x.ToSM(1, 200); got != 208 {
		t.Errorf("response delivery = %d, want 208", got)
	}
}

func TestPortSerialization(t *testing.T) {
	x, err := New(1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Three packets to the same partition in the same cycle serialize.
	d1 := x.ToPartition(0, 10)
	d2 := x.ToPartition(0, 10)
	d3 := x.ToPartition(0, 10)
	if d1 != 18 || d2 != 19 || d3 != 20 {
		t.Errorf("deliveries = %d,%d,%d, want 18,19,20", d1, d2, d3)
	}
	// A different partition's port is independent.
	if got := x.ToPartition(1, 10); got != 18 {
		t.Errorf("other port delivery = %d, want 18", got)
	}
}

func TestRequestResponsePortsIndependent(t *testing.T) {
	x, err := New(1, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	x.ToPartition(0, 0)
	if got := x.ToSM(0, 0); got != 4 {
		t.Errorf("response port shared with request port: %d", got)
	}
}

func TestStatsCountQueueing(t *testing.T) {
	x, err := New(1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	x.ToPartition(0, 5)
	x.ToPartition(0, 5) // queued 1 cycle
	x.ToPartition(0, 5) // queued 2 cycles
	st := x.Stats()
	if st.Packets != 3 {
		t.Errorf("packets = %d", st.Packets)
	}
	if st.QueuedCycles != 3 {
		t.Errorf("queued cycles = %d, want 3", st.QueuedCycles)
	}
}

func TestMonotonicWithAdvancingClock(t *testing.T) {
	x, err := New(1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	prev := uint64(0)
	for now := uint64(0); now < 100; now += 2 {
		d := x.ToPartition(0, now)
		if d < prev {
			t.Fatalf("delivery went backwards")
		}
		prev = d
	}
}
