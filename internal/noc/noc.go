// Package noc models the SM↔memory-partition interconnect as a crossbar
// with per-port serialization: each partition's request port and each SM's
// response port accepts one packet per cycle, plus a fixed traversal
// latency. Like the DRAM model it is analytic — Deliver returns the arrival
// cycle — so the simulator never ticks the network.
package noc

import "fmt"

// Crossbar connects numSMs cores to numPartitions memory partitions. The
// topology adapts automatically to component counts (Section III-C: "the
// mesh topology of the interconnect changes automatically"), so downscaled
// configurations need no explicit NoC changes.
type Crossbar struct {
	latency      uint64
	toPartition  []uint64 // last service cycle of each partition port
	toSM         []uint64 // last service cycle of each SM port
	packets      uint64
	queuedCycles uint64
}

// New returns a crossbar with the given one-way traversal latency in cycles.
func New(numSMs, numPartitions, latency int) (*Crossbar, error) {
	if numSMs <= 0 || numPartitions <= 0 {
		return nil, fmt.Errorf("noc: need positive port counts, got %d SMs / %d partitions", numSMs, numPartitions)
	}
	if latency < 0 {
		return nil, fmt.Errorf("noc: negative latency %d", latency)
	}
	return &Crossbar{
		latency:     uint64(latency),
		toPartition: make([]uint64, numPartitions),
		toSM:        make([]uint64, numSMs),
	}, nil
}

// ToPartition routes a request packet to partition p at cycle now and
// returns its arrival cycle. Per-partition serialization (one packet per
// cycle) models the crossbar output-port bottleneck.
func (x *Crossbar) ToPartition(p int, now uint64) uint64 {
	return x.deliver(x.toPartition, p, now)
}

// ToSM routes a response packet back to SM sm at cycle now and returns its
// arrival cycle.
func (x *Crossbar) ToSM(sm int, now uint64) uint64 {
	return x.deliver(x.toSM, sm, now)
}

func (x *Crossbar) deliver(ports []uint64, i int, now uint64) uint64 {
	// ports[i] holds the port's next free cycle.
	start := max(now, ports[i])
	ports[i] = start + 1
	x.packets++
	x.queuedCycles += start - now
	return start + x.latency
}

// Reset restores the crossbar to its idle post-New state. The simulator
// pool reuses crossbars across runs.
func (x *Crossbar) Reset() {
	clear(x.toPartition)
	clear(x.toSM)
	x.packets, x.queuedCycles = 0, 0
}

// Stats reports aggregate crossbar activity.
type Stats struct {
	Packets uint64
	// QueuedCycles is the total serialization delay experienced by all
	// packets (0 when the network is uncontended).
	QueuedCycles uint64
}

// Stats returns the accumulated counters.
func (x *Crossbar) Stats() Stats {
	return Stats{Packets: x.packets, QueuedCycles: x.queuedCycles}
}
