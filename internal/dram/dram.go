// Package dram models one GDDR channel per memory partition as an analytic
// FIFO server: each read request is assigned a completion cycle from the
// channel's row-buffer state, transfer bandwidth and queue occupancy. The
// model produces the two Table I DRAM metrics — efficiency (utilization
// while requests are pending) and raw bandwidth utilization — without
// per-cycle ticking, which keeps the simulator fast.
package dram

import (
	"fmt"
)

// Config sizes a channel.
type Config struct {
	// BytesPerCycle is the peak transfer bandwidth in bytes per core
	// clock cycle.
	BytesPerCycle float64
	// RowBytes is the row-buffer size; consecutive reads within a row
	// avoid the activation penalty.
	RowBytes int
	// RowMissCycles is the precharge+activate penalty on a row switch.
	RowMissCycles int
	// BaseLatency is the pipeline latency added to every response (CAS
	// plus controller overhead); it does not occupy the channel.
	BaseLatency int
	// QueueDepth bounds in-flight requests; a full queue delays the next
	// request's service start (backpressure).
	QueueDepth int
}

// Channel is one DRAM channel. Not safe for concurrent use; the simulator
// owns one per memory partition.
type Channel struct {
	cfg Config

	lastFree     uint64 // cycle the server becomes free
	openRow      uint64
	rowValid     bool
	coveredUntil uint64 // high edge of the union of pending intervals

	inflight doneHeap

	// Counters.
	reads         uint64
	bytesRead     uint64
	busyCycles    uint64 // cycles the channel spent transferring/activating
	pendingCycles uint64 // cycles with at least one request outstanding
	rowHits       uint64
	rowMisses     uint64
}

// NewChannel validates cfg and returns an idle channel.
func NewChannel(cfg Config) (*Channel, error) {
	if cfg.BytesPerCycle <= 0 {
		return nil, fmt.Errorf("dram: BytesPerCycle %v must be positive", cfg.BytesPerCycle)
	}
	if cfg.RowBytes <= 0 {
		return nil, fmt.Errorf("dram: RowBytes %d must be positive", cfg.RowBytes)
	}
	if cfg.RowMissCycles < 0 || cfg.BaseLatency < 0 {
		return nil, fmt.Errorf("dram: negative latency")
	}
	if cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("dram: QueueDepth %d must be positive", cfg.QueueDepth)
	}
	return &Channel{cfg: cfg}, nil
}

// Read enqueues a read of size bytes at addr arriving at cycle now and
// returns the cycle its data is available. now must not decrease across
// calls (the simulator issues requests in cycle order).
func (ch *Channel) Read(addr uint64, bytes int, now uint64) uint64 {
	// Retire completed requests from the occupancy window.
	for ch.inflight.len() > 0 && ch.inflight.min() <= now {
		ch.inflight.pop()
	}

	start := max(now, ch.lastFree)
	if ch.inflight.len() >= ch.cfg.QueueDepth {
		// Queue full: the request cannot even enter until one retires.
		start = max(start, ch.inflight.min())
	}

	row := addr / uint64(ch.cfg.RowBytes)
	service := uint64(0)
	if !ch.rowValid || row != ch.openRow {
		service += uint64(ch.cfg.RowMissCycles)
		ch.rowMisses++
		ch.openRow = row
		ch.rowValid = true
	} else {
		ch.rowHits++
	}
	transfer := uint64(float64(bytes)/ch.cfg.BytesPerCycle + 0.999999)
	if transfer == 0 {
		transfer = 1
	}
	service += transfer

	busyEnd := start + service
	done := busyEnd + uint64(ch.cfg.BaseLatency)
	ch.lastFree = busyEnd

	// Accounting.
	ch.reads++
	ch.bytesRead += uint64(bytes)
	ch.busyCycles += service
	// Extend the union of [arrival, done] intervals.
	lo := max(now, ch.coveredUntil)
	if done > lo {
		ch.pendingCycles += done - lo
		ch.coveredUntil = done
	}

	ch.inflight.push(done)
	return done
}

// Reset restores the channel to its idle post-NewChannel state, keeping the
// in-flight heap's allocation. The simulator pool reuses channels across
// runs.
func (ch *Channel) Reset() {
	ch.lastFree, ch.openRow, ch.coveredUntil = 0, 0, 0
	ch.rowValid = false
	ch.inflight = ch.inflight[:0]
	ch.reads, ch.bytesRead = 0, 0
	ch.busyCycles, ch.pendingCycles = 0, 0
	ch.rowHits, ch.rowMisses = 0, 0
}

// Stats summarises channel activity over a run of totalCycles core cycles.
type Stats struct {
	Reads      uint64
	BytesRead  uint64
	BusyCycles uint64
	// PendingCycles is the number of cycles with ≥1 outstanding request.
	PendingCycles uint64
	RowHits       uint64
	RowMisses     uint64
	// Efficiency is achieved bandwidth while requests were pending,
	// relative to peak (Table I "DRAM Efficiency").
	Efficiency float64
	// Utilization is achieved bandwidth over the whole run, relative to
	// peak (Table I "Bandwidth Utilization").
	Utilization float64
}

// Stats computes the channel's summary for a run lasting totalCycles.
func (ch *Channel) Stats(totalCycles uint64) Stats {
	s := Stats{
		Reads:         ch.reads,
		BytesRead:     ch.bytesRead,
		BusyCycles:    ch.busyCycles,
		PendingCycles: ch.pendingCycles,
		RowHits:       ch.rowHits,
		RowMisses:     ch.rowMisses,
	}
	peak := ch.cfg.BytesPerCycle
	if ch.pendingCycles > 0 {
		s.Efficiency = float64(ch.bytesRead) / (float64(ch.pendingCycles) * peak)
	}
	if totalCycles > 0 {
		s.Utilization = float64(ch.bytesRead) / (float64(totalCycles) * peak)
	}
	return s
}

// doneHeap is a hand-rolled min-heap of completion cycles. The previous
// container/heap version boxed every uint64 through interface{} on both
// push and pop — one allocation per DRAM read in the simulator's hottest
// memory path. Only the multiset of values matters to the model, so the
// heap layout is free to differ.
type doneHeap []uint64

func (h doneHeap) len() int    { return len(h) }
func (h doneHeap) min() uint64 { return h[0] }

func (h *doneHeap) push(c uint64) {
	q := append(*h, c)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p] <= q[i] {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	*h = q
}

func (h *doneHeap) pop() uint64 {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < last && q[l] < q[least] {
			least = l
		}
		if r < last && q[r] < q[least] {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	*h = q
	return top
}
