// Package dram models one GDDR channel per memory partition as an analytic
// FIFO server: each read request is assigned a completion cycle from the
// channel's row-buffer state, transfer bandwidth and queue occupancy. The
// model produces the two Table I DRAM metrics — efficiency (utilization
// while requests are pending) and raw bandwidth utilization — without
// per-cycle ticking, which keeps the simulator fast.
package dram

import (
	"container/heap"
	"fmt"
)

// Config sizes a channel.
type Config struct {
	// BytesPerCycle is the peak transfer bandwidth in bytes per core
	// clock cycle.
	BytesPerCycle float64
	// RowBytes is the row-buffer size; consecutive reads within a row
	// avoid the activation penalty.
	RowBytes int
	// RowMissCycles is the precharge+activate penalty on a row switch.
	RowMissCycles int
	// BaseLatency is the pipeline latency added to every response (CAS
	// plus controller overhead); it does not occupy the channel.
	BaseLatency int
	// QueueDepth bounds in-flight requests; a full queue delays the next
	// request's service start (backpressure).
	QueueDepth int
}

// Channel is one DRAM channel. Not safe for concurrent use; the simulator
// owns one per memory partition.
type Channel struct {
	cfg Config

	lastFree     uint64 // cycle the server becomes free
	openRow      uint64
	rowValid     bool
	coveredUntil uint64 // high edge of the union of pending intervals

	inflight doneHeap

	// Counters.
	reads         uint64
	bytesRead     uint64
	busyCycles    uint64 // cycles the channel spent transferring/activating
	pendingCycles uint64 // cycles with at least one request outstanding
	rowHits       uint64
	rowMisses     uint64
}

// NewChannel validates cfg and returns an idle channel.
func NewChannel(cfg Config) (*Channel, error) {
	if cfg.BytesPerCycle <= 0 {
		return nil, fmt.Errorf("dram: BytesPerCycle %v must be positive", cfg.BytesPerCycle)
	}
	if cfg.RowBytes <= 0 {
		return nil, fmt.Errorf("dram: RowBytes %d must be positive", cfg.RowBytes)
	}
	if cfg.RowMissCycles < 0 || cfg.BaseLatency < 0 {
		return nil, fmt.Errorf("dram: negative latency")
	}
	if cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("dram: QueueDepth %d must be positive", cfg.QueueDepth)
	}
	return &Channel{cfg: cfg}, nil
}

// Read enqueues a read of size bytes at addr arriving at cycle now and
// returns the cycle its data is available. now must not decrease across
// calls (the simulator issues requests in cycle order).
func (ch *Channel) Read(addr uint64, bytes int, now uint64) uint64 {
	// Retire completed requests from the occupancy window.
	for ch.inflight.Len() > 0 && ch.inflight.min() <= now {
		heap.Pop(&ch.inflight)
	}

	start := max(now, ch.lastFree)
	if ch.inflight.Len() >= ch.cfg.QueueDepth {
		// Queue full: the request cannot even enter until one retires.
		start = max(start, ch.inflight.min())
	}

	row := addr / uint64(ch.cfg.RowBytes)
	service := uint64(0)
	if !ch.rowValid || row != ch.openRow {
		service += uint64(ch.cfg.RowMissCycles)
		ch.rowMisses++
		ch.openRow = row
		ch.rowValid = true
	} else {
		ch.rowHits++
	}
	transfer := uint64(float64(bytes)/ch.cfg.BytesPerCycle + 0.999999)
	if transfer == 0 {
		transfer = 1
	}
	service += transfer

	busyEnd := start + service
	done := busyEnd + uint64(ch.cfg.BaseLatency)
	ch.lastFree = busyEnd

	// Accounting.
	ch.reads++
	ch.bytesRead += uint64(bytes)
	ch.busyCycles += service
	// Extend the union of [arrival, done] intervals.
	lo := max(now, ch.coveredUntil)
	if done > lo {
		ch.pendingCycles += done - lo
		ch.coveredUntil = done
	}

	heap.Push(&ch.inflight, done)
	return done
}

// Stats summarises channel activity over a run of totalCycles core cycles.
type Stats struct {
	Reads      uint64
	BytesRead  uint64
	BusyCycles uint64
	// PendingCycles is the number of cycles with ≥1 outstanding request.
	PendingCycles uint64
	RowHits       uint64
	RowMisses     uint64
	// Efficiency is achieved bandwidth while requests were pending,
	// relative to peak (Table I "DRAM Efficiency").
	Efficiency float64
	// Utilization is achieved bandwidth over the whole run, relative to
	// peak (Table I "Bandwidth Utilization").
	Utilization float64
}

// Stats computes the channel's summary for a run lasting totalCycles.
func (ch *Channel) Stats(totalCycles uint64) Stats {
	s := Stats{
		Reads:         ch.reads,
		BytesRead:     ch.bytesRead,
		BusyCycles:    ch.busyCycles,
		PendingCycles: ch.pendingCycles,
		RowHits:       ch.rowHits,
		RowMisses:     ch.rowMisses,
	}
	peak := ch.cfg.BytesPerCycle
	if ch.pendingCycles > 0 {
		s.Efficiency = float64(ch.bytesRead) / (float64(ch.pendingCycles) * peak)
	}
	if totalCycles > 0 {
		s.Utilization = float64(ch.bytesRead) / (float64(totalCycles) * peak)
	}
	return s
}

// doneHeap is a min-heap of completion cycles.
type doneHeap []uint64

func (h doneHeap) Len() int            { return len(h) }
func (h doneHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h doneHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *doneHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *doneHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
func (h doneHeap) min() uint64 { return h[0] }
