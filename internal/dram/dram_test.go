package dram

import "testing"

func chanCfg() Config {
	return Config{
		BytesPerCycle: 16,
		RowBytes:      2048,
		RowMissCycles: 20,
		BaseLatency:   30,
		QueueDepth:    8,
	}
}

func mustChannel(t *testing.T, cfg Config) *Channel {
	t.Helper()
	ch, err := NewChannel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewChannelValidation(t *testing.T) {
	bad := []Config{
		{BytesPerCycle: 0, RowBytes: 2048, QueueDepth: 8},
		{BytesPerCycle: 16, RowBytes: 0, QueueDepth: 8},
		{BytesPerCycle: 16, RowBytes: 2048, QueueDepth: 0},
		{BytesPerCycle: 16, RowBytes: 2048, QueueDepth: 8, RowMissCycles: -1},
	}
	for i, cfg := range bad {
		if _, err := NewChannel(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestFirstReadTiming(t *testing.T) {
	ch := mustChannel(t, chanCfg())
	// Cold read: row miss (20) + transfer 128/16=8 cycles busy, +30 base.
	done := ch.Read(0x1000, 128, 100)
	if done != 100+20+8+30 {
		t.Errorf("done = %d, want %d", done, 100+20+8+30)
	}
	st := ch.Stats(1000)
	if st.Reads != 1 || st.BytesRead != 128 || st.RowMisses != 1 || st.RowHits != 0 {
		t.Errorf("stats %+v", st)
	}
	if st.BusyCycles != 28 {
		t.Errorf("busy = %d", st.BusyCycles)
	}
}

func TestRowHitAvoidsPenalty(t *testing.T) {
	ch := mustChannel(t, chanCfg())
	ch.Read(0x1000, 128, 0)
	before := ch.Stats(1).BusyCycles
	// Same 2KB row.
	ch.Read(0x1080, 128, 1000)
	st := ch.Stats(2000)
	if st.RowHits != 1 {
		t.Errorf("row hits = %d", st.RowHits)
	}
	if st.BusyCycles-before != 8 {
		t.Errorf("row-hit service = %d cycles, want 8", st.BusyCycles-before)
	}
}

func TestBackToBackQueueing(t *testing.T) {
	ch := mustChannel(t, chanCfg())
	d1 := ch.Read(0x0000, 128, 0)
	d2 := ch.Read(0x0080, 128, 0) // same row, arrives same cycle
	if d2 <= d1 {
		t.Errorf("second request finished first: %d <= %d", d2, d1)
	}
	// The second waits for the first's service then transfers 8 cycles.
	if d2 != d1+8 {
		t.Errorf("d2 = %d, want d1+8 = %d", d2, d1+8)
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	cfg := chanCfg()
	cfg.QueueDepth = 2
	ch := mustChannel(t, cfg)
	d1 := ch.Read(0x0000, 128, 0)
	ch.Read(0x10000, 128, 0)
	// Queue is now full (both outstanding); the third cannot start before
	// the first completes.
	d3 := ch.Read(0x20000, 128, 0)
	if d3 < d1 {
		t.Errorf("third request done %d before first %d despite full queue", d3, d1)
	}
}

func TestMonotonicCompletion(t *testing.T) {
	ch := mustChannel(t, chanCfg())
	prev := uint64(0)
	addr := uint64(0)
	for now := uint64(0); now < 500; now += 3 {
		done := ch.Read(addr, 128, now)
		if done < prev {
			t.Fatalf("completion went backwards: %d after %d", done, prev)
		}
		prev = done
		addr += 4096 // force row misses
	}
}

func TestPendingCoversServiceTime(t *testing.T) {
	ch := mustChannel(t, chanCfg())
	for i := 0; i < 10; i++ {
		ch.Read(uint64(i)*4096, 128, uint64(i))
	}
	st := ch.Stats(10000)
	if st.PendingCycles < st.BusyCycles {
		t.Errorf("pending %d < busy %d", st.PendingCycles, st.BusyCycles)
	}
	if st.Efficiency <= 0 || st.Efficiency > 1 {
		t.Errorf("efficiency %v out of (0,1]", st.Efficiency)
	}
	if st.Utilization <= 0 || st.Utilization > st.Efficiency+1e-12 {
		t.Errorf("utilization %v vs efficiency %v", st.Utilization, st.Efficiency)
	}
}

func TestIdleChannelStats(t *testing.T) {
	ch := mustChannel(t, chanCfg())
	st := ch.Stats(1000)
	if st.Efficiency != 0 || st.Utilization != 0 || st.Reads != 0 {
		t.Errorf("idle stats %+v", st)
	}
}

func TestEfficiencyExceedsUtilizationWhenBursty(t *testing.T) {
	// A short burst in a long run: efficiency (active-window utilization)
	// must be far higher than whole-run utilization.
	ch := mustChannel(t, chanCfg())
	for i := 0; i < 20; i++ {
		ch.Read(uint64(i)*128, 128, 0)
	}
	st := ch.Stats(1_000_000)
	if st.Efficiency < 10*st.Utilization {
		t.Errorf("burst: efficiency %v should dwarf utilization %v", st.Efficiency, st.Utilization)
	}
}
