package analytic

import (
	"math"
	"testing"

	"zatel/internal/config"
	"zatel/internal/rt"
)

func synthetic(n int, computePerThread uint32) []rt.ThreadTrace {
	traces := make([]rt.ThreadTrace, n)
	for i := range traces {
		traces[i] = rt.ThreadTrace{Ops: []rt.Op{
			{Kind: rt.OpCompute, Arg: computePerThread},
			{Kind: rt.OpLoad, Arg: 0x1000},
			{Kind: rt.OpStore, Arg: 0x2000},
		}}
	}
	return traces
}

func TestPredictValidation(t *testing.T) {
	if _, err := Predict(config.MobileSoC(), nil); err == nil {
		t.Error("empty traces accepted")
	}
	bad := config.MobileSoC()
	bad.NumSMs = 0
	if _, err := Predict(bad, synthetic(32, 10)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPredictBasicShape(t *testing.T) {
	p, err := Predict(config.MobileSoC(), synthetic(4096, 50))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cycles <= 0 || math.IsNaN(p.Cycles) {
		t.Errorf("cycles %v", p.Cycles)
	}
	if p.IPC <= 0 {
		t.Errorf("IPC %v", p.IPC)
	}
	if p.Instructions != 4096*52 {
		t.Errorf("instructions %d", p.Instructions)
	}
	if p.CPIBase <= 0 || p.CPIMem <= 0 {
		t.Errorf("CPI stack %v/%v/%v", p.CPIBase, p.CPIMem, p.CPIRT)
	}
	if p.CPIRT != 0 {
		t.Errorf("RT component %v for a workload without rays", p.CPIRT)
	}
}

func TestMoreWorkMoreCycles(t *testing.T) {
	small, err := Predict(config.MobileSoC(), synthetic(4096, 10))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Predict(config.MobileSoC(), synthetic(4096, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if big.Cycles <= small.Cycles {
		t.Errorf("100x compute did not increase cycles: %v vs %v", big.Cycles, small.Cycles)
	}
}

func TestBiggerGPUFewerCycles(t *testing.T) {
	traces := synthetic(64*1024, 50)
	soc, err := Predict(config.MobileSoC(), traces)
	if err != nil {
		t.Fatal(err)
	}
	rtx, err := Predict(config.RTX2060(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if rtx.Cycles >= soc.Cycles {
		t.Errorf("RTX 2060 (%v cycles) not faster than SoC (%v)", rtx.Cycles, soc.Cycles)
	}
}

func TestRTWorkCharged(t *testing.T) {
	traces := make([]rt.ThreadTrace, 64)
	for i := range traces {
		traces[i] = rt.ThreadTrace{
			Ops:  []rt.Op{{Kind: rt.OpTrace, Arg: 0}},
			Rays: []rt.RayTrace{{Steps: []uint32{rt.PackStep(1, 0), rt.PackStep(2, 4)}}},
		}
	}
	p, err := Predict(config.MobileSoC(), traces)
	if err != nil {
		t.Fatal(err)
	}
	if p.CPIRT <= 0 {
		t.Errorf("traversal workload charged no RT time")
	}
}

func TestAnalyticOnRealWorkload(t *testing.T) {
	// The model must produce finite, positive predictions on a real
	// traced scene; accuracy against the cycle-level simulator is
	// evaluated in the baseline benchmark, where high error is the
	// expected (and paper-matching) outcome.
	wl, err := rt.CachedWorkload("SPRNG", 48, 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Predict(config.MobileSoC(), wl.Traces)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cycles <= 0 || math.IsInf(p.IPC, 0) || p.CPIRT <= 0 {
		t.Errorf("degenerate prediction %+v", p)
	}
}
