// Package analytic implements an interval-analysis performance model in
// the style of GPUMech/GCoM — the class of analytical GPU models the paper
// compares Zatel against (Section IV-B; LumiBench showed they "cannot
// capture the complexity of ray tracing workloads"). It predicts cycles
// and IPC from aggregate trace statistics and steady-state hardware
// equations, with no cycle-level simulation.
//
// The model exists as the comparison baseline: its errors on the ray
// tracing suite demonstrate why Zatel keeps a cycle-level simulator in the
// loop. Like GCoM, it only produces a CPI-style decomposition — the cache,
// RT-unit and DRAM metrics of Table I are out of its reach, which is the
// paper's other argument against analytical models.
package analytic

import (
	"fmt"

	"zatel/internal/config"
	"zatel/internal/rt"
)

// Prediction is the analytical model's output: total cycles, IPC and the
// CPI stack it derives them from.
type Prediction struct {
	Cycles       float64
	IPC          float64
	Instructions uint64
	// CPI stack components: cycles attributed per representative warp to
	// issue/ALU work, exposed memory latency and exposed RT-unit latency.
	CPIBase float64
	CPIMem  float64
	CPIRT   float64
}

// missRatio is the model's flat L1 miss estimate. Interval models derive
// this from reuse-distance profiles of the sampled trace; a fixed
// ray-tracing-typical value stands in (and is one of the reasons such
// models struggle on divergent traversal workloads).
const missRatio = 0.15

// Predict runs interval analysis over the workload's traces for the given
// configuration.
//
// It follows the usual three steps: (1) collect the aggregate profile
// (instruction mix, memory operations, traversal work), (2) compute a
// representative warp's interval time from hardware latencies with an
// occupancy-derived latency-hiding factor, (3) scale by the number of
// warp waves across the SMs.
func Predict(cfg config.Config, traces []rt.ThreadTrace) (Prediction, error) {
	if err := cfg.Validate(); err != nil {
		return Prediction{}, err
	}
	if len(traces) == 0 {
		return Prediction{}, fmt.Errorf("analytic: no threads")
	}

	// Step 1: aggregate profile.
	var instr, computeOps, loads, stores, nodes, triTests uint64
	for i := range traces {
		t := &traces[i]
		instr += t.Instructions()
		for _, op := range t.Ops {
			switch op.Kind {
			case rt.OpCompute:
				computeOps += uint64(op.Arg)
			case rt.OpLoad:
				loads++
			case rt.OpStore:
				stores++
			}
		}
		n, tt := t.TraversalWork()
		nodes += n
		triTests += tt
	}

	warps := (len(traces) + cfg.WarpSize - 1) / cfg.WarpSize
	perWarp := func(x uint64) float64 { return float64(x) / float64(warps) }

	// Step 2: representative-warp interval time.
	//
	// Issue/ALU: SIMT lanes run compute in lockstep (divide by the warp
	// width); each memory instruction issues once per warp.
	base := perWarp(computeOps)/float64(cfg.WarpSize) + perWarp(loads+stores)

	// Memory: each load is charged the average hierarchy latency.
	memLat := float64(cfg.L1DLatency) +
		missRatio*float64(cfg.L2Latency+2*cfg.NoCLatency) +
		missRatio*missRatio*200 // DRAM tail
	mem := perWarp(loads) * memLat

	// RT unit: each traversal step fetches a node and runs the box or
	// triangle pipeline, processed RTRaysPerCycle rays at a time.
	rtTime := (perWarp(nodes)*(memLat/4+float64(cfg.RTBoxCycles)) +
		perWarp(triTests)*float64(cfg.RTTriCycles)) / float64(cfg.RTRaysPerCycle)

	// Latency hiding: with R resident warps per SM, a stalled warp's
	// latency is overlapped by the other R−1.
	resident := float64(cfg.MaxWarpsPerSM)
	if w := float64(warps) / float64(cfg.NumSMs); w < resident {
		resident = w
	}
	if resident < 1 {
		resident = 1
	}
	hiding := 1 / resident

	cpiMem := mem * hiding
	cpiRT := rtTime * hiding
	warpTime := base + cpiMem + cpiRT

	// Step 3: scale to the whole grid. Each SM retires its resident warps
	// at IssuePerCycle warp-instructions per cycle and runs `waves`
	// batches of them.
	waves := float64(warps) / (float64(cfg.NumSMs) * float64(cfg.MaxWarpsPerSM))
	if waves < 1 {
		waves = 1
	}
	cycles := warpTime * waves * resident / float64(cfg.IssuePerCycle)
	if cycles < 1 {
		cycles = 1
	}

	return Prediction{
		Cycles:       cycles,
		IPC:          float64(instr) / cycles,
		Instructions: instr,
		CPIBase:      base,
		CPIMem:       cpiMem,
		CPIRT:        cpiRT,
	}, nil
}
