package cache

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 128},
		{SizeBytes: 1024, LineBytes: 0},
		{SizeBytes: 1000, LineBytes: 128},           // size not line multiple
		{SizeBytes: 1024, LineBytes: 128, Assoc: 3}, // 8 lines not divisible by 3
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestLineAddr(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 128, Assoc: 2})
	if got := c.LineAddr(0x1234); got != 0x1200 {
		t.Errorf("LineAddr(0x1234) = %#x", got)
	}
	if got := c.LineAddr(0x1280); got != 0x1280 {
		t.Errorf("LineAddr(0x1280) = %#x", got)
	}
}

func TestMissThenInstallThenHit(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 128, Assoc: 2})
	if c.Load(0x1000) {
		t.Fatal("cold load hit")
	}
	c.Install(0x1000)
	if !c.Load(0x1040) { // same line, different offset
		t.Fatal("load after install missed")
	}
	st := c.Stats()
	if st.LoadAccesses != 2 || st.LoadMisses != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way set: lines mapping to the same set evict in LRU order.
	c := mustNew(t, Config{SizeBytes: 4 * 128, LineBytes: 128, Assoc: 2})
	// With 4 lines and 2-way assoc there are 2 sets; stride of
	// 2*128 keeps addresses in set 0.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Install(a)
	c.Install(b)
	c.Load(a) // a becomes MRU
	c.Install(d)
	if c.Contains(b) {
		t.Error("LRU victim b survived")
	}
	if !c.Contains(a) || !c.Contains(d) {
		t.Error("expected a and d resident")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestFullyAssociativeUsesWholeCapacity(t *testing.T) {
	// Fully associative: any 8 distinct lines fit regardless of address.
	c := mustNew(t, Config{SizeBytes: 8 * 128, LineBytes: 128, Assoc: 0})
	for i := 0; i < 8; i++ {
		c.Install(uint64(i) * 128 * 977) // scattered addresses
	}
	for i := 0; i < 8; i++ {
		if !c.Contains(uint64(i) * 128 * 977) {
			t.Fatalf("line %d evicted from non-full fully-assoc cache", i)
		}
	}
	c.Install(9 * 128 * 977)
	if c.Stats().Evictions != 1 {
		t.Errorf("expected exactly one eviction, got %d", c.Stats().Evictions)
	}
}

func TestStoreNoAllocate(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 128, Assoc: 2})
	if c.Store(0x2000) {
		t.Error("store to absent line reported hit")
	}
	if c.Contains(0x2000) {
		t.Error("store allocated a line")
	}
	c.Install(0x2000)
	if !c.Store(0x2000) {
		t.Error("store to resident line missed")
	}
	st := c.Stats()
	if st.StoreAccesses != 2 || st.StoreHits != 1 {
		t.Errorf("store stats %+v", st)
	}
	// Stores must not affect load miss accounting.
	if st.LoadAccesses != 0 {
		t.Errorf("stores counted as loads: %+v", st)
	}
}

func TestInstallIdempotent(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 128, Assoc: 2})
	c.Install(0x100)
	c.Install(0x100)
	if c.Stats().Evictions != 0 {
		t.Error("double install evicted")
	}
	if !c.Contains(0x100) {
		t.Error("line lost after double install")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("idle miss rate non-zero")
	}
	s = Stats{LoadAccesses: 4, LoadMisses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("miss rate %v", s.MissRate())
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{LoadAccesses: 1, LoadMisses: 2, StoreAccesses: 3, StoreHits: 4, Evictions: 5}
	b := Stats{LoadAccesses: 10, LoadMisses: 20, StoreAccesses: 30, StoreHits: 40, Evictions: 50}
	a.Add(b)
	want := Stats{LoadAccesses: 11, LoadMisses: 22, StoreAccesses: 33, StoreHits: 44, Evictions: 55}
	if a != want {
		t.Errorf("Add = %+v", a)
	}
}

// Property: the resident-set size never exceeds capacity, and a load
// immediately after install always hits.
func TestCapacityProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c, err := New(Config{SizeBytes: 16 * 64, LineBytes: 64, Assoc: 4})
		if err != nil {
			return false
		}
		resident := 0
		for _, a := range addrs {
			addr := uint64(a)
			if !c.Load(addr) {
				c.Install(addr)
				if !c.Load(addr) {
					return false
				}
			}
			resident = 0
			for _, s := range c.sets {
				resident += int(s.count)
				if int(s.count) > c.assoc {
					return false
				}
			}
		}
		return resident <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: LRU stack property — a cache of capacity 2N contains everything
// a same-shape cache of capacity N contains (inclusion for fully
// associative LRU).
func TestLRUInclusionProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		small, err := New(Config{SizeBytes: 8 * 64, LineBytes: 64, Assoc: 0})
		if err != nil {
			return false
		}
		big, err := New(Config{SizeBytes: 16 * 64, LineBytes: 64, Assoc: 0})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			addr := uint64(a)
			if !small.Load(addr) {
				small.Install(addr)
			}
			if !big.Load(addr) {
				big.Install(addr)
			}
			// Inclusion check.
			included := true
			small.table.Range(func(line, _ uint64) bool {
				included = big.Contains(line)
				return included
			})
			if !included {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Reset must restore the exact post-New state: an access sequence replayed
// after Reset produces identical stats and residency to a fresh cache.
func TestResetRestoresFreshState(t *testing.T) {
	cfg := Config{SizeBytes: 8 * 64, LineBytes: 64, Assoc: 2}
	replay := func(c *Cache) Stats {
		for i := 0; i < 200; i++ {
			addr := uint64(i%23) * 64 * 3
			if !c.Load(addr) {
				c.Install(addr)
			}
			if i%7 == 0 {
				c.Store(addr + 64)
			}
		}
		return c.Stats()
	}
	fresh := mustNew(t, cfg)
	want := replay(fresh)

	c := mustNew(t, cfg)
	replay(c)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Fatalf("stats after Reset = %+v", c.Stats())
	}
	if c.Contains(0) {
		t.Fatal("line survived Reset")
	}
	if got := replay(c); got != want {
		t.Errorf("replay after Reset = %+v, want %+v", got, want)
	}
}
