// Package cache implements the set-associative tag arrays used for the
// simulated L1D caches (fully associative, per Table II) and L2 slices
// (16-way). The cache is a pure state machine over line addresses — hit
// latencies, MSHR timing and fill scheduling are orchestrated by the timing
// model in internal/gpu, which keeps this package trivially testable.
//
// Internally the tag array is a preallocated node pool with int32 LRU links
// plus one flatmap over all sets: no per-fill allocation, no pointer
// chasing through heap-scattered nodes, and Reset restores the empty state
// without reallocating — all invisible to the simulated timing, which only
// observes hit/miss/eviction outcomes and those are layout-independent.
package cache

import (
	"fmt"

	"zatel/internal/flatmap"
)

// Config sizes a cache instance.
type Config struct {
	SizeBytes int
	LineBytes int
	// Assoc is the set associativity; 0 means fully associative.
	Assoc int
}

// Stats counts accesses. Load misses drive the Table I miss-rate metrics;
// stores are write-through/no-allocate and tracked separately.
type Stats struct {
	LoadAccesses  uint64
	LoadMisses    uint64
	StoreAccesses uint64
	StoreHits     uint64
	Evictions     uint64
}

// MissRate returns load misses over load accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.LoadAccesses == 0 {
		return 0
	}
	return float64(s.LoadMisses) / float64(s.LoadAccesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.LoadAccesses += other.LoadAccesses
	s.LoadMisses += other.LoadMisses
	s.StoreAccesses += other.StoreAccesses
	s.StoreHits += other.StoreHits
	s.Evictions += other.Evictions
}

// nilNode terminates LRU chains and the freelist.
const nilNode = int32(-1)

// node is one resident line; prev/next are indices into Cache.nodes, which
// doubles as the freelist chain (via next) when the node is unused.
type node struct {
	line       uint64
	prev, next int32
	set        int32
}

// lruSet is the per-set replacement state: head is the most recently used
// node, tail the eviction victim.
type lruSet struct {
	head, tail int32
	count      int32
}

// Cache is a single tag array.
type Cache struct {
	cfg     Config
	numSets int
	assoc   int
	stats   Stats

	table *flatmap.Map // line address -> node index
	nodes []node       // one per cache line, preallocated
	free  int32        // freelist head, chained through node.next
	sets  []lruSet
}

// New validates cfg and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive size or line (%d, %d)", cfg.SizeBytes, cfg.LineBytes)
	}
	if cfg.SizeBytes%cfg.LineBytes != 0 {
		return nil, fmt.Errorf("cache: size %d not a multiple of line %d", cfg.SizeBytes, cfg.LineBytes)
	}
	numLines := cfg.SizeBytes / cfg.LineBytes
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = numLines // fully associative
	}
	if numLines%assoc != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by associativity %d", numLines, assoc)
	}
	c := &Cache{
		cfg:     cfg,
		numSets: numLines / assoc,
		assoc:   assoc,
		table:   flatmap.New(numLines),
		nodes:   make([]node, numLines),
		sets:    make([]lruSet, numLines/assoc),
	}
	c.Reset()
	return c, nil
}

// Reset restores the empty post-New state — no resident lines, zero
// statistics — without releasing any allocation. The simulator pool uses it
// to reuse tag arrays across runs.
func (c *Cache) Reset() {
	c.stats = Stats{}
	c.table.Clear()
	for i := range c.sets {
		c.sets[i] = lruSet{head: nilNode, tail: nilNode}
	}
	// Rebuild the freelist over all nodes.
	for i := range c.nodes {
		c.nodes[i].next = int32(i) + 1
	}
	c.nodes[len(c.nodes)-1].next = nilNode
	c.free = 0
}

// LineAddr truncates addr to its line address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

func (c *Cache) setOf(line uint64) int32 {
	return int32((line / uint64(c.cfg.LineBytes)) % uint64(c.numSets))
}

// Load probes the cache for the line containing addr, updating LRU order
// and statistics. It reports whether the line was present; on a miss the
// caller is responsible for fetching and later calling Install.
func (c *Cache) Load(addr uint64) bool {
	line := c.LineAddr(addr)
	c.stats.LoadAccesses++
	if ni, ok := c.table.Get(line); ok {
		c.touch(int32(ni))
		return true
	}
	c.stats.LoadMisses++
	return false
}

// Store probes for a write-through store. Hits refresh LRU order; misses do
// not allocate. It reports whether the line was present.
func (c *Cache) Store(addr uint64) bool {
	line := c.LineAddr(addr)
	c.stats.StoreAccesses++
	if ni, ok := c.table.Get(line); ok {
		c.stats.StoreHits++
		c.touch(int32(ni))
		return true
	}
	return false
}

// Contains probes without perturbing LRU order or statistics.
func (c *Cache) Contains(addr uint64) bool {
	_, ok := c.table.Get(c.LineAddr(addr))
	return ok
}

// Install places the line containing addr into its set as MRU, evicting the
// LRU victim if the set is full. Installing a line already present just
// refreshes it.
func (c *Cache) Install(addr uint64) {
	line := c.LineAddr(addr)
	if ni, ok := c.table.Get(line); ok {
		c.touch(int32(ni))
		return
	}
	si := c.setOf(line)
	s := &c.sets[si]
	if int(s.count) >= c.assoc {
		victim := s.tail
		c.unlink(victim)
		c.table.Delete(c.nodes[victim].line)
		c.stats.Evictions++
		// Recycle the victim node directly.
		c.nodes[victim] = node{line: line, set: si}
		c.pushFront(victim)
		c.table.Set(line, uint64(victim))
		return
	}
	ni := c.free
	c.free = c.nodes[ni].next
	c.nodes[ni] = node{line: line, set: si}
	c.pushFront(ni)
	c.table.Set(line, uint64(ni))
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) touch(ni int32) {
	if c.sets[c.nodes[ni].set].head == ni {
		return
	}
	c.unlink(ni)
	c.pushFront(ni)
}

func (c *Cache) pushFront(ni int32) {
	n := &c.nodes[ni]
	s := &c.sets[n.set]
	n.prev = nilNode
	n.next = s.head
	if s.head != nilNode {
		c.nodes[s.head].prev = ni
	}
	s.head = ni
	if s.tail == nilNode {
		s.tail = ni
	}
	s.count++
}

func (c *Cache) unlink(ni int32) {
	n := &c.nodes[ni]
	s := &c.sets[n.set]
	if n.prev != nilNode {
		c.nodes[n.prev].next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nilNode {
		c.nodes[n.next].prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nilNode, nilNode
	s.count--
}
