// Package cache implements the set-associative tag arrays used for the
// simulated L1D caches (fully associative, per Table II) and L2 slices
// (16-way). The cache is a pure state machine over line addresses — hit
// latencies, MSHR timing and fill scheduling are orchestrated by the timing
// model in internal/gpu, which keeps this package trivially testable.
package cache

import "fmt"

// Config sizes a cache instance.
type Config struct {
	SizeBytes int
	LineBytes int
	// Assoc is the set associativity; 0 means fully associative.
	Assoc int
}

// Stats counts accesses. Load misses drive the Table I miss-rate metrics;
// stores are write-through/no-allocate and tracked separately.
type Stats struct {
	LoadAccesses  uint64
	LoadMisses    uint64
	StoreAccesses uint64
	StoreHits     uint64
	Evictions     uint64
}

// MissRate returns load misses over load accesses (0 when idle).
func (s Stats) MissRate() float64 {
	if s.LoadAccesses == 0 {
		return 0
	}
	return float64(s.LoadMisses) / float64(s.LoadAccesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.LoadAccesses += other.LoadAccesses
	s.LoadMisses += other.LoadMisses
	s.StoreAccesses += other.StoreAccesses
	s.StoreHits += other.StoreHits
	s.Evictions += other.Evictions
}

// node is one resident line in a set's intrusive LRU list.
type node struct {
	line       uint64
	prev, next *node
}

// set is one associativity set with an LRU replacement list.
type set struct {
	cap   int
	lines map[uint64]*node
	// head is the most recently used line, tail the eviction victim.
	head, tail *node
}

// Cache is a single tag array.
type Cache struct {
	cfg     Config
	sets    []set
	numSets int
	stats   Stats
}

// New validates cfg and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive size or line (%d, %d)", cfg.SizeBytes, cfg.LineBytes)
	}
	if cfg.SizeBytes%cfg.LineBytes != 0 {
		return nil, fmt.Errorf("cache: size %d not a multiple of line %d", cfg.SizeBytes, cfg.LineBytes)
	}
	numLines := cfg.SizeBytes / cfg.LineBytes
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = numLines // fully associative
	}
	if numLines%assoc != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by associativity %d", numLines, assoc)
	}
	numSets := numLines / assoc
	c := &Cache{cfg: cfg, numSets: numSets, sets: make([]set, numSets)}
	for i := range c.sets {
		c.sets[i] = set{cap: assoc, lines: make(map[uint64]*node, assoc)}
	}
	return c, nil
}

// LineAddr truncates addr to its line address.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineBytes-1)
}

func (c *Cache) setOf(line uint64) *set {
	idx := (line / uint64(c.cfg.LineBytes)) % uint64(c.numSets)
	return &c.sets[idx]
}

// Load probes the cache for the line containing addr, updating LRU order
// and statistics. It reports whether the line was present; on a miss the
// caller is responsible for fetching and later calling Install.
func (c *Cache) Load(addr uint64) bool {
	line := c.LineAddr(addr)
	s := c.setOf(line)
	c.stats.LoadAccesses++
	if n, ok := s.lines[line]; ok {
		s.touch(n)
		return true
	}
	c.stats.LoadMisses++
	return false
}

// Store probes for a write-through store. Hits refresh LRU order; misses do
// not allocate. It reports whether the line was present.
func (c *Cache) Store(addr uint64) bool {
	line := c.LineAddr(addr)
	s := c.setOf(line)
	c.stats.StoreAccesses++
	if n, ok := s.lines[line]; ok {
		c.stats.StoreHits++
		s.touch(n)
		return true
	}
	return false
}

// Contains probes without perturbing LRU order or statistics.
func (c *Cache) Contains(addr uint64) bool {
	line := c.LineAddr(addr)
	_, ok := c.setOf(line).lines[line]
	return ok
}

// Install places the line containing addr into its set as MRU, evicting the
// LRU victim if the set is full. Installing a line already present just
// refreshes it.
func (c *Cache) Install(addr uint64) {
	line := c.LineAddr(addr)
	s := c.setOf(line)
	if n, ok := s.lines[line]; ok {
		s.touch(n)
		return
	}
	if len(s.lines) >= s.cap {
		victim := s.tail
		s.unlink(victim)
		delete(s.lines, victim.line)
		c.stats.Evictions++
	}
	n := &node{line: line}
	s.lines[line] = n
	s.pushFront(n)
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (s *set) touch(n *node) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

func (s *set) pushFront(n *node) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *set) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
