package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderingDeterminism(t *testing.T) {
	// Jobs finish in scrambled order (later jobs sleep less), but results
	// must come back in submission order with the right values.
	const n = 32
	rs, err := Map(context.Background(), n, 4, func(_ context.Context, i int) (int, error) {
		time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != n {
		t.Fatalf("%d results, want %d", len(rs), n)
	}
	for i, r := range rs {
		if r.Index != i || r.Value != i*i {
			t.Errorf("result %d: index %d value %d", i, r.Index, r.Value)
		}
		if r.WallTime <= 0 {
			t.Errorf("result %d: no wall time recorded", i)
		}
		if r.QueueTime < 0 {
			t.Errorf("result %d: negative queue time", i)
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	// A high-water-mark counter must never observe more than the requested
	// worker bound in flight at once.
	const workers = 3
	var inFlight, highWater atomic.Int64
	rs, err := Map(context.Background(), 24, workers, func(_ context.Context, i int) (struct{}, error) {
		cur := inFlight.Add(1)
		for {
			hw := highWater.Load()
			if cur <= hw || highWater.CompareAndSwap(hw, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 24 {
		t.Fatalf("%d results", len(rs))
	}
	if hw := highWater.Load(); hw > workers {
		t.Errorf("high-water mark %d exceeds %d workers", hw, workers)
	}
	if hw := highWater.Load(); hw < 1 {
		t.Errorf("high-water mark %d, nothing ran?", hw)
	}
}

func TestMapErrorAggregation(t *testing.T) {
	// Failures must not abort the grid: every job still runs, and the
	// aggregate error names each failing index.
	boom := errors.New("boom")
	var ran atomic.Int64
	rs, err := Map(context.Background(), 10, 2, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i%3 == 0 {
			return 0, fmt.Errorf("job-%d: %w", i, boom)
		}
		return i, nil
	})
	if ran.Load() != 10 {
		t.Errorf("only %d jobs ran, want all 10 despite failures", ran.Load())
	}
	if err == nil {
		t.Fatal("aggregate error is nil with 4 failing jobs")
	}
	if !errors.Is(err, boom) {
		t.Error("aggregate error does not wrap the job cause")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatal("aggregate error contains no *JobError")
	}
	for i, r := range rs {
		if i%3 == 0 {
			if r.Err == nil {
				t.Errorf("job %d should have failed", i)
			}
		} else if r.Err != nil || r.Value != i {
			t.Errorf("job %d: value %d err %v", i, r.Value, r.Err)
		}
	}
}

func TestMapCancellation(t *testing.T) {
	// Cancelling mid-grid stops unstarted jobs; the cancelled jobs carry
	// the context error and the started ones their real results.
	// Both workers must start a job before the cancel fires, or they would
	// block on release forever.
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	rs, err := Map(ctx, 50, 2, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) >= 2 {
			once.Do(func() { cancel(); close(release) })
		}
		<-release
		return i, nil
	})
	if err == nil {
		t.Fatal("no aggregate error after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("aggregate error %v does not wrap context.Canceled", err)
	}
	if n := started.Load(); n >= 50 {
		t.Errorf("all %d jobs started despite cancellation", n)
	}
	cancelled := 0
	for _, r := range rs {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
			if r.WallTime != 0 {
				t.Errorf("cancelled job %d has wall time %v", r.Index, r.WallTime)
			}
		}
	}
	if cancelled == 0 {
		t.Error("no job recorded the cancellation")
	}
}

func TestMapPanicIsFailSoft(t *testing.T) {
	rs, err := Map(context.Background(), 4, 2, func(_ context.Context, i int) (int, error) {
		if i == 1 {
			panic("kaboom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	if rs[1].Err == nil {
		t.Error("panicking job has nil error")
	}
	for _, i := range []int{0, 2, 3} {
		if rs[i].Err != nil {
			t.Errorf("job %d failed: %v", i, rs[i].Err)
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	rs, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(rs) != 0 {
		t.Errorf("empty grid: %v, %d results", err, len(rs))
	}
	if _, err := Map(context.Background(), -1, 1, func(_ context.Context, i int) (int, error) { return i, nil }); err == nil {
		t.Error("negative job count accepted")
	}
	if _, err := Map[int](context.Background(), 1, 1, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

func TestPoolSize(t *testing.T) {
	if got := PoolSize(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("PoolSize(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := PoolSize(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("PoolSize(-3) = %d", got)
	}
	if got := PoolSize(7); got != 7 {
		t.Errorf("PoolSize(7) = %d", got)
	}
}

func TestTotals(t *testing.T) {
	rs := []Result[int]{
		{WallTime: 2 * time.Second},
		{WallTime: 5 * time.Second},
		{WallTime: 1 * time.Second},
	}
	cpu, slowest := Totals(rs)
	if cpu != 8*time.Second || slowest != 5*time.Second {
		t.Errorf("Totals = %v, %v", cpu, slowest)
	}
}
