// Package runner provides the bounded worker-pool job scheduler every
// concurrent part of the repository runs on: core.Predict's per-group
// simulator fan-out and the experiment grid drivers all submit their
// independent jobs here instead of hand-rolling sync.WaitGroup loops.
//
// Zatel's methodology (Section III-F) assumes K downscaled simulator
// instances occupy K CPU cores concurrently; the experiment suite likewise
// amortises many short independent (scene × parameter) runs. The pool makes
// that concurrency uniform and observable:
//
//   - bounded: at most Workers jobs run at once (default GOMAXPROCS),
//   - deterministic: results are returned in submission order, so output
//     bytes never depend on scheduling,
//   - accounted: every job records queue wait and execution wall time,
//   - fail-soft: one failing job does not abort the grid — all errors are
//     collected and returned aggregated, alongside every completed result,
//   - cancellable: a context cancels jobs that have not started.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Result records one job's outcome and timing.
type Result[T any] struct {
	// Index is the job's submission index; Map returns results sorted by it.
	Index int
	// Value is fn's return value (zero when Err != nil).
	Value T
	// Err is the job's error, the recovered panic, or the context error for
	// jobs cancelled before they started.
	Err error
	// QueueTime is how long the job waited between submission and the
	// moment a worker picked it up.
	QueueTime time.Duration
	// WallTime is the job's execution time (zero for cancelled jobs).
	WallTime time.Duration
}

// JobError ties a failed job's index to its cause; Map aggregates these
// with errors.Join so callers can both print everything and errors.As their
// way back to individual indices.
type JobError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cause.
func (e *JobError) Unwrap() error { return e.Err }

// PoolSize resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the paper's one-instance-per-core deployment.
func PoolSize(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Map runs fn(ctx, i) for every i in [0, n) on a pool of at most
// PoolSize(workers) goroutines and returns the n results in submission
// order. It always returns the full result slice; the returned error is the
// errors.Join aggregation of every per-job failure (nil when all jobs
// succeeded). Cancelling ctx stops unstarted jobs, which complete with
// ctx's error; jobs already running are expected to honour ctx themselves.
// A panicking job is captured as that job's error rather than crashing the
// pool.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, index int) (T, error)) ([]Result[T], error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative job count %d", n)
	}
	if fn == nil {
		return nil, errors.New("runner: nil job function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[T], n)
	for i := range results {
		results[i].Index = i
	}
	if n == 0 {
		return results, nil
	}

	workers = PoolSize(workers)
	if workers > n {
		workers = n
	}

	submitted := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := &results[i]
				r.QueueTime = time.Since(submitted)
				if err := ctx.Err(); err != nil {
					r.Err = err
					continue
				}
				start := time.Now()
				r.Value, r.Err = runJob(ctx, i, fn)
				r.WallTime = time.Since(start)
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Everything not yet handed to a worker is cancelled; the
			// workers themselves mark the jobs they already hold.
			for j := i; j < n; j++ {
				results[j].Err = ctx.Err()
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, &JobError{Index: i, Err: results[i].Err})
		}
	}
	return results, errors.Join(errs...)
}

// runJob invokes fn with panic capture so one bad job cannot take down the
// whole pool (fail-soft, like any other job error).
func runJob[T any](ctx context.Context, i int, fn func(context.Context, int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job %d panicked: %v", i, r)
		}
	}()
	return fn(ctx, i)
}

// Totals sums the per-job execution times and reports the slowest single
// job — the two numbers behind the serial-vs-parallel wall-time semantics:
// cpu is what a serial execution would cost, slowest is the wall-time floor
// of a perfectly parallel one.
func Totals[T any](rs []Result[T]) (cpu, slowest time.Duration) {
	for i := range rs {
		cpu += rs[i].WallTime
		if rs[i].WallTime > slowest {
			slowest = rs[i].WallTime
		}
	}
	return cpu, slowest
}
