// Package runner provides the bounded worker-pool job scheduler every
// concurrent part of the repository runs on: core.Predict's per-group
// simulator fan-out and the experiment grid drivers all submit their
// independent jobs here instead of hand-rolling sync.WaitGroup loops.
//
// Zatel's methodology (Section III-F) assumes K downscaled simulator
// instances occupy K CPU cores concurrently; the experiment suite likewise
// amortises many short independent (scene × parameter) runs. The pool makes
// that concurrency uniform and observable:
//
//   - bounded: at most Workers jobs run at once (default GOMAXPROCS),
//   - deterministic: results are returned in submission order, so output
//     bytes never depend on scheduling,
//   - accounted: every job records queue wait, execution wall time and how
//     many attempts it took,
//   - fail-soft: one failing job does not abort the grid — all errors are
//     collected and returned aggregated, alongside every completed result,
//   - fault-tolerant: MapPolicy retries failing jobs with exponential
//     backoff and deterministic seeded jitter, under per-attempt deadlines,
//   - cancellable: a context cancels jobs that have not started.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"zatel/internal/obs"
	"zatel/internal/vecmath"
)

// Pool metrics, exposed through zateld's /metrics (see OPERATIONS.md for
// the full reference). They aggregate across every pool in the process:
// prediction group fan-outs and experiment grids alike.
var (
	mJobs = obs.NewCounter("zatel_runner_jobs_total",
		"worker-pool jobs completed (all pools, success or failure)")
	mRetries = obs.NewCounter("zatel_runner_retries_total",
		"job attempts beyond each job's first (all pools)")
	mFailures = obs.NewCounter("zatel_runner_job_failures_total",
		"jobs that exhausted their attempts (all pools)")
	mActive = obs.NewGauge("zatel_runner_active_workers",
		"pool workers currently executing a job")
)

// Result records one job's outcome and timing.
type Result[T any] struct {
	// Index is the job's submission index; Map returns results sorted by it.
	Index int
	// Value is fn's return value (zero when Err != nil).
	Value T
	// Err is the job's final error after all attempts, the recovered panic,
	// or the context error for jobs cancelled before they started.
	Err error
	// QueueTime is how long the job waited between submission and the
	// moment a worker picked it up.
	QueueTime time.Duration
	// WallTime is the job's worker occupancy: all attempts plus the backoff
	// waits between them (zero for cancelled jobs).
	WallTime time.Duration
	// Attempts counts how many times the job ran (zero for jobs cancelled
	// before they started).
	Attempts int
}

// JobError ties a failed job's index to its cause; Map aggregates these
// with errors.Join so callers can both print everything and errors.As their
// way back to individual indices.
type JobError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying cause.
func (e *JobError) Unwrap() error { return e.Err }

// PoolSize resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), the paper's one-instance-per-core deployment.
func PoolSize(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ErrPermanent marks an error retries cannot fix; MapPolicy stops retrying
// a job whose error wraps it.
var ErrPermanent = errors.New("runner: permanent failure")

// Permanent wraps err so MapPolicy fails the job immediately instead of
// burning its remaining attempts. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrPermanent, err)
}

// Policy configures MapPolicy's scheduling and per-job fault tolerance.
// The zero value reproduces Map: a GOMAXPROCS-sized pool, one attempt per
// job, no deadline.
type Policy struct {
	// Workers bounds the pool (see PoolSize).
	Workers int
	// MaxAttempts is the total number of times a failing job may run
	// (values <= 1 mean no retries).
	MaxAttempts int
	// Backoff is the wait before the second attempt; it doubles for every
	// further attempt. 0 retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (0 = no cap).
	MaxBackoff time.Duration
	// JitterSeed roots the deterministic backoff jitter: each wait is
	// stretched by up to 50%, keyed by (JitterSeed, index, attempt), so
	// retries de-synchronise identically on every run instead of drawing
	// from wall-clock randomness.
	JitterSeed uint64
	// Timeout is the per-attempt deadline, enforced through the context the
	// attempt receives (0 = none). Jobs must honour their ctx for the
	// deadline to interrupt them; the attempt is failed and retried either
	// way once it returns.
	Timeout time.Duration
	// SpanPrefix, when the caller's context carries an obs.Tracer, records
	// one span per job named "<prefix>[<index>]" — each worker on its own
	// trace lane — with nested "attempt" spans per try. Empty disables job
	// spans even when a tracer is present.
	SpanPrefix string
}

// backoffDelay computes the wait between attempt and attempt+1 of job
// index: Backoff doubled per completed attempt, capped at MaxBackoff, plus
// up to 50% seeded jitter.
func (p Policy) backoffDelay(index, attempt int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	exp := attempt - 1
	if exp > 20 { // 2^20 * Backoff is already beyond any sane deadline
		exp = 20
	}
	d := p.Backoff << uint(exp)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	rng := vecmath.NewRNG(p.JitterSeed).Split(uint64(index)).Split(uint64(attempt))
	return d + time.Duration(rng.Float64()*0.5*float64(d))
}

// Map runs fn(ctx, i) for every i in [0, n) on a pool of at most
// PoolSize(workers) goroutines and returns the n results in submission
// order. It always returns the full result slice; the returned error is the
// errors.Join aggregation of every per-job failure (nil when all jobs
// succeeded). Cancelling ctx stops unstarted jobs, which complete with
// ctx's error; jobs already running are expected to honour ctx themselves.
// A panicking job is captured as that job's error rather than crashing the
// pool.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, index int) (T, error)) ([]Result[T], error) {
	return MapPolicy(ctx, n, Policy{Workers: workers}, fn)
}

// MapPolicy is Map with per-job fault tolerance: each failing job is
// retried up to Policy.MaxAttempts times under Policy.Timeout per-attempt
// deadlines, with exponential backoff and seeded jitter between attempts.
// Retries happen in-place on the job's worker, so result ordering stays
// deterministic by submission index. Errors wrapping ErrPermanent, and
// parent-context cancellation, stop a job's retries immediately.
func MapPolicy[T any](ctx context.Context, n int, p Policy, fn func(ctx context.Context, index int) (T, error)) ([]Result[T], error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative job count %d", n)
	}
	if fn == nil {
		return nil, errors.New("runner: nil job function")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result[T], n)
	for i := range results {
		results[i].Index = i
	}
	if n == 0 {
		return results, nil
	}

	workers := PoolSize(p.Workers)
	if workers > n {
		workers = n
	}

	submitted := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	tracer := obs.FromContext(ctx)
	tracing := p.SpanPrefix != "" && tracer != nil
	for w := 0; w < workers; w++ {
		wg.Add(1)
		var lane int64
		if tracing {
			lane = tracer.Lane(fmt.Sprintf("worker %d", w))
		}
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := &results[i]
				r.QueueTime = time.Since(submitted)
				if err := ctx.Err(); err != nil {
					r.Err = err
					continue
				}
				jctx, sp := ctx, (*obs.Span)(nil)
				if tracing {
					jctx, sp = obs.StartSpan(ctx, fmt.Sprintf("%s[%d]", p.SpanPrefix, i), obs.InLane(lane))
					sp.SetAttr("queue_us", r.QueueTime.Microseconds())
				}
				mActive.Add(1)
				start := time.Now()
				r.Value, r.Attempts, r.Err = runAttempts(jctx, p, i, fn)
				r.WallTime = time.Since(start)
				mActive.Add(-1)
				mJobs.Inc()
				if r.Attempts > 1 {
					mRetries.Add(uint64(r.Attempts - 1))
				}
				sp.SetAttr("attempts", r.Attempts)
				if r.Err != nil {
					mFailures.Inc()
					sp.SetAttr("error", r.Err)
				}
				sp.End()
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Everything not yet handed to a worker is cancelled; the
			// workers themselves mark the jobs they already hold.
			for j := i; j < n; j++ {
				results[j].Err = ctx.Err()
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	var errs []error
	for i := range results {
		if results[i].Err != nil {
			errs = append(errs, &JobError{Index: i, Err: results[i].Err})
		}
	}
	return results, errors.Join(errs...)
}

// runAttempts drives one job through the policy's retry loop and reports
// the value, the number of attempts consumed, and the final error (nil on
// success). The retry loop stops early on ErrPermanent-wrapped errors and
// on parent-context cancellation; on failure the returned value is zero.
func runAttempts[T any](ctx context.Context, p Policy, i int, fn func(context.Context, int) (T, error)) (T, int, error) {
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	var zero T
	for attempt := 1; ; attempt++ {
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.Timeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.Timeout)
		}
		var asp *obs.Span
		if p.SpanPrefix != "" {
			attemptCtx, asp = obs.StartSpan(attemptCtx, "attempt")
			asp.SetAttr("n", attempt)
		}
		v, err := runJob(attemptCtx, i, fn)
		timedOut := attemptCtx.Err() != nil && ctx.Err() == nil
		if err != nil {
			asp.SetAttr("error", err)
		}
		asp.End()
		cancel()
		if err == nil {
			return v, attempt, nil
		}
		if timedOut && errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("runner: job %d attempt %d exceeded %v deadline: %w",
				i, attempt, p.Timeout, err)
		}
		if attempt >= max || errors.Is(err, ErrPermanent) || ctx.Err() != nil {
			return zero, attempt, err
		}
		if !sleep(ctx, p.backoffDelay(i, attempt)) {
			// Cancelled during backoff: the consumed attempts stand, the
			// job keeps its real error rather than the context's.
			return zero, attempt, err
		}
	}
}

// runJob invokes fn with panic capture so one bad job cannot take down the
// whole pool (fail-soft, like any other job error).
func runJob[T any](ctx context.Context, i int, fn func(context.Context, int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: job %d panicked: %v", i, r)
		}
	}()
	return fn(ctx, i)
}

// sleep waits d honouring ctx; it reports false when ctx fired first.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Totals sums the per-job execution times and reports the slowest single
// job — the two numbers behind the serial-vs-parallel wall-time semantics:
// cpu is what a serial execution would cost, slowest is the wall-time floor
// of a perfectly parallel one.
func Totals[T any](rs []Result[T]) (cpu, slowest time.Duration) {
	for i := range rs {
		cpu += rs[i].WallTime
		if rs[i].WallTime > slowest {
			slowest = rs[i].WallTime
		}
	}
	return cpu, slowest
}
