package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// flaky fails the first failures attempts of every job, then succeeds.
type flaky struct {
	mu       sync.Mutex
	calls    map[int]int
	failures int
}

func newFlaky(failures int) *flaky {
	return &flaky{calls: map[int]int{}, failures: failures}
}

func (f *flaky) run(ctx context.Context, i int) (int, error) {
	f.mu.Lock()
	f.calls[i]++
	n := f.calls[i]
	f.mu.Unlock()
	if n <= f.failures {
		return 0, fmt.Errorf("transient failure %d of job %d", n, i)
	}
	return i * 10, nil
}

func TestMapPolicyRetriesRecover(t *testing.T) {
	f := newFlaky(2)
	rs, err := MapPolicy(context.Background(), 4, Policy{Workers: 2, MaxAttempts: 3}, f.run)
	if err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	for i, r := range rs {
		if r.Err != nil || r.Value != i*10 {
			t.Errorf("job %d: value %d err %v", i, r.Value, r.Err)
		}
		if r.Attempts != 3 {
			t.Errorf("job %d took %d attempts, want 3", i, r.Attempts)
		}
	}
}

func TestMapPolicyExhaustsAttempts(t *testing.T) {
	f := newFlaky(5)
	rs, err := MapPolicy(context.Background(), 2, Policy{Workers: 2, MaxAttempts: 3}, f.run)
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	var je *JobError
	if !errors.As(err, &je) {
		t.Errorf("aggregate error %v has no JobError", err)
	}
	for i, r := range rs {
		if r.Err == nil {
			t.Errorf("job %d succeeded with only 3 of 6 required attempts", i)
		}
		if r.Attempts != 3 {
			t.Errorf("job %d recorded %d attempts, want 3", i, r.Attempts)
		}
	}
}

func TestMapPolicyZeroValueMatchesMap(t *testing.T) {
	rs, err := MapPolicy(context.Background(), 3, Policy{}, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.Value != i || r.Attempts != 1 {
			t.Errorf("job %d: value %d attempts %d", i, r.Value, r.Attempts)
		}
	}
}

func TestMapPolicyDeadline(t *testing.T) {
	rs, err := MapPolicy(context.Background(), 1,
		Policy{Workers: 1, MaxAttempts: 2, Timeout: 10 * time.Millisecond},
		func(ctx context.Context, i int) (int, error) {
			<-ctx.Done() // hang until the per-attempt deadline fires
			return 0, ctx.Err()
		})
	if err == nil {
		t.Fatal("deadline-exceeding job reported success")
	}
	r := rs[0]
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap DeadlineExceeded", r.Err)
	}
	if r.Attempts != 2 {
		t.Errorf("timed-out job retried %d times, want both attempts used", r.Attempts)
	}
}

func TestMapPolicyDeadlineThenRecovery(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	rs, err := MapPolicy(context.Background(), 1,
		Policy{Workers: 1, MaxAttempts: 2, Timeout: 20 * time.Millisecond},
		func(ctx context.Context, i int) (int, error) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return 42, nil
		})
	if err != nil {
		t.Fatalf("second attempt should have recovered: %v", err)
	}
	if rs[0].Value != 42 || rs[0].Attempts != 2 {
		t.Errorf("got value %d after %d attempts", rs[0].Value, rs[0].Attempts)
	}
}

func TestPermanentStopsRetries(t *testing.T) {
	f := newFlaky(0)
	rs, err := MapPolicy(context.Background(), 1, Policy{Workers: 1, MaxAttempts: 5},
		func(ctx context.Context, i int) (int, error) {
			f.run(ctx, i) // count the call
			return 0, Permanent(errors.New("config rejected"))
		})
	if err == nil {
		t.Fatal("permanent failure reported success")
	}
	if rs[0].Attempts != 1 {
		t.Errorf("permanent error was retried: %d attempts", rs[0].Attempts)
	}
	if !errors.Is(rs[0].Err, ErrPermanent) {
		t.Errorf("error %v does not wrap ErrPermanent", rs[0].Err)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestBackoffDelayDeterministicAndBounded(t *testing.T) {
	p := Policy{Backoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond, JitterSeed: 3}
	for attempt := 1; attempt <= 6; attempt++ {
		d1 := p.backoffDelay(2, attempt)
		d2 := p.backoffDelay(2, attempt)
		if d1 != d2 {
			t.Errorf("attempt %d: delay not deterministic (%v vs %v)", attempt, d1, d2)
		}
		base := p.Backoff << uint(attempt-1)
		if base > p.MaxBackoff {
			base = p.MaxBackoff
		}
		if d1 < base || d1 > base+base/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d1, base, base+base/2)
		}
	}
	if d := (Policy{}).backoffDelay(0, 1); d != 0 {
		t.Errorf("zero policy delay %v, want 0", d)
	}
	// Different jobs jitter differently (de-synchronised retries).
	pj := Policy{Backoff: time.Second, JitterSeed: 3}
	if pj.backoffDelay(0, 1) == pj.backoffDelay(1, 1) {
		t.Error("jobs 0 and 1 drew identical jitter")
	}
}

func TestCancelDuringBackoffKeepsJobError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobErr := errors.New("transient")
	done := make(chan struct{})
	var rs []Result[int]
	var err error
	go func() {
		defer close(done)
		rs, err = MapPolicy(ctx, 1,
			Policy{Workers: 1, MaxAttempts: 3, Backoff: 10 * time.Second},
			func(ctx context.Context, i int) (int, error) {
				cancel() // cancel while the worker is about to back off
				return 0, jobErr
			})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the 10s backoff")
	}
	if err == nil {
		t.Fatal("cancelled job reported success")
	}
	if !errors.Is(rs[0].Err, jobErr) {
		t.Errorf("job kept %v, want its real error", rs[0].Err)
	}
	if rs[0].Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (cancelled before retrying)", rs[0].Attempts)
	}
}

func TestMapPolicyPanicsCountAsAttempts(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	rs, err := MapPolicy(context.Background(), 1, Policy{Workers: 1, MaxAttempts: 2},
		func(ctx context.Context, i int) (int, error) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				panic("boom")
			}
			return 7, nil
		})
	if err != nil {
		t.Fatalf("panic was not retried: %v", err)
	}
	if rs[0].Value != 7 || rs[0].Attempts != 2 {
		t.Errorf("value %d after %d attempts", rs[0].Value, rs[0].Attempts)
	}
}
