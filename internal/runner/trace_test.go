package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"zatel/internal/obs"
)

// TestMapPolicySpans asserts the pool's trace shape: one "<prefix>[i]" span
// per job carrying the attempts attribute, one nested "attempt" span per
// try, and per-worker lanes.
func TestMapPolicySpans(t *testing.T) {
	tr := obs.NewTracer()
	ctx := obs.WithTracer(context.Background(), tr)

	flaky := errors.New("transient")
	_, err := MapPolicy(ctx, 3, Policy{
		Workers:     2,
		MaxAttempts: 3,
		SpanPrefix:  "job",
	}, func(_ context.Context, i int) (int, error) {
		if i == 1 {
			return 0, flaky // job 1 burns all 3 attempts
		}
		return i, nil
	})
	if err == nil {
		t.Fatalf("want aggregated error for job 1")
	}

	spans := tr.Snapshot()
	byName := map[string][]obs.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("job[%d]", i)
		got := byName[name]
		if len(got) != 1 {
			t.Fatalf("got %d %q spans, want 1", len(got), name)
		}
		wantAttempts := "1"
		if i == 1 {
			wantAttempts = "3"
		}
		if got[0].Attrs["attempts"] != wantAttempts {
			t.Errorf("%s attempts attr = %q, want %q", name, got[0].Attrs["attempts"], wantAttempts)
		}
	}
	// 1 attempt each for jobs 0 and 2, 3 attempts for job 1.
	if n := len(byName["attempt"]); n != 5 {
		t.Errorf("got %d attempt spans, want 5", n)
	}
	job1 := byName["job[1]"][0]
	var under1 int
	for _, a := range byName["attempt"] {
		if a.Parent == job1.ID {
			under1++
			if a.Lane != job1.Lane {
				t.Errorf("attempt lane %d != job lane %d", a.Lane, job1.Lane)
			}
		}
	}
	if under1 != 3 {
		t.Errorf("job[1] has %d attempt children, want 3", under1)
	}
	if job1.Attrs["error"] == "" {
		t.Errorf("failed job span lacks error attr")
	}
}

// TestPoolMetricsAdvance asserts the runner's process-wide counters move
// with the work it executes and the occupancy gauge returns to zero.
func TestPoolMetricsAdvance(t *testing.T) {
	jobs0, retries0, fails0 := mJobs.Value(), mRetries.Value(), mFailures.Value()
	_, err := MapPolicy(context.Background(), 4, Policy{
		Workers:     2,
		MaxAttempts: 2,
	}, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, errors.New("always fails")
		}
		return i, nil
	})
	if err == nil {
		t.Fatalf("want aggregated error")
	}
	if got := mJobs.Value() - jobs0; got != 4 {
		t.Errorf("jobs counter advanced %d, want 4", got)
	}
	if got := mRetries.Value() - retries0; got != 1 {
		t.Errorf("retries counter advanced %d, want 1 (job 3's second attempt)", got)
	}
	if got := mFailures.Value() - fails0; got != 1 {
		t.Errorf("failures counter advanced %d, want 1", got)
	}
	if v := mActive.Value(); v != 0 {
		t.Errorf("active-workers gauge = %d after pool drained, want 0", v)
	}
}
