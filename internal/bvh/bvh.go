// Package bvh implements the bounding volume hierarchy acceleration
// structure: a binned-SAH builder over scene triangles, ordered stack
// traversal, and the node memory layout consumed by the GPU timing model
// (every traversal step has a concrete byte address so cache and DRAM
// behaviour can be simulated faithfully).
package bvh

import (
	"fmt"
	"math"
	"unsafe"

	"zatel/internal/scene"
	"zatel/internal/vecmath"
)

// Memory layout constants shared with the timing model. The BVH node pool
// and triangle pool live in distinct address regions so cache-set conflicts
// between node and triangle fetches behave realistically.
const (
	// NodeBase is the byte address of node 0.
	NodeBase uint64 = 0x1000_0000
	// NodeBytes is the size of one BVH2 node record.
	NodeBytes uint64 = 32
	// TriBase is the byte address of triangle record 0.
	TriBase uint64 = 0x2000_0000
	// TriBytes is the size of one packed triangle record.
	TriBytes uint64 = 48
)

// Node is one flat-array BVH2 node. Interior nodes store the index of their
// right child (the left child is the next array slot); leaves store a
// triangle range into BVH.TriIndex.
type Node struct {
	Bounds vecmath.AABB
	// Right is the right-child index for interior nodes; leaves hold -1.
	Right int32
	// FirstTri and TriCount describe the leaf's triangle range. Interior
	// nodes hold TriCount == 0.
	FirstTri int32
	TriCount int32
}

// Leaf reports whether the node is a leaf.
func (n *Node) Leaf() bool { return n.TriCount > 0 }

// BVH is an immutable acceleration structure over a scene's triangles.
type BVH struct {
	Nodes []Node
	// TriIndex maps leaf-order positions to indices into Tris.
	TriIndex []int32
	// Tris aliases the source scene's triangle slice.
	Tris []scene.Triangle
}

// NodeAddr returns the simulated byte address of node i.
func NodeAddr(i int32) uint64 { return NodeBase + uint64(i)*NodeBytes }

// TriAddr returns the simulated byte address of leaf-order triangle slot i.
func TriAddr(i int32) uint64 { return TriBase + uint64(i)*TriBytes }

// SizeBytes returns the structure's exact resident size for artifact-store
// byte accounting. Tris aliases the scene's triangle slice but is counted
// here because the BVH keeps it alive.
func (b *BVH) SizeBytes() int64 {
	return int64(unsafe.Sizeof(*b)) +
		int64(len(b.Nodes))*int64(unsafe.Sizeof(Node{})) +
		int64(len(b.TriIndex))*int64(unsafe.Sizeof(int32(0))) +
		int64(len(b.Tris))*int64(unsafe.Sizeof(scene.Triangle{}))
}

// Options configures the builder.
type Options struct {
	// MaxLeafSize is the largest number of triangles a leaf may hold.
	MaxLeafSize int
	// Bins is the number of SAH bins per axis.
	Bins int
}

// DefaultOptions match the values used throughout the evaluation.
func DefaultOptions() Options { return Options{MaxLeafSize: 4, Bins: 16} }

// Build constructs a BVH over the scene's triangles.
func Build(s *scene.Scene, opt Options) (*BVH, error) {
	if len(s.Tris) == 0 {
		return nil, fmt.Errorf("bvh: scene %s has no triangles", s.Name)
	}
	if opt.MaxLeafSize <= 0 {
		return nil, fmt.Errorf("bvh: MaxLeafSize %d must be positive", opt.MaxLeafSize)
	}
	if opt.Bins < 2 {
		return nil, fmt.Errorf("bvh: Bins %d must be at least 2", opt.Bins)
	}

	n := len(s.Tris)
	b := &builder{
		opt:       opt,
		tris:      s.Tris,
		triIndex:  make([]int32, n),
		centroids: make([]vecmath.Vec3, n),
		bounds:    make([]vecmath.AABB, n),
	}
	for i, t := range s.Tris {
		b.triIndex[i] = int32(i)
		b.centroids[i] = t.Centroid()
		b.bounds[i] = t.Bounds()
	}
	// Pre-size the node pool: a BVH2 over n leaves has at most 2n-1 nodes.
	b.nodes = make([]Node, 0, 2*n)
	if _, err := b.buildRange(0, n); err != nil {
		return nil, fmt.Errorf("bvh: building %s: %w", s.Name, err)
	}
	return &BVH{Nodes: b.nodes, TriIndex: b.triIndex, Tris: s.Tris}, nil
}

type builder struct {
	opt       Options
	tris      []scene.Triangle
	triIndex  []int32
	centroids []vecmath.Vec3
	bounds    []vecmath.AABB
	nodes     []Node
}

// buildRange emits the subtree covering triIndex[lo:hi] and returns its
// node index. It errors instead of panicking when the flat-layout
// invariant (left child contiguous with its parent) is violated, so a
// corrupted build surfaces through the workload pipeline rather than
// killing a worker-pool job.
func (b *builder) buildRange(lo, hi int) (int32, error) {
	idx := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Right: -1})

	nb := vecmath.EmptyAABB()
	cb := vecmath.EmptyAABB()
	for i := lo; i < hi; i++ {
		nb = nb.Extend(b.bounds[b.triIndex[i]])
		cb = cb.ExtendPoint(b.centroids[b.triIndex[i]])
	}
	b.nodes[idx].Bounds = nb

	count := hi - lo
	if count <= b.opt.MaxLeafSize {
		b.makeLeaf(idx, lo, hi)
		return idx, nil
	}

	axis, split := b.chooseSplit(lo, hi, cb)
	if split <= lo || split >= hi {
		// Degenerate centroid distribution: fall back to a median split so
		// the tree still terminates, or to a leaf if even that collapses.
		axis = cb.Diagonal().MaxAxis()
		b.sortRange(lo, hi, axis)
		split = lo + count/2
		if split <= lo || split >= hi {
			b.makeLeaf(idx, lo, hi)
			return idx, nil
		}
	}

	// The left child always follows the parent contiguously.
	left, err := b.buildRange(lo, split)
	if err != nil {
		return 0, err
	}
	if left != idx+1 {
		return 0, fmt.Errorf("left child %d of node %d not contiguous", left, idx)
	}
	right, err := b.buildRange(split, hi)
	if err != nil {
		return 0, err
	}
	b.nodes[idx].Right = right
	return idx, nil
}

func (b *builder) makeLeaf(idx int32, lo, hi int) {
	b.nodes[idx].FirstTri = int32(lo)
	b.nodes[idx].TriCount = int32(hi - lo)
}

// chooseSplit runs binned SAH over the centroid bounds cb and partitions
// triIndex[lo:hi]; it returns the split axis and the partition point.
func (b *builder) chooseSplit(lo, hi int, cb vecmath.AABB) (int, int) {
	axis := cb.Diagonal().MaxAxis()
	extent := cb.Diagonal().Axis(axis)
	if extent <= 0 {
		return axis, lo // degenerate; caller falls back
	}

	bins := b.opt.Bins
	type bin struct {
		bounds vecmath.AABB
		count  int
	}
	bs := make([]bin, bins)
	for i := range bs {
		bs[i].bounds = vecmath.EmptyAABB()
	}
	binOf := func(ti int32) int {
		rel := (b.centroids[ti].Axis(axis) - cb.Lo.Axis(axis)) / extent
		k := int(rel * float32(bins))
		if k < 0 {
			k = 0
		}
		if k >= bins {
			k = bins - 1
		}
		return k
	}
	for i := lo; i < hi; i++ {
		ti := b.triIndex[i]
		k := binOf(ti)
		bs[k].bounds = bs[k].bounds.Extend(b.bounds[ti])
		bs[k].count++
	}

	// Sweep to find the split plane minimising the SAH cost
	// leftArea·leftCount + rightArea·rightCount.
	rightArea := make([]float32, bins)
	rightCount := make([]int, bins)
	acc := vecmath.EmptyAABB()
	cnt := 0
	for k := bins - 1; k >= 1; k-- {
		acc = acc.Extend(bs[k].bounds)
		cnt += bs[k].count
		rightArea[k] = acc.SurfaceArea()
		rightCount[k] = cnt
	}
	bestCost := float32(math.Inf(1))
	bestPlane := -1
	accL := vecmath.EmptyAABB()
	cntL := 0
	for k := 0; k < bins-1; k++ {
		accL = accL.Extend(bs[k].bounds)
		cntL += bs[k].count
		if cntL == 0 || rightCount[k+1] == 0 {
			continue
		}
		cost := accL.SurfaceArea()*float32(cntL) + rightArea[k+1]*float32(rightCount[k+1])
		if cost < bestCost {
			bestCost = cost
			bestPlane = k
		}
	}
	if bestPlane < 0 {
		return axis, lo
	}

	// In-place partition by bin index.
	i, j := lo, hi-1
	for i <= j {
		if binOf(b.triIndex[i]) <= bestPlane {
			i++
		} else {
			b.triIndex[i], b.triIndex[j] = b.triIndex[j], b.triIndex[i]
			j--
		}
	}
	return axis, i
}

// sortRange orders triIndex[lo:hi] by centroid along axis (insertion-free
// partial ordering is unnecessary; a simple index sort suffices for the
// rare fallback path).
func (b *builder) sortRange(lo, hi, axis int) {
	sub := b.triIndex[lo:hi]
	// Insertion sort: the fallback only fires on tiny or degenerate ranges.
	for i := 1; i < len(sub); i++ {
		v := sub[i]
		key := b.centroids[v].Axis(axis)
		j := i - 1
		for j >= 0 && b.centroids[sub[j]].Axis(axis) > key {
			sub[j+1] = sub[j]
			j--
		}
		sub[j+1] = v
	}
}
