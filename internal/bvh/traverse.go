package bvh

import (
	"zatel/internal/vecmath"
)

// Step records one traversal step: the node that was fetched and, for
// leaves, how many triangle tests it triggered. The trace generator turns
// Steps into the memory reads and intersection-pipeline operations the RT
// unit executes.
type Step struct {
	// Node is the fetched node's index.
	Node int32
	// Leaf reports whether the node was a leaf.
	Leaf bool
	// TriTests is the number of triangle intersection tests performed
	// (zero for interior nodes).
	TriTests int32
}

// Packed traversal step layout: node index in the high 24 bits, triangle
// test count in the low 8. The encoding lives here (rather than in the
// trace recorder) so traversal can append packed steps directly into a
// workload's step arena without a per-node closure call; internal/rt
// re-exports it for trace consumers. Tree sizes in this repository stay far
// below 2^24 nodes; BuildWorkload enforces the limit.
const (
	stepNodeShift = 8
	stepTriMask   = 0xff
	// MaxPackedNode is the largest node index PackStep can represent.
	MaxPackedNode = 1<<24 - 1
)

// PackStep encodes a traversal step. Triangle-test counts saturate at 255.
func PackStep(node int32, triTests int32) uint32 {
	if triTests > stepTriMask {
		triTests = stepTriMask
	}
	return uint32(node)<<stepNodeShift | uint32(triTests)
}

// UnpackStep decodes a traversal step.
func UnpackStep(s uint32) (node int32, triTests int32) {
	return int32(s >> stepNodeShift), int32(s & stepTriMask)
}

// Hit describes the nearest intersection found.
type Hit struct {
	// T is the hit distance along the ray.
	T float32
	// Tri is the index of the hit triangle in the original scene order.
	Tri int32
	// Slot is the leaf-order position of the triangle (for TriAddr).
	Slot int32
}

// maxStack bounds the traversal stack. A BVH over n triangles with leaf
// size ≥ 1 has depth ≤ n, but SAH trees stay well under 64 for any scene in
// the library; the tests assert this.
const maxStack = 96

// Intersect finds the nearest triangle intersection along r. If visit is
// non-nil it is invoked once per fetched node in traversal order.
// It returns the hit and whether one was found.
func (b *BVH) Intersect(r vecmath.Ray, visit func(Step)) (Hit, bool) {
	best := Hit{T: r.TMax, Tri: -1, Slot: -1}
	if len(b.Nodes) == 0 {
		return best, false
	}
	if _, ok := b.Nodes[0].Bounds.Hit(r); !ok {
		return best, false
	}

	var stack [maxStack]int32
	sp := 0
	stack[sp] = 0
	sp++

	for sp > 0 {
		sp--
		ni := stack[sp]
		node := &b.Nodes[ni]

		if node.Leaf() {
			tests := int32(0)
			for i := node.FirstTri; i < node.FirstTri+node.TriCount; i++ {
				tests++
				ti := b.TriIndex[i]
				probe := r
				probe.TMax = best.T
				if t, ok := b.Tris[ti].Hit(probe); ok {
					best = Hit{T: t, Tri: ti, Slot: i}
				}
			}
			if visit != nil {
				visit(Step{Node: ni, Leaf: true, TriTests: tests})
			}
			continue
		}

		if visit != nil {
			visit(Step{Node: ni, Leaf: false})
		}

		// Test both children (their boxes travel with the parent fetch in
		// hardware layouts) and push the nearer one last so it pops first.
		li, ri := ni+1, node.Right
		probe := r
		probe.TMax = best.T
		tl, hl := b.Nodes[li].Bounds.Hit(probe)
		tr, hr := b.Nodes[ri].Bounds.Hit(probe)
		switch {
		case hl && hr:
			if tl > tr {
				li, ri = ri, li
			}
			stack[sp] = ri
			sp++
			stack[sp] = li
			sp++
		case hl:
			stack[sp] = li
			sp++
		case hr:
			stack[sp] = ri
			sp++
		}
	}
	return best, best.Tri >= 0
}

// IntersectAny reports whether any triangle blocks r within its interval —
// the shadow-ray query. Traversal order is unimportant; it exits on the
// first hit. visit, if non-nil, observes fetched nodes exactly as in
// Intersect.
func (b *BVH) IntersectAny(r vecmath.Ray, visit func(Step)) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	if _, ok := b.Nodes[0].Bounds.Hit(r); !ok {
		return false
	}

	var stack [maxStack]int32
	sp := 0
	stack[sp] = 0
	sp++

	for sp > 0 {
		sp--
		ni := stack[sp]
		node := &b.Nodes[ni]

		if node.Leaf() {
			tests := int32(0)
			hit := false
			for i := node.FirstTri; i < node.FirstTri+node.TriCount; i++ {
				tests++
				if _, ok := b.Tris[b.TriIndex[i]].Hit(r); ok {
					hit = true
					break
				}
			}
			if visit != nil {
				visit(Step{Node: ni, Leaf: true, TriTests: tests})
			}
			if hit {
				return true
			}
			continue
		}

		if visit != nil {
			visit(Step{Node: ni, Leaf: false})
		}
		li, ri := ni+1, node.Right
		if _, ok := b.Nodes[li].Bounds.Hit(r); ok {
			stack[sp] = li
			sp++
		}
		if _, ok := b.Nodes[ri].Bounds.Hit(r); ok {
			stack[sp] = ri
			sp++
		}
	}
	return false
}

// IntersectPacked is Intersect recording every fetched node as a packed
// step appended to *steps. It visits nodes in exactly the order Intersect
// reports to its callback — leaves after their triangle tests, interior
// nodes before their children — but without the per-node indirect call,
// which matters when tracing millions of rays into a workload arena.
func (b *BVH) IntersectPacked(r vecmath.Ray, steps *[]uint32) (Hit, bool) {
	best := Hit{T: r.TMax, Tri: -1, Slot: -1}
	if len(b.Nodes) == 0 {
		return best, false
	}
	if _, ok := b.Nodes[0].Bounds.Hit(r); !ok {
		return best, false
	}

	var stack [maxStack]int32
	sp := 0
	stack[sp] = 0
	sp++
	out := *steps

	for sp > 0 {
		sp--
		ni := stack[sp]
		node := &b.Nodes[ni]

		if node.Leaf() {
			tests := int32(0)
			for i := node.FirstTri; i < node.FirstTri+node.TriCount; i++ {
				tests++
				ti := b.TriIndex[i]
				probe := r
				probe.TMax = best.T
				if t, ok := b.Tris[ti].Hit(probe); ok {
					best = Hit{T: t, Tri: ti, Slot: i}
				}
			}
			out = append(out, PackStep(ni, tests))
			continue
		}

		out = append(out, PackStep(ni, 0))

		li, ri := ni+1, node.Right
		probe := r
		probe.TMax = best.T
		tl, hl := b.Nodes[li].Bounds.Hit(probe)
		tr, hr := b.Nodes[ri].Bounds.Hit(probe)
		switch {
		case hl && hr:
			if tl > tr {
				li, ri = ri, li
			}
			stack[sp] = ri
			sp++
			stack[sp] = li
			sp++
		case hl:
			stack[sp] = li
			sp++
		case hr:
			stack[sp] = ri
			sp++
		}
	}
	*steps = out
	return best, best.Tri >= 0
}

// IntersectAnyPacked is IntersectAny recording packed steps into *steps,
// mirroring IntersectPacked's closure-free recording.
func (b *BVH) IntersectAnyPacked(r vecmath.Ray, steps *[]uint32) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	if _, ok := b.Nodes[0].Bounds.Hit(r); !ok {
		return false
	}

	var stack [maxStack]int32
	sp := 0
	stack[sp] = 0
	sp++
	out := *steps
	defer func() { *steps = out }()

	for sp > 0 {
		sp--
		ni := stack[sp]
		node := &b.Nodes[ni]

		if node.Leaf() {
			tests := int32(0)
			hit := false
			for i := node.FirstTri; i < node.FirstTri+node.TriCount; i++ {
				tests++
				if _, ok := b.Tris[b.TriIndex[i]].Hit(r); ok {
					hit = true
					break
				}
			}
			out = append(out, PackStep(ni, tests))
			if hit {
				return true
			}
			continue
		}

		out = append(out, PackStep(ni, 0))
		li, ri := ni+1, node.Right
		if _, ok := b.Nodes[li].Bounds.Hit(r); ok {
			stack[sp] = li
			sp++
		}
		if _, ok := b.Nodes[ri].Bounds.Hit(r); ok {
			stack[sp] = ri
			sp++
		}
	}
	return false
}

// Stats summarises structural quality of the tree.
type Stats struct {
	Nodes       int
	Leaves      int
	MaxDepth    int
	MaxLeafTris int
	// SAHCost is the expected traversal cost under the surface-area
	// heuristic, normalised by the root area.
	SAHCost float64
}

// ComputeStats walks the tree and returns its Stats.
func (b *BVH) ComputeStats() Stats {
	var st Stats
	st.Nodes = len(b.Nodes)
	rootArea := float64(b.Nodes[0].Bounds.SurfaceArea())

	type item struct {
		node  int32
		depth int
	}
	stack := []item{{0, 1}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &b.Nodes[it.node]
		if it.depth > st.MaxDepth {
			st.MaxDepth = it.depth
		}
		area := float64(n.Bounds.SurfaceArea())
		if n.Leaf() {
			st.Leaves++
			if int(n.TriCount) > st.MaxLeafTris {
				st.MaxLeafTris = int(n.TriCount)
			}
			if rootArea > 0 {
				st.SAHCost += area / rootArea * float64(n.TriCount)
			}
			continue
		}
		if rootArea > 0 {
			st.SAHCost += area / rootArea
		}
		stack = append(stack, item{it.node + 1, it.depth + 1}, item{n.Right, it.depth + 1})
	}
	return st
}
