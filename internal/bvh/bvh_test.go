package bvh

import (
	"testing"

	"zatel/internal/scene"
	"zatel/internal/vecmath"
)

func buildScene(t *testing.T, name string) (*scene.Scene, *BVH) {
	t.Helper()
	s, err := scene.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return s, b
}

func TestBuildRejectsBadInputs(t *testing.T) {
	s, err := scene.ByName("SPRNG")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(s, Options{MaxLeafSize: 0, Bins: 8}); err == nil {
		t.Error("MaxLeafSize 0 accepted")
	}
	if _, err := Build(s, Options{MaxLeafSize: 4, Bins: 1}); err == nil {
		t.Error("Bins 1 accepted")
	}
	empty := &scene.Scene{Name: "empty"}
	if _, err := Build(empty, DefaultOptions()); err == nil {
		t.Error("empty scene accepted")
	}
}

// Every triangle appears exactly once in leaf order.
func TestTriIndexIsPermutation(t *testing.T) {
	for _, name := range scene.Names() {
		s, b := buildScene(t, name)
		if len(b.TriIndex) != len(s.Tris) {
			t.Fatalf("%s: TriIndex size %d != %d tris", name, len(b.TriIndex), len(s.Tris))
		}
		seen := make([]bool, len(s.Tris))
		for _, ti := range b.TriIndex {
			if ti < 0 || int(ti) >= len(s.Tris) {
				t.Fatalf("%s: index %d out of range", name, ti)
			}
			if seen[ti] {
				t.Fatalf("%s: triangle %d duplicated", name, ti)
			}
			seen[ti] = true
		}
	}
}

// Every node's bounds must contain all triangles in its subtree, and leaf
// ranges must tile [0, n) exactly.
func TestTreeInvariants(t *testing.T) {
	for _, name := range []string{"SPRNG", "BUNNY", "PARK"} {
		s, b := buildScene(t, name)
		covered := make([]bool, len(s.Tris))
		var walk func(ni int32) vecmath.AABB
		walk = func(ni int32) vecmath.AABB {
			n := &b.Nodes[ni]
			if n.Leaf() {
				box := vecmath.EmptyAABB()
				for i := n.FirstTri; i < n.FirstTri+n.TriCount; i++ {
					slot := b.TriIndex[i]
					if covered[slot] {
						t.Fatalf("%s: slot %d in two leaves", name, slot)
					}
					covered[slot] = true
					box = box.Extend(b.Tris[slot].Bounds())
				}
				if !contains(n.Bounds, box) {
					t.Fatalf("%s: leaf %d bounds too small", name, ni)
				}
				return box
			}
			l := walk(ni + 1)
			r := walk(n.Right)
			both := l.Extend(r)
			if !contains(n.Bounds, both) {
				t.Fatalf("%s: interior %d bounds too small", name, ni)
			}
			return both
		}
		walk(0)
		for i, c := range covered {
			if !c {
				t.Fatalf("%s: triangle %d missing from leaves", name, i)
			}
		}
	}
}

func contains(outer, inner vecmath.AABB) bool {
	const eps = 1e-3
	return outer.Lo.X <= inner.Lo.X+eps && outer.Lo.Y <= inner.Lo.Y+eps &&
		outer.Lo.Z <= inner.Lo.Z+eps && outer.Hi.X >= inner.Hi.X-eps &&
		outer.Hi.Y >= inner.Hi.Y-eps && outer.Hi.Z >= inner.Hi.Z-eps
}

func TestLeafSizeRespected(t *testing.T) {
	_, b := buildScene(t, "PARK")
	st := b.ComputeStats()
	if st.MaxLeafTris > DefaultOptions().MaxLeafSize {
		t.Errorf("max leaf %d exceeds limit %d", st.MaxLeafTris, DefaultOptions().MaxLeafSize)
	}
	if st.MaxDepth >= maxStack {
		t.Errorf("depth %d would overflow the traversal stack", st.MaxDepth)
	}
}

// Traversal must agree with brute force on nearest hit distance.
func TestIntersectMatchesBruteForce(t *testing.T) {
	s, b := buildScene(t, "SPNZA")
	cam := s.Cam
	cam.Finalize(1)
	rng := vecmath.NewRNG(99)
	for i := 0; i < 300; i++ {
		r := cam.Ray(rng.Float32(), rng.Float32())
		hit, ok := b.Intersect(r, nil)

		bestT := r.TMax
		bestTri := int32(-1)
		for ti, tri := range s.Tris {
			probe := r
			probe.TMax = bestT
			if tt, hok := tri.Hit(probe); hok {
				bestT = tt
				bestTri = int32(ti)
			}
		}
		if ok != (bestTri >= 0) {
			t.Fatalf("ray %d: bvh ok=%v brute=%v", i, ok, bestTri >= 0)
		}
		if ok {
			diff := hit.T - bestT
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-3*bestT+1e-4 {
				t.Fatalf("ray %d: bvh t=%v brute t=%v", i, hit.T, bestT)
			}
		}
	}
}

func TestIntersectAnyAgreesWithIntersect(t *testing.T) {
	s, b := buildScene(t, "CHSNT")
	cam := s.Cam
	cam.Finalize(1)
	rng := vecmath.NewRNG(123)
	for i := 0; i < 500; i++ {
		r := cam.Ray(rng.Float32(), rng.Float32())
		_, full := b.Intersect(r, nil)
		any := b.IntersectAny(r, nil)
		if full != any {
			t.Fatalf("ray %d: Intersect=%v IntersectAny=%v", i, full, any)
		}
	}
}

func TestVisitStepsConsistent(t *testing.T) {
	_, b := buildScene(t, "BUNNY")
	r := vecmath.NewRay(vecmath.V(0, 0.8, -1.2), vecmath.V(0.02, 0.02, 1).Norm())
	var steps []Step
	_, _ = b.Intersect(r, func(s Step) { steps = append(steps, s) })
	if len(steps) == 0 {
		t.Fatal("no steps recorded for a ray aimed at the bunny")
	}
	for _, s := range steps {
		n := &b.Nodes[s.Node]
		if s.Leaf != n.Leaf() {
			t.Errorf("step node %d leaf mismatch", s.Node)
		}
		if s.Leaf && s.TriTests != n.TriCount {
			t.Errorf("leaf %d tested %d of %d tris", s.Node, s.TriTests, n.TriCount)
		}
		if !s.Leaf && s.TriTests != 0 {
			t.Errorf("interior %d reported %d tri tests", s.Node, s.TriTests)
		}
	}
	// The same ray must re-traverse identically (determinism).
	var again []Step
	_, _ = b.Intersect(r, func(s Step) { again = append(again, s) })
	if len(again) != len(steps) {
		t.Fatalf("revisit produced %d steps, first %d", len(again), len(steps))
	}
	for i := range steps {
		if steps[i] != again[i] {
			t.Fatalf("step %d differs between traversals", i)
		}
	}
}

func TestMissingRayVisitsNothing(t *testing.T) {
	_, b := buildScene(t, "SPRNG")
	// Aim far away from the two objects.
	r := vecmath.NewRay(vecmath.V(0, 100, 0), vecmath.V(0, 1, 0))
	calls := 0
	_, ok := b.Intersect(r, func(Step) { calls++ })
	if ok {
		t.Error("ray into the void reported a hit")
	}
	if calls != 0 {
		t.Errorf("root-missing ray visited %d nodes", calls)
	}
}

func TestNodeAddressing(t *testing.T) {
	if NodeAddr(0) != NodeBase {
		t.Errorf("NodeAddr(0) = %#x", NodeAddr(0))
	}
	if NodeAddr(3)-NodeAddr(2) != NodeBytes {
		t.Errorf("node stride = %d", NodeAddr(3)-NodeAddr(2))
	}
	if TriAddr(5)-TriAddr(4) != TriBytes {
		t.Errorf("tri stride = %d", TriAddr(5)-TriAddr(4))
	}
	if NodeAddr(1<<20) >= TriBase {
		t.Errorf("node pool overlaps triangle pool for large trees")
	}
}

func TestStatsSane(t *testing.T) {
	_, b := buildScene(t, "PARK")
	st := b.ComputeStats()
	if st.Leaves == 0 || st.Nodes < st.Leaves {
		t.Errorf("stats: %+v", st)
	}
	if st.SAHCost <= 0 {
		t.Errorf("SAH cost %v", st.SAHCost)
	}
	// A binned SAH tree over PARK must be reasonably balanced.
	if st.MaxDepth > 64 {
		t.Errorf("depth %d too deep for %d nodes", st.MaxDepth, st.Nodes)
	}
}

// TestPackedTraversalMatchesClosure is the exactness contract of the
// closure-free traversal: for every ray, IntersectPacked/IntersectAnyPacked
// must record the identical step sequence the visit-callback variants
// report, and return identical results. The GPU model replays these steps
// cycle by cycle, so any ordering difference would change simulated timing.
func TestPackedTraversalMatchesClosure(t *testing.T) {
	for _, name := range []string{"BUNNY", "SPNZA", "CHSNT"} {
		s, b := buildScene(t, name)
		cam := s.Cam
		cam.Finalize(1)
		rng := vecmath.NewRNG(7)
		packed := make([]uint32, 0, 256)
		for i := 0; i < 400; i++ {
			r := cam.Ray(rng.Float32(), rng.Float32())

			var want []uint32
			visit := func(st Step) { want = append(want, PackStep(st.Node, st.TriTests)) }

			packed = packed[:0]
			if i%2 == 0 {
				hitC, okC := b.Intersect(r, visit)
				hitP, okP := b.IntersectPacked(r, &packed)
				if hitC != hitP || okC != okP {
					t.Fatalf("%s ray %d: Intersect (%+v,%v) != IntersectPacked (%+v,%v)",
						name, i, hitC, okC, hitP, okP)
				}
			} else {
				okC := b.IntersectAny(r, visit)
				okP := b.IntersectAnyPacked(r, &packed)
				if okC != okP {
					t.Fatalf("%s ray %d: IntersectAny %v != IntersectAnyPacked %v", name, i, okC, okP)
				}
			}
			if len(want) != len(packed) {
				t.Fatalf("%s ray %d: %d closure steps, %d packed steps", name, i, len(want), len(packed))
			}
			for j := range want {
				if want[j] != packed[j] {
					t.Fatalf("%s ray %d step %d: closure %#x packed %#x", name, i, j, want[j], packed[j])
				}
			}
		}
	}
}

func TestPackStepRoundtrip(t *testing.T) {
	n, tt := UnpackStep(PackStep(MaxPackedNode, 300))
	if n != MaxPackedNode || tt != 255 {
		t.Fatalf("roundtrip = (%d, %d)", n, tt)
	}
}
