// Package kmeans implements one-dimensional K-means clustering with
// k-means++ seeding. Zatel uses it for heatmap colour quantization: the
// NVIDIA heat gradient is a monotone function of the scalar temperature, so
// clustering pixel temperatures is exactly clustering their colours.
package kmeans

import (
	"fmt"
	"sort"

	"zatel/internal/vecmath"
)

// Result is the output of a clustering run.
type Result struct {
	// Centers holds the cluster centroids in ascending order.
	Centers []float64
	// Assign maps each input value to its cluster index in Centers.
	Assign []int
	// Iterations is how many Lloyd iterations ran before convergence.
	Iterations int
}

// Cluster groups values into k clusters. Seeding is deterministic for a
// given seed. k is clamped to the number of distinct values. maxIter bounds
// the Lloyd iterations (20 is plenty in one dimension).
func Cluster(values []float64, k int, seed uint64, maxIter int) (Result, error) {
	if len(values) == 0 {
		return Result{}, fmt.Errorf("kmeans: no values")
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("kmeans: k=%d must be positive", k)
	}
	if maxIter <= 0 {
		return Result{}, fmt.Errorf("kmeans: maxIter=%d must be positive", maxIter)
	}
	distinct := countDistinct(values)
	if k > distinct {
		k = distinct
	}

	centers := seedPlusPlus(values, k, vecmath.NewRNG(seed))
	assign := make([]int, len(values))
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		for i, v := range values {
			c := nearest(centers, v)
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		// Recompute centroids.
		sums := make([]float64, len(centers))
		counts := make([]int, len(centers))
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed && iters > 0 {
			break
		}
	}

	// Present clusters in ascending centroid order so callers can treat
	// the index as an ordinal temperature level.
	order := make([]int, len(centers))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return centers[order[a]] < centers[order[b]] })
	rank := make([]int, len(centers))
	sorted := make([]float64, len(centers))
	for newIdx, oldIdx := range order {
		rank[oldIdx] = newIdx
		sorted[newIdx] = centers[oldIdx]
	}
	for i := range assign {
		assign[i] = rank[assign[i]]
	}
	return Result{Centers: sorted, Assign: assign, Iterations: iters}, nil
}

// seedPlusPlus picks k initial centers with the k-means++ rule: the first
// uniformly, the rest proportional to squared distance from the nearest
// chosen center.
func seedPlusPlus(values []float64, k int, rng *vecmath.RNG) []float64 {
	centers := make([]float64, 0, k)
	centers = append(centers, values[rng.Intn(len(values))])
	d2 := make([]float64, len(values))
	for len(centers) < k {
		var total float64
		for i, v := range values {
			d := v - centers[nearest(centers, v)]
			d2[i] = d * d
			total += d2[i]
		}
		if total == 0 {
			// All remaining values coincide with centers; duplicate one.
			centers = append(centers, centers[0])
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := len(values) - 1
		for i, w := range d2 {
			acc += w
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, values[pick])
	}
	return centers
}

func nearest(centers []float64, v float64) int {
	best, bestD := 0, -1.0
	for c, center := range centers {
		d := v - center
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func countDistinct(values []float64) int {
	seen := make(map[float64]struct{}, 16)
	for _, v := range values {
		seen[v] = struct{}{}
		if len(seen) > 256 {
			return len(values) // enough distinct values for any sane k
		}
	}
	return len(seen)
}
