package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"zatel/internal/vecmath"
)

func TestClusterValidation(t *testing.T) {
	if _, err := Cluster(nil, 3, 1, 10); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Cluster([]float64{1}, 0, 1, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cluster([]float64{1}, 1, 1, 0); err == nil {
		t.Error("maxIter=0 accepted")
	}
}

func TestWellSeparatedClusters(t *testing.T) {
	// Three tight groups around 0, 5 and 10 must be recovered exactly.
	var values []float64
	rng := vecmath.NewRNG(4)
	for _, center := range []float64{0, 5, 10} {
		for i := 0; i < 50; i++ {
			values = append(values, center+rng.Float64()*0.2-0.1)
		}
	}
	res, err := Cluster(values, 3, 7, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("got %d centers", len(res.Centers))
	}
	for i, want := range []float64{0, 5, 10} {
		if math.Abs(res.Centers[i]-want) > 0.2 {
			t.Errorf("center %d = %v, want ≈%v", i, res.Centers[i], want)
		}
	}
	// Values in the first group must map to cluster 0, etc.
	for i, v := range values {
		want := 0
		if v > 2.5 {
			want = 1
		}
		if v > 7.5 {
			want = 2
		}
		if res.Assign[i] != want {
			t.Fatalf("value %v assigned to %d, want %d", v, res.Assign[i], want)
		}
	}
}

func TestCentersSorted(t *testing.T) {
	values := []float64{9, 1, 5, 9.1, 1.1, 5.1, 0.9, 4.9, 8.9}
	res, err := Cluster(values, 3, 99, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Centers); i++ {
		if res.Centers[i] < res.Centers[i-1] {
			t.Fatalf("centers not ascending: %v", res.Centers)
		}
	}
}

func TestKClampedToDistinct(t *testing.T) {
	values := []float64{2, 2, 2, 7, 7}
	res, err := Cluster(values, 5, 3, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Errorf("k not clamped: %d centers", len(res.Centers))
	}
}

func TestSingleValue(t *testing.T) {
	res, err := Cluster([]float64{3, 3, 3}, 4, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 1 || res.Centers[0] != 3 {
		t.Errorf("constant input gave %v", res.Centers)
	}
}

func TestDeterminism(t *testing.T) {
	values := make([]float64, 200)
	rng := vecmath.NewRNG(11)
	for i := range values {
		values[i] = rng.Float64()
	}
	a, err := Cluster(values, 6, 42, 25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(values, 6, 42, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs across runs", i)
		}
	}
}

// Property: every value is assigned to its nearest center (Lloyd fixpoint
// condition after convergence).
func TestNearestAssignmentProperty(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		values := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				values = append(values, v)
			}
		}
		if len(values) == 0 {
			return true
		}
		k := int(kRaw%8) + 1
		res, err := Cluster(values, k, 5, 50)
		if err != nil {
			return false
		}
		for i, v := range values {
			got := math.Abs(v - res.Centers[res.Assign[i]])
			for _, c := range res.Centers {
				if math.Abs(v-c) < got-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
