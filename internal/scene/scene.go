// Package scene defines the ray-tracing workload model: triangle meshes with
// materials, a pinhole camera, and a library of deterministic procedural
// scenes engineered to match the workload characterisations of the
// LumiBench suite used in the Zatel paper (PARK, SHIP, WKND, BUNNY, SPRNG,
// CHSNT, SPNZA, BATH).
package scene

import (
	"fmt"
	"math"

	"zatel/internal/vecmath"
)

// MaterialKind selects the shading behaviour of a surface, which in turn
// determines how many secondary rays a path spawns.
type MaterialKind uint8

const (
	// Diffuse surfaces spawn a shadow ray and, below the scene's path
	// depth limit, one cosine-weighted bounce ray.
	Diffuse MaterialKind = iota
	// Mirror surfaces spawn a perfect reflection ray.
	Mirror
	// Emissive surfaces terminate the path.
	Emissive
)

// String implements fmt.Stringer.
func (k MaterialKind) String() string {
	switch k {
	case Diffuse:
		return "diffuse"
	case Mirror:
		return "mirror"
	case Emissive:
		return "emissive"
	default:
		return fmt.Sprintf("MaterialKind(%d)", uint8(k))
	}
}

// Material describes a surface's response to light.
type Material struct {
	Kind   MaterialKind
	Albedo vecmath.Vec3
	// BounceProb is the probability a diffuse path continues with an
	// indirect bounce (Russian roulette). Ignored for other kinds.
	BounceProb float32
}

// Triangle is the sole geometric primitive. Mat indexes Scene.Mats.
type Triangle struct {
	V0, V1, V2 vecmath.Vec3
	Mat        int32
}

// Bounds returns the triangle's bounding box.
func (t Triangle) Bounds() vecmath.AABB {
	return vecmath.EmptyAABB().
		ExtendPoint(t.V0).
		ExtendPoint(t.V1).
		ExtendPoint(t.V2)
}

// Centroid returns the vertex average, the key used by BVH binning.
func (t Triangle) Centroid() vecmath.Vec3 {
	return t.V0.Add(t.V1).Add(t.V2).Scale(1.0 / 3.0)
}

// Normal returns the (unit) geometric normal.
func (t Triangle) Normal() vecmath.Vec3 {
	return t.V1.Sub(t.V0).Cross(t.V2.Sub(t.V0)).Norm()
}

// Hit performs the Möller–Trumbore intersection test and returns the hit
// distance within [r.TMin, r.TMax]. This is the test executed by the RT
// unit's triangle pipeline in the timing model.
func (t Triangle) Hit(r vecmath.Ray) (float32, bool) {
	e1 := t.V1.Sub(t.V0)
	e2 := t.V2.Sub(t.V0)
	p := r.Dir.Cross(e2)
	det := e1.Dot(p)
	if det > -1e-7 && det < 1e-7 {
		return 0, false
	}
	inv := 1 / det
	s := r.Origin.Sub(t.V0)
	u := s.Dot(p) * inv
	if u < 0 || u > 1 {
		return 0, false
	}
	q := s.Cross(e1)
	v := r.Dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return 0, false
	}
	dist := e2.Dot(q) * inv
	if dist < r.TMin || dist > r.TMax {
		return 0, false
	}
	return dist, true
}

// Camera is a pinhole camera. Rays are generated on an image plane one unit
// in front of the eye.
type Camera struct {
	Eye    vecmath.Vec3
	LookAt vecmath.Vec3
	Up     vecmath.Vec3
	// FOVDeg is the vertical field of view in degrees.
	FOVDeg float32

	// Cached orthonormal basis; populated by Finalize.
	right, up, fwd vecmath.Vec3
	halfH, halfW   float32
	aspect         float32
}

// Finalize computes the camera basis for the given aspect ratio
// (width / height). It must be called before Ray.
func (c *Camera) Finalize(aspect float32) {
	c.aspect = aspect
	c.fwd = c.LookAt.Sub(c.Eye).Norm()
	c.right = c.Up.Cross(c.fwd).Norm()
	c.up = c.fwd.Cross(c.right)
	c.halfH = float32(math.Tan(float64(c.FOVDeg) * math.Pi / 360))
	c.halfW = c.halfH * aspect
}

// Ray returns the primary ray through normalized image coordinates
// (u, v) ∈ [0,1)², with v=0 the top row.
func (c *Camera) Ray(u, v float32) vecmath.Ray {
	dir := c.fwd.
		Add(c.right.Scale((2*u - 1) * c.halfW)).
		Add(c.up.Scale((1 - 2*v) * c.halfH)).
		Norm()
	return vecmath.NewRay(c.Eye, dir)
}

// Scene is a complete ray-tracing workload: geometry, materials, camera,
// one point light and path-tracing parameters.
type Scene struct {
	Name string
	Tris []Triangle
	Mats []Material
	Cam  Camera
	// Light is the point-light position used for shadow rays.
	Light vecmath.Vec3
	// MaxDepth bounds the number of indirect bounces per path.
	MaxDepth int
	// Seed roots all stochastic shading decisions for the scene.
	Seed uint64
}

// Bounds returns the bounding box of all geometry.
func (s *Scene) Bounds() vecmath.AABB {
	b := vecmath.EmptyAABB()
	for _, t := range s.Tris {
		b = b.Extend(t.Bounds())
	}
	return b
}

// Validate checks structural invariants: non-empty geometry, material
// indices in range, degenerate-free triangles, and a sane camera.
func (s *Scene) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scene: empty name")
	}
	if len(s.Tris) == 0 {
		return fmt.Errorf("scene %s: no triangles", s.Name)
	}
	if len(s.Mats) == 0 {
		return fmt.Errorf("scene %s: no materials", s.Name)
	}
	for i, t := range s.Tris {
		if t.Mat < 0 || int(t.Mat) >= len(s.Mats) {
			return fmt.Errorf("scene %s: triangle %d material %d out of range [0,%d)",
				s.Name, i, t.Mat, len(s.Mats))
		}
		if t.Bounds().Diagonal().Len() == 0 {
			return fmt.Errorf("scene %s: triangle %d is a point", s.Name, i)
		}
	}
	if s.MaxDepth < 0 {
		return fmt.Errorf("scene %s: negative MaxDepth", s.Name)
	}
	if s.Cam.FOVDeg <= 0 || s.Cam.FOVDeg >= 180 {
		return fmt.Errorf("scene %s: FOV %v out of (0,180)", s.Name, s.Cam.FOVDeg)
	}
	return nil
}
