package scene

import (
	"math"

	"zatel/internal/vecmath"
)

// Builder accumulates triangles and materials while constructing a
// procedural scene. The zero value is not usable; use NewBuilder.
type Builder struct {
	tris []Triangle
	mats []Material
	rng  *vecmath.RNG
}

// NewBuilder returns a Builder whose stochastic generators draw from a
// stream rooted at seed.
func NewBuilder(seed uint64) *Builder {
	return &Builder{rng: vecmath.NewRNG(seed)}
}

// AddMaterial registers m and returns its index for use in triangles.
func (b *Builder) AddMaterial(m Material) int32 {
	b.mats = append(b.mats, m)
	return int32(len(b.mats) - 1)
}

// Tri appends one triangle.
func (b *Builder) Tri(v0, v1, v2 vecmath.Vec3, mat int32) {
	b.tris = append(b.tris, Triangle{V0: v0, V1: v1, V2: v2, Mat: mat})
}

// Quad appends the two triangles of the quad (v0,v1,v2,v3) in winding order.
func (b *Builder) Quad(v0, v1, v2, v3 vecmath.Vec3, mat int32) {
	b.Tri(v0, v1, v2, mat)
	b.Tri(v0, v2, v3, mat)
}

// GroundPlane adds a large horizontal quad at height y spanning
// [-half, half]² in X/Z, tessellated into an n×n grid so the BVH has
// spatially local leaves under the camera.
func (b *Builder) GroundPlane(y, half float32, n int, mat int32) {
	step := 2 * half / float32(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x0 := -half + float32(i)*step
			z0 := -half + float32(j)*step
			b.Quad(
				vecmath.V(x0, y, z0),
				vecmath.V(x0+step, y, z0),
				vecmath.V(x0+step, y, z0+step),
				vecmath.V(x0, y, z0+step),
				mat,
			)
		}
	}
}

// Sphere adds a UV-tessellated sphere with the given number of latitude and
// longitude subdivisions.
func (b *Builder) Sphere(center vecmath.Vec3, radius float32, lat, lon int, mat int32) {
	b.Blob(center, radius, lat, lon, 0, mat)
}

// Blob adds a sphere whose surface is radially perturbed by up to
// bump·radius using deterministic trigonometric noise. bump=0 yields an
// exact sphere; larger values produce the irregular "foliage" and bunny-fur
// silhouettes used by the scene library.
func (b *Builder) Blob(center vecmath.Vec3, radius float32, lat, lon int, bump float32, mat int32) {
	point := func(i, j int) vecmath.Vec3 {
		theta := math.Pi * float64(i) / float64(lat)
		phi := 2 * math.Pi * float64(j%lon) / float64(lon)
		dir := vecmath.V(
			float32(math.Sin(theta)*math.Cos(phi)),
			float32(math.Cos(theta)),
			float32(math.Sin(theta)*math.Sin(phi)),
		)
		r := radius
		if bump != 0 {
			n := math.Sin(5*theta+2*phi) * math.Cos(3*phi-theta)
			r += bump * radius * float32(n)
		}
		return center.Add(dir.Scale(r))
	}
	for i := 0; i < lat; i++ {
		for j := 0; j < lon; j++ {
			p00 := point(i, j)
			p10 := point(i+1, j)
			p01 := point(i, j+1)
			p11 := point(i+1, j+1)
			if i > 0 {
				b.Tri(p00, p10, p01, mat)
			}
			if i < lat-1 {
				b.Tri(p10, p11, p01, mat)
			}
		}
	}
}

// Cluster scatters count random small triangles inside a sphere of the given
// radius — the "foliage" primitive. Each triangle's size is drawn from
// [minSize, maxSize]. High divergence: neighbouring rays entering a cluster
// visit very different BVH subtrees.
func (b *Builder) Cluster(center vecmath.Vec3, radius float32, count int, minSize, maxSize float32, mat int32) {
	for i := 0; i < count; i++ {
		p := center.Add(b.rng.UnitSphere().Scale(radius * b.rng.Float32()))
		size := b.rng.Range(minSize, maxSize)
		e1 := b.rng.UnitSphere().Scale(size)
		e2 := b.rng.UnitSphere().Scale(size)
		b.Tri(p, p.Add(e1), p.Add(e2), mat)
	}
}

// Spikes adds count thin elongated triangles radiating from center — the
// chestnut-burr primitive driving extreme traversal divergence.
func (b *Builder) Spikes(center vecmath.Vec3, radius, length float32, count int, mat int32) {
	for i := 0; i < count; i++ {
		dir := b.rng.UnitSphere()
		base := center.Add(dir.Scale(radius))
		tip := base.Add(dir.Scale(length))
		side := dir.Cross(b.rng.UnitSphere()).Norm().Scale(length * 0.06)
		b.Tri(base.Add(side), base.Sub(side), tip, mat)
	}
}

// Box adds the six faces of an axis-aligned box. If inward is true the
// winding is flipped so normals face the interior (used for enclosed rooms).
func (b *Builder) Box(bb vecmath.AABB, inward bool, mat int32) {
	lo, hi := bb.Lo, bb.Hi
	v := [8]vecmath.Vec3{
		{X: lo.X, Y: lo.Y, Z: lo.Z}, {X: hi.X, Y: lo.Y, Z: lo.Z},
		{X: hi.X, Y: hi.Y, Z: lo.Z}, {X: lo.X, Y: hi.Y, Z: lo.Z},
		{X: lo.X, Y: lo.Y, Z: hi.Z}, {X: hi.X, Y: lo.Y, Z: hi.Z},
		{X: hi.X, Y: hi.Y, Z: hi.Z}, {X: lo.X, Y: hi.Y, Z: hi.Z},
	}
	faces := [6][4]int{
		{0, 1, 2, 3}, // back  (z = lo)
		{5, 4, 7, 6}, // front (z = hi)
		{4, 0, 3, 7}, // left
		{1, 5, 6, 2}, // right
		{3, 2, 6, 7}, // top
		{4, 5, 1, 0}, // bottom
	}
	for _, f := range faces {
		if inward {
			b.Quad(v[f[3]], v[f[2]], v[f[1]], v[f[0]], mat)
		} else {
			b.Quad(v[f[0]], v[f[1]], v[f[2]], v[f[3]], mat)
		}
	}
}

// Columns adds nx×nz vertical boxes (pillars) across the floor area —
// the Sponza-atrium primitive.
func (b *Builder) Columns(area vecmath.AABB, nx, nz int, width, height float32, mat int32) {
	dx := (area.Hi.X - area.Lo.X) / float32(nx+1)
	dz := (area.Hi.Z - area.Lo.Z) / float32(nz+1)
	for i := 1; i <= nx; i++ {
		for j := 1; j <= nz; j++ {
			cx := area.Lo.X + float32(i)*dx
			cz := area.Lo.Z + float32(j)*dz
			b.Box(vecmath.AABB{
				Lo: vecmath.V(cx-width/2, area.Lo.Y, cz-width/2),
				Hi: vecmath.V(cx+width/2, area.Lo.Y+height, cz+width/2),
			}, false, mat)
		}
	}
}

// Build finalises the scene with the provided name, camera, light and path
// depth, and validates it.
func (b *Builder) Build(name string, cam Camera, light vecmath.Vec3, maxDepth int, seed uint64) (*Scene, error) {
	s := &Scene{
		Name:     name,
		Tris:     b.tris,
		Mats:     b.mats,
		Cam:      cam,
		Light:    light,
		MaxDepth: maxDepth,
		Seed:     seed,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
