package scene

import (
	"testing"

	"zatel/internal/vecmath"
)

func TestTriangleHitStraightOn(t *testing.T) {
	tri := Triangle{
		V0: vecmath.V(-1, -1, 5),
		V1: vecmath.V(1, -1, 5),
		V2: vecmath.V(0, 1, 5),
	}
	r := vecmath.NewRay(vecmath.V(0, 0, 0), vecmath.V(0, 0, 1))
	d, ok := tri.Hit(r)
	if !ok {
		t.Fatal("ray through triangle center missed")
	}
	if d < 4.99 || d > 5.01 {
		t.Errorf("hit distance %v, want 5", d)
	}
}

func TestTriangleHitMiss(t *testing.T) {
	tri := Triangle{
		V0: vecmath.V(-1, -1, 5),
		V1: vecmath.V(1, -1, 5),
		V2: vecmath.V(0, 1, 5),
	}
	// Outside the triangle but inside its bounding box corner region.
	r := vecmath.NewRay(vecmath.V(0.9, 0.9, 0), vecmath.V(0, 0, 1))
	if _, ok := tri.Hit(r); ok {
		t.Error("corner miss reported as hit")
	}
	// Parallel ray.
	r2 := vecmath.NewRay(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0))
	if _, ok := tri.Hit(r2); ok {
		t.Error("parallel ray reported as hit")
	}
}

func TestTriangleHitRespectsInterval(t *testing.T) {
	tri := Triangle{
		V0: vecmath.V(-1, -1, 5),
		V1: vecmath.V(1, -1, 5),
		V2: vecmath.V(0, 1, 5),
	}
	r := vecmath.NewRay(vecmath.V(0, 0, 0), vecmath.V(0, 0, 1))
	r.TMax = 4
	if _, ok := tri.Hit(r); ok {
		t.Error("hit beyond TMax accepted")
	}
	// Behind the origin.
	r3 := vecmath.NewRay(vecmath.V(0, 0, 10), vecmath.V(0, 0, 1))
	if _, ok := tri.Hit(r3); ok {
		t.Error("hit behind origin accepted")
	}
}

func TestTriangleBoundsContainVertices(t *testing.T) {
	tri := Triangle{V0: vecmath.V(1, 2, 3), V1: vecmath.V(-1, 0, 4), V2: vecmath.V(2, -3, 1)}
	b := tri.Bounds()
	for _, v := range []vecmath.Vec3{tri.V0, tri.V1, tri.V2, tri.Centroid()} {
		if !b.Contains(v) {
			t.Errorf("bounds %v does not contain %v", b, v)
		}
	}
}

func TestTriangleNormalOrthogonal(t *testing.T) {
	tri := Triangle{V0: vecmath.V(0, 0, 0), V1: vecmath.V(1, 0, 0), V2: vecmath.V(0, 1, 0)}
	n := tri.Normal()
	if n != vecmath.V(0, 0, 1) {
		t.Errorf("normal = %v, want +z", n)
	}
}

func TestCameraRayCenterAndCorners(t *testing.T) {
	cam := Camera{
		Eye:    vecmath.V(0, 0, 0),
		LookAt: vecmath.V(0, 0, 1),
		Up:     vecmath.V(0, 1, 0),
		FOVDeg: 90,
	}
	cam.Finalize(1)
	center := cam.Ray(0.5, 0.5)
	if center.Dir.Sub(vecmath.V(0, 0, 1)).Len() > 1e-5 {
		t.Errorf("center ray dir = %v", center.Dir)
	}
	// v=0 is the top of the frame.
	top := cam.Ray(0.5, 0)
	if top.Dir.Y <= 0 {
		t.Errorf("top-row ray points down: %v", top.Dir)
	}
	left := cam.Ray(0, 0.5)
	right := cam.Ray(1, 0.5)
	if left.Dir.X >= 0 || right.Dir.X <= 0 {
		t.Errorf("horizontal rays wrong: left=%v right=%v", left.Dir, right.Dir)
	}
}

func TestValidateCatchesBadScenes(t *testing.T) {
	good, err := Sprng()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Scene)
	}{
		{"empty name", func(s *Scene) { s.Name = "" }},
		{"no tris", func(s *Scene) { s.Tris = nil }},
		{"no mats", func(s *Scene) { s.Mats = nil }},
		{"mat out of range", func(s *Scene) {
			s.Tris = append([]Triangle{}, s.Tris...)
			s.Tris[0].Mat = 99
		}},
		{"negative depth", func(s *Scene) { s.MaxDepth = -1 }},
		{"bad fov", func(s *Scene) { s.Cam.FOVDeg = 0 }},
	}
	for _, tc := range cases {
		s := *good
		tc.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid scene", tc.name)
		}
	}
}

func TestLibraryScenesValid(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("scene name %q registered under %q", s.Name, name)
		}
		if len(s.Tris) < 100 {
			t.Errorf("%s: only %d triangles, too trivial", name, len(s.Tris))
		}
		if !s.Bounds().Valid() {
			t.Errorf("%s: invalid bounds", name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NOPE"); err == nil {
		t.Error("unknown scene did not error")
	}
}

func TestByNameCaches(t *testing.T) {
	a, err := ByName("BUNNY")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("BUNNY")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("ByName rebuilt a cached scene")
	}
}

func TestSceneDeterminism(t *testing.T) {
	a, err := Park()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Park()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tris) != len(b.Tris) {
		t.Fatalf("triangle counts differ: %d vs %d", len(a.Tris), len(b.Tris))
	}
	for i := range a.Tris {
		if a.Tris[i] != b.Tris[i] {
			t.Fatalf("triangle %d differs between builds", i)
		}
	}
}

func TestRepresentativeSubsetIsSubset(t *testing.T) {
	all := map[string]bool{}
	for _, n := range Names() {
		all[n] = true
	}
	for _, n := range RepresentativeSubset() {
		if !all[n] {
			t.Errorf("representative scene %s not in Names()", n)
		}
	}
}

func TestBuilderQuadWinding(t *testing.T) {
	b := NewBuilder(1)
	m := b.AddMaterial(Material{Kind: Diffuse})
	b.Quad(vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(1, 1, 0), vecmath.V(0, 1, 0), m)
	s, err := b.Build("q", Camera{FOVDeg: 60, LookAt: vecmath.V(0, 0, 1), Up: vecmath.V(0, 1, 0)}, vecmath.V(0, 5, 0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tris) != 2 {
		t.Fatalf("quad produced %d tris", len(s.Tris))
	}
	// Both triangles share the quad plane normal.
	if s.Tris[0].Normal() != s.Tris[1].Normal() {
		t.Errorf("quad halves have different normals: %v vs %v",
			s.Tris[0].Normal(), s.Tris[1].Normal())
	}
}
