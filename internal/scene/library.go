package scene

import (
	"fmt"
	"sort"
	"sync"

	"zatel/internal/vecmath"
)

// The scene library reproduces the *workload characterisation* of each
// LumiBench scene used in the Zatel evaluation (the assets themselves are
// not redistributable). The property each scene must exhibit — its heatmap
// temperature profile and how well it saturates a GPU — is documented on
// its constructor and asserted by the heat-contrast tests in internal/rt and internal/heatmap.

// Names returns the scene names in the canonical order used by the paper's
// figures.
func Names() []string {
	return []string{"PARK", "SHIP", "WKND", "BUNNY", "SPRNG", "CHSNT", "SPNZA", "BATH"}
}

// RepresentativeSubset returns the LumiBench representative subset used for
// Fig. 17: the scenes that adequately stress a downscaled GPU.
func RepresentativeSubset() []string {
	return []string{"PARK", "BUNNY", "SPNZA", "BATH"}
}

var registry = map[string]func() (*Scene, error){
	"PARK":  Park,
	"SHIP":  Ship,
	"WKND":  Wknd,
	"BUNNY": Bunny,
	"SPRNG": Sprng,
	"CHSNT": Chsnt,
	"SPNZA": Spnza,
	"BATH":  Bath,
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Scene{}
)

// ByName returns the named scene, building it on first use and caching the
// result. The returned scene is shared and must be treated as read-only.
func ByName(name string) (*Scene, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if s, ok := cache[name]; ok {
		return s, nil
	}
	ctor, ok := registry[name]
	if !ok {
		known := make([]string, 0, len(registry))
		for k := range registry {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("scene: unknown name %q (known: %v)", name, known)
	}
	s, err := ctor()
	if err != nil {
		return nil, err
	}
	cache[name] = s
	return s, nil
}

// Park is the hardest path-tracing workload: a foliage field over diffuse
// ground with a mirror pond, depth-3 paths. It saturates the GPU across
// nearly the whole frame (uniformly warm heatmap).
func Park() (*Scene, error) {
	b := NewBuilder(0x9a11)
	ground := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.35, 0.45, 0.25), BounceProb: 0.8})
	leaf := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.2, 0.6, 0.2), BounceProb: 0.9})
	trunk := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.4, 0.3, 0.2), BounceProb: 0.6})
	pond := b.AddMaterial(Material{Kind: Mirror, Albedo: vecmath.V(0.8, 0.85, 0.9)})

	b.GroundPlane(0, 30, 12, ground)
	// Mirror pond in the middle distance.
	b.Quad(
		vecmath.V(-8, 0.02, 4), vecmath.V(8, 0.02, 4),
		vecmath.V(8, 0.02, 14), vecmath.V(-8, 0.02, 14), pond)

	rng := vecmath.NewRNG(0x9a12)
	for i := 0; i < 48; i++ {
		x := rng.Range(-24, 24)
		z := rng.Range(-6, 26)
		h := rng.Range(2.5, 5)
		// Trunk.
		b.Box(vecmath.AABB{
			Lo: vecmath.V(x-0.15, 0, z-0.15),
			Hi: vecmath.V(x+0.15, h, z+0.15),
		}, false, trunk)
		// Canopy of scattered leaves.
		b.Cluster(vecmath.V(x, h+1.0, z), 1.6, 760, 0.2, 0.5, leaf)
	}

	cam := Camera{
		Eye:    vecmath.V(0, 3.0, -12),
		LookAt: vecmath.V(0, 2.2, 8),
		Up:     vecmath.V(0, 1, 0),
		FOVDeg: 58,
	}
	return b.Build("PARK", cam, vecmath.V(12, 25, -10), 3, 0x9a13)
}

// Ship has the coldest heatmap: a single detailed hull low in the frame with
// empty sky elsewhere, so most primary rays terminate at the BVH root.
func Ship() (*Scene, error) {
	b := NewBuilder(0x51b1)
	hull := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.45, 0.35, 0.3), BounceProb: 0.5})
	sail := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.9, 0.9, 0.85), BounceProb: 0.3})

	// Hull: an elongated perturbed blob.
	b.Blob(vecmath.V(0, -2.2, 10), 2.0, 40, 80, 0.25, hull)
	// Masts and sails as thin boxes/quads above the hull.
	for i := -1; i <= 1; i++ {
		x := float32(i) * 1.3
		b.Box(vecmath.AABB{
			Lo: vecmath.V(x-0.05, -1.2, 9.9),
			Hi: vecmath.V(x+0.05, 2.2, 10.1),
		}, false, hull)
		b.Quad(
			vecmath.V(x-0.9, 2.0, 10), vecmath.V(x+0.9, 2.0, 10),
			vecmath.V(x+0.9, 0.2, 10), vecmath.V(x-0.9, 0.2, 10), sail)
	}

	cam := Camera{
		Eye:    vecmath.V(0, 0.5, -6),
		LookAt: vecmath.V(0, -0.8, 10),
		Up:     vecmath.V(0, 1, 0),
		FOVDeg: 62,
	}
	return b.Build("SHIP", cam, vecmath.V(15, 20, -5), 2, 0x51b2)
}

// Wknd mixes warm and cold: the left half of the frame sees a cluttered
// interior while the right half sees open sky.
func Wknd() (*Scene, error) {
	b := NewBuilder(0x3e6d)
	wall := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.7, 0.65, 0.6), BounceProb: 0.7})
	wood := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.5, 0.35, 0.2), BounceProb: 0.7})
	metal := b.AddMaterial(Material{Kind: Mirror, Albedo: vecmath.V(0.85, 0.85, 0.85)})

	// Interior occupying x < 0: floor, back wall, side wall.
	b.Quad(vecmath.V(-14, -2, 0), vecmath.V(0.5, -2, 0),
		vecmath.V(0.5, -2, 18), vecmath.V(-14, -2, 18), wall)
	b.Quad(vecmath.V(-14, -2, 16), vecmath.V(0.5, -2, 16),
		vecmath.V(0.5, 8, 16), vecmath.V(-14, 8, 16), wall)
	b.Quad(vecmath.V(-14, -2, 0), vecmath.V(-14, -2, 18),
		vecmath.V(-14, 8, 18), vecmath.V(-14, 8, 0), wall)

	// Furniture: boxes and cluttered clusters on the interior side.
	rng := vecmath.NewRNG(0x3e6e)
	for i := 0; i < 10; i++ {
		x := rng.Range(-12, -1)
		z := rng.Range(4, 14)
		w := rng.Range(0.6, 1.6)
		h := rng.Range(0.8, 3.0)
		mat := wood
		if i%3 == 0 {
			mat = metal
		}
		b.Box(vecmath.AABB{
			Lo: vecmath.V(x-w/2, -2, z-w/2),
			Hi: vecmath.V(x+w/2, -2+h, z+w/2),
		}, false, mat)
	}
	for i := 0; i < 6; i++ {
		b.Cluster(vecmath.V(rng.Range(-12, -2), rng.Range(0, 3), rng.Range(5, 13)),
			1.0, 1400, 0.1, 0.3, wood)
	}

	cam := Camera{
		Eye:    vecmath.V(3, 1, -4),
		LookAt: vecmath.V(-2, 0.5, 10),
		Up:     vecmath.V(0, 1, 0),
		FOVDeg: 65,
	}
	return b.Build("WKND", cam, vecmath.V(8, 14, -6), 2, 0x3e6f)
}

// Bunny has the warmest heatmap: a finely tessellated perturbed blob filling
// the view, so every primary ray traverses deep into a dense BVH.
func Bunny() (*Scene, error) {
	b := NewBuilder(0xb077)
	fur := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.75, 0.7, 0.65), BounceProb: 0.85})
	base := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.3, 0.3, 0.35), BounceProb: 0.6})

	// Body and head: high-resolution bumpy blobs that cover the frame.
	b.Blob(vecmath.V(0, 0, 6), 3.2, 104, 208, 0.18, fur)
	b.Blob(vecmath.V(0.8, 3.0, 5.4), 1.5, 56, 112, 0.22, fur)
	// Ears.
	b.Blob(vecmath.V(0.2, 4.8, 5.4), 0.6, 16, 24, 0.3, fur)
	b.Blob(vecmath.V(1.6, 4.8, 5.4), 0.6, 16, 24, 0.3, fur)
	// Pedestal right behind, catching the frame edges.
	b.Box(vecmath.AABB{
		Lo: vecmath.V(-6, -4.4, 3),
		Hi: vecmath.V(6, -2.9, 9),
	}, false, base)

	cam := Camera{
		Eye:    vecmath.V(0, 0.8, -1.2),
		LookAt: vecmath.V(0.2, 1.0, 6),
		Up:     vecmath.V(0, 1, 0),
		FOVDeg: 70,
	}
	return b.Build("BUNNY", cam, vecmath.V(6, 10, -8), 2, 0xb078)
}

// Sprng contains only two objects; most rays terminate at the root and the
// GPU is underutilised — the paper's linear-extrapolation outlier.
func Sprng() (*Scene, error) {
	b := NewBuilder(0x5916)
	m1 := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.8, 0.3, 0.3), BounceProb: 0.5})
	m2 := b.AddMaterial(Material{Kind: Mirror, Albedo: vecmath.V(0.7, 0.8, 0.7)})

	b.Sphere(vecmath.V(-2.2, 0, 9), 1.6, 20, 40, m1)
	b.Sphere(vecmath.V(2.6, 0.5, 12), 2.0, 20, 40, m2)

	cam := Camera{
		Eye:    vecmath.V(0, 0, -4),
		LookAt: vecmath.V(0, 0, 10),
		Up:     vecmath.V(0, 1, 0),
		FOVDeg: 60,
	}
	return b.Build("SPRNG", cam, vecmath.V(10, 12, -6), 2, 0x5917)
}

// Chsnt scatters spiky chestnut burrs across the frame, driving extreme
// per-warp traversal divergence.
func Chsnt() (*Scene, error) {
	b := NewBuilder(0xc45e)
	burr := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.55, 0.4, 0.2), BounceProb: 0.8})
	core := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.35, 0.2, 0.1), BounceProb: 0.6})
	ground := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.4, 0.35, 0.3), BounceProb: 0.7})

	b.GroundPlane(-3, 20, 8, ground)
	rng := vecmath.NewRNG(0xc45f)
	for i := 0; i < 20; i++ {
		c := vecmath.V(rng.Range(-8, 8), rng.Range(-1.5, 3), rng.Range(5, 16))
		r := rng.Range(0.5, 1.1)
		b.Sphere(c, r*0.8, 14, 28, core)
		b.Spikes(c, r*0.8, r*0.9, 850, burr)
	}

	cam := Camera{
		Eye:    vecmath.V(0, 1, -4),
		LookAt: vecmath.V(0, 0.5, 10),
		Up:     vecmath.V(0, 1, 0),
		FOVDeg: 62,
	}
	return b.Build("CHSNT", cam, vecmath.V(8, 16, -4), 2, 0xc460)
}

// Spnza is the enclosed atrium: every primary ray hits geometry, producing a
// uniform heatmap and the lowest prediction error at small sample fractions.
func Spnza() (*Scene, error) {
	b := NewBuilder(0x59a2)
	stone := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.6, 0.55, 0.5), BounceProb: 0.75})
	drape := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.6, 0.2, 0.2), BounceProb: 0.75})

	room := vecmath.AABB{Lo: vecmath.V(-10, -3, -2), Hi: vecmath.V(10, 9, 22)}
	b.Box(room, true, stone)
	b.Columns(vecmath.AABB{Lo: vecmath.V(-8, -3, 2), Hi: vecmath.V(8, -3, 18)}, 4, 3, 0.9, 8, stone)
	// Hanging drapes between columns.
	rng := vecmath.NewRNG(0x59a3)
	for i := 0; i < 6; i++ {
		x := rng.Range(-7, 7)
		z := rng.Range(4, 16)
		b.Quad(
			vecmath.V(x-1.2, 6.5, z), vecmath.V(x+1.2, 6.5, z),
			vecmath.V(x+1.0, 2.0, z+0.4), vecmath.V(x-1.0, 2.0, z+0.4), drape)
	}

	for i := 0; i < 12; i++ {
		b.Cluster(vecmath.V(rng.Range(-8, 8), rng.Range(-2, 7), rng.Range(2, 20)),
			0.9, 900, 0.05, 0.2, stone)
	}

	cam := Camera{
		Eye:    vecmath.V(0, 1.2, 0),
		LookAt: vecmath.V(0.5, 1.5, 20),
		Up:     vecmath.V(0, 1, 0),
		FOVDeg: 68,
	}
	return b.Build("SPNZA", cam, vecmath.V(0, 8, 10), 2, 0x59a4)
}

// Bath is the longest-running workload: an enclosed mirrored room with dense
// geometry and depth-4 paths, giving maximal GPU saturation.
func Bath() (*Scene, error) {
	b := NewBuilder(0xba78)
	tile := b.AddMaterial(Material{Kind: Diffuse, Albedo: vecmath.V(0.75, 0.8, 0.85), BounceProb: 0.85})
	mirror := b.AddMaterial(Material{Kind: Mirror, Albedo: vecmath.V(0.88, 0.9, 0.92)})
	brass := b.AddMaterial(Material{Kind: Mirror, Albedo: vecmath.V(0.8, 0.7, 0.4)})

	room := vecmath.AABB{Lo: vecmath.V(-7, -3, -2), Hi: vecmath.V(7, 6, 16)}
	b.Box(room, true, tile)
	// Mirror panels on the side walls and back wall.
	b.Quad(vecmath.V(-6.99, -1, 2), vecmath.V(-6.99, -1, 12),
		vecmath.V(-6.99, 4, 12), vecmath.V(-6.99, 4, 2), mirror)
	b.Quad(vecmath.V(6.99, -1, 12), vecmath.V(6.99, -1, 2),
		vecmath.V(6.99, 4, 2), vecmath.V(6.99, 4, 12), mirror)
	b.Quad(vecmath.V(-5, -1, 15.99), vecmath.V(5, -1, 15.99),
		vecmath.V(5, 4.5, 15.99), vecmath.V(-5, 4.5, 15.99), mirror)

	// Tub: a reflective elongated blob; fittings: dense brass clusters.
	b.Blob(vecmath.V(0, -2.0, 9), 2.4, 44, 88, 0.12, brass)
	rng := vecmath.NewRNG(0xba79)
	for i := 0; i < 16; i++ {
		b.Cluster(vecmath.V(rng.Range(-5, 5), rng.Range(-1, 3), rng.Range(4, 14)),
			0.8, 900, 0.08, 0.28, brass)
	}

	cam := Camera{
		Eye:    vecmath.V(0, 1.0, -1),
		LookAt: vecmath.V(0, 0.5, 12),
		Up:     vecmath.V(0, 1, 0),
		FOVDeg: 66,
	}
	return b.Build("BATH", cam, vecmath.V(0, 5, 6), 4, 0xba7a)
}
