// Package extrapolate implements step 7's per-group prediction scaling
// (Section III-G): linear extrapolation of absolute metrics by the traced
// pixel fraction, the three-point exponential regression alternative
// evaluated in Section IV-F, and the empirical speedup model of Eq. 4.
package extrapolate

import (
	"fmt"
	"math"
)

// Linear scales an absolute metric measured on a fraction of the pixels up
// to the full workload: value/fraction. (The paper's example: 100,000
// cycles at 10% extrapolates to 1,000,000.)
func Linear(value, fraction float64) (float64, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("extrapolate: fraction %v out of (0,1]", fraction)
	}
	return value / fraction, nil
}

// ExpRegression fits y(p) = A + B·rᵖ through three equally spaced samples
// (p[0], y[0]) … (p[2], y[2]) and returns the value extrapolated to p=1
// (100% of pixels). The paper feeds it runs at 20%, 30% and 40%.
//
// Degenerate inputs — non-monotone or non-exponential sample triples —
// return an error; callers fall back to Linear, mirroring how a practical
// pipeline must handle regression failure.
func ExpRegression(p, y [3]float64) (float64, error) {
	d1 := p[1] - p[0]
	d2 := p[2] - p[1]
	if d1 <= 0 || math.Abs(d1-d2) > 1e-9*math.Max(d1, d2) {
		return 0, fmt.Errorf("extrapolate: sample points %v not equally spaced ascending", p)
	}
	dy1 := y[1] - y[0]
	dy2 := y[2] - y[1]
	if dy1 == 0 {
		if dy2 == 0 {
			// Constant signal: already converged.
			return y[0], nil
		}
		return 0, fmt.Errorf("extrapolate: flat-then-moving samples are not exponential")
	}
	ratio := dy2 / dy1
	if ratio <= 0 {
		return 0, fmt.Errorf("extrapolate: non-monotone samples (ratio %v)", ratio)
	}
	// ratio = r^d  =>  r = ratio^(1/d)
	r := math.Pow(ratio, 1/d1)
	if math.Abs(r-1) < 1e-12 {
		// Linear growth: B·rᵖ degenerates; extend the straight line.
		slope := dy1 / d1
		return y[2] + slope*(1-p[2]), nil
	}
	// B·r^p0 satisfies y1 − y0 = B·r^p0·(r^d − 1).
	brp0 := dy1 / (math.Pow(r, d1) - 1)
	a := y[0] - brp0
	val := a + brp0*math.Pow(r, 1-p[0])
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return 0, fmt.Errorf("extrapolate: regression diverged")
	}
	return val, nil
}

// SpeedupModel is Eq. 4: the empirical fit predicting Zatel's simulation
// time speedup from the percentage of pixels traced,
// speedup(perc) = 181·perc^−1.15 (perc in percent). The fit was produced
// from measurements at 10–100%; arguments outside that domain — notably a
// 0–1 *fraction* passed where a percentage is expected — return an error
// rather than a wildly extrapolated value.
func SpeedupModel(percent float64) (float64, error) {
	if percent < 10 || percent > 100 {
		return 0, fmt.Errorf("extrapolate: speedup model domain is perc ∈ [10,100], got %v", percent)
	}
	return 181 * math.Pow(percent, -1.15), nil
}

// PowerFit fits y = a·x^b by least squares in log-log space — the
// procedure that produced Eq. 4 from the Fig. 15 measurements. All inputs
// must be positive.
func PowerFit(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("extrapolate: need ≥2 paired samples, got %d/%d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return 0, 0, fmt.Errorf("extrapolate: power fit requires positive samples")
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("extrapolate: degenerate x samples")
	}
	b = (n*sxy - sx*sy) / den
	a = math.Exp((sy - b*sx) / n)
	return a, b, nil
}
