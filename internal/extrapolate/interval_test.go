package extrapolate

import (
	"math"
	"testing"
)

func TestReplicateIntervalKnownValues(t *testing.T) {
	// Five replicates {10,11,12,13,14}: mean 12, sd sqrt(2.5), df 4,
	// t(4, 0.95) = 2.776 → half-width 2.776·sqrt(2.5)/sqrt(5).
	iv, err := ReplicateInterval([]float64{10, 11, 12, 13, 14}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Mean != 12 || iv.Replicates != 5 {
		t.Fatalf("mean %v replicates %d, want 12 and 5", iv.Mean, iv.Replicates)
	}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(iv.HalfWidth()-want) > 1e-9 {
		t.Errorf("half-width %v, want %v", iv.HalfWidth(), want)
	}
	if math.Abs((iv.Low+iv.High)/2-iv.Mean) > 1e-12 {
		t.Error("interval not centred on the mean")
	}
}

func TestReplicateIntervalDegenerate(t *testing.T) {
	// One replicate: no spread information, degenerate zero-width interval.
	iv, err := ReplicateInterval([]float64{7}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Low != 7 || iv.High != 7 || iv.HalfWidth() != 0 {
		t.Errorf("single replicate interval %+v, want degenerate at 7", iv)
	}
	// Perfectly agreeing replicates collapse too.
	iv, err = ReplicateInterval([]float64{3, 3, 3}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if iv.HalfWidth() != 0 {
		t.Errorf("agreeing replicates half-width %v, want 0", iv.HalfWidth())
	}
}

func TestReplicateIntervalValidation(t *testing.T) {
	if _, err := ReplicateInterval(nil, 0.95); err == nil {
		t.Error("empty estimates accepted")
	}
	if _, err := ReplicateInterval([]float64{1, 2}, 0.80); err == nil {
		t.Error("untabulated confidence accepted")
	}
}

func TestLinearReplicatesExtrapolatesPerFraction(t *testing.T) {
	// Each replicate measured value/fraction pairs extrapolating to exactly
	// 100 → zero-width interval at 100.
	iv, err := LinearReplicates([]float64{10, 20, 50}, []float64{0.1, 0.2, 0.5}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.Mean-100) > 1e-9 || iv.HalfWidth() > 1e-9 {
		t.Errorf("interval %+v, want degenerate at 100", iv)
	}
	if _, err := LinearReplicates([]float64{1}, []float64{0.5, 0.6}, 0.95); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := LinearReplicates([]float64{1}, []float64{0}, 0.95); err == nil {
		t.Error("zero fraction accepted")
	}
}

func TestTCriticalWidensWithConfidence(t *testing.T) {
	for _, df := range []int{1, 4, 29, 30, 200} {
		t90, err := tCritical(df, 0.90)
		if err != nil {
			t.Fatal(err)
		}
		t95, _ := tCritical(df, 0.95)
		t99, _ := tCritical(df, 0.99)
		if !(t90 < t95 && t95 < t99) {
			t.Errorf("df %d: critical values %v/%v/%v not increasing in confidence", df, t90, t95, t99)
		}
	}
	// Past the table, the normal quantile takes over.
	if tv, _ := tCritical(31, 0.95); tv != 1.960 {
		t.Errorf("df 31 critical %v, want normal 1.960", tv)
	}
	if _, err := tCritical(0, 0.95); err == nil {
		t.Error("df 0 accepted")
	}
}

// TestIntervalShrinksWithMoreReplicates checks the CI shrinkage property at
// the estimator level: the same per-replicate spread over more replicates
// yields a narrower interval (both t and 1/√R shrink).
func TestIntervalShrinksWithMoreReplicates(t *testing.T) {
	few, err := ReplicateInterval([]float64{9, 11, 10}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	many, err := ReplicateInterval([]float64{9, 11, 10, 9, 11, 10, 9, 11, 10}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if many.HalfWidth() >= few.HalfWidth() {
		t.Errorf("9 replicates half-width %v not below 3 replicates %v",
			many.HalfWidth(), few.HalfWidth())
	}
}
