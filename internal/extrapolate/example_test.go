package extrapolate_test

import (
	"fmt"

	"zatel/internal/extrapolate"
)

// The paper's Section III-G example: 100,000 cycles measured while tracing
// 10% of pixels extrapolates linearly to 1,000,000.
func ExampleLinear() {
	cycles, _ := extrapolate.Linear(100_000, 0.1)
	fmt.Printf("%.0f\n", cycles)
	// Output:
	// 1000000
}

// Eq. 4 predicts the simulation-time speedup from the traced percentage.
func ExampleSpeedupModel() {
	at10, _ := extrapolate.SpeedupModel(10)
	at50, _ := extrapolate.SpeedupModel(50)
	fmt.Printf("10%%: %.1fx\n", at10)
	fmt.Printf("50%%: %.1fx\n", at50)
	// Output:
	// 10%: 12.8x
	// 50%: 2.0x
}
