package extrapolate

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinear(t *testing.T) {
	// The paper's example: 100,000 cycles at 10% → 1,000,000.
	got, err := Linear(100_000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1_000_000 {
		t.Errorf("Linear = %v", got)
	}
	if _, err := Linear(1, 0); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := Linear(1, 1.2); err == nil {
		t.Error("fraction >1 accepted")
	}
	if v, err := Linear(42, 1); err != nil || v != 42 {
		t.Errorf("identity fraction: %v, %v", v, err)
	}
}

func TestExpRegressionRecoversExactExponential(t *testing.T) {
	// y(p) = 5 + 3·0.1^p sampled at 0.2/0.3/0.4 must extrapolate to
	// y(1) = 5.3.
	y := func(p float64) float64 { return 5 + 3*math.Pow(0.1, p) }
	got, err := ExpRegression(
		[3]float64{0.2, 0.3, 0.4},
		[3]float64{y(0.2), y(0.3), y(0.4)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-y(1)) > 1e-6*y(1) {
		t.Errorf("extrapolated %v, want %v", got, y(1))
	}
}

func TestExpRegressionGrowingCurve(t *testing.T) {
	// Cycles grow with traced fraction: y(p) = 1000 - 800·exp(-3p).
	y := func(p float64) float64 { return 1000 - 800*math.Exp(-3*p) }
	got, err := ExpRegression(
		[3]float64{0.2, 0.3, 0.4},
		[3]float64{y(0.2), y(0.3), y(0.4)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-y(1)) > 1e-6*y(1) {
		t.Errorf("extrapolated %v, want %v", got, y(1))
	}
}

func TestExpRegressionConstant(t *testing.T) {
	got, err := ExpRegression([3]float64{0.2, 0.3, 0.4}, [3]float64{7, 7, 7})
	if err != nil || got != 7 {
		t.Errorf("constant: %v, %v", got, err)
	}
}

func TestExpRegressionLinearSamples(t *testing.T) {
	// Perfectly linear samples must extend the line.
	got, err := ExpRegression([3]float64{0.2, 0.3, 0.4}, [3]float64{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("linear extension = %v, want 10", got)
	}
}

func TestExpRegressionRejectsBadInputs(t *testing.T) {
	if _, err := ExpRegression([3]float64{0.4, 0.3, 0.2}, [3]float64{1, 2, 3}); err == nil {
		t.Error("descending points accepted")
	}
	if _, err := ExpRegression([3]float64{0.2, 0.3, 0.5}, [3]float64{1, 2, 3}); err == nil {
		t.Error("unequal spacing accepted")
	}
	// Non-monotone (oscillating) samples.
	if _, err := ExpRegression([3]float64{0.2, 0.3, 0.4}, [3]float64{1, 5, 2}); err == nil {
		t.Error("oscillating samples accepted")
	}
	if _, err := ExpRegression([3]float64{0.2, 0.3, 0.4}, [3]float64{3, 3, 9}); err == nil {
		t.Error("flat-then-moving accepted")
	}
}

func TestSpeedupModelMatchesEq4(t *testing.T) {
	// Eq. 4 endpoints: ≈12.8× at 10%, ≈1× at ~91%.
	at10, err := SpeedupModel(10)
	if err != nil {
		t.Fatal(err)
	}
	if at10 < 12 || at10 > 13.5 {
		t.Errorf("speedup(10%%) = %v, want ≈12.8", at10)
	}
	at100, err := SpeedupModel(100)
	if err != nil {
		t.Fatal(err)
	}
	if at100 < 0.8 || at100 > 1.1 {
		t.Errorf("speedup(100%%) = %v, want ≈0.9", at100)
	}
	// Strictly decreasing.
	at20, _ := SpeedupModel(20)
	if at20 >= at10 {
		t.Error("speedup not decreasing")
	}
}

func TestSpeedupModelDomain(t *testing.T) {
	// The classic misuse: passing a 0–1 fraction where a percentage is
	// expected must be rejected, as must anything past 100%.
	for _, p := range []float64{0, 0.3, 9.99, 100.01, -5} {
		if _, err := SpeedupModel(p); err == nil {
			t.Errorf("SpeedupModel(%v) accepted out-of-domain input", p)
		}
	}
	for _, p := range []float64{10, 55, 100} {
		if _, err := SpeedupModel(p); err != nil {
			t.Errorf("SpeedupModel(%v) rejected in-domain input: %v", p, err)
		}
	}
}

func TestPowerFitRecoversEq4(t *testing.T) {
	xs := []float64{10, 20, 30, 50, 70, 90}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i], _ = SpeedupModel(x)
	}
	a, b, err := PowerFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-181) > 0.5 || math.Abs(b+1.15) > 0.01 {
		t.Errorf("PowerFit = %v·x^%v, want 181·x^-1.15", a, b)
	}
}

func TestPowerFitValidation(t *testing.T) {
	if _, _, err := PowerFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, _, err := PowerFit([]float64{1, -2}, []float64{1, 1}); err == nil {
		t.Error("negative sample accepted")
	}
	if _, _, err := PowerFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

// Property: exponential regression is exact on any true exponential with
// positive ratio.
func TestExpRegressionProperty(t *testing.T) {
	f := func(aRaw, bRaw, rRaw uint16) bool {
		a := float64(aRaw)/100 - 300 // [-300, 355]
		b := float64(bRaw)/200 + 0.5 // [0.5, 328]
		r := float64(rRaw)/65536*2 + 0.01
		if math.Abs(r-1) < 1e-3 {
			return true
		}
		y := func(p float64) float64 { return a + b*math.Pow(r, p) }
		got, err := ExpRegression(
			[3]float64{0.2, 0.3, 0.4},
			[3]float64{y(0.2), y(0.3), y(0.4)})
		if err != nil {
			return false
		}
		want := y(1)
		tol := 1e-5 * (math.Abs(want) + 1)
		return math.Abs(got-want) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
