package extrapolate

import (
	"fmt"
	"math"
)

// Interval is a two-sided confidence interval around an extrapolated
// estimate. Zero-width intervals (Low == High == Mean) arise from a single
// replicate or perfectly agreeing replicates.
type Interval struct {
	// Mean is the point estimate: the mean of the per-replicate
	// extrapolations.
	Mean float64
	// Low and High bound the confidence interval.
	Low, High float64
	// Replicates is the number of sub-draws the interval was computed from.
	Replicates int
}

// HalfWidth returns the interval's half-width (High−Low)/2.
func (iv Interval) HalfWidth() float64 { return (iv.High - iv.Low) / 2 }

// ReplicateInterval builds a Student-t confidence interval from independent
// per-replicate estimates — the repeated-subsampling construction: each
// disjoint sub-draw yields its own extrapolated value, the mean of those
// values is the estimate, and their spread (s/√R, df = R−1) gives the
// interval. confidence must be one of 0.90, 0.95 or 0.99 (the tabulated
// levels). A single replicate yields a degenerate zero-width interval.
func ReplicateInterval(estimates []float64, confidence float64) (Interval, error) {
	r := len(estimates)
	if r == 0 {
		return Interval{}, fmt.Errorf("extrapolate: no replicate estimates")
	}
	var mean float64
	for _, e := range estimates {
		mean += e
	}
	mean /= float64(r)
	if r == 1 {
		return Interval{Mean: mean, Low: mean, High: mean, Replicates: 1}, nil
	}
	var ss float64
	for _, e := range estimates {
		d := e - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(r-1))
	t, err := tCritical(r-1, confidence)
	if err != nil {
		return Interval{}, err
	}
	h := t * sd / math.Sqrt(float64(r))
	return Interval{Mean: mean, Low: mean - h, High: mean + h, Replicates: r}, nil
}

// LinearReplicates extrapolates each replicate's measured value by its own
// realized fraction (value/fraction, the Section III-G estimator applied
// per sub-draw) and returns the t-interval over the extrapolated values.
// values and fractions must pair up one entry per replicate.
func LinearReplicates(values, fractions []float64, confidence float64) (Interval, error) {
	if len(values) != len(fractions) || len(values) == 0 {
		return Interval{}, fmt.Errorf("extrapolate: need matched non-empty values/fractions, got %d/%d", len(values), len(fractions))
	}
	ests := make([]float64, len(values))
	for i := range values {
		v, err := Linear(values[i], fractions[i])
		if err != nil {
			return Interval{}, fmt.Errorf("replicate %d: %w", i, err)
		}
		ests[i] = v
	}
	return ReplicateInterval(ests, confidence)
}

// tTable holds two-sided Student-t critical values for df 1–30 at the three
// supported confidence levels; beyond df 30 the normal quantile is close
// enough (<2% off) and is used as the tail value.
var tTable = map[float64][30]float64{
	0.90: {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697},
	0.95: {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042},
	0.99: {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750},
}

// normTail is the two-sided normal quantile used past df 30.
var normTail = map[float64]float64{0.90: 1.645, 0.95: 1.960, 0.99: 2.576}

// tCritical returns the two-sided Student-t critical value for df degrees
// of freedom at the given confidence level.
func tCritical(df int, confidence float64) (float64, error) {
	tab, ok := tTable[confidence]
	if !ok {
		return 0, fmt.Errorf("extrapolate: confidence %v unsupported (want 0.90, 0.95 or 0.99)", confidence)
	}
	if df < 1 {
		return 0, fmt.Errorf("extrapolate: degrees of freedom %d < 1", df)
	}
	if df <= len(tab) {
		return tab[df-1], nil
	}
	return normTail[confidence], nil
}
