package config

import "testing"

func TestTableIIValues(t *testing.T) {
	soc := MobileSoC()
	if soc.NumSMs != 8 || soc.NumMemPartitions != 4 || soc.RegistersPerSM != 32768 {
		t.Errorf("MobileSoC core params wrong: %+v", soc)
	}
	rtx := RTX2060()
	if rtx.NumSMs != 30 || rtx.NumMemPartitions != 12 || rtx.RegistersPerSM != 65536 {
		t.Errorf("RTX2060 core params wrong: %+v", rtx)
	}
	for _, c := range []Config{soc, rtx} {
		if c.WarpSize != 32 || c.MaxWarpsPerSM != 32 {
			t.Errorf("%s warp params wrong", c.Name)
		}
		if c.RTUnitsPerSM != 1 || c.RTMaxWarps != 4 || c.RTMSHRSize != 64 {
			t.Errorf("%s RT unit params wrong", c.Name)
		}
		if c.L1DBytes != 64<<10 || c.L1DLatency != 20 {
			t.Errorf("%s L1D params wrong", c.Name)
		}
		if c.TotalL2Bytes != 3<<20 || c.L2Assoc != 16 || c.L2Latency != 160 {
			t.Errorf("%s L2 params wrong", c.Name)
		}
		if c.CoreClockMHz != 1365 || c.MemClockMHz != 3500 {
			t.Errorf("%s clocks wrong", c.Name)
		}
		if c.Scheduler != GTO {
			t.Errorf("%s scheduler not GTO", c.Name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestDownscaleFactorMatchesPaper(t *testing.T) {
	// Section IV-B: K=4 for the Mobile SoC (8 SMs, 4 partitions) and K=6
	// for the RTX 2060 (30 SMs, 12 partitions).
	if k := DownscaleFactor(MobileSoC()); k != 4 {
		t.Errorf("MobileSoC K = %d, want 4", k)
	}
	if k := DownscaleFactor(RTX2060()); k != 6 {
		t.Errorf("RTX2060 K = %d, want 6", k)
	}
}

func TestDownscalePaperExample(t *testing.T) {
	// Section III-C example: 80 SMs, 10 controllers -> K=10 -> 8 SMs, 1
	// partition.
	c := RTX2060()
	c.Name = "example"
	c.NumSMs = 80
	c.NumMemPartitions = 10
	c.TotalL2Bytes = 10 << 20
	if k := DownscaleFactor(c); k != 10 {
		t.Fatalf("K = %d, want 10", k)
	}
	d, err := c.Downscale(10)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSMs != 8 || d.NumMemPartitions != 1 {
		t.Errorf("downscaled to %d SMs / %d partitions", d.NumSMs, d.NumMemPartitions)
	}
}

func TestDownscaleScalesSharedResources(t *testing.T) {
	c := RTX2060()
	d, err := c.Downscale(6)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSMs != 5 || d.NumMemPartitions != 2 {
		t.Fatalf("downscaled shape %d/%d", d.NumSMs, d.NumMemPartitions)
	}
	// Per-partition L2 slice is preserved; the total shrinks by K.
	if d.L2BytesPerPartition() != c.L2BytesPerPartition() {
		t.Errorf("per-partition L2 changed: %d -> %d",
			c.L2BytesPerPartition(), d.L2BytesPerPartition())
	}
	if d.TotalL2Bytes*6 != c.TotalL2Bytes {
		t.Errorf("total L2 %d not 1/6 of %d", d.TotalL2Bytes, c.TotalL2Bytes)
	}
	// Per-SM resources are untouched.
	if d.MaxWarpsPerSM != c.MaxWarpsPerSM || d.L1DBytes != c.L1DBytes {
		t.Errorf("per-SM resources changed")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("downscaled config invalid: %v", err)
	}
}

func TestDownscaleRejectsBadFactors(t *testing.T) {
	c := MobileSoC()
	for _, k := range []int{0, -1, 3, 16} {
		if _, err := c.Downscale(k); err == nil {
			t.Errorf("factor %d accepted for %d SMs / %d partitions",
				k, c.NumSMs, c.NumMemPartitions)
		}
	}
	// K=1 is the identity.
	d, err := c.Downscale(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSMs != c.NumSMs || d.TotalL2Bytes != c.TotalL2Bytes {
		t.Errorf("K=1 changed the config")
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero SMs", func(c *Config) { c.NumSMs = 0 }},
		{"zero warp size", func(c *Config) { c.WarpSize = 0 }},
		{"L1 not line multiple", func(c *Config) { c.L1DBytes = 100 }},
		{"L2 indivisible", func(c *Config) { c.TotalL2Bytes = (3 << 20) + 1 }},
		{"zero partitions", func(c *Config) { c.NumMemPartitions = 0 }},
		{"negative row miss", func(c *Config) { c.DRAMRowMissLat = -1 }},
		{"zero mem clock", func(c *Config) { c.MemClockMHz = 0 }},
	}
	for _, tc := range cases {
		c := MobileSoC()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDRAMBandwidth(t *testing.T) {
	c := MobileSoC()
	got := c.DRAMBytesPerCoreCycle()
	want := 3500.0 * 2 * 4 / 1365.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("DRAM bytes/core-cycle = %v, want %v", got, want)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{8, 4, 4}, {30, 12, 6}, {80, 10, 10}, {7, 13, 1}, {12, 12, 12},
	}
	for _, c := range cases {
		if got := gcd(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSchedulerString(t *testing.T) {
	if GTO.String() != "gto" || RoundRobin.String() != "rr" {
		t.Error("scheduler names wrong")
	}
}
