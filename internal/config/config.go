// Package config describes simulated GPU hardware configurations (Table II
// of the paper) and implements Zatel's configuration downscaling: dividing
// the independent components (SMs) and the proportionally-divisible shared
// components (memory partitions, and with them L2 slices and DRAM
// bandwidth) by the scaling factor K = gcd(#SM, #MemPartitions).
package config

import (
	"fmt"

	"zatel/internal/store"
)

// SchedulerKind selects the SM warp scheduling policy.
type SchedulerKind uint8

const (
	// GTO is greedy-then-oldest: keep issuing the current warp until it
	// stalls, then switch to the oldest ready warp (Table II).
	GTO SchedulerKind = iota
	// RoundRobin rotates through ready warps; provided for ablations.
	RoundRobin
)

// String implements fmt.Stringer.
func (k SchedulerKind) String() string {
	if k == GTO {
		return "gto"
	}
	return "rr"
}

// Config is a complete simulated-GPU description. All latencies are in core
// clock cycles; the DRAM clock is converted into per-core-cycle bandwidth by
// the timing model.
type Config struct {
	Name string

	// Core organisation.
	NumSMs         int
	MaxWarpsPerSM  int
	WarpSize       int
	RegistersPerSM int
	IssuePerCycle  int
	Scheduler      SchedulerKind

	// RT accelerator (per SM).
	RTUnitsPerSM int
	RTMaxWarps   int
	RTMSHRSize   int
	// RTBoxCycles and RTTriCycles are the intersection pipeline latencies.
	RTBoxCycles int
	RTTriCycles int
	// RTRaysPerCycle bounds how many rays one RT unit advances per cycle.
	RTRaysPerCycle int

	// L1 data cache (per SM).
	L1DBytes   int
	L1DAssoc   int // 0 = fully associative
	L1DLatency int
	L1DMSHRs   int
	LineBytes  int

	// L2 cache: TotalL2Bytes is split evenly across memory partitions.
	NumMemPartitions int
	TotalL2Bytes     int
	L2Assoc          int
	L2Latency        int
	L2MSHRs          int

	// Interconnect.
	NoCLatency int

	// DRAM (per partition/channel).
	CoreClockMHz int
	MemClockMHz  int
	// DRAMBusBytes is the channel transfer width in bytes per memory-clock
	// edge (DDR: two edges per clock).
	DRAMBusBytes   int
	DRAMRowBytes   int
	DRAMRowMissLat int
	DRAMQueueDepth int
}

// MobileSoC returns the mobile System-on-Chip configuration of Table II.
func MobileSoC() Config {
	c := baseline()
	c.Name = "MobileSoC"
	c.NumSMs = 8
	c.NumMemPartitions = 4
	c.RegistersPerSM = 32768
	return c
}

// RTX2060 returns the NVIDIA Turing RTX 2060 configuration of Table II.
func RTX2060() Config {
	c := baseline()
	c.Name = "RTX2060"
	c.NumSMs = 30
	c.NumMemPartitions = 12
	c.RegistersPerSM = 65536
	return c
}

// baseline holds the parameters shared by both Table II columns.
func baseline() Config {
	return Config{
		MaxWarpsPerSM: 32,
		WarpSize:      32,
		IssuePerCycle: 2,
		Scheduler:     GTO,

		RTUnitsPerSM:   1,
		RTMaxWarps:     4,
		RTMSHRSize:     64,
		RTBoxCycles:    4,
		RTTriCycles:    8,
		RTRaysPerCycle: 8,

		L1DBytes:   64 << 10,
		L1DAssoc:   0, // fully associative (Table II)
		L1DLatency: 20,
		L1DMSHRs:   64,
		LineBytes:  128,

		TotalL2Bytes: 3 << 20,
		L2Assoc:      16,
		L2Latency:    160,
		L2MSHRs:      128,

		NoCLatency: 8,

		CoreClockMHz:   1365,
		MemClockMHz:    3500,
		DRAMBusBytes:   4,
		DRAMRowBytes:   2048,
		DRAMRowMissLat: 24,
		DRAMQueueDepth: 32,
	}
}

// L2BytesPerPartition returns the L2 slice size owned by each memory
// partition.
func (c Config) L2BytesPerPartition() int {
	return c.TotalL2Bytes / c.NumMemPartitions
}

// DRAMBytesPerCoreCycle returns the peak per-partition DRAM bandwidth
// expressed in bytes per core clock cycle (DDR transfers two bus widths per
// memory clock).
func (c Config) DRAMBytesPerCoreCycle() float64 {
	return float64(c.MemClockMHz) * 2 * float64(c.DRAMBusBytes) / float64(c.CoreClockMHz)
}

// Validate checks that the configuration is simulable.
func (c Config) Validate() error {
	pos := func(field string, v int) error {
		if v <= 0 {
			return fmt.Errorf("config %s: %s must be positive, got %d", c.Name, field, v)
		}
		return nil
	}
	checks := []struct {
		field string
		v     int
	}{
		{"NumSMs", c.NumSMs},
		{"MaxWarpsPerSM", c.MaxWarpsPerSM},
		{"WarpSize", c.WarpSize},
		{"IssuePerCycle", c.IssuePerCycle},
		{"RTUnitsPerSM", c.RTUnitsPerSM},
		{"RTMaxWarps", c.RTMaxWarps},
		{"RTMSHRSize", c.RTMSHRSize},
		{"RTBoxCycles", c.RTBoxCycles},
		{"RTTriCycles", c.RTTriCycles},
		{"RTRaysPerCycle", c.RTRaysPerCycle},
		{"L1DBytes", c.L1DBytes},
		{"L1DLatency", c.L1DLatency},
		{"L1DMSHRs", c.L1DMSHRs},
		{"LineBytes", c.LineBytes},
		{"NumMemPartitions", c.NumMemPartitions},
		{"TotalL2Bytes", c.TotalL2Bytes},
		{"L2Assoc", c.L2Assoc},
		{"L2Latency", c.L2Latency},
		{"L2MSHRs", c.L2MSHRs},
		{"NoCLatency", c.NoCLatency},
		{"CoreClockMHz", c.CoreClockMHz},
		{"MemClockMHz", c.MemClockMHz},
		{"DRAMBusBytes", c.DRAMBusBytes},
		{"DRAMRowBytes", c.DRAMRowBytes},
		{"DRAMQueueDepth", c.DRAMQueueDepth},
	}
	for _, ch := range checks {
		if err := pos(ch.field, ch.v); err != nil {
			return err
		}
	}
	if c.L1DAssoc < 0 {
		return fmt.Errorf("config %s: negative L1DAssoc", c.Name)
	}
	if c.L1DBytes%c.LineBytes != 0 {
		return fmt.Errorf("config %s: L1DBytes %d not a multiple of line size %d",
			c.Name, c.L1DBytes, c.LineBytes)
	}
	if c.TotalL2Bytes%c.NumMemPartitions != 0 {
		return fmt.Errorf("config %s: L2 %dB does not divide across %d partitions",
			c.Name, c.TotalL2Bytes, c.NumMemPartitions)
	}
	if c.DRAMRowMissLat < 0 {
		return fmt.Errorf("config %s: negative DRAMRowMissLat", c.Name)
	}
	return nil
}

// KeyTo appends every simulation-relevant field to an artifact-store key in
// declaration order. Name is included: it tags derived configs ("RTX2060/6")
// and costs nothing, while all the numeric fields are what actually
// determine simulator output. Adding a Config field means adding it here —
// the golden digest test in internal/core pins the encoding.
func (c Config) KeyTo(k *store.Key) *store.Key {
	k.Str("cfg", c.Name)
	k.Int("sms", c.NumSMs).Int("warps", c.MaxWarpsPerSM).Int("wsz", c.WarpSize)
	k.Int("regs", c.RegistersPerSM).Int("issue", c.IssuePerCycle).Int("sched", int(c.Scheduler))
	k.Int("rtu", c.RTUnitsPerSM).Int("rtw", c.RTMaxWarps).Int("rtmshr", c.RTMSHRSize)
	k.Int("rtbox", c.RTBoxCycles).Int("rttri", c.RTTriCycles).Int("rtrays", c.RTRaysPerCycle)
	k.Int("l1b", c.L1DBytes).Int("l1a", c.L1DAssoc).Int("l1lat", c.L1DLatency)
	k.Int("l1mshr", c.L1DMSHRs).Int("line", c.LineBytes)
	k.Int("parts", c.NumMemPartitions).Int("l2b", c.TotalL2Bytes).Int("l2a", c.L2Assoc)
	k.Int("l2lat", c.L2Latency).Int("l2mshr", c.L2MSHRs)
	k.Int("noc", c.NoCLatency)
	k.Int("cclk", c.CoreClockMHz).Int("mclk", c.MemClockMHz)
	k.Int("bus", c.DRAMBusBytes).Int("row", c.DRAMRowBytes)
	k.Int("rowmiss", c.DRAMRowMissLat).Int("dramq", c.DRAMQueueDepth)
	return k
}

// DownscaleFactor returns Zatel's scaling factor for this configuration:
// the greatest common divisor of the SM count and the memory partition
// count (Section III-C).
func DownscaleFactor(c Config) int {
	return gcd(c.NumSMs, c.NumMemPartitions)
}

// Downscale returns the configuration divided by factor k: SMs and memory
// partitions are divided by k, which implicitly scales the L2 (each
// partition keeps its slice) and the peak DRAM bandwidth (channels scale
// with partitions). Shared per-SM resources are untouched, mirroring
// Section III-C. k must divide both component counts.
func (c Config) Downscale(k int) (Config, error) {
	if k <= 0 {
		return Config{}, fmt.Errorf("config %s: downscale factor %d must be positive", c.Name, k)
	}
	if c.NumSMs%k != 0 || c.NumMemPartitions%k != 0 {
		return Config{}, fmt.Errorf("config %s: factor %d does not divide SMs=%d partitions=%d",
			c.Name, k, c.NumSMs, c.NumMemPartitions)
	}
	d := c
	d.Name = fmt.Sprintf("%s/%d", c.Name, k)
	d.NumSMs = c.NumSMs / k
	d.NumMemPartitions = c.NumMemPartitions / k
	// Keep each partition's L2 slice: total LLC shrinks proportionally.
	d.TotalL2Bytes = c.L2BytesPerPartition() * d.NumMemPartitions
	return d, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
