package config_test

import (
	"fmt"

	"zatel/internal/config"
)

// Zatel's downscaling rule: K is the gcd of the SM count and the memory
// partition count, and dividing by K preserves each partition's L2 slice.
func ExampleDownscaleFactor() {
	cfg := config.RTX2060()
	k := config.DownscaleFactor(cfg)
	down, _ := cfg.Downscale(k)
	fmt.Println("K:", k)
	fmt.Println("SMs:", cfg.NumSMs, "->", down.NumSMs)
	fmt.Println("partitions:", cfg.NumMemPartitions, "->", down.NumMemPartitions)
	fmt.Println("L2 per partition unchanged:",
		cfg.L2BytesPerPartition() == down.L2BytesPerPartition())
	// Output:
	// K: 6
	// SMs: 30 -> 5
	// partitions: 12 -> 2
	// L2 per partition unchanged: true
}

// The Section III-C example: an 80-SM GPU with 10 memory controllers
// downscales by K=10 to 8 SMs and 1 partition.
func ExampleConfig_Downscale() {
	cfg := config.RTX2060()
	cfg.NumSMs = 80
	cfg.NumMemPartitions = 10
	cfg.TotalL2Bytes = 10 << 20
	down, _ := cfg.Downscale(config.DownscaleFactor(cfg))
	fmt.Println(down.NumSMs, "SMs,", down.NumMemPartitions, "partition")
	// Output:
	// 8 SMs, 1 partition
}
