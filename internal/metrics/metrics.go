// Package metrics defines the evaluation metric set of Table I, the
// simulator's output report, and the error measures (absolute error, MAE)
// used throughout the paper's figures.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Metric identifies one of the Table I metrics.
type Metric int

const (
	// IPC is GPU instructions per cycle.
	IPC Metric = iota
	// SimCycles is the number of cycles required to ray trace the scene.
	SimCycles
	// L1DMissRate is the total cache miss rate over all L1D instances.
	L1DMissRate
	// L2MissRate is the total cache miss rate over all L2 instances.
	L2MissRate
	// RTAvgEfficiency is the average number of active rays per warp over
	// all ray-tracing accelerator units.
	RTAvgEfficiency
	// DRAMEfficiency is DRAM bandwidth utilization while requests are
	// pending.
	DRAMEfficiency
	// BWUtilization is DRAM bandwidth utilization over the whole run.
	BWUtilization

	numMetrics
)

// All returns every Table I metric in presentation order.
func All() []Metric {
	return []Metric{IPC, SimCycles, L1DMissRate, L2MissRate, RTAvgEfficiency, DRAMEfficiency, BWUtilization}
}

// String returns the Table I metric name.
func (m Metric) String() string {
	switch m {
	case IPC:
		return "GPU IPC"
	case SimCycles:
		return "GPU Sim Cycles"
	case L1DMissRate:
		return "L1D Miss Rate"
	case L2MissRate:
		return "L2 Miss Rate"
	case RTAvgEfficiency:
		return "RT Avg Efficiency"
	case DRAMEfficiency:
		return "DRAM Efficiency"
	case BWUtilization:
		return "BW Utilization"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Absolute reports whether the metric is an absolute quantity that Zatel
// extrapolates linearly with the traced-pixel fraction (Section III-G), as
// opposed to a rate that is encapsulated per group.
func (m Metric) Absolute() bool {
	return m == SimCycles
}

// Report is the complete output of one simulator run.
type Report struct {
	// Cycles is the simulated execution time in core clock cycles.
	Cycles uint64
	// Instructions is the total thread instructions executed.
	Instructions uint64
	// Warps is the number of warps launched.
	Warps int

	// L1D aggregates across all SM L1D instances.
	L1DAccesses uint64
	L1DMisses   uint64
	// L2 aggregates across all partition slices.
	L2Accesses uint64
	L2Misses   uint64

	// RTActiveRayCycles accumulates active-ray count × cycles; divided by
	// RTWarpSlotCycles (resident warps × cycles) it yields the average
	// active rays per warp.
	RTActiveRayCycles uint64
	RTWarpSlotCycles  uint64
	// RTRaysTraced counts rays completed by the RT units.
	RTRaysTraced uint64

	// DRAM aggregates across channels.
	DRAMReads         uint64
	DRAMBytesRead     uint64
	DRAMBusyCycles    uint64
	DRAMPendingCycles uint64
	// DRAMEff and DRAMBWUtil are the precomputed Table I DRAM metrics
	// (bandwidth-weighted over all channels).
	DRAMEff    float64
	DRAMBWUtil float64

	// WallTime is the host-side simulation time, used for speedup
	// measurements (the paper's Figs. 14, 15, 19).
	WallTime time.Duration
}

// Value returns the metric's value from the report.
func (r Report) Value(m Metric) float64 {
	switch m {
	case IPC:
		if r.Cycles == 0 {
			return 0
		}
		return float64(r.Instructions) / float64(r.Cycles)
	case SimCycles:
		return float64(r.Cycles)
	case L1DMissRate:
		return ratio(r.L1DMisses, r.L1DAccesses)
	case L2MissRate:
		return ratio(r.L2Misses, r.L2Accesses)
	case RTAvgEfficiency:
		return ratio(r.RTActiveRayCycles, r.RTWarpSlotCycles)
	case DRAMEfficiency:
		return r.DRAMEff
	case BWUtilization:
		return r.DRAMBWUtil
	default:
		return math.NaN()
	}
}

// Values returns all Table I metrics.
func (r Report) Values() map[Metric]float64 {
	out := make(map[Metric]float64, numMetrics)
	for _, m := range All() {
		out[m] = r.Value(m)
	}
	return out
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// AbsErr returns |pred−ref| / |ref|, the absolute (relative) error used by
// the paper's error figures. A zero reference with a non-zero prediction
// reports +Inf; zero/zero reports 0.
func AbsErr(pred, ref float64) float64 {
	if ref == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(pred-ref) / math.Abs(ref)
}

// Errors returns the per-metric absolute error of pred against ref.
func Errors(pred, ref Report, ms []Metric) map[Metric]float64 {
	out := make(map[Metric]float64, len(ms))
	for _, m := range ms {
		out[m] = AbsErr(pred.Value(m), ref.Value(m))
	}
	return out
}

// MAE returns the mean absolute error over the given metrics.
func MAE(errs map[Metric]float64, ms []Metric) float64 {
	if len(ms) == 0 {
		return 0
	}
	var sum float64
	for _, m := range ms {
		sum += errs[m]
	}
	return sum / float64(len(ms))
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
