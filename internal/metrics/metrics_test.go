package metrics

import (
	"math"
	"testing"
)

func sample() Report {
	return Report{
		Cycles:            1000,
		Instructions:      4000,
		L1DAccesses:       200,
		L1DMisses:         50,
		L2Accesses:        50,
		L2Misses:          10,
		RTActiveRayCycles: 600,
		RTWarpSlotCycles:  100,
		DRAMEff:           0.8,
		DRAMBWUtil:        0.3,
	}
}

func TestAllCoversTableI(t *testing.T) {
	ms := All()
	if len(ms) != 7 {
		t.Fatalf("Table I has 7 metrics, All() has %d", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.String()] = true
	}
	for _, want := range []string{
		"GPU IPC", "GPU Sim Cycles", "L1D Miss Rate", "L2 Miss Rate",
		"RT Avg Efficiency", "DRAM Efficiency", "BW Utilization",
	} {
		if !names[want] {
			t.Errorf("missing metric %q", want)
		}
	}
}

func TestReportValues(t *testing.T) {
	r := sample()
	cases := map[Metric]float64{
		IPC:             4,
		SimCycles:       1000,
		L1DMissRate:     0.25,
		L2MissRate:      0.2,
		RTAvgEfficiency: 6,
		DRAMEfficiency:  0.8,
		BWUtilization:   0.3,
	}
	for m, want := range cases {
		if got := r.Value(m); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", m, got, want)
		}
	}
	vals := r.Values()
	if len(vals) != 7 {
		t.Errorf("Values() has %d entries", len(vals))
	}
}

func TestZeroDenominators(t *testing.T) {
	var r Report
	for _, m := range All() {
		v := r.Value(m)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("empty report %s = %v", m, v)
		}
	}
}

func TestAbsErr(t *testing.T) {
	if got := AbsErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("AbsErr(110,100) = %v", got)
	}
	if got := AbsErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("AbsErr(90,100) = %v", got)
	}
	if got := AbsErr(0, 0); got != 0 {
		t.Errorf("AbsErr(0,0) = %v", got)
	}
	if got := AbsErr(1, 0); !math.IsInf(got, 1) {
		t.Errorf("AbsErr(1,0) = %v", got)
	}
}

func TestErrorsAndMAE(t *testing.T) {
	ref := sample()
	pred := sample()
	pred.Cycles = 1100 // IPC 4000/1100, cycles +10%
	errs := Errors(pred, ref, All())
	if math.Abs(errs[SimCycles]-0.1) > 1e-12 {
		t.Errorf("cycles err %v", errs[SimCycles])
	}
	if errs[L1DMissRate] != 0 {
		t.Errorf("unchanged metric reported error %v", errs[L1DMissRate])
	}
	mae := MAE(errs, All())
	if mae <= 0 || mae > 0.1 {
		t.Errorf("MAE = %v", mae)
	}
	if MAE(nil, nil) != 0 {
		t.Error("empty MAE non-zero")
	}
}

func TestAbsoluteClassification(t *testing.T) {
	if !SimCycles.Absolute() {
		t.Error("SimCycles must be absolute")
	}
	for _, m := range []Metric{L1DMissRate, L2MissRate, RTAvgEfficiency, DRAMEfficiency, BWUtilization, IPC} {
		if m.Absolute() {
			t.Errorf("%s wrongly classified absolute", m)
		}
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 || math.Abs(std-2) > 1e-12 {
		t.Errorf("MeanStd = %v, %v", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd non-zero")
	}
}
