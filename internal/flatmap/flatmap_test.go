package flatmap

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New(0)
	if _, ok := m.Get(0); ok {
		t.Fatal("empty map contains key 0")
	}
	m.Set(0, 42) // key 0 must be a valid key
	m.Set(7, 1)
	m.Set(7, 2) // update
	if v, ok := m.Get(0); !ok || v != 42 {
		t.Fatalf("Get(0) = %d, %v", v, ok)
	}
	if v, ok := m.Get(7); !ok || v != 2 {
		t.Fatalf("Get(7) = %d, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Delete(0) || m.Delete(0) {
		t.Fatal("Delete(0) wrong")
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("deleted key still present")
	}
	if m.Len() != 1 {
		t.Fatalf("Len after delete = %d", m.Len())
	}
}

// TestMirrorsRuntimeMap drives a long random op sequence against a runtime
// map and requires identical observable behaviour, including through growth
// and backward-shift deletion.
func TestMirrorsRuntimeMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(0)
	ref := make(map[uint64]uint64)
	// Small key space forces collisions, wrap-around chains and re-inserts.
	key := func() uint64 { return uint64(rng.Intn(97)) * 128 }
	for i := 0; i < 50000; i++ {
		k := key()
		switch rng.Intn(4) {
		case 0, 1:
			v := rng.Uint64()
			m.Set(k, v)
			ref[k] = v
		case 2:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		case 3:
			gv, gok := m.Get(k)
			wv, wok := ref[k]
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), want (%d,%v)", i, k, gv, gok, wv, wok)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", i, m.Len(), len(ref))
		}
	}
	// Final full comparison.
	count := 0
	m.Range(func(k, v uint64) bool {
		count++
		if wv, ok := ref[k]; !ok || wv != v {
			t.Fatalf("Range: entry (%d,%d) not in reference", k, v)
		}
		return true
	})
	if count != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", count, len(ref))
	}
}

func TestDeleteIf(t *testing.T) {
	m := New(0)
	for i := uint64(0); i < 1000; i++ {
		m.Set(i*128, i)
	}
	m.DeleteIf(func(_, v uint64) bool { return v%2 == 0 })
	m.Range(func(k, v uint64) bool {
		if v%2 == 0 {
			t.Fatalf("even entry (%d,%d) survived", k, v)
		}
		return true
	})
	// All odd entries must remain (none should be collateral damage).
	for i := uint64(1); i < 1000; i += 2 {
		if v, ok := m.Get(i * 128); !ok || v != i {
			t.Fatalf("odd entry %d lost: (%d,%v)", i, v, ok)
		}
	}
}

func TestClearKeepsCapacity(t *testing.T) {
	m := New(0)
	for i := uint64(0); i < 100; i++ {
		m.Set(i, i)
	}
	capBefore := len(m.slots)
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	if len(m.slots) != capBefore {
		t.Fatalf("Clear changed capacity %d -> %d", capBefore, len(m.slots))
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("cleared map still has entries")
	}
	m.Set(5, 7)
	if v, ok := m.Get(5); !ok || v != 7 {
		t.Fatal("map unusable after Clear")
	}
}

func TestNewHint(t *testing.T) {
	m := New(1000)
	capBefore := len(m.slots)
	for i := uint64(0); i < 1000; i++ {
		m.Set(i, i)
	}
	if len(m.slots) != capBefore {
		t.Fatalf("map sized for 1000 grew from %d to %d", capBefore, len(m.slots))
	}
}
