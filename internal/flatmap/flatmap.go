// Package flatmap implements an open-addressing hash table from uint64
// keys to uint64 values, tuned for the simulator's hot paths: cache tag
// lookup and MSHR in-flight tracking. Go's general-purpose map dominated
// CPU profiles there (hashing, bucket probing, write barriers) and cannot
// be cleared without either reallocating or iterating; this table does one
// multiply per probe, stores slots in a flat array, and supports O(capacity)
// Clear for the simulator-pool reset path.
//
// The table is deliberately value-behaviour-free: it only answers presence
// and lookup questions, so swapping it in for a runtime map cannot change
// simulated timing.
package flatmap

// slot is one table entry. full distinguishes occupancy so key 0 is valid.
type slot struct {
	key  uint64
	val  uint64
	full bool
}

// Map is an open-addressing uint64→uint64 hash table with linear probing
// and backward-shift deletion (no tombstones). The zero value is not
// usable; construct with New. Not safe for concurrent use.
type Map struct {
	slots []slot
	n     int
	mask  uint64
}

const minCapacity = 16

// New returns an empty map sized to hold at least hint entries without
// growing.
func New(hint int) *Map {
	capacity := minCapacity
	for capacity*3 < hint*4 { // keep load factor under 3/4
		capacity <<= 1
	}
	return &Map{slots: make([]slot, capacity), mask: uint64(capacity - 1)}
}

// Len returns the number of entries.
func (m *Map) Len() int { return m.n }

// home returns the preferred slot index for key k (Fibonacci hashing; the
// high multiply bits are well mixed even for line addresses that share low
// zero bits).
func (m *Map) home(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

// Get returns the value stored for k and whether it is present.
func (m *Map) Get(k uint64) (uint64, bool) {
	for i := m.home(k); ; i = (i + 1) & m.mask {
		s := &m.slots[i]
		if !s.full {
			return 0, false
		}
		if s.key == k {
			return s.val, true
		}
	}
}

// Set inserts or updates the entry for k.
func (m *Map) Set(k, v uint64) {
	if (m.n+1)*4 > len(m.slots)*3 {
		m.grow()
	}
	for i := m.home(k); ; i = (i + 1) & m.mask {
		s := &m.slots[i]
		if !s.full {
			*s = slot{key: k, val: v, full: true}
			m.n++
			return
		}
		if s.key == k {
			s.val = v
			return
		}
	}
}

// Delete removes the entry for k, reporting whether it was present.
// Removal backward-shifts the probe chain so lookups never need tombstones.
func (m *Map) Delete(k uint64) bool {
	i := m.home(k)
	for {
		s := &m.slots[i]
		if !s.full {
			return false
		}
		if s.key == k {
			break
		}
		i = (i + 1) & m.mask
	}
	m.unlink(i)
	return true
}

// unlink empties slot i and repairs the probe chain after it.
func (m *Map) unlink(i uint64) {
	m.n--
	j := i
	for {
		j = (j + 1) & m.mask
		if !m.slots[j].full {
			break
		}
		h := m.home(m.slots[j].key)
		// Move slots[j] into the hole at i only if its probe path passes
		// through i (cyclic interval test).
		var reachable bool
		if j > i {
			reachable = h <= i || h > j
		} else {
			reachable = h <= i && h > j
		}
		if reachable {
			m.slots[i] = m.slots[j]
			i = j
		}
	}
	m.slots[i] = slot{}
}

// DeleteIf removes entries for which pred returns true. The predicate must
// be deterministic: chain repair can shift an entry into the slot being
// examined, where it is tested again. A shift across the array wrap can
// also move an entry into an already-visited slot, where it survives the
// pass — DeleteIf is for opportunistic cleanup (in-flight sweeps whose
// expired entries read as absent anyway); use Delete when an entry must go.
func (m *Map) DeleteIf(pred func(k, v uint64) bool) {
	for i := uint64(0); i < uint64(len(m.slots)); {
		s := &m.slots[i]
		if s.full && pred(s.key, s.val) {
			m.unlink(i)
			continue // unlink may have shifted a new entry into slot i
		}
		i++
	}
}

// Range calls f for every entry in unspecified order until f returns false.
// f must not mutate the map.
func (m *Map) Range(f func(k, v uint64) bool) {
	for i := range m.slots {
		if m.slots[i].full && !f(m.slots[i].key, m.slots[i].val) {
			return
		}
	}
}

// Clear removes every entry, keeping the allocated capacity.
func (m *Map) Clear() {
	clear(m.slots)
	m.n = 0
}

func (m *Map) grow() {
	old := m.slots
	m.slots = make([]slot, len(old)*2)
	m.mask = uint64(len(m.slots) - 1)
	m.n = 0
	for i := range old {
		if old[i].full {
			m.Set(old[i].key, old[i].val)
		}
	}
}
