package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zatel/internal/faults"
)

// Disk entry on-disk framing: a fixed header followed by the codec
// payload. Every field the reader depends on is verified before a byte of
// payload is interpreted, and the payload checksum is verified on every
// read — a torn or bit-rotted entry is a miss (and quarantined), never a
// wrong artifact.
//
//	magic   [4]byte  "ZATL"
//	version uint16   disk format version (diskFormatVersion)
//	kindLen uint16   length of the codec kind tag
//	kind    []byte   versioned codec kind ("rt.workload/v1")
//	payload uint64   payload length in bytes
//	sum     [32]byte SHA-256 of the payload
//	payload []byte
const (
	diskMagic         = "ZATL"
	diskFormatVersion = 1
	diskMaxKindLen    = 255

	// Entry filename suffixes. Temps carry a sequence number so concurrent
	// writers never collide; quarantined entries are renamed aside (never
	// deleted) so operators can inspect the corruption.
	diskEntSuffix  = ".art"
	diskTmpInfix   = ".tmp"
	diskQuarInfix  = ".bad"
	diskProbeName  = "probe.tmp"
	diskHeaderBase = 4 + 2 + 2 + 8 + sha256.Size
)

// DiskState is the disk tier's health.
type DiskState int32

const (
	// DiskOK: writes and reads flow normally.
	DiskOK DiskState = iota
	// DiskDegraded: the disk shed to memory-only mode after a write
	// failure or a saturated write-behind queue; reads still work, writes
	// are dropped, and a periodic probe re-enables the tier when the disk
	// recovers.
	DiskDegraded
)

// String implements fmt.Stringer ("ok", "degraded").
func (s DiskState) String() string {
	if s == DiskDegraded {
		return "degraded"
	}
	return "ok"
}

// DiskConfig sizes the disk tier. Zero values select sane defaults.
type DiskConfig struct {
	// Dir is the cache directory (created if missing). Required.
	Dir string
	// MaxBytes is the on-disk byte budget (<= 0 = unbounded); least
	// recently used entries are evicted past it.
	MaxBytes int64
	// FS is the filesystem to run on (nil = the real OS filesystem);
	// tests thread a faults.FaultFS through here.
	FS faults.FS
	// QueueLen bounds the write-behind queue (0 = 64). A full queue flips
	// the tier to degraded instead of stalling GetOrBuild.
	QueueLen int
	// ReprobeInterval is how often a degraded tier probes the disk for
	// recovery (0 = 15s).
	ReprobeInterval time.Duration
}

// DiskCounters is a point-in-time snapshot of the disk tier's state for
// /metrics and /healthz.
type DiskCounters struct {
	// State is "ok" or "degraded" (the service reports "disabled" when no
	// disk tier is attached at all).
	State string
	// Entries and Bytes describe current valid residency; MaxBytes is the
	// budget (0 = unbounded).
	Entries  int
	Bytes    int64
	MaxBytes int64
	// Hits/Misses count Get outcomes; ReadErrors the reads that failed at
	// the filesystem (treated as misses).
	Hits, Misses, ReadErrors uint64
	// Writes counts entries durably written; WriteErrors failed write
	// attempts; WritesDropped writes shed because the tier was degraded or
	// the queue was full.
	Writes, WriteErrors, WritesDropped uint64
	// Quarantined counts entries renamed aside after failing integrity
	// verification (at startup scan or on read).
	Quarantined uint64
	// Evictions counts entries removed for the byte budget.
	Evictions uint64
	// ScanEntries/ScanOrphans report the startup scan: valid entries
	// indexed and orphaned temp files removed.
	ScanEntries, ScanOrphans uint64
	// DegradedCount counts transitions into degraded mode.
	DegradedCount uint64
}

// diskEntry is one valid on-disk artifact in the disk LRU.
type diskEntry struct {
	key  Digest
	size int64
}

// diskWrite is one queued write-behind operation.
type diskWrite struct {
	key   Digest
	value any
	codec Codec
}

// Disk is the persistent second tier of the artifact store: entries keyed
// by the same SHA-256 digests as the memory tier, written atomically
// (temp file → fsync → rename) through a bounded write-behind queue, and
// integrity-verified on every read. Construct with OpenDisk.
type Disk struct {
	dir     string
	fsys    faults.FS
	max     int64
	reprobe time.Duration

	queue   chan diskWrite
	pending sync.WaitGroup
	stop    chan struct{}
	wg      sync.WaitGroup

	state atomic.Int32

	mu     sync.Mutex
	closed bool
	ll     *list.List // front = most recently used
	items  map[Digest]*list.Element
	bytes  int64
	tmpSeq uint64

	hits, misses, readErrors     atomic.Uint64
	writes, writeErrors, dropped atomic.Uint64
	quarantined, evictions       atomic.Uint64
	scanEntries, scanOrphans     atomic.Uint64
	degradedCount                atomic.Uint64
}

// OpenDisk opens (creating if needed) the disk tier rooted at cfg.Dir: it
// scans the directory, indexes every entry that passes full integrity
// verification, removes orphaned temp files left by a crash mid-write, and
// quarantines entries whose header or checksum fails. The returned tier is
// ready for AttachDisk.
func OpenDisk(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: disk tier needs a directory")
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = faults.OSFS{}
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	if cfg.ReprobeInterval <= 0 {
		cfg.ReprobeInterval = 15 * time.Second
	}
	if err := fsys.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("store: disk dir: %w", err)
	}
	d := &Disk{
		dir:     cfg.Dir,
		fsys:    fsys,
		max:     cfg.MaxBytes,
		reprobe: cfg.ReprobeInterval,
		queue:   make(chan diskWrite, cfg.QueueLen),
		stop:    make(chan struct{}),
		ll:      list.New(),
		items:   make(map[Digest]*list.Element),
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	d.wg.Add(2)
	go d.writer()
	go d.prober()
	return d, nil
}

// scan indexes the cache directory at startup. Validity is full
// verification — header and payload checksum — so a torn write or bitrot
// that happened while the process was down is caught before it can ever be
// served. Valid entries enter the LRU oldest-first by modification time.
func (d *Disk) scan() error {
	ents, err := d.fsys.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("store: disk scan: %w", err)
	}
	type found struct {
		key   Digest
		size  int64
		mtime time.Time
	}
	var valid []found
	for _, de := range ents {
		name := de.Name()
		switch {
		case de.IsDir():
			continue
		case strings.Contains(name, diskTmpInfix):
			// Orphaned temp: a crash between write and rename. Never
			// renamed into place, so safe to delete.
			if err := d.fsys.Remove(filepath.Join(d.dir, name)); err == nil {
				d.scanOrphans.Add(1)
			}
			continue
		case strings.Contains(name, diskQuarInfix):
			continue // previously quarantined; left for operator triage
		case !strings.HasSuffix(name, diskEntSuffix):
			continue
		}
		key, ok := digestFromName(name)
		if !ok {
			continue
		}
		data, err := d.fsys.ReadFile(filepath.Join(d.dir, name))
		if err != nil {
			d.readErrors.Add(1)
			continue
		}
		if _, _, err := parseDiskEntry(data); err != nil {
			d.quarantineFile(key, fmt.Errorf("startup scan: %w", err))
			continue
		}
		var mtime time.Time
		if info, err := de.Info(); err == nil {
			mtime = info.ModTime()
		}
		valid = append(valid, found{key: key, size: int64(len(data)), mtime: mtime})
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i].mtime.Before(valid[j].mtime) })
	for _, f := range valid {
		d.items[f.key] = d.ll.PushFront(&diskEntry{key: f.key, size: f.size})
		d.bytes += f.size
		d.scanEntries.Add(1)
	}
	d.mu.Lock()
	d.evictOverBudgetLocked()
	d.mu.Unlock()
	return nil
}

// entryPath returns the final path of key's entry.
func (d *Disk) entryPath(key Digest) string {
	return filepath.Join(d.dir, key.String()+diskEntSuffix)
}

// digestFromName parses "<64 hex>.art" (or a quarantined/temp variant
// sharing the prefix) back into a Digest.
func digestFromName(name string) (Digest, bool) {
	var key Digest
	if len(name) < 2*sha256.Size {
		return key, false
	}
	raw, err := hex.DecodeString(name[:2*sha256.Size])
	if err != nil {
		return key, false
	}
	copy(key[:], raw)
	return key, true
}

// encodeDiskEntry frames a payload with the integrity header.
func encodeDiskEntry(kind string, payload []byte) ([]byte, error) {
	if len(kind) == 0 || len(kind) > diskMaxKindLen {
		return nil, fmt.Errorf("store: disk entry kind %q length out of range", kind)
	}
	buf := make([]byte, 0, diskHeaderBase+len(kind)+len(payload))
	buf = append(buf, diskMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, diskFormatVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(kind)))
	buf = append(buf, kind...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)
	return buf, nil
}

// parseDiskEntry verifies the header and payload checksum, returning the
// codec kind and payload. Any deviation — wrong magic, unknown version, a
// length that disagrees with the file, a checksum mismatch — is an error;
// callers treat it as corruption and quarantine the entry.
func parseDiskEntry(data []byte) (kind string, payload []byte, err error) {
	if len(data) < diskHeaderBase {
		return "", nil, fmt.Errorf("entry truncated at %d bytes (header is %d)", len(data), diskHeaderBase)
	}
	if string(data[:4]) != diskMagic {
		return "", nil, fmt.Errorf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != diskFormatVersion {
		return "", nil, fmt.Errorf("unsupported disk format version %d", v)
	}
	kindLen := int(binary.LittleEndian.Uint16(data[6:8]))
	if kindLen == 0 || kindLen > diskMaxKindLen || len(data) < 8+kindLen+8+sha256.Size {
		return "", nil, fmt.Errorf("entry truncated inside header (kind length %d)", kindLen)
	}
	kind = string(data[8 : 8+kindLen])
	off := 8 + kindLen
	payloadLen := binary.LittleEndian.Uint64(data[off : off+8])
	off += 8
	var want [sha256.Size]byte
	copy(want[:], data[off:off+sha256.Size])
	off += sha256.Size
	payload = data[off:]
	if uint64(len(payload)) != payloadLen {
		return "", nil, fmt.Errorf("payload length %d disagrees with header %d (torn write)", len(payload), payloadLen)
	}
	if sum := sha256.Sum256(payload); sum != want {
		return "", nil, fmt.Errorf("payload checksum mismatch (%x != %x)", sum[:4], want[:4])
	}
	return kind, payload, nil
}

// Get returns the decoded artifact for key if a valid entry exists. A
// filesystem read error is a miss; a failed verification or decode
// quarantines the entry and is a miss — corrupt entries are rebuilt, never
// served.
func (d *Disk) Get(key Digest) (any, int64, bool) {
	d.mu.Lock()
	el, ok := d.items[key]
	if ok {
		d.ll.MoveToFront(el)
	}
	d.mu.Unlock()
	if !ok {
		d.misses.Add(1)
		return nil, 0, false
	}
	data, err := d.fsys.ReadFile(d.entryPath(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// Evicted or removed underneath us: plain miss.
			d.dropIndexEntry(key)
		} else {
			d.readErrors.Add(1)
			slog.Warn("store: disk read failed, treating as miss",
				"key", key.Short(), "err", err)
		}
		d.misses.Add(1)
		return nil, 0, false
	}
	kind, payload, err := parseDiskEntry(data)
	if err != nil {
		d.quarantine(key, err)
		d.misses.Add(1)
		return nil, 0, false
	}
	c := codecForKind(kind)
	if c == nil {
		// A format this binary does not speak (newer or retired kind):
		// not corruption, so leave the file, but stop indexing it.
		d.dropIndexEntry(key)
		d.misses.Add(1)
		return nil, 0, false
	}
	v, size, err := c.Decode(payload)
	if err != nil {
		// The checksum held but the payload does not decode: the entry was
		// written corrupt. Quarantine so it cannot waste another read.
		d.quarantine(key, fmt.Errorf("decode %s: %w", kind, err))
		d.misses.Add(1)
		return nil, 0, false
	}
	if size <= 0 {
		if sz, ok := v.(Sizer); ok {
			size = sz.SizeBytes()
		}
	}
	d.hits.Add(1)
	return v, size, true
}

// ReadFramed returns the raw framed bytes of key's entry after full
// verification (header and payload checksum), for serving to cluster peers
// without a decode/re-encode round trip. Corruption quarantines exactly
// like Get; hit/miss counters are untouched — peer serves are not local
// lookups and are counted by the HTTP handler instead.
func (d *Disk) ReadFramed(key Digest) ([]byte, bool) {
	d.mu.Lock()
	_, ok := d.items[key]
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	data, err := d.fsys.ReadFile(d.entryPath(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			d.dropIndexEntry(key)
		} else {
			d.readErrors.Add(1)
		}
		return nil, false
	}
	if _, _, err := parseDiskEntry(data); err != nil {
		d.quarantine(key, err)
		return nil, false
	}
	return data, true
}

// Put queues the artifact for write-behind persistence. It never blocks:
// with the tier degraded or the queue full the write is shed (the artifact
// stays memory-resident; a later rebuild re-queues it). Values no codec
// can serialize are ignored.
func (d *Disk) Put(key Digest, v any) {
	c := codecForValue(v)
	if c == nil {
		return
	}
	if DiskState(d.state.Load()) == DiskDegraded {
		d.dropped.Add(1)
		return
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.dropped.Add(1)
		return
	}
	if _, resident := d.items[key]; resident {
		d.mu.Unlock()
		return
	}
	d.pending.Add(1)
	select {
	case d.queue <- diskWrite{key: key, value: v, codec: c}:
		d.mu.Unlock()
	default:
		d.mu.Unlock()
		d.pending.Done()
		d.dropped.Add(1)
		d.setDegraded(errors.New("write-behind queue full (slow disk)"))
	}
}

// writer is the single write-behind goroutine: it encodes off the request
// path and lands entries with the atomic temp → fsync → rename discipline.
func (d *Disk) writer() {
	defer d.wg.Done()
	for w := range d.queue {
		d.writeEntry(w)
		d.pending.Done()
	}
}

func (d *Disk) writeEntry(w diskWrite) {
	payload, err := w.codec.Encode(w.value)
	if err != nil {
		d.writeErrors.Add(1)
		slog.Warn("store: disk encode failed", "key", w.key.Short(), "kind", w.codec.Kind(), "err", err)
		return
	}
	buf, err := encodeDiskEntry(w.codec.Kind(), payload)
	if err != nil {
		d.writeErrors.Add(1)
		return
	}
	d.mu.Lock()
	d.tmpSeq++
	seq := d.tmpSeq
	d.mu.Unlock()
	tmp := filepath.Join(d.dir, fmt.Sprintf("%s%s%d", w.key.String(), diskTmpInfix, seq))
	if err := d.fsys.WriteFile(tmp, buf); err != nil {
		d.writeErrors.Add(1)
		d.fsys.Remove(tmp)
		d.setDegraded(fmt.Errorf("write: %w", err))
		return
	}
	if err := d.fsys.Rename(tmp, d.entryPath(w.key)); err != nil {
		d.writeErrors.Add(1)
		d.fsys.Remove(tmp)
		d.setDegraded(fmt.Errorf("rename: %w", err))
		return
	}
	d.writes.Add(1)
	d.mu.Lock()
	if el, ok := d.items[w.key]; ok {
		e := el.Value.(*diskEntry)
		d.bytes += int64(len(buf)) - e.size
		e.size = int64(len(buf))
		d.ll.MoveToFront(el)
	} else {
		d.items[w.key] = d.ll.PushFront(&diskEntry{key: w.key, size: int64(len(buf))})
		d.bytes += int64(len(buf))
	}
	d.evictOverBudgetLocked()
	d.mu.Unlock()
}

// evictOverBudgetLocked removes least-recently-used entries (index and
// file) until the byte budget holds. d.mu must be held.
func (d *Disk) evictOverBudgetLocked() {
	for d.max > 0 && d.bytes > d.max && d.ll.Len() > 0 {
		el := d.ll.Back()
		e := el.Value.(*diskEntry)
		d.ll.Remove(el)
		delete(d.items, e.key)
		d.bytes -= e.size
		d.evictions.Add(1)
		if err := d.fsys.Remove(d.entryPath(e.key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			slog.Warn("store: disk eviction remove failed (next scan re-indexes)",
				"key", e.key.Short(), "err", err)
		}
	}
}

// dropIndexEntry forgets key without touching the file.
func (d *Disk) dropIndexEntry(key Digest) {
	d.mu.Lock()
	if el, ok := d.items[key]; ok {
		e := el.Value.(*diskEntry)
		d.ll.Remove(el)
		delete(d.items, key)
		d.bytes -= e.size
	}
	d.mu.Unlock()
}

// quarantine renames a corrupt entry aside (never deletes it — the
// corruption evidence is what operators triage, see OPERATIONS.md) and
// removes it from the index so it reads as a miss and gets rebuilt.
func (d *Disk) quarantine(key Digest, cause error) {
	d.dropIndexEntry(key)
	d.quarantineFile(key, cause)
}

// quarantineFile performs the rename-aside and accounting; the index must
// already exclude key (or never have included it, as during scan).
func (d *Disk) quarantineFile(key Digest, cause error) {
	d.mu.Lock()
	d.tmpSeq++
	seq := d.tmpSeq
	d.mu.Unlock()
	aside := filepath.Join(d.dir, fmt.Sprintf("%s%s%d", key.String(), diskQuarInfix, seq))
	if err := d.fsys.Rename(d.entryPath(key), aside); err != nil {
		// Renaming the evidence failed; removing the corrupt entry still
		// protects correctness (it must not be served again).
		d.fsys.Remove(d.entryPath(key))
		aside = "(removed: rename failed)"
	}
	d.quarantined.Add(1)
	slog.Warn("store: corrupt disk entry quarantined",
		"key", key.Short(), "quarantined_as", filepath.Base(aside), "cause", cause)
}

// setDegraded flips the tier to memory-only degraded mode (idempotent).
func (d *Disk) setDegraded(cause error) {
	if d.state.CompareAndSwap(int32(DiskOK), int32(DiskDegraded)) {
		d.degradedCount.Add(1)
		slog.Warn("store: disk tier degraded to memory-only mode",
			"dir", d.dir, "cause", cause, "reprobe", d.reprobe)
	}
}

// prober periodically re-probes a degraded disk with a small durable write
// and flips the tier back to ok when it succeeds.
func (d *Disk) prober() {
	defer d.wg.Done()
	t := time.NewTicker(d.reprobe)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			if DiskState(d.state.Load()) != DiskDegraded {
				continue
			}
			probe := filepath.Join(d.dir, diskProbeName)
			if err := d.fsys.WriteFile(probe, []byte(diskMagic)); err != nil {
				continue
			}
			d.fsys.Remove(probe)
			if d.state.CompareAndSwap(int32(DiskDegraded), int32(DiskOK)) {
				slog.Info("store: disk tier recovered", "dir", d.dir)
			}
		}
	}
}

// State returns the tier's health.
func (d *Disk) State() DiskState { return DiskState(d.state.Load()) }

// Flush blocks until every write queued so far has been attempted. Tests
// and shutdown use it; the serving path never waits on the disk.
func (d *Disk) Flush() { d.pending.Wait() }

// Close drains the write-behind queue (queued artifacts are durably
// written) and stops the background goroutines. The tier must not be used
// after Close.
func (d *Disk) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.queue)
	close(d.stop)
	d.wg.Wait()
	return nil
}

// Counters snapshots the disk tier's observability state.
func (d *Disk) Counters() DiskCounters {
	d.mu.Lock()
	entries, bytes := d.ll.Len(), d.bytes
	d.mu.Unlock()
	return DiskCounters{
		State:         d.State().String(),
		Entries:       entries,
		Bytes:         bytes,
		MaxBytes:      d.max,
		Hits:          d.hits.Load(),
		Misses:        d.misses.Load(),
		ReadErrors:    d.readErrors.Load(),
		Writes:        d.writes.Load(),
		WriteErrors:   d.writeErrors.Load(),
		WritesDropped: d.dropped.Load(),
		Quarantined:   d.quarantined.Load(),
		Evictions:     d.evictions.Load(),
		ScanEntries:   d.scanEntries.Load(),
		ScanOrphans:   d.scanOrphans.Load(),
		DegradedCount: d.degradedCount.Load(),
	}
}

// Contains reports whether key is indexed (tests), without counters.
func (d *Disk) Contains(key Digest) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.items[key]
	return ok
}
