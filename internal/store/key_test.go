package store

import (
	"testing"
	"time"
)

// TestKeyGoldenDigests pins the canonical key encoding and its SHA-256
// digests to concrete values. Digests are the cache's wire contract (zateld
// reports them to clients, and on-disk layers would address by them), so a
// silent format change must fail here; a deliberate one bumps the kind's
// version suffix and updates these constants.
func TestKeyGoldenDigests(t *testing.T) {
	cases := []struct {
		name      string
		key       *Key
		canonical string
		digest    string
	}{
		{
			name: "workload",
			key: NewKey("workload/v1").Str("scene", "PARK").
				Int("w", 128).Int("h", 128).Int("spp", 2),
			canonical: "workload/v1|scene=PARK|w=128|h=128|spp=2",
			digest:    "511d438be28144494c058ce1551b941cfddd06e90380f5fb970d9bae95b680bc",
		},
		{
			name: "all field kinds and escaping",
			key: NewKey("demo/v1").Str("s", "a|b=c%d").Float("f", 0.1).
				Bool("b", true).Uint64("u", 18446744073709551615).
				Dur("d", 1500*time.Millisecond),
			canonical: "demo/v1|s=a%7Cb%3Dc%25d|f=0.1|b=true|u=18446744073709551615|d=1500000000",
			digest:    "cb502ff34db77e20a5fcbb07d606eed88b01bcef5ed8a8cbc36762814e8908bc",
		},
	}
	for _, c := range cases {
		if got := c.key.Canonical(); got != c.canonical {
			t.Errorf("%s: canonical %q, want %q", c.name, got, c.canonical)
		}
		if got := c.key.Digest().String(); got != c.digest {
			t.Errorf("%s: digest %s, want %s", c.name, got, c.digest)
		}
	}
}

// TestKeyDistinctness checks that the encodings that must not collide
// don't: field order, value types, and structural characters in values.
func TestKeyDistinctness(t *testing.T) {
	pairs := []struct {
		name string
		a, b *Key
	}{
		{"field order", NewKey("k").Int("a", 1).Int("b", 2), NewKey("k").Int("b", 2).Int("a", 1)},
		{"int vs string", NewKey("k").Int("a", 1), NewKey("k").Str("a", "1")},
		{"value vs structural", NewKey("k").Str("a", "x|y=z"), NewKey("k").Str("a", "x").Str("y", "z")},
		{"kind", NewKey("k1").Int("a", 1), NewKey("k2").Int("a", 1)},
		{"bool vs string", NewKey("k").Bool("a", true), NewKey("k").Str("a", "true")},
	}
	for _, p := range pairs {
		switch p.name {
		case "int vs string", "bool vs string":
			// Numeric and bool fields intentionally share the string
			// encoding of their value; distinctness comes from producers
			// using one fixed type per field. Just document the identity.
			if p.a.Digest() != p.b.Digest() {
				t.Errorf("%s: expected identical digests (shared textual encoding)", p.name)
			}
		default:
			if p.a.Digest() == p.b.Digest() {
				t.Errorf("%s: digests collide: %s vs %s", p.name, p.a.Canonical(), p.b.Canonical())
			}
		}
	}
}

// TestKeyFloatCanonical checks the float encoding is the shortest
// round-trippable form, identical across platforms for IEEE-754 doubles.
func TestKeyFloatCanonical(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.1, "k|f=0.1"},
		{1.0 / 3.0, "k|f=0.3333333333333333"},
		{0, "k|f=0"},
		{1e21, "k|f=1e+21"},
	}
	for _, c := range cases {
		if got := NewKey("k").Float("f", c.v).Canonical(); got != c.want {
			t.Errorf("Float(%v): %q, want %q", c.v, got, c.want)
		}
	}
}

func TestDigestShort(t *testing.T) {
	d := NewKey("k").Digest()
	if len(d.Short()) != 12 || d.String()[:12] != d.Short() {
		t.Errorf("Short() = %q, want 12-char prefix of %q", d.Short(), d.String())
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"1024", 1024, false},
		{"64K", 64 << 10, false},
		{"64KiB", 64 << 10, false},
		{"64kb", 64 << 10, false},
		{"256M", 256 << 20, false},
		{"2GiB", 2 << 30, false},
		{"1T", 1 << 40, false},
		{"10B", 10, false},
		{"", 0, true},
		{"-1", 0, true},
		{"12XB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseSize(%q): err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
