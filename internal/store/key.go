// Package store is the content-addressed artifact cache behind Zatel's
// amortization story: profile/quantize/predict once, answer every later
// identical question from memory. Artifacts (workload traces, quantized
// heatmaps, full predictions) are addressed by a stable SHA-256 digest over
// a canonical encoding of everything that determines their value, held in a
// bounded LRU with byte-size accounting, and built at most once per key no
// matter how many callers ask concurrently (singleflight coalescing).
//
// The canonical key encoding is part of the repository's wire contract:
// cmd/zateld reports digests to clients and the golden tests in
// key_test.go pin concrete hex values, so any change to the encoding is a
// deliberate, visible format break (bump the kind's version suffix).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
	"time"
)

// Digest is the 256-bit content address of one artifact key.
type Digest [sha256.Size]byte

// String returns the full lowercase hex form.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns the first 12 hex characters — enough to disambiguate in
// logs and HTTP responses without drowning them.
func (d Digest) Short() string { return d.String()[:12] }

// Key builds one canonical artifact key: a kind tag followed by
// `|name=value` fields in the exact order the caller appends them. Field
// order is significant by design — every producer writes its fields in one
// fixed, documented order, which keeps the encoding deterministic without
// sorting maps.
type Key struct {
	buf strings.Builder
}

// NewKey starts a key of the given kind. Kind strings carry a version
// suffix ("workload/v1") so format changes produce disjoint digests
// instead of silently colliding with old ones.
func NewKey(kind string) *Key {
	k := &Key{}
	k.buf.WriteString(escape(kind))
	return k
}

// escape makes field values unambiguous inside the `kind|a=b|c=d` framing:
// the three structural bytes are percent-encoded, everything else passes
// through verbatim.
func escape(s string) string {
	if !strings.ContainsAny(s, "%|=") {
		return s
	}
	r := strings.NewReplacer("%", "%25", "|", "%7C", "=", "%3D")
	return r.Replace(s)
}

func (k *Key) field(name, value string) *Key {
	k.buf.WriteByte('|')
	k.buf.WriteString(escape(name))
	k.buf.WriteByte('=')
	k.buf.WriteString(value)
	return k
}

// Str appends a string field (escaped).
func (k *Key) Str(name, v string) *Key { return k.field(name, escape(v)) }

// Int appends an integer field.
func (k *Key) Int(name string, v int) *Key { return k.field(name, strconv.Itoa(v)) }

// Uint64 appends an unsigned integer field.
func (k *Key) Uint64(name string, v uint64) *Key {
	return k.field(name, strconv.FormatUint(v, 10))
}

// Float appends a float field in the shortest round-trippable decimal form,
// which is platform-independent for IEEE-754 doubles.
func (k *Key) Float(name string, v float64) *Key {
	return k.field(name, strconv.FormatFloat(v, 'g', -1, 64))
}

// Bool appends a boolean field.
func (k *Key) Bool(name string, v bool) *Key { return k.field(name, strconv.FormatBool(v)) }

// Dur appends a duration field as integer nanoseconds.
func (k *Key) Dur(name string, v time.Duration) *Key {
	return k.field(name, strconv.FormatInt(int64(v), 10))
}

// Canonical returns the canonical encoding accumulated so far. It exists
// for tests and debugging; cache identity is the Digest.
func (k *Key) Canonical() string { return k.buf.String() }

// Digest returns the SHA-256 content address of the canonical encoding.
func (k *Key) Digest() Digest { return sha256.Sum256([]byte(k.buf.String())) }
