package store

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"zatel/internal/faults"
)

// testBlob is the disk tests' artifact type, registered under its own
// versioned kind so these tests never depend on the real rt/core codecs.
type testBlob struct{ data []byte }

// SizeBytes implements Sizer.
func (b *testBlob) SizeBytes() int64 { return int64(len(b.data)) }

type testBlobCodec struct{}

func (testBlobCodec) Kind() string { return "test.blob/v1" }
func (testBlobCodec) Encodes(v any) bool {
	_, ok := v.(*testBlob)
	return ok
}
func (testBlobCodec) Encode(v any) ([]byte, error) {
	b, ok := v.(*testBlob)
	if !ok {
		return nil, fmt.Errorf("store: test codec cannot encode %T", v)
	}
	return append([]byte{}, b.data...), nil
}
func (testBlobCodec) Decode(data []byte) (any, int64, error) {
	if len(data) == 0 {
		return nil, 0, fmt.Errorf("store: empty test blob")
	}
	return &testBlob{data: append([]byte{}, data...)}, int64(len(data)), nil
}

func init() { RegisterCodec(testBlobCodec{}) }

func blob(i, size int) *testBlob { return &testBlob{data: bytes.Repeat([]byte{byte(i)}, size)} }

// blobBuild is a build function returning blob(i, size), counting calls.
func blobBuild(i, size int, calls *int) func(context.Context) (any, int64, error) {
	return func(context.Context) (any, int64, error) {
		if calls != nil {
			*calls++
		}
		return blob(i, size), 0, nil // size 0 → the store asks Sizer
	}
}

func openTestDisk(t *testing.T, cfg DiskConfig) *Disk {
	t.Helper()
	d, err := OpenDisk(cfg)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// dirNames lists the cache directory's file names.
func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names
}

// TestDiskPersistsAcrossReopen is the tier's core promise: an artifact
// built before a restart is served warm — integrity-verified, DiskHit
// outcome — after it, without running the build.
func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	st := New(0)
	st.AttachDisk(openTestDisk(t, DiskConfig{Dir: dir}))
	var builds int
	if _, out, err := st.GetOrBuild(ctx, key(1), blobBuild(1, 500, &builds)); err != nil || out != Miss {
		t.Fatalf("cold build: %v %v", out, err)
	}
	d := st.Disk()
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if dc := d.Counters(); dc.Writes != 1 {
		t.Fatalf("disk writes = %d, want 1: %+v", dc.Writes, dc)
	}

	// "Restart": fresh memory store, reopened disk.
	d2 := openTestDisk(t, DiskConfig{Dir: dir})
	if dc := d2.Counters(); dc.ScanEntries != 1 || dc.Entries != 1 {
		t.Fatalf("reopen scan: %+v", dc)
	}
	st2 := New(0)
	st2.AttachDisk(d2)
	v, out, err := st2.GetOrBuild(ctx, key(1), func(context.Context) (any, int64, error) {
		t.Error("build ran despite a valid disk entry")
		return nil, 0, fmt.Errorf("unreachable")
	})
	if err != nil || out != DiskHit {
		t.Fatalf("warm-from-disk: outcome %v, err %v", out, err)
	}
	if got := v.(*testBlob); !bytes.Equal(got.data, blob(1, 500).data) {
		t.Fatal("disk round trip corrupted the artifact")
	}
	// The disk hit re-admitted the artifact to memory.
	if _, out, _ := st2.GetOrBuild(ctx, key(1), blobBuild(1, 500, nil)); out != Hit {
		t.Errorf("second lookup outcome %v, want memory hit", out)
	}
	c := st2.Snapshot()
	if c.DiskHits != 1 || c.Builds != 0 {
		t.Errorf("store counters after disk hit: %+v", c)
	}
	if builds != 1 {
		t.Errorf("build ran %d times across restarts, want 1", builds)
	}
}

// TestDiskTornWriteQuarantinedAndRebuilt: a write the disk acknowledged but
// only partially persisted (power-cut model) must never be served — the
// read detects the tear, quarantines the file aside, and the store rebuilds.
func TestDiskTornWriteQuarantinedAndRebuilt(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	ffs, err := faults.NewFaultFS(nil, faults.FSConfig{TornWriteRate: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	st := New(0)
	d := openTestDisk(t, DiskConfig{Dir: dir, FS: ffs})
	st.AttachDisk(d)

	if _, _, err := st.GetOrBuild(ctx, key(2), blobBuild(2, 400, nil)); err != nil {
		t.Fatal(err)
	}
	d.Flush()
	if got := ffs.Stats().TornWrites; got != 1 {
		t.Fatalf("torn writes = %d, want 1", got)
	}
	// Heal the disk; the torn entry is already on it.
	if err := ffs.SetConfig(faults.FSConfig{}); err != nil {
		t.Fatal(err)
	}

	// Fresh memory store so the lookup reaches the disk.
	st2 := New(0)
	st2.AttachDisk(d)
	var rebuilds int
	v, out, err := st2.GetOrBuild(ctx, key(2), blobBuild(2, 400, &rebuilds))
	if err != nil || out != Miss || rebuilds != 1 {
		t.Fatalf("torn entry was not rebuilt: outcome %v, err %v, rebuilds %d", out, err, rebuilds)
	}
	if got := v.(*testBlob); !bytes.Equal(got.data, blob(2, 400).data) {
		t.Fatal("rebuilt artifact corrupted")
	}
	if dc := d.Counters(); dc.Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1: %+v", dc.Quarantined, dc)
	}
	var quarantined bool
	for _, name := range dirNames(t, dir) {
		if strings.Contains(name, diskQuarInfix) {
			quarantined = true
		}
	}
	if !quarantined {
		t.Errorf("no quarantine file in %v", dirNames(t, dir))
	}
}

// TestDiskBitrotQuarantinedOnRead: a bit flipped at rest fails the payload
// checksum on read; the entry is quarantined and read as a miss.
func TestDiskBitrotQuarantinedOnRead(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, DiskConfig{Dir: dir})
	d.Put(key(3), blob(3, 300))
	d.Flush()

	// Rot one payload bit directly in the entry file.
	path := filepath.Join(dir, key(3).String()+diskEntSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-7] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := d.Get(key(3)); ok {
		t.Fatal("bit-rotted entry was served")
	}
	dc := d.Counters()
	if dc.Quarantined != 1 || dc.Misses != 1 || dc.Entries != 0 {
		t.Errorf("counters after bitrot read: %+v", dc)
	}
	// A second lookup is a plain miss — the quarantined entry costs nothing.
	if _, _, ok := d.Get(key(3)); ok {
		t.Fatal("quarantined key served on retry")
	}
}

// TestDiskScanQuarantinesCorrupt: corruption that happened while the
// process was down is caught by the startup scan's full verification, and
// intact neighbours are still indexed.
func TestDiskScanQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, DiskConfig{Dir: dir})
	d.Put(key(4), blob(4, 200))
	d.Put(key(5), blob(5, 200))
	d.Flush()
	d.Close()

	// Truncate one entry mid-payload: a torn write that a crash froze.
	path := filepath.Join(dir, key(4).String()+diskEntSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-50], 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDisk(t, DiskConfig{Dir: dir})
	dc := d2.Counters()
	if dc.Quarantined != 1 || dc.ScanEntries != 1 || dc.Entries != 1 {
		t.Fatalf("scan counters: %+v", dc)
	}
	if d2.Contains(key(4)) {
		t.Error("corrupt entry indexed")
	}
	if !d2.Contains(key(5)) {
		t.Error("intact entry not indexed")
	}
	if _, _, ok := d2.Get(key(5)); !ok {
		t.Error("intact entry not served after scan")
	}
}

// TestDiskScanRemovesOrphanTemps: temp files a crash left between write and
// rename are deleted at startup — they were never renamed into place, so
// nothing references them.
func TestDiskScanRemovesOrphanTemps(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, key(6).String()+diskTmpInfix+"7")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Unrelated junk is left alone.
	junk := filepath.Join(dir, "README")
	if err := os.WriteFile(junk, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	d := openTestDisk(t, DiskConfig{Dir: dir})
	if dc := d.Counters(); dc.ScanOrphans != 1 || dc.Entries != 0 {
		t.Errorf("scan counters: %+v", dc)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan temp survived the scan")
	}
	if _, err := os.Stat(junk); err != nil {
		t.Error("scan removed an unrelated file")
	}
}

// TestDiskENOSPCDegradesAndRecovers: a full disk flips the tier to
// memory-only degraded mode — lookups keep working, writes shed — and the
// periodic probe restores it once space returns.
func TestDiskENOSPCDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs, err := faults.NewFaultFS(nil, faults.FSConfig{ENOSPCRate: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d := openTestDisk(t, DiskConfig{Dir: dir, FS: ffs, ReprobeInterval: 10 * time.Millisecond})

	d.Put(key(7), blob(7, 100))
	d.Flush()
	if s := d.State(); s != DiskDegraded {
		t.Fatalf("state after ENOSPC = %v, want degraded", s)
	}
	dc := d.Counters()
	if dc.WriteErrors != 1 || dc.DegradedCount != 1 || dc.State != "degraded" {
		t.Fatalf("counters after ENOSPC: %+v", dc)
	}

	// Degraded mode sheds writes instead of queuing them.
	d.Put(key(8), blob(8, 100))
	if dc := d.Counters(); dc.WritesDropped == 0 {
		t.Error("degraded Put was not dropped")
	}

	// "Free some space": heal the filesystem and wait for the probe.
	if err := ffs.SetConfig(faults.FSConfig{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.State() != DiskOK {
		if time.Now().After(deadline) {
			t.Fatal("disk tier never recovered after the fault cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Writes flow again.
	d.Put(key(9), blob(9, 100))
	d.Flush()
	if !d.Contains(key(9)) {
		t.Error("post-recovery write did not land")
	}
}

// TestDiskBudgetEviction: the disk tier byte-budgets itself with LRU
// eviction, removing both index entries and files.
func TestDiskBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	// Each 100-byte blob frames to 100+header bytes; a ~3-entry budget.
	entrySize := int64(diskHeaderBase + len(testBlobCodec{}.Kind()) + 100)
	d := openTestDisk(t, DiskConfig{Dir: dir, MaxBytes: 3 * entrySize})

	for i := 10; i < 15; i++ {
		d.Put(key(i), blob(i, 100))
	}
	d.Flush()
	dc := d.Counters()
	if dc.Entries != 3 || dc.Evictions != 2 || dc.Bytes > 3*entrySize {
		t.Fatalf("counters after over-budget writes: %+v", dc)
	}
	// Oldest two evicted, newest three resident — on disk too.
	for i := 10; i < 12; i++ {
		if d.Contains(key(i)) {
			t.Errorf("key %d still indexed", i)
		}
		if _, err := os.Stat(filepath.Join(dir, key(i).String()+diskEntSuffix)); !os.IsNotExist(err) {
			t.Errorf("evicted entry %d still on disk", i)
		}
	}
	for i := 12; i < 15; i++ {
		if _, _, ok := d.Get(key(i)); !ok {
			t.Errorf("resident entry %d not served", i)
		}
	}
}

// TestDiskUnknownKindIsMissNotCorruption: an entry written under a kind
// this binary does not register (newer deploy, retired format) reads as a
// miss but is NOT quarantined — the file stays for the binary that speaks it.
func TestDiskUnknownKindIsMissNotCorruption(t *testing.T) {
	dir := t.TempDir()
	buf, err := encodeDiskEntry("future.format/v9", []byte("payload from the future"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key(16).String()+diskEntSuffix)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	d := openTestDisk(t, DiskConfig{Dir: dir})
	// The scan verifies the checksum (it holds) and indexes the entry; the
	// read path then discovers no codec speaks the kind.
	if _, _, ok := d.Get(key(16)); ok {
		t.Fatal("unknown-kind entry was served")
	}
	if dc := d.Counters(); dc.Quarantined != 0 {
		t.Errorf("unknown kind quarantined: %+v", dc)
	}
	if _, err := os.Stat(path); err != nil {
		t.Error("unknown-kind entry file was removed")
	}
}

// TestDiskEntryFraming pins the header codec itself.
func TestDiskEntryFraming(t *testing.T) {
	payload := []byte("some payload")
	buf, err := encodeDiskEntry("k/v1", payload)
	if err != nil {
		t.Fatal(err)
	}
	kind, got, err := parseDiskEntry(buf)
	if err != nil || kind != "k/v1" || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q %q %v", kind, got, err)
	}

	for name, corrupt := range map[string]func([]byte) []byte{
		"short":       func(b []byte) []byte { return b[:diskHeaderBase-1] },
		"magic":       func(b []byte) []byte { b[0] = 'X'; return b },
		"version":     func(b []byte) []byte { b[4] = 0xFF; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)-3] },
		"payload-bit": func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		// Flipping a bit in the payload-length field (right after the 4-byte
		// kind) must read as a torn write. A flip inside the kind string
		// itself parses — by design: it surfaces as an unknown kind, which
		// the read path treats as a miss, never as a wrong artifact.
		"length-bit": func(b []byte) []byte { b[12] ^= 1; return b },
	} {
		b := corrupt(append([]byte{}, buf...))
		if _, _, err := parseDiskEntry(b); err == nil {
			t.Errorf("%s corruption parsed cleanly", name)
		}
	}
	if _, err := encodeDiskEntry("", payload); err == nil {
		t.Error("empty kind encoded")
	}
	if _, err := encodeDiskEntry(strings.Repeat("k", diskMaxKindLen+1), payload); err == nil {
		t.Error("oversized kind encoded")
	}
}

// TestDiskEIOReadIsMiss: a filesystem read error (not corruption) is a
// plain miss — counted, logged, no quarantine, entry left indexed on disk.
func TestDiskEIOReadIsMiss(t *testing.T) {
	dir := t.TempDir()
	ffs, err := faults.NewFaultFS(nil, faults.FSConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d := openTestDisk(t, DiskConfig{Dir: dir, FS: ffs})
	d.Put(key(17), blob(17, 100))
	d.Flush()

	if err := ffs.SetConfig(faults.FSConfig{ReadErrRate: 1, Seed: 13}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.Get(key(17)); ok {
		t.Fatal("EIO read served a value")
	}
	dc := d.Counters()
	if dc.ReadErrors != 1 || dc.Quarantined != 0 {
		t.Errorf("counters after EIO: %+v", dc)
	}
	// The fault clears; the entry is intact and serves again.
	if err := ffs.SetConfig(faults.FSConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d.Get(key(17)); !ok {
		t.Error("entry lost after a transient EIO")
	}
}
