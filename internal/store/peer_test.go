package store

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// fakePeers scripts the peer tier: it serves the keys in have and counts
// every consultation.
type fakePeers struct {
	have    map[Digest]string
	fetches atomic.Int64
}

func (f *fakePeers) Fetch(ctx context.Context, key Digest) (any, int64, bool) {
	f.fetches.Add(1)
	if v, ok := f.have[key]; ok {
		return v, int64(len(v)), true
	}
	return nil, 0, false
}

func (f *fakePeers) Counters() PeerCounters {
	return PeerCounters{Peers: 2, Healthy: 2, Fetches: uint64(f.fetches.Load())}
}

func TestGetOrBuildPeerHit(t *testing.T) {
	s := New(0)
	ctx := context.Background()
	k := key(1)
	peers := &fakePeers{have: map[Digest]string{k: "from the owner"}}
	s.AttachPeers(peers)

	v, out, err := s.GetOrBuild(ctx, k, func(context.Context) (any, int64, error) {
		t.Fatal("build ran though the peer had the artifact")
		return nil, 0, nil
	})
	if err != nil || out != PeerHit || v.(string) != "from the owner" {
		t.Fatalf("peer-backed call: %v %v %v", v, out, err)
	}
	if out.String() != "peer" {
		t.Errorf("PeerHit.String() = %q, want \"peer\"", out.String())
	}
	// The hit was promoted: the next lookup is a memory hit, no peer call.
	v, out, err = s.GetOrBuild(ctx, k, constBuild(nil, 0))
	if err != nil || out != Hit || v.(string) != "from the owner" {
		t.Fatalf("post-promotion call: %v %v %v", v, out, err)
	}
	if n := peers.fetches.Load(); n != 1 {
		t.Errorf("peer consulted %d times, want 1 (promotion failed?)", n)
	}
	c := s.Snapshot()
	if c.PeerHits != 1 || c.Builds != 0 {
		t.Errorf("counters = %+v, want PeerHits=1 Builds=0", c)
	}
}

func TestGetOrBuildPeerMissBuilds(t *testing.T) {
	s := New(0)
	ctx := context.Background()
	peers := &fakePeers{} // has nothing
	s.AttachPeers(peers)

	v, out, err := s.GetOrBuild(ctx, key(2), constBuild("built locally", 13))
	if err != nil || out != Miss || v.(string) != "built locally" {
		t.Fatalf("peer miss did not degrade to a build: %v %v %v", v, out, err)
	}
	if peers.fetches.Load() != 1 {
		t.Errorf("peer consulted %d times, want 1", peers.fetches.Load())
	}
	c := s.Snapshot()
	if c.PeerMisses != 1 || c.Builds != 1 {
		t.Errorf("counters = %+v, want PeerMisses=1 Builds=1", c)
	}
}

// TestPeerConsultedAfterDisk pins the tier order: a disk-resident artifact
// never reaches the peer tier.
func TestPeerConsultedAfterDisk(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	k := key(7)

	// Build once so the artifact lands on disk, then "restart": a fresh
	// memory store over the same directory, this time with a peer tier.
	st := New(0)
	st.AttachDisk(openTestDisk(t, DiskConfig{Dir: dir}))
	if _, _, err := st.GetOrBuild(ctx, k, blobBuild(7, 64, nil)); err != nil {
		t.Fatal(err)
	}
	d := st.Disk()
	d.Flush()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := New(0)
	st2.AttachDisk(openTestDisk(t, DiskConfig{Dir: dir}))
	peers := &fakePeers{}
	st2.AttachPeers(peers)
	_, out, err := st2.GetOrBuild(ctx, k, func(context.Context) (any, int64, error) {
		t.Fatal("build ran though disk had the artifact")
		return nil, 0, nil
	})
	if err != nil || out != DiskHit {
		t.Fatalf("disk-backed call: %v %v", out, err)
	}
	if peers.fetches.Load() != 0 {
		t.Errorf("peer consulted %d times for a disk-resident key, want 0", peers.fetches.Load())
	}
}

func TestTryGetOutcomes(t *testing.T) {
	s := New(0)
	ctx := context.Background()
	k1, k2, k3 := key(1), key(2), key(3)
	peers := &fakePeers{have: map[Digest]string{k2: "peer copy"}}
	s.AttachPeers(peers)

	// Memory hit.
	if _, _, err := s.GetOrBuild(ctx, k1, constBuild("resident", 8)); err != nil {
		t.Fatal(err)
	}
	if v, out, ok := s.TryGet(ctx, k1); !ok || out != Hit || v.(string) != "resident" {
		t.Fatalf("TryGet(resident) = %v %v %v", v, out, ok)
	}
	// Peer hit, promoted.
	if v, out, ok := s.TryGet(ctx, k2); !ok || out != PeerHit || v.(string) != "peer copy" {
		t.Fatalf("TryGet(peer) = %v %v %v", v, out, ok)
	}
	if v, out, ok := s.TryGet(ctx, k2); !ok || out != Hit || v.(string) != "peer copy" {
		t.Fatalf("TryGet after promotion = %v %v %v", v, out, ok)
	}
	// Fleet-wide miss: no build, ok=false.
	if _, _, ok := s.TryGet(ctx, k3); ok {
		t.Fatal("TryGet(miss) = true")
	}
	c := s.Snapshot()
	if c.Builds != 1 {
		t.Errorf("TryGet ran a build: %+v", c)
	}
}

func TestTryGetJoinsInflightBuild(t *testing.T) {
	s := New(0)
	ctx := context.Background()
	k := key(1)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.GetOrBuild(ctx, k, func(context.Context) (any, int64, error) {
			close(started)
			<-release
			return "slow build", 10, nil
		})
	}()
	<-started
	got := make(chan string, 1)
	go func() {
		v, out, ok := s.TryGet(ctx, k)
		if !ok || out != Coalesced {
			got <- fmt.Sprintf("bad outcome %v ok=%v", out, ok)
			return
		}
		got <- v.(string)
	}()
	// TryGet bumps the coalesced counter before waiting on the flight;
	// release the build only once it has demonstrably joined.
	for s.Snapshot().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if v := <-got; v != "slow build" {
		t.Fatalf("TryGet joined in-flight build, got %q", v)
	}
	<-done
}

// TestStatsMatchesSnapshot: the unified Stats call and the individual
// snapshots must agree — /healthz and /metrics read through Stats so they
// can never disagree about which tiers exist.
func TestStatsMatchesSnapshot(t *testing.T) {
	s := New(0)
	ctx := context.Background()
	st := s.Stats()
	if st.DiskEnabled || st.PeerEnabled {
		t.Fatalf("bare store reports tiers: %+v", st)
	}

	k := key(1)
	peers := &fakePeers{have: map[Digest]string{k: "x"}}
	s.AttachPeers(peers)
	if _, _, err := s.GetOrBuild(ctx, k, constBuild(nil, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetOrBuild(ctx, key(9), constBuild("y", 1)); err != nil {
		t.Fatal(err)
	}

	st = s.Stats()
	if !st.PeerEnabled {
		t.Fatal("peer tier attached but PeerEnabled = false")
	}
	if st.Mem != s.Snapshot() {
		t.Errorf("Stats.Mem %+v != Snapshot %+v", st.Mem, s.Snapshot())
	}
	if st.Mem.PeerHits != 1 || st.Mem.PeerMisses != 1 {
		t.Errorf("peer outcome counters = %+v", st.Mem)
	}
	if pc, _ := s.PeerCounters(); st.Peer != pc {
		t.Errorf("Stats.Peer %+v != PeerCounters %+v", st.Peer, pc)
	}
	s.AttachPeers(nil)
	if st = s.Stats(); st.PeerEnabled {
		t.Error("detached peer tier still reported enabled")
	}
}
