package store

import (
	"container/list"
	"context"
	"fmt"
	"log/slog"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"zatel/internal/obs"
)

// Outcome classifies how one GetOrBuild call was served.
type Outcome int

const (
	// Miss: this call ran the build itself.
	Miss Outcome = iota
	// Hit: the artifact was already resident in memory.
	Hit
	// Coalesced: another call was already building the same key; this one
	// waited and shared the outcome without running the build.
	Coalesced
	// DiskHit: the artifact was loaded (and integrity-verified) from the
	// disk tier instead of being rebuilt, and is now memory-resident.
	DiskHit
	// PeerHit: the artifact was fetched (and integrity-verified) from the
	// owning cluster peer instead of being rebuilt, and is now resident in
	// the local memory and disk tiers.
	PeerHit
)

// String implements fmt.Stringer ("miss", "hit", "coalesced", "disk",
// "peer").
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	case DiskHit:
		return "disk"
	case PeerHit:
		return "peer"
	default:
		return "miss"
	}
}

// Counters is a point-in-time snapshot of a store's observability state.
// The monotonic totals feed the /metrics Prometheus exposition; the gauges
// describe current occupancy.
type Counters struct {
	// Hits counts lookups served from a resident artifact.
	Hits uint64
	// Misses counts lookups that ran the build themselves.
	Misses uint64
	// Coalesced counts lookups that piggybacked on an in-flight build.
	Coalesced uint64
	// Builds counts build executions (== Misses; kept separate so the
	// relationship is checkable) and BuildErrors the ones that failed.
	Builds      uint64
	BuildErrors uint64
	// Evictions counts artifacts dropped to stay within MaxBytes.
	Evictions uint64
	// DiskHits counts lookups served from the disk tier (also reflected in
	// the disk tier's own counters).
	DiskHits uint64
	// PeerHits counts lookups served from the peer tier; PeerMisses the
	// peer consultations that came back empty (the fetcher's own counters
	// break the misses down by cause).
	PeerHits, PeerMisses uint64
	// Inflight is the number of builds currently executing.
	Inflight int
	// Entries and Bytes describe current residency; MaxBytes is the budget
	// (0 = unbounded).
	Entries  int
	Bytes    int64
	MaxBytes int64
}

// flight is one in-progress build: the first caller for a key builds,
// everyone else waits on done and shares value/err.
type flight struct {
	done  chan struct{}
	value any
	err   error
}

// entry is one resident artifact in the LRU list.
type entry struct {
	key   Digest
	value any
	size  int64
}

// Store is a bounded, content-addressed, coalescing artifact cache. The
// zero value is not usable; construct with New.
type Store struct {
	mu       sync.Mutex
	max      int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[Digest]*list.Element
	inflight map[Digest]*flight

	hits, misses, coalesced uint64
	builds, buildErrors     uint64
	evictions, diskHits     uint64
	peerHits, peerMisses    uint64

	// disk is the optional persistent second tier (nil = memory-only).
	// Atomic so AttachDisk is safe against concurrent GetOrBuild.
	disk atomic.Pointer[Disk]
	// peers is the optional third tier: the cluster peer fetcher (nil =
	// single-node). Atomic so AttachPeers is safe against concurrent
	// GetOrBuild.
	peers atomic.Pointer[peerTier]
}

// New returns an empty store that evicts least-recently-used artifacts once
// resident bytes exceed maxBytes (<= 0 means unbounded).
func New(maxBytes int64) *Store {
	return &Store{
		max:      maxBytes,
		ll:       list.New(),
		items:    make(map[Digest]*list.Element),
		inflight: make(map[Digest]*flight),
	}
}

// defaultStore is the process-wide shared store: rt workload traces and
// core quantized heatmaps land here unless a caller injects its own store,
// so every CLI and test in one process amortises the same artifacts.
// Unbounded by default (the pre-store behaviour); cap it with
// Default().SetMaxBytes, e.g. from a -store-size flag.
var defaultStore = New(0)

// Default returns the process-wide shared store.
func Default() *Store { return defaultStore }

// Sizer is implemented by artifacts that know their own resident size.
// GetOrBuild consults it when the builder reports a non-positive size.
type Sizer interface {
	// SizeBytes returns the artifact's resident size in bytes.
	SizeBytes() int64
}

// GetOrBuild returns the artifact for key, running build at most once per
// key across all concurrent callers. The build receives ctx; its failure is
// returned to the builder and every coalesced waiter but is not cached, so
// a later call retries. Waiters stop waiting when their own ctx fires (the
// build itself keeps running for the callers still interested). A build
// that panics is converted into an error rather than crashing the caller.
//
// build returns the artifact and its resident size in bytes, which is what
// the LRU budget accounts. When build reports a non-positive size and the
// artifact implements Sizer, the store asks the artifact itself — types
// with arena-backed storage (rt.Workload, bvh.BVH) report exact footprints
// that a builder-side estimate would only approximate. Artifacts larger
// than the whole budget are returned but not retained.
func (s *Store) GetOrBuild(ctx context.Context, key Digest, build func(ctx context.Context) (any, int64, error)) (any, Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		v := el.Value.(*entry).value
		s.mu.Unlock()
		_, sp := obs.StartSpan(ctx, "store.hit")
		sp.SetAttr("key", key.Short())
		sp.End()
		return v, Hit, nil
	}
	if f, ok := s.inflight[key]; ok {
		s.coalesced++
		s.mu.Unlock()
		_, sp := obs.StartSpan(ctx, "store.coalesce")
		sp.SetAttr("key", key.Short())
		defer sp.End()
		select {
		case <-f.done:
			return f.value, Coalesced, f.err
		case <-ctx.Done():
			sp.SetAttr("error", ctx.Err())
			return nil, Coalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	// Disk tier: checked inside the flight so concurrent callers coalesce
	// onto one disk read exactly as they would onto one build. A disk hit
	// is re-admitted to the memory tier; any invalid entry was quarantined
	// by the tier itself and reads as a miss here.
	if d := s.disk.Load(); d != nil {
		if v, size, ok := d.Get(key); ok {
			s.mu.Lock()
			delete(s.inflight, key)
			s.diskHits++
			s.insertLocked(key, v, size)
			s.mu.Unlock()
			f.value = v
			close(f.done)
			_, sp := obs.StartSpan(ctx, "store.diskhit")
			sp.SetAttr("key", key.Short())
			sp.End()
			return v, DiskHit, nil
		}
	}

	// Peer tier: after disk, before building — an artifact any fleet member
	// already built is fetched by digest, integrity-verified and promoted,
	// exactly once per flight. Peer failure of any kind falls through to the
	// local build below; the fleet degrading never surfaces as an error.
	if v, size, ok := s.fetchPeer(ctx, key); ok {
		s.mu.Lock()
		delete(s.inflight, key)
		s.insertLocked(key, v, size)
		s.mu.Unlock()
		f.value = v
		close(f.done)
		_, sp := obs.StartSpan(ctx, "store.peerhit")
		sp.SetAttr("key", key.Short())
		sp.End()
		if d := s.disk.Load(); d != nil {
			d.Put(key, v)
		}
		return v, PeerHit, nil
	}

	s.mu.Lock()
	s.misses++
	s.builds++
	s.mu.Unlock()

	bctx, sp := obs.StartSpan(ctx, "store.build")
	sp.SetAttr("key", key.Short())
	v, size, err := runBuild(bctx, build)
	if err != nil {
		sp.SetAttr("error", err)
	} else {
		sp.SetAttr("bytes", size)
	}
	sp.End()

	s.mu.Lock()
	delete(s.inflight, key)
	if err != nil {
		s.buildErrors++
	} else {
		if size <= 0 {
			if sz, ok := v.(Sizer); ok {
				size = sz.SizeBytes()
			}
		}
		f.value = v
		s.insertLocked(key, v, size)
	}
	f.err = err
	s.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, Miss, err
	}
	// Write-behind to the disk tier: never blocks the caller; a degraded
	// or saturated tier sheds the write and the artifact stays memory-only.
	if d := s.disk.Load(); d != nil {
		d.Put(key, v)
	}
	return v, Miss, nil
}

// AttachDisk installs d as the store's persistent second tier: memory
// misses consult it before building, and successful builds are persisted
// through its write-behind queue. Pass nil to detach.
func (s *Store) AttachDisk(d *Disk) { s.disk.Store(d) }

// Disk returns the attached disk tier (nil = memory-only).
func (s *Store) Disk() *Disk { return s.disk.Load() }

// DiskCounters snapshots the attached disk tier's counters; ok is false
// when no tier is attached.
func (s *Store) DiskCounters() (DiskCounters, bool) {
	d := s.disk.Load()
	if d == nil {
		return DiskCounters{}, false
	}
	return d.Counters(), true
}

// runBuild invokes build with panic capture, mirroring the runner pool's
// fail-soft contract: one bad artifact build must not take down a server.
// The builder's stack is captured at the recovery point — the error alone
// would lose the frames that identify which builder blew up — logged, and
// carried in the returned error for callers that surface it.
func runBuild(ctx context.Context, build func(ctx context.Context) (any, int64, error)) (v any, size int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			slog.Error("store: build panicked", "panic", r, "stack", string(stack))
			v, size, err = nil, 0, fmt.Errorf("store: build panicked: %v\n%s", r, stack)
		}
	}()
	return build(ctx)
}

// insertLocked makes the artifact resident as MRU and evicts from the LRU
// tail until the byte budget holds again. The new artifact sits at the
// front, so it is evicted only when it alone exceeds the whole budget.
func (s *Store) insertLocked(key Digest, v any, size int64) {
	if size < 0 {
		size = 0
	}
	if el, ok := s.items[key]; ok {
		// Cannot happen through GetOrBuild (one flight per key guards the
		// insert), but keep the invariant safe under future callers.
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.value, e.size = v, size
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&entry{key: key, value: v, size: size})
		s.bytes += size
	}
	s.evictOverBudgetLocked()
}

func (s *Store) evictOverBudgetLocked() {
	for s.max > 0 && s.bytes > s.max && s.ll.Len() > 0 {
		el := s.ll.Back()
		e := el.Value.(*entry)
		s.ll.Remove(el)
		delete(s.items, e.key)
		s.bytes -= e.size
		s.evictions++
	}
}

// Contains reports whether key is resident, without touching LRU order or
// counters.
func (s *Store) Contains(key Digest) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[key]
	return ok
}

// SetMaxBytes replaces the byte budget (<= 0 = unbounded) and immediately
// evicts down to it.
func (s *Store) SetMaxBytes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.max = n
	s.evictOverBudgetLocked()
}

// Snapshot returns the current counters.
func (s *Store) Snapshot() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Counters{
		Hits:        s.hits,
		Misses:      s.misses,
		Coalesced:   s.coalesced,
		Builds:      s.builds,
		BuildErrors: s.buildErrors,
		Evictions:   s.evictions,
		DiskHits:    s.diskHits,
		PeerHits:    s.peerHits,
		PeerMisses:  s.peerMisses,
		Inflight:    len(s.inflight),
		Entries:     s.ll.Len(),
		Bytes:       s.bytes,
		MaxBytes:    s.max,
	}
}

// ParseSize parses a human byte-size flag value: a plain integer is bytes,
// and the suffixes are binary multiples ("64K"/"64KiB"/"64KB" = 64·1024,
// likewise M/G/T). "0" means unbounded.
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" {
		return 0, fmt.Errorf("store: empty size")
	}
	mult := int64(1)
	for _, suf := range []struct {
		tag string
		n   int64
	}{
		{"TIB", 1 << 40}, {"TB", 1 << 40}, {"T", 1 << 40},
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1},
	} {
		if strings.HasSuffix(t, suf.tag) {
			mult = suf.n
			t = strings.TrimSpace(strings.TrimSuffix(t, suf.tag))
			break
		}
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("store: bad size %q: %w", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("store: negative size %q", s)
	}
	return n * mult, nil
}
