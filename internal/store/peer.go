package store

import (
	"context"
	"fmt"

	"zatel/internal/obs"
)

// PeerCounters is a point-in-time snapshot of the peer tier's observability
// state, produced by the attached PeerFetcher (internal/cluster). Fetch
// outcomes are disjoint: every Fetch that actually left the node lands in
// exactly one of Hits, Misses, Errors or Rejects.
type PeerCounters struct {
	// Peers is the ring size including this node; Healthy how many peers
	// the prober currently considers reachable (this node included).
	Peers, Healthy int
	// Fetches counts artifact fetches issued to owning peers; Hits the ones
	// that returned a verified, decodable artifact; Misses the 404s (the
	// owner does not have the artifact either).
	Fetches, Hits, Misses uint64
	// Errors counts transport failures and unexpected statuses; Rejects
	// counts responses that failed frame verification or codec decode — a
	// tampered or torn payload is never promoted.
	Errors, Rejects uint64
	// Skipped counts fetches not attempted because the owner was marked
	// unhealthy (the caller degrades straight to a local build).
	Skipped uint64
	// Proxied counts whole /v1/predict requests forwarded to the owning
	// peer; ProxyErrors the forwards that failed and fell back to a local
	// build; LocalFallbacks every build run locally because the owner was
	// unhealthy or the forward failed.
	Proxied, ProxyErrors, LocalFallbacks uint64
}

// PeerFetcher is the peer artifact tier: on a local miss the store asks it
// for the artifact by digest. Implementations (internal/cluster) locate the
// owning peer on the consistent-hash ring, fetch the framed entry over
// HTTP, and integrity-verify + decode it. Fetch must never block past its
// own bounded timeout and reports ok=false for every failure — peer
// trouble degrades to a local build, never an error.
type PeerFetcher interface {
	// Fetch returns the decoded artifact and its resident size, or ok=false
	// when no peer can supply it.
	Fetch(ctx context.Context, key Digest) (v any, size int64, ok bool)
	// Counters snapshots the fetcher's observability state.
	Counters() PeerCounters
}

// peerTier wraps the fetcher for atomic attach/detach.
type peerTier struct {
	f PeerFetcher
}

// AttachPeers installs f as the store's peer artifact tier: lookups that
// miss memory and disk consult the owning peer before building. Pass nil
// to detach.
func (s *Store) AttachPeers(f PeerFetcher) {
	if f == nil {
		s.peers.Store(nil)
		return
	}
	s.peers.Store(&peerTier{f: f})
}

// PeerCounters snapshots the attached peer tier's counters; ok is false
// when no tier is attached.
func (s *Store) PeerCounters() (PeerCounters, bool) {
	p := s.peers.Load()
	if p == nil {
		return PeerCounters{}, false
	}
	return p.f.Counters(), true
}

// fetchPeer consults the peer tier (nil-safe). A hit is promoted into the
// memory tier and queued for the disk tier exactly like a fresh build, so
// the next lookup is local.
func (s *Store) fetchPeer(ctx context.Context, key Digest) (any, int64, bool) {
	p := s.peers.Load()
	if p == nil {
		return nil, 0, false
	}
	v, size, ok := p.f.Fetch(ctx, key)
	s.mu.Lock()
	if ok {
		s.peerHits++
	} else {
		s.peerMisses++
	}
	s.mu.Unlock()
	return v, size, ok
}

// promotePeerHit makes a peer-fetched artifact fully local: resident in the
// memory LRU and queued for the (already-verified-format) disk tier.
func (s *Store) promotePeerHit(key Digest, v any, size int64) {
	s.mu.Lock()
	s.insertLocked(key, v, size)
	s.mu.Unlock()
	if d := s.disk.Load(); d != nil {
		d.Put(key, v)
	}
}

// TryGet runs the read-only tier chain — memory, an in-flight build, disk,
// peer — without ever building. The service's cluster routing uses it on
// non-owner nodes: a hit anywhere in the fleet serves locally, a miss
// forwards the request to the owner instead of duplicating the build.
// Unlike GetOrBuild it registers no flight, so two racing TryGets may both
// read disk or fetch from the peer; both operations are idempotent and the
// duplicate work is bounded by one read each.
func (s *Store) TryGet(ctx context.Context, key Digest) (any, Outcome, bool) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		v := el.Value.(*entry).value
		s.mu.Unlock()
		return v, Hit, true
	}
	if f, ok := s.inflight[key]; ok {
		s.coalesced++
		s.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, Coalesced, false
			}
			return f.value, Coalesced, true
		case <-ctx.Done():
			return nil, Coalesced, false
		}
	}
	s.mu.Unlock()
	if d := s.disk.Load(); d != nil {
		if v, size, ok := d.Get(key); ok {
			s.mu.Lock()
			s.diskHits++
			s.insertLocked(key, v, size)
			s.mu.Unlock()
			return v, DiskHit, true
		}
	}
	if v, size, ok := s.fetchPeer(ctx, key); ok {
		_, sp := obs.StartSpan(ctx, "store.peerhit")
		sp.SetAttr("key", key.Short())
		sp.End()
		s.promotePeerHit(key, v, size)
		return v, PeerHit, true
	}
	return nil, Miss, false
}

// Export returns key's artifact as verified "ZATL"-framed bytes for the
// /v1/artifacts peer-serving endpoint. A memory-resident value is encoded
// through its codec and framed; otherwise the disk tier's entry — already
// in frame format — is returned after full verification. Export never
// builds and never touches the hit/miss counters: peer serves are counted
// by the HTTP handler.
func (s *Store) Export(key Digest) ([]byte, bool) {
	s.mu.Lock()
	var v any
	if el, ok := s.items[key]; ok {
		v = el.Value.(*entry).value
	}
	s.mu.Unlock()
	if v != nil {
		if data, _, err := EncodeFramed(v); err == nil {
			return data, true
		}
		// No codec (or encode failure): fall through to disk, which may
		// still hold a servable entry from an earlier binary.
	}
	if d := s.disk.Load(); d != nil {
		if data, ok := d.ReadFramed(key); ok {
			return data, true
		}
	}
	return nil, false
}

// EncodeFramed serializes v through its registered codec and wraps the
// payload in the disk tier's integrity frame (magic, version, kind,
// length, payload SHA-256) — the wire format served to peers and written
// to disk. Values no codec can serialize are an error.
func EncodeFramed(v any) (data []byte, kind string, err error) {
	c := codecForValue(v)
	if c == nil {
		return nil, "", fmt.Errorf("store: no codec can serialize %T", v)
	}
	payload, err := c.Encode(v)
	if err != nil {
		return nil, "", err
	}
	data, err = encodeDiskEntry(c.Kind(), payload)
	if err != nil {
		return nil, "", err
	}
	return data, c.Kind(), nil
}

// DecodeFramed verifies a framed entry (header, payload checksum) and
// decodes it through the registered codec for its kind, returning the
// value and its resident size. Every deviation — bad magic, unsupported
// version, torn length, checksum mismatch, unknown kind, codec rejection —
// is an error; callers must treat the bytes as untrusted and never use a
// partially-decoded value.
func DecodeFramed(data []byte) (v any, size int64, kind string, err error) {
	kind, payload, err := parseDiskEntry(data)
	if err != nil {
		return nil, 0, "", err
	}
	c := codecForKind(kind)
	if c == nil {
		return nil, 0, kind, fmt.Errorf("store: unknown codec kind %q", kind)
	}
	v, size, err = c.Decode(payload)
	if err != nil {
		return nil, 0, kind, err
	}
	if size <= 0 {
		if sz, ok := v.(Sizer); ok {
			size = sz.SizeBytes()
		}
	}
	return v, size, kind, nil
}

// Stats is one unified snapshot of every store tier, taken in a single
// call so /healthz and /metrics can never disagree mid-scrape about which
// tiers exist: the memory counters, the disk tier (when attached) and the
// peer tier (when attached).
type Stats struct {
	// Mem is the memory tier: LRU occupancy and lookup outcomes, including
	// the PeerHits/PeerMisses the peer tier produced through this store.
	Mem Counters
	// DiskEnabled reports whether a disk tier is attached; Disk is its
	// snapshot (zero when disabled).
	DiskEnabled bool
	Disk        DiskCounters
	// PeerEnabled reports whether a peer tier is attached; Peer is its
	// snapshot (zero when disabled).
	PeerEnabled bool
	Peer        PeerCounters
}

// Stats snapshots every attached tier at once. Handlers that report store
// state (zateld's /healthz and /metrics) must read through here rather
// than stitching Snapshot/DiskCounters/PeerCounters calls together, so
// both endpoints describe the same set of tiers.
func (s *Store) Stats() Stats {
	st := Stats{Mem: s.Snapshot()}
	if dc, ok := s.DiskCounters(); ok {
		st.Disk, st.DiskEnabled = dc, true
	}
	if pc, ok := s.PeerCounters(); ok {
		st.Peer, st.PeerEnabled = pc, true
	}
	return st
}
