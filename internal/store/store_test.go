package store

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(i int) Digest { return NewKey("test/v1").Int("i", i).Digest() }

// constBuild returns a build function yielding v with the given size.
func constBuild(v any, size int64) func(context.Context) (any, int64, error) {
	return func(context.Context) (any, int64, error) { return v, size, nil }
}

func TestGetOrBuildHitMiss(t *testing.T) {
	s := New(0)
	ctx := context.Background()

	v, out, err := s.GetOrBuild(ctx, key(1), constBuild("one", 10))
	if err != nil || out != Miss || v.(string) != "one" {
		t.Fatalf("cold call: %v %v %v", v, out, err)
	}
	v, out, err = s.GetOrBuild(ctx, key(1), func(context.Context) (any, int64, error) {
		t.Fatal("build ran on a warm key")
		return nil, 0, nil
	})
	if err != nil || out != Hit || v.(string) != "one" {
		t.Fatalf("warm call: %v %v %v", v, out, err)
	}

	c := s.Snapshot()
	if c.Hits != 1 || c.Misses != 1 || c.Builds != 1 || c.Entries != 1 || c.Bytes != 10 {
		t.Errorf("counters = %+v", c)
	}
}

// TestEvictionOrderAndByteBudget pins LRU semantics: the least recently
// *used* entry goes first (touching an old entry rescues it), and resident
// bytes never exceed the budget after an insert.
func TestEvictionOrderAndByteBudget(t *testing.T) {
	s := New(30)
	ctx := context.Background()

	for i := 0; i < 3; i++ { // 1,2,3 resident at 10 bytes each
		if _, _, err := s.GetOrBuild(ctx, key(i), constBuild(i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, out, _ := s.GetOrBuild(ctx, key(0), constBuild(nil, 0)); out != Hit {
		t.Fatalf("touch of key 0: outcome %v, want hit", out)
	}
	// Inserting key 3 (10 bytes) must evict exactly key 1.
	if _, _, err := s.GetOrBuild(ctx, key(3), constBuild(3, 10)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(key(1)) {
		t.Error("key 1 still resident; LRU order ignored the touch")
	}
	for _, i := range []int{0, 2, 3} {
		if !s.Contains(key(i)) {
			t.Errorf("key %d evicted, want resident", i)
		}
	}
	c := s.Snapshot()
	if c.Bytes != 30 || c.Entries != 3 || c.Evictions != 1 {
		t.Errorf("counters after eviction = %+v", c)
	}

	// A single artifact larger than the whole budget is returned but not
	// retained.
	v, out, err := s.GetOrBuild(ctx, key(9), constBuild("big", 100))
	if err != nil || out != Miss || v.(string) != "big" {
		t.Fatalf("oversize build: %v %v %v", v, out, err)
	}
	if s.Contains(key(9)) {
		t.Error("oversize artifact retained past the budget")
	}
	if c := s.Snapshot(); c.Bytes > 30 {
		t.Errorf("bytes %d exceed budget 30", c.Bytes)
	}
}

func TestSetMaxBytesEvictsDown(t *testing.T) {
	s := New(0)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		s.GetOrBuild(ctx, key(i), constBuild(i, 10))
	}
	s.SetMaxBytes(20)
	c := s.Snapshot()
	if c.Bytes != 20 || c.Entries != 2 || c.Evictions != 2 {
		t.Errorf("after SetMaxBytes(20): %+v", c)
	}
	// The two most recently inserted survive.
	for _, i := range []int{2, 3} {
		if !s.Contains(key(i)) {
			t.Errorf("key %d evicted, want resident", i)
		}
	}
}

// TestCoalescingStress proves the singleflight contract under -race: 8
// concurrent callers for one cold key execute exactly one build, everyone
// shares its value, and outcomes split into one miss + seven coalesced.
func TestCoalescingStress(t *testing.T) {
	s := New(0)
	const callers = 8
	var builds atomic.Int64
	gate := make(chan struct{})

	var wg sync.WaitGroup
	vals := make([]any, callers)
	outs := make([]Outcome, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			vals[i], outs[i], errs[i] = s.GetOrBuild(context.Background(), key(42),
				func(context.Context) (any, int64, error) {
					builds.Add(1)
					<-gate // hold the build open so everyone piles up
					return "artifact", 8, nil
				})
		}(i)
	}
	close(start)
	// Wait until the one builder is registered and give the other callers
	// time to reach the coalescing path.
	for s.Snapshot().Inflight == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()

	var miss, coal int
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if vals[i].(string) != "artifact" {
			t.Fatalf("caller %d got %v", i, vals[i])
		}
		switch outs[i] {
		case Miss:
			miss++
		case Coalesced:
			coal++
		}
	}
	if got := builds.Load(); got != 1 {
		t.Errorf("%d builds executed, want exactly 1", got)
	}
	if miss != 1 || miss+coal != callers {
		t.Errorf("outcomes: %d miss, %d coalesced; want 1 and %d", miss, coal, callers-1)
	}
	c := s.Snapshot()
	if c.Misses != 1 || c.Builds != 1 || c.Coalesced < uint64(callers-1) {
		t.Errorf("counters = %+v", c)
	}
}

// TestBuildErrorNotCachedAndShared: a failing build propagates to all
// coalesced waiters but is not cached, so the next call retries.
func TestBuildErrorNotCachedAndShared(t *testing.T) {
	s := New(0)
	boom := errors.New("boom")
	var builds atomic.Int64
	gate := make(chan struct{})

	const callers = 4
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = s.GetOrBuild(context.Background(), key(7),
				func(context.Context) (any, int64, error) {
					builds.Add(1)
					<-gate
					return nil, 0, boom
				})
		}(i)
	}
	for s.Snapshot().Inflight == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d: %v, want boom", i, err)
		}
	}
	if builds.Load() != 1 {
		t.Errorf("%d builds for one failing key, want 1", builds.Load())
	}
	// Retry builds again (and can succeed).
	v, out, err := s.GetOrBuild(context.Background(), key(7), constBuild("ok", 1))
	if err != nil || out != Miss || v.(string) != "ok" {
		t.Errorf("retry after failure: %v %v %v", v, out, err)
	}
	if c := s.Snapshot(); c.BuildErrors != 1 || c.Builds != 2 {
		t.Errorf("counters = %+v", c)
	}
}

func TestBuildPanicBecomesError(t *testing.T) {
	s := New(0)
	_, _, err := s.GetOrBuild(context.Background(), key(1),
		func(context.Context) (any, int64, error) { panic("kaboom") })
	if err == nil || !strings.HasPrefix(err.Error(), "store: build panicked: kaboom") {
		t.Errorf("panic surfaced as %v", err)
	}
	// The error must carry the builder's stack — without it there is no way
	// to tell which of many registered builders blew up in production logs.
	if err == nil || !strings.Contains(err.Error(), "TestBuildPanicBecomesError") {
		t.Errorf("panic error lost the builder stack: %v", err)
	}
	if s.Contains(key(1)) {
		t.Error("panicked build cached an artifact")
	}
}

// TestWaiterContextCancel: a coalesced waiter abandons the wait when its
// own context fires; the build keeps running and still lands in the store.
func TestWaiterContextCancel(t *testing.T) {
	s := New(0)
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.GetOrBuild(context.Background(), key(5), func(context.Context) (any, int64, error) {
			<-gate
			return "slow", 4, nil
		})
	}()
	for s.Snapshot().Inflight == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := s.GetOrBuild(ctx, key(5), constBuild(nil, 0))
	if !errors.Is(err, context.Canceled) || out != Coalesced {
		t.Errorf("cancelled waiter: outcome %v err %v", out, err)
	}

	close(gate)
	<-done
	if !s.Contains(key(5)) {
		t.Error("build abandoned by its waiter did not land in the store")
	}
}

// TestConcurrentDistinctKeys exercises the store under -race with many
// goroutines on overlapping keys and a tight budget.
func TestConcurrentDistinctKeys(t *testing.T) {
	s := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(i % 10)
				v, _, err := s.GetOrBuild(context.Background(), k, constBuild(fmt.Sprintf("v%d", i%10), 16))
				if err != nil {
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
				if want := fmt.Sprintf("v%d", i%10); v.(string) != want {
					t.Errorf("g%d i%d: got %v want %v", g, i, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	c := s.Snapshot()
	if c.Bytes > 64 {
		t.Errorf("budget exceeded: %+v", c)
	}
	if c.Hits+c.Misses+c.Coalesced != 400 {
		t.Errorf("lookup accounting: %+v", c)
	}
}

type sizedArtifact struct{ size int64 }

func (a sizedArtifact) SizeBytes() int64 { return a.size }

func TestSizerFallback(t *testing.T) {
	s := New(0)
	ctx := context.Background()

	// Builder-reported size wins when positive.
	_, _, err := s.GetOrBuild(ctx, key(1), func(context.Context) (any, int64, error) {
		return sizedArtifact{size: 999}, 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := s.Snapshot(); c.Bytes != 10 {
		t.Errorf("bytes = %d, want builder-reported 10", c.Bytes)
	}

	// Zero size defers to the artifact's own accounting.
	_, _, err = s.GetOrBuild(ctx, key(2), func(context.Context) (any, int64, error) {
		return sizedArtifact{size: 999}, 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c := s.Snapshot(); c.Bytes != 10+999 {
		t.Errorf("bytes = %d, want 1009 after Sizer fallback", c.Bytes)
	}
}

// TestEvictionRaceRebuilds hammers one store with concurrent GetOrBuild
// calls for keys that constantly evict each other (the budget holds only
// one of them at a time). Run under -race, it proves an evicted key's
// concurrent readers either coalesce onto a rebuild or rebuild themselves —
// and that every caller always observes that key's full, correct artifact,
// never a stale or partially-evicted value.
func TestEvictionRaceRebuilds(t *testing.T) {
	s := New(15) // one 10-byte artifact fits; two never do
	ctx := context.Background()

	const (
		workers = 8
		rounds  = 200
		nKeys   = 3
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % nKeys
				want := fmt.Sprintf("artifact-%d", i)
				v, _, err := s.GetOrBuild(ctx, key(i), constBuild(want, 10))
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				if got := v.(string); got != want {
					t.Errorf("worker %d round %d: got %q, want %q", w, r, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	c := s.Snapshot()
	if c.Evictions == 0 {
		t.Error("no evictions happened; the race never exercised the rebuild path")
	}
	if c.Bytes > 15 {
		t.Errorf("resident bytes %d exceed the budget", c.Bytes)
	}
	if c.Inflight != 0 {
		t.Errorf("%d flights leaked", c.Inflight)
	}
}
