package store

import (
	"fmt"
	"sync"
)

// Codec serializes one artifact family for the disk tier. Kinds are
// versioned ("rt.workload/v1"): a format change registers a new kind, and
// entries written under a kind the running binary no longer knows are
// skipped (treated as misses), never misread.
//
// Encode/Decode must round-trip: Decode(Encode(v)) yields a value
// equivalent to v for every consumer. Decode also reports the decoded
// value's resident size so the memory tier can re-admit it with exact byte
// accounting (<= 0 defers to the Sizer interface like a build would).
type Codec interface {
	// Kind returns the versioned format tag written into every disk
	// entry's header.
	Kind() string
	// Encodes reports whether this codec can serialize v.
	Encodes(v any) bool
	// Encode serializes v.
	Encode(v any) ([]byte, error)
	// Decode deserializes a payload previously produced by Encode of the
	// same kind, returning the value and its resident size in bytes.
	Decode(data []byte) (v any, size int64, err error)
}

var (
	codecMu     sync.RWMutex
	codecByName = map[string]Codec{}
	codecList   []Codec
)

// RegisterCodec adds a codec to the process-wide registry the disk tier
// consults; artifact-owning packages call it from init(). Registering two
// codecs under one kind is a programming error and panics.
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	kind := c.Kind()
	if kind == "" {
		panic("store: codec with empty kind")
	}
	if _, dup := codecByName[kind]; dup {
		panic(fmt.Sprintf("store: codec kind %q registered twice", kind))
	}
	codecByName[kind] = c
	codecList = append(codecList, c)
}

// codecForKind resolves a disk entry's header tag (nil = unknown kind).
func codecForKind(kind string) Codec {
	codecMu.RLock()
	defer codecMu.RUnlock()
	return codecByName[kind]
}

// codecForValue finds a codec able to serialize v (nil = none; such
// artifacts stay memory-only).
func codecForValue(v any) Codec {
	codecMu.RLock()
	defer codecMu.RUnlock()
	for _, c := range codecList {
		if c.Encodes(v) {
			return c
		}
	}
	return nil
}
