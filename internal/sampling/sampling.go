// Package sampling implements step 5 of the Zatel pipeline: choosing the
// representative subset of pixels each group's simulator instance traces.
//
// The subset size follows Eq. 1 — the group's mean heatmap coldness,
// clamped to [0.3, 0.6] — and the subset itself is assembled from section
// blocks according to one of five strategies: the three Section III-E
// colour distributions — uniform (match the group's colour histogram),
// lintmp (Eq. 2, share proportional to warmth) and exptmp (Eq. 3, warmth
// raised to the fifth power) — plus two statistically rigorous strategies
// after the Ekman (NVIDIA) sampled-simulation papers: two-phase stratified
// sampling (strata = quantized heatmap levels, phase-2 allocation by
// phase-1 within-stratum variance) and ranked-set sampling (each draw
// ranks a small candidate set by temperature and keeps the block whose
// rank cycles through the set). The rigorous strategies additionally
// support repeated subsampling via SelectReplicates, whose disjoint
// replicate draws feed the confidence-interval machinery in
// internal/extrapolate and internal/combine.
package sampling

import (
	"fmt"
	"math"
	"sort"

	"zatel/internal/heatmap"
	"zatel/internal/partition"
	"zatel/internal/vecmath"
)

// Distribution selects how pixels are apportioned across quantized colours.
type Distribution uint8

const (
	// Uniform matches the subset's colour distribution to the group's.
	Uniform Distribution = iota
	// LinTmp weights each colour linearly by its warmth (Eq. 2).
	LinTmp
	// ExpTmp amplifies warm colours by raising warmth to the fifth power
	// (Eq. 3).
	ExpTmp
	// Stratified is two-phase stratified sampling: strata are the quantized
	// heatmap levels; a phase-1 pilot (a quarter of the budget, allocated
	// proportionally) estimates the within-stratum variance of block mean
	// temperature, and phase 2 spends the remaining budget by Neyman
	// allocation (n_h ∝ N_h·s_h), concentrating samples where the stratum
	// is internally heterogeneous.
	Stratified
	// RankedSet is ranked-set sampling: every draw ranks a random set of
	// three candidate blocks by mean temperature and keeps the one whose
	// rank cycles 0,1,2,…, spreading the sample evenly across the
	// temperature ordering without tracing the discarded candidates.
	RankedSet
)

// Valid reports whether d names one of the five selection strategies;
// option validation uses it before any expensive work runs.
func (d Distribution) Valid() bool { return d <= RankedSet }

// Replicated reports whether the strategy supports repeated subsampling —
// disjoint replicate sub-draws whose per-replicate extrapolations yield a
// confidence interval (SelectReplicates).
func (d Distribution) Replicated() bool { return d == Stratified || d == RankedSet }

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case LinTmp:
		return "lintmp"
	case ExpTmp:
		return "exptmp"
	case Stratified:
		return "stratified"
	case RankedSet:
		return "rankedset"
	default:
		return fmt.Sprintf("Distribution(%d)", uint8(d))
	}
}

// ParseDistribution resolves the strategy names accepted across the CLIs
// and the HTTP API.
func ParseDistribution(name string) (Distribution, error) {
	switch name {
	case "", "uniform":
		return Uniform, nil
	case "lintmp":
		return LinTmp, nil
	case "exptmp":
		return ExpTmp, nil
	case "stratified":
		return Stratified, nil
	case "rankedset", "ranked-set":
		return RankedSet, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q (want uniform, lintmp, exptmp, stratified or rankedset)", name)
	}
}

// Eq. 1 clamp bounds: below 30% the paper observed intolerable error,
// above 60% no meaningful accuracy gains.
const (
	MinPercent = 0.3
	MaxPercent = 0.6
)

// MeanColdness returns the unclamped Eq. 1 value: the average shifted-hue
// coldness c_i of the group's pixels.
func MeanColdness(q *heatmap.Quantized, g *partition.Group) float64 {
	n := 0
	sum := 0.0
	for _, b := range g.Blocks {
		for _, p := range b.Pixels {
			sum += q.Cold(int(p))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Budget returns Eq. 1's traced-pixel fraction P for the group: the mean
// coldness clamped to [MinPercent, MaxPercent].
func Budget(q *heatmap.Quantized, g *partition.Group) float64 {
	p := MeanColdness(q, g)
	if p < MinPercent {
		return MinPercent
	}
	if p > MaxPercent {
		return MaxPercent
	}
	return p
}

// Selection is the chosen representative subset of one group.
type Selection struct {
	// Pixels holds the selected plane pixel indices.
	Pixels []int32
	// Fraction is len(Pixels) divided by the group size.
	Fraction float64
}

// Select assembles a subset of round(frac·|group|) pixels from section
// blocks. Blocks are classified by their dominant quantized colour; each
// strategy apportions a pixel quota over blocks; the final block is trimmed
// (deterministically, via rng) so the realized fraction never exceeds the
// request by more than half a pixel: Selection.Fraction ≤ frac + 1/(2m).
func Select(q *heatmap.Quantized, g *partition.Group, frac float64, dist Distribution, rng *vecmath.RNG) (Selection, error) {
	if frac <= 0 || frac > 1 {
		return Selection{}, fmt.Errorf("sampling: fraction %v out of (0,1]", frac)
	}
	if !dist.Valid() {
		return Selection{}, fmt.Errorf("sampling: unknown distribution %d", dist)
	}
	m := g.NumPixels()
	if m == 0 {
		return Selection{}, fmt.Errorf("sampling: empty group")
	}
	target := int(frac*float64(m) + 0.5)
	if target <= 0 {
		target = 1
	}
	if target >= m {
		return Selection{Pixels: g.AllPixels(), Fraction: 1}, nil
	}
	s := newSelector(q, g)
	pixels := s.draw(target, dist, rng)
	return Selection{
		Pixels:   pixels,
		Fraction: float64(len(pixels)) / float64(m),
	}, nil
}

// SelectReplicates draws r disjoint subsamples that together cover
// round(frac·|group|) pixels, each replicate assembled independently by the
// strategy from the blocks the earlier replicates left untouched — the
// repeated-subsampling scheme: every replicate is its own estimator, and
// the spread of the per-replicate extrapolations yields the confidence
// interval. Replicates are deterministic in (rng state, group, frac, r).
func SelectReplicates(q *heatmap.Quantized, g *partition.Group, frac float64, dist Distribution, r int, rng *vecmath.RNG) ([]Selection, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("sampling: fraction %v out of (0,1]", frac)
	}
	if !dist.Valid() {
		return nil, fmt.Errorf("sampling: unknown distribution %d", dist)
	}
	if r < 1 {
		return nil, fmt.Errorf("sampling: replicate count %d < 1", r)
	}
	m := g.NumPixels()
	if m == 0 {
		return nil, fmt.Errorf("sampling: empty group")
	}
	total := int(frac*float64(m) + 0.5)
	if total < r {
		total = r // at least one pixel per replicate
	}
	if total > m {
		total = m
	}
	s := newSelector(q, g)
	out := make([]Selection, r)
	base, extra := total/r, total%r
	for i := range out {
		t := base
		if i < extra {
			t++
		}
		pixels := s.draw(t, dist, rng.Split(uint64(i)+1))
		out[i] = Selection{
			Pixels:   pixels,
			Fraction: float64(len(pixels)) / float64(m),
		}
	}
	return out, nil
}

// selector carries the per-group classification shared by every draw: the
// dominant level and mean temperature of each block, the group's level
// histogram, and the blocks already consumed by earlier draws (replicates
// are disjoint).
type selector struct {
	q *heatmap.Quantized
	g *partition.Group
	m int
	// blockLevel is each block's dominant quantized level; blockTemp its
	// mean quantized temperature (the ranking auxiliary).
	blockLevel []int
	blockTemp  []float64
	// levelPixels is the group's pixel count per level.
	levelPixels []int
	// rem holds each block's not-yet-consumed pixels. Consumption is
	// pixel-granular: a trimmed take leaves the block's remainder available
	// to later draws, so disjoint replicates can together cover the whole
	// group without starving the last ones.
	rem [][]int32
}

func newSelector(q *heatmap.Quantized, g *partition.Group) *selector {
	nLevels := len(q.Levels)
	s := &selector{
		q: q, g: g, m: g.NumPixels(),
		blockLevel:  make([]int, len(g.Blocks)),
		blockTemp:   make([]float64, len(g.Blocks)),
		levelPixels: make([]int, nLevels),
		rem:         make([][]int32, len(g.Blocks)),
	}
	for bi, b := range g.Blocks {
		s.rem[bi] = b.Pixels // copied on first partial take
	}
	counts := make([]int, nLevels)
	for bi, b := range g.Blocks {
		for i := range counts {
			counts[i] = 0
		}
		sum := 0.0
		for _, p := range b.Pixels {
			lv := q.Index[p]
			counts[lv]++
			s.levelPixels[lv]++
			sum += q.TempOf(int(p))
		}
		best := 0
		for lv := 1; lv < nLevels; lv++ {
			if counts[lv] > counts[best] {
				best = lv
			}
		}
		s.blockLevel[bi] = best
		if len(b.Pixels) > 0 {
			s.blockTemp[bi] = sum / float64(len(b.Pixels))
		}
	}
	return s
}

// shares computes the per-level pixel quota shares for the three colour
// distributions (Section III-E).
func (s *selector) shares(dist Distribution) []float64 {
	nLevels := len(s.q.Levels)
	share := make([]float64, nLevels)
	switch dist {
	case Uniform:
		for lv := range share {
			share[lv] = float64(s.levelPixels[lv]) / float64(s.m)
		}
	case LinTmp, ExpTmp:
		var c float64
		for lv := range share {
			if s.levelPixels[lv] == 0 {
				continue // colour absent from this group
			}
			w := s.q.Warmth(lv)
			if dist == ExpTmp {
				w = w * w * w * w * w
			}
			share[lv] = w
			c += w
		}
		if c == 0 {
			// Entirely cold group: fall back to uniform shares.
			for lv := range share {
				share[lv] = float64(s.levelPixels[lv]) / float64(s.m)
			}
		} else {
			for lv := range share {
				share[lv] /= c
			}
		}
	}
	return share
}

// availByLevel groups the block indices with pixels left by level and
// shuffles within each level.
func (s *selector) availByLevel(rng *vecmath.RNG) [][]int {
	byLevel := make([][]int, len(s.q.Levels))
	for bi := range s.g.Blocks {
		if len(s.rem[bi]) == 0 {
			continue
		}
		lv := s.blockLevel[bi]
		byLevel[lv] = append(byLevel[lv], bi)
	}
	for _, blocks := range byLevel {
		rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	}
	return byLevel
}

// draw assembles target pixels from the blocks with pixels left using the
// strategy. The last take is trimmed to land exactly on target, so a draw
// never overshoots; it can undershoot only when the whole group has been
// consumed by earlier draws.
func (s *selector) draw(target int, dist Distribution, rng *vecmath.RNG) []int32 {
	var selected []int32
	// take consumes block bi's remaining pixels, up to the draw target;
	// when trimming, a seeded shuffle picks the kept subset
	// deterministically and the block's remainder stays available to later
	// draws. Returns the number of pixels taken.
	take := func(bi int) int {
		px := s.rem[bi]
		if want := target - len(selected); len(px) > want {
			tmp := append([]int32(nil), px...)
			rng.Shuffle(len(tmp), func(i, j int) { tmp[i], tmp[j] = tmp[j], tmp[i] })
			px = tmp[:want]
			s.rem[bi] = tmp[want:]
		} else {
			s.rem[bi] = nil
		}
		selected = append(selected, px...)
		return len(px)
	}

	switch dist {
	case Uniform, LinTmp, ExpTmp:
		share := s.shares(dist)
		byLevel := s.availByLevel(rng)
		// Draw hot levels first so warm quotas are honoured before the
		// pool shrinks.
		for lv := len(byLevel) - 1; lv >= 0; lv-- {
			quota := int(share[lv]*float64(target) + 0.5)
			got := 0
			for _, bi := range byLevel[lv] {
				if got >= quota || len(selected) >= target {
					break
				}
				got += take(bi)
			}
		}
		// Shortfall: fill from the unused blocks. The warm-biased
		// distributions order the pool warm-first (stable under the seeded
		// shuffle) so the shortfall does not dilute the quota they just
		// computed; uniform keeps the pool random to preserve its
		// histogram match.
		s.fillShortfall(target, &selected, take, dist == LinTmp || dist == ExpTmp, rng)

	case Stratified:
		s.drawStratified(target, &selected, take, rng)

	case RankedSet:
		s.drawRankedSet(target, &selected, take, rng)
	}
	return selected
}

// fillShortfall tops the draw up to target from the blocks with pixels left.
func (s *selector) fillShortfall(target int, selected *[]int32, take func(int) int, warmFirst bool, rng *vecmath.RNG) {
	if len(*selected) >= target {
		return
	}
	rest := make([]int, 0, len(s.g.Blocks))
	for bi := range s.g.Blocks {
		if len(s.rem[bi]) > 0 {
			rest = append(rest, bi)
		}
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	if warmFirst {
		sort.SliceStable(rest, func(i, j int) bool {
			return s.blockTemp[rest[i]] > s.blockTemp[rest[j]]
		})
	}
	for _, bi := range rest {
		if len(*selected) >= target {
			break
		}
		take(bi)
	}
}

// drawStratified implements the two-phase scheme: a proportional pilot
// measures each stratum's internal spread, then the remaining budget
// follows Neyman allocation.
func (s *selector) drawStratified(target int, selected *[]int32, take func(int) int, rng *vecmath.RNG) {
	byLevel := s.availByLevel(rng)
	cursor := make([]int, len(byLevel)) // per-level position in the shuffled list

	// takeFromLevel consumes up to quota pixels from the level's shuffled
	// list, returning the block temperatures it observed (for the
	// phase-1 variance estimate).
	takeFromLevel := func(lv, quota int) []float64 {
		var temps []float64
		got := 0
		for cursor[lv] < len(byLevel[lv]) {
			if got >= quota || len(*selected) >= target {
				break
			}
			bi := byLevel[lv][cursor[lv]]
			cursor[lv]++
			got += take(bi)
			temps = append(temps, s.blockTemp[bi])
		}
		return temps
	}

	// Phase 1: a quarter of the budget, allocated proportionally to
	// stratum size, measures the within-stratum spread.
	pilot := target / 4
	if pilot < 1 {
		pilot = 1
	}
	variance := make([]float64, len(byLevel))
	for lv := range byLevel {
		if s.levelPixels[lv] == 0 {
			continue
		}
		quota := int(float64(s.levelPixels[lv]) / float64(s.m) * float64(pilot))
		if quota < 1 {
			quota = 1 // every non-empty stratum contributes a pilot block
		}
		temps := takeFromLevel(lv, quota)
		variance[lv] = sampleVariance(temps)
	}

	// Phase 2: Neyman allocation n_h ∝ N_h·s_h over the remaining budget;
	// when every stratum looks internally flat, fall back to proportional.
	remaining := target - len(*selected)
	if remaining > 0 {
		weight := make([]float64, len(byLevel))
		var wsum float64
		for lv := range weight {
			weight[lv] = float64(s.levelPixels[lv]) * math.Sqrt(variance[lv])
			wsum += weight[lv]
		}
		if wsum == 0 {
			for lv := range weight {
				weight[lv] = float64(s.levelPixels[lv])
				wsum += weight[lv]
			}
		}
		for lv := range byLevel {
			if weight[lv] == 0 {
				continue
			}
			quota := int(weight[lv]/wsum*float64(remaining) + 0.5)
			takeFromLevel(lv, quota)
		}
	}
	// Rounding shortfall: proportional fill, no warm bias — stratified
	// already decided its allocation.
	s.fillShortfall(target, selected, take, false, rng)
}

// drawRankedSet implements ranked-set sampling over blocks: each step draws
// a set of three random available candidates, ranks them by mean
// temperature (ties broken by block index so ranking is deterministic), and
// keeps the one whose rank cycles through the set.
func (s *selector) drawRankedSet(target int, selected *[]int32, take func(int) int, rng *vecmath.RNG) {
	avail := make([]int, 0, len(s.g.Blocks))
	for bi := range s.g.Blocks {
		if len(s.rem[bi]) > 0 {
			avail = append(avail, bi)
		}
	}
	rng.Shuffle(len(avail), func(i, j int) { avail[i], avail[j] = avail[j], avail[i] })

	const setSize = 3
	step := 0
	for len(*selected) < target && len(avail) > 0 {
		k := setSize
		if len(avail) < k {
			k = len(avail)
		}
		// Draw k distinct candidate positions.
		cand := make([]int, 0, k)
		for len(cand) < k {
			p := rng.Intn(len(avail))
			dup := false
			for _, c := range cand {
				if c == p {
					dup = true
					break
				}
			}
			if !dup {
				cand = append(cand, p)
			}
		}
		// Rank candidates cold→hot.
		sort.Slice(cand, func(i, j int) bool {
			ti, tj := s.blockTemp[avail[cand[i]]], s.blockTemp[avail[cand[j]]]
			if ti != tj {
				return ti < tj
			}
			return avail[cand[i]] < avail[cand[j]]
		})
		pick := cand[step%k]
		bi := avail[pick]
		avail[pick] = avail[len(avail)-1]
		avail = avail[:len(avail)-1]
		take(bi)
		step++
	}
}

// sampleVariance returns the unbiased sample variance of xs (0 for fewer
// than two observations).
func sampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}
