// Package sampling implements step 5 of the Zatel pipeline: choosing the
// representative subset of pixels each group's simulator instance traces.
//
// The subset size follows Eq. 1 — the group's mean heatmap coldness,
// clamped to [0.3, 0.6] — and the subset itself is assembled from section
// blocks according to one of three colour distributions (Section III-E):
// uniform (match the group's colour histogram), lintmp (Eq. 2, share
// proportional to warmth) and exptmp (Eq. 3, warmth raised to the fifth
// power).
package sampling

import (
	"fmt"

	"zatel/internal/heatmap"
	"zatel/internal/partition"
	"zatel/internal/vecmath"
)

// Distribution selects how pixels are apportioned across quantized colours.
type Distribution uint8

const (
	// Uniform matches the subset's colour distribution to the group's.
	Uniform Distribution = iota
	// LinTmp weights each colour linearly by its warmth (Eq. 2).
	LinTmp
	// ExpTmp amplifies warm colours by raising warmth to the fifth power
	// (Eq. 3).
	ExpTmp
)

// Valid reports whether d names one of the three Section III-E
// distributions; option validation uses it before any expensive work runs.
func (d Distribution) Valid() bool { return d <= ExpTmp }

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case LinTmp:
		return "lintmp"
	case ExpTmp:
		return "exptmp"
	default:
		return fmt.Sprintf("Distribution(%d)", uint8(d))
	}
}

// Eq. 1 clamp bounds: below 30% the paper observed intolerable error,
// above 60% no meaningful accuracy gains.
const (
	MinPercent = 0.3
	MaxPercent = 0.6
)

// MeanColdness returns the unclamped Eq. 1 value: the average shifted-hue
// coldness c_i of the group's pixels.
func MeanColdness(q *heatmap.Quantized, g *partition.Group) float64 {
	n := 0
	sum := 0.0
	for _, b := range g.Blocks {
		for _, p := range b.Pixels {
			sum += q.Cold(int(p))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Budget returns Eq. 1's traced-pixel fraction P for the group: the mean
// coldness clamped to [MinPercent, MaxPercent].
func Budget(q *heatmap.Quantized, g *partition.Group) float64 {
	p := MeanColdness(q, g)
	if p < MinPercent {
		return MinPercent
	}
	if p > MaxPercent {
		return MaxPercent
	}
	return p
}

// Selection is the chosen representative subset of one group.
type Selection struct {
	// Pixels holds the selected plane pixel indices.
	Pixels []int32
	// Fraction is len(Pixels) divided by the group size.
	Fraction float64
}

// Select assembles a subset of roughly frac·|group| pixels from whole
// section blocks. Blocks are classified by their dominant quantized colour;
// each colour receives a pixel quota from the distribution; blocks are
// drawn randomly within each colour; any shortfall is filled with random
// unused blocks (Section III-E).
func Select(q *heatmap.Quantized, g *partition.Group, frac float64, dist Distribution, rng *vecmath.RNG) (Selection, error) {
	if frac <= 0 || frac > 1 {
		return Selection{}, fmt.Errorf("sampling: fraction %v out of (0,1]", frac)
	}
	m := g.NumPixels()
	if m == 0 {
		return Selection{}, fmt.Errorf("sampling: empty group")
	}
	target := int(frac*float64(m) + 0.5)
	if target <= 0 {
		target = 1
	}
	if target >= m {
		return Selection{Pixels: g.AllPixels(), Fraction: 1}, nil
	}

	nLevels := len(q.Levels)
	// Classify blocks by dominant level and build the group's level
	// histogram.
	blockLevel := make([]int, len(g.Blocks))
	levelPixels := make([]int, nLevels)
	counts := make([]int, nLevels)
	for bi, b := range g.Blocks {
		for i := range counts {
			counts[i] = 0
		}
		for _, p := range b.Pixels {
			lv := q.Index[p]
			counts[lv]++
			levelPixels[lv]++
		}
		best := 0
		for lv := 1; lv < nLevels; lv++ {
			if counts[lv] > counts[best] {
				best = lv
			}
		}
		blockLevel[bi] = best
	}

	// Per-level pixel quotas.
	share := make([]float64, nLevels)
	switch dist {
	case Uniform:
		for lv := range share {
			share[lv] = float64(levelPixels[lv]) / float64(m)
		}
	case LinTmp, ExpTmp:
		var c float64
		for lv := range share {
			if levelPixels[lv] == 0 {
				continue // colour absent from this group
			}
			w := q.Warmth(lv)
			if dist == ExpTmp {
				w = w * w * w * w * w
			}
			share[lv] = w
			c += w
		}
		if c == 0 {
			// Entirely cold group: fall back to uniform shares.
			for lv := range share {
				share[lv] = float64(levelPixels[lv]) / float64(m)
			}
		} else {
			for lv := range share {
				share[lv] /= c
			}
		}
	default:
		return Selection{}, fmt.Errorf("sampling: unknown distribution %d", dist)
	}

	// Group block indices by level and shuffle within each level.
	byLevel := make([][]int, nLevels)
	for bi := range g.Blocks {
		lv := blockLevel[bi]
		byLevel[lv] = append(byLevel[lv], bi)
	}
	for _, blocks := range byLevel {
		rng.Shuffle(len(blocks), func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	}

	taken := make([]bool, len(g.Blocks))
	var selected []int32
	take := func(bi int) {
		taken[bi] = true
		selected = append(selected, g.Blocks[bi].Pixels...)
	}

	// Draw hot levels first so warm quotas are honoured before the pool
	// shrinks.
	for lv := nLevels - 1; lv >= 0; lv-- {
		quota := int(share[lv]*float64(target) + 0.5)
		got := 0
		for _, bi := range byLevel[lv] {
			if got >= quota || len(selected) >= target {
				break
			}
			take(bi)
			got += len(g.Blocks[bi].Pixels)
		}
	}

	// Shortfall: random unused blocks until the target is met.
	if len(selected) < target {
		rest := make([]int, 0, len(g.Blocks))
		for bi := range g.Blocks {
			if !taken[bi] {
				rest = append(rest, bi)
			}
		}
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		for _, bi := range rest {
			if len(selected) >= target {
				break
			}
			take(bi)
		}
	}

	return Selection{
		Pixels:   selected,
		Fraction: float64(len(selected)) / float64(m),
	}, nil
}
