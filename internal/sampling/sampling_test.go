package sampling

import (
	"math"
	"testing"

	"zatel/internal/heatmap"
	"zatel/internal/partition"
	"zatel/internal/vecmath"
)

// gradientField builds a quantized heatmap whose left half is cold (0) and
// right half hot (1), plus the single group covering it.
func halfHotField(t *testing.T, w, h, levels int) (*heatmap.Quantized, *partition.Group) {
	t.Helper()
	cost := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x >= w/2 {
				cost[y*w+x] = 10
			} else {
				cost[y*w+x] = 1
			}
		}
	}
	hm, err := heatmap.FromCost(cost, w, h)
	if err != nil {
		t.Fatal(err)
	}
	q, err := hm.Quantize(levels, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := partition.Coarse(w, h, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return q, &groups[0]
}

func TestBudgetClamps(t *testing.T) {
	// Half-hot field: mean coldness = (0.9+0)/2 = 0.45 — inside the clamp.
	q, g := halfHotField(t, 32, 8, 2)
	p := Budget(q, g)
	if p < MinPercent || p > MaxPercent {
		t.Fatalf("budget %v outside clamp", p)
	}
	mean := MeanColdness(q, g)
	if math.Abs(p-mean) > 1e-9 {
		t.Errorf("in-range budget %v != mean %v", p, mean)
	}
}

func TestBudgetClampBounds(t *testing.T) {
	// All-hot field → coldness 0 → clamped to MinPercent.
	cost := make([]float64, 64)
	for i := range cost {
		cost[i] = 5
	}
	hm, _ := heatmap.FromCost(cost, 8, 8)
	q, _ := hm.Quantize(2, 1)
	groups, _ := partition.Coarse(8, 8, 1, 4, 2)
	if p := Budget(q, &groups[0]); p != MinPercent {
		t.Errorf("all-hot budget %v, want %v", p, MinPercent)
	}
	// All-cold (near zero temperature after normalization is impossible
	// with uniform cost, so craft two levels and a group of only the cold
	// one).
	cost2 := make([]float64, 64)
	cost2[63] = 100 // single hot pixel defines the max
	for i := 0; i < 63; i++ {
		cost2[i] = 1
	}
	hm2, _ := heatmap.FromCost(cost2, 8, 8)
	q2, _ := hm2.Quantize(2, 1)
	groups2, _ := partition.Coarse(8, 8, 1, 4, 2)
	if p := Budget(q2, &groups2[0]); p != MaxPercent {
		t.Errorf("cold-dominated budget %v, want %v", p, MaxPercent)
	}
}

func TestSelectValidation(t *testing.T) {
	q, g := halfHotField(t, 32, 8, 2)
	rng := vecmath.NewRNG(1)
	if _, err := Select(q, g, 0, Uniform, rng); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := Select(q, g, 1.5, Uniform, rng); err == nil {
		t.Error("fraction >1 accepted")
	}
	if _, err := Select(q, g, 0.5, Distribution(99), rng); err == nil {
		t.Error("unknown distribution accepted")
	}
}

func TestSelectFractionRoughlyHonoured(t *testing.T) {
	q, g := halfHotField(t, 64, 32, 4)
	rng := vecmath.NewRNG(2)
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.9} {
		sel, err := Select(q, g, frac, Uniform, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sel.Fraction-frac) > 0.08 {
			t.Errorf("asked %v got %v", frac, sel.Fraction)
		}
		if len(sel.Pixels) == 0 {
			t.Errorf("empty selection at %v", frac)
		}
	}
}

func TestSelectFullFraction(t *testing.T) {
	q, g := halfHotField(t, 32, 8, 2)
	sel, err := Select(q, g, 1, Uniform, vecmath.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Pixels) != g.NumPixels() || sel.Fraction != 1 {
		t.Errorf("full selection got %d/%d", len(sel.Pixels), g.NumPixels())
	}
}

func TestSelectNoDuplicates(t *testing.T) {
	q, g := halfHotField(t, 64, 16, 3)
	sel, err := Select(q, g, 0.4, ExpTmp, vecmath.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, p := range sel.Pixels {
		if seen[p] {
			t.Fatalf("pixel %d selected twice", p)
		}
		seen[p] = true
	}
}

func TestSelectPixelsBelongToGroup(t *testing.T) {
	cost := make([]float64, 64*16)
	for i := range cost {
		cost[i] = float64(i % 7)
	}
	hm, _ := heatmap.FromCost(cost, 64, 16)
	q, _ := hm.Quantize(4, 1)
	groups, err := partition.Fine(64, 16, 4, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	member := map[int32]bool{}
	for _, p := range groups[2].AllPixels() {
		member[p] = true
	}
	sel, err := Select(q, &groups[2], 0.5, LinTmp, vecmath.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sel.Pixels {
		if !member[p] {
			t.Fatalf("selected pixel %d outside group", p)
		}
	}
}

// hotShare returns the fraction of selected pixels lying in the hot half.
func hotShare(sel Selection, w int) float64 {
	hot := 0
	for _, p := range sel.Pixels {
		if int(p)%w >= w/2 {
			hot++
		}
	}
	return float64(hot) / float64(len(sel.Pixels))
}

func TestDistributionsOrderHotEmphasis(t *testing.T) {
	// With a half-hot field: uniform should select ≈50% hot pixels;
	// lintmp and exptmp progressively more.
	q, g := halfHotField(t, 64, 64, 2)
	rng := vecmath.NewRNG(6)
	selU, err := Select(q, g, 0.3, Uniform, rng)
	if err != nil {
		t.Fatal(err)
	}
	selL, err := Select(q, g, 0.3, LinTmp, rng)
	if err != nil {
		t.Fatal(err)
	}
	selE, err := Select(q, g, 0.3, ExpTmp, rng)
	if err != nil {
		t.Fatal(err)
	}
	u, l, e := hotShare(selU, 64), hotShare(selL, 64), hotShare(selE, 64)
	if math.Abs(u-0.5) > 0.15 {
		t.Errorf("uniform hot share %v, want ≈0.5", u)
	}
	if l < u {
		t.Errorf("lintmp hot share %v below uniform %v", l, u)
	}
	if e < l-1e-9 {
		t.Errorf("exptmp hot share %v below lintmp %v", e, l)
	}
	if e < 0.95 {
		t.Errorf("exptmp hot share %v; warmth^5 should almost exclusively pick hot blocks", e)
	}
}

func TestSelectDeterministicPerSeed(t *testing.T) {
	q, g := halfHotField(t, 64, 16, 3)
	a, err := Select(q, g, 0.4, Uniform, vecmath.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(q, g, 0.4, Uniform, vecmath.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pixels) != len(b.Pixels) {
		t.Fatal("selection sizes differ for same seed")
	}
	for i := range a.Pixels {
		if a.Pixels[i] != b.Pixels[i] {
			t.Fatal("selection differs for same seed")
		}
	}
	c, err := Select(q, g, 0.4, Uniform, vecmath.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Pixels) == len(a.Pixels)
	if same {
		identical := true
		for i := range a.Pixels {
			if a.Pixels[i] != c.Pixels[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical random selection")
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || LinTmp.String() != "lintmp" || ExpTmp.String() != "exptmp" {
		t.Error("distribution names wrong")
	}
	if Stratified.String() != "stratified" || RankedSet.String() != "rankedset" {
		t.Error("replicated distribution names wrong")
	}
}

func TestParseDistribution(t *testing.T) {
	cases := map[string]Distribution{
		"":           Uniform,
		"uniform":    Uniform,
		"lintmp":     LinTmp,
		"exptmp":     ExpTmp,
		"stratified": Stratified,
		"rankedset":  RankedSet,
		"ranked-set": RankedSet,
	}
	for name, want := range cases {
		got, err := ParseDistribution(name)
		if err != nil || got != want {
			t.Errorf("ParseDistribution(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseDistribution("gaussian"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestReplicatedClassification(t *testing.T) {
	for _, d := range []Distribution{Uniform, LinTmp, ExpTmp} {
		if d.Replicated() {
			t.Errorf("%s claims to be replicated", d)
		}
	}
	for _, d := range []Distribution{Stratified, RankedSet} {
		if !d.Replicated() || !d.Valid() {
			t.Errorf("%s should be a valid replicated strategy", d)
		}
	}
}

func allDistributions() []Distribution {
	return []Distribution{Uniform, LinTmp, ExpTmp, Stratified, RankedSet}
}

// TestSelectDeterministicAllDistributions is the determinism property suite:
// for every strategy, an identical (seed, group, fraction) input must yield a
// byte-identical selection — the contract the prediction cache and the
// replicate CIs both lean on.
func TestSelectDeterministicAllDistributions(t *testing.T) {
	q, g := halfHotField(t, 64, 32, 3)
	for _, dist := range allDistributions() {
		for _, frac := range []float64{0.1, 0.4, 0.8} {
			a, err := Select(q, g, frac, dist, vecmath.NewRNG(21))
			if err != nil {
				t.Fatalf("%s@%v: %v", dist, frac, err)
			}
			b, err := Select(q, g, frac, dist, vecmath.NewRNG(21))
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Pixels) != len(b.Pixels) {
				t.Fatalf("%s@%v: sizes differ (%d vs %d)", dist, frac, len(a.Pixels), len(b.Pixels))
			}
			for i := range a.Pixels {
				if a.Pixels[i] != b.Pixels[i] {
					t.Fatalf("%s@%v: pixel %d differs for same seed", dist, frac, i)
				}
			}
		}
	}
}

// TestRealizedFractionNeverOvershoots is the budget-overshoot regression
// test: whatever the strategy, the realized fraction may exceed the request
// by at most one pixel-equivalent (the rounding of target itself).
func TestRealizedFractionNeverOvershoots(t *testing.T) {
	q, g := halfHotField(t, 64, 32, 3)
	m := float64(g.NumPixels())
	for _, dist := range allDistributions() {
		for _, frac := range []float64{0.05, 0.1, 0.33, 0.5, 0.77, 0.9} {
			sel, err := Select(q, g, frac, dist, vecmath.NewRNG(31))
			if err != nil {
				t.Fatalf("%s@%v: %v", dist, frac, err)
			}
			if sel.Fraction > frac+1/m+1e-9 {
				t.Errorf("%s@%v: realized fraction %v overshoots by more than one pixel",
					dist, frac, sel.Fraction)
			}
			reps, err := SelectReplicates(q, g, frac, dist, 4, vecmath.NewRNG(31))
			if err != nil {
				t.Fatalf("%s@%v replicates: %v", dist, frac, err)
			}
			total := 0
			for _, r := range reps {
				total += len(r.Pixels)
			}
			if float64(total)/m > frac+1/m+1e-9 {
				t.Errorf("%s@%v: replicates cover %v, overshooting the budget",
					dist, frac, float64(total)/m)
			}
		}
	}
}

// TestSelectReplicatesDisjointDeterministic checks the repeated-subsampling
// invariants: replicates are pairwise disjoint, every replicate is non-empty,
// together they hit the rounded budget, and the whole set is reproducible
// from the seed.
func TestSelectReplicatesDisjointDeterministic(t *testing.T) {
	q, g := halfHotField(t, 64, 32, 3)
	m := g.NumPixels()
	for _, dist := range []Distribution{Stratified, RankedSet} {
		a, err := SelectReplicates(q, g, 0.5, dist, 5, vecmath.NewRNG(41))
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		if len(a) != 5 {
			t.Fatalf("%s: got %d replicates, want 5", dist, len(a))
		}
		seen := map[int32]int{}
		total := 0
		for ri, rep := range a {
			if len(rep.Pixels) == 0 {
				t.Fatalf("%s: replicate %d empty", dist, ri)
			}
			total += len(rep.Pixels)
			for _, p := range rep.Pixels {
				if prev, dup := seen[p]; dup {
					t.Fatalf("%s: pixel %d in replicates %d and %d", dist, p, prev, ri)
				}
				seen[p] = ri
			}
		}
		if want := int(0.5*float64(m) + 0.5); total != want {
			t.Errorf("%s: replicates cover %d pixels, want %d", dist, total, want)
		}
		b, err := SelectReplicates(q, g, 0.5, dist, 5, vecmath.NewRNG(41))
		if err != nil {
			t.Fatal(err)
		}
		for ri := range a {
			if len(a[ri].Pixels) != len(b[ri].Pixels) {
				t.Fatalf("%s: replicate %d size differs for same seed", dist, ri)
			}
			for i := range a[ri].Pixels {
				if a[ri].Pixels[i] != b[ri].Pixels[i] {
					t.Fatalf("%s: replicate %d differs for same seed", dist, ri)
				}
			}
		}
	}
}

// threeBandField builds a field with cold/warm/hot vertical thirds so
// shortfall behaviour between the bands is observable.
func threeBandField(t *testing.T, w, h int) (*heatmap.Quantized, *partition.Group) {
	t.Helper()
	cost := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			switch {
			case x >= 2*w/3:
				cost[y*w+x] = 10
			case x >= w/3:
				cost[y*w+x] = 5
			default:
				cost[y*w+x] = 1
			}
		}
	}
	hm, err := heatmap.FromCost(cost, w, h)
	if err != nil {
		t.Fatal(err)
	}
	q, err := hm.Quantize(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := partition.Coarse(w, h, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return q, &groups[0]
}

// TestExpTmpShortfallPrefersWarm is the shortfall-dilution regression test:
// when exptmp's warmth^5 quota exhausts the hot band, the remaining pixels
// must come from the warm band, not dilute uniformly into the cold one.
func TestExpTmpShortfallPrefersWarm(t *testing.T) {
	q, g := threeBandField(t, 96, 32)
	// 50% demand but the hot third holds only ~33% — a guaranteed shortfall.
	sel, err := Select(q, g, 0.5, ExpTmp, vecmath.NewRNG(51))
	if err != nil {
		t.Fatal(err)
	}
	cold := 0
	for _, p := range sel.Pixels {
		if int(p)%96 < 96/3 {
			cold++
		}
	}
	coldShare := float64(cold) / float64(len(sel.Pixels))
	if coldShare > 0.05 {
		t.Errorf("exptmp shortfall drew %.1f%% cold pixels; the warm band should absorb it",
			100*coldShare)
	}
}
