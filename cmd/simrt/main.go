// Command simrt runs the full cycle-level GPU simulation of a scene — the
// ground-truth baseline Zatel is compared against (what the paper obtains
// from an unmodified Vulkan-Sim run).
//
// Usage:
//
//	simrt -scene PARK -config mobile -res 128 -spp 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/metrics"
	"zatel/internal/obs"
	"zatel/internal/scene"
)

func main() {
	var (
		sceneName = flag.String("scene", "PARK", "scene name ("+strings.Join(scene.Names(), ", ")+")")
		cfgName   = flag.String("config", "mobile", "GPU configuration: mobile or rtx2060")
		res       = flag.Int("res", 128, "square frame resolution")
		spp       = flag.Int("spp", 2, "samples per pixel")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	if _, err := obs.SetupLogger(os.Stderr, *logLevel, false); err != nil {
		fatal(err)
	}

	cfg, err := configByName(*cfgName)
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel the workload build (between rows) and abort
	// before the cycle-level replay launches; we exit 130 like the other
	// CLIs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := core.ReferenceContext(ctx, cfg, *sceneName, *res, *res, *spp)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "simrt: interrupted")
			os.Exit(130)
		}
		fatal(err)
	}

	fmt.Printf("full simulation: %s on %s (%dx%d, %d spp)\n", *sceneName, cfg.Name, *res, *res, *spp)
	fmt.Printf("%-22s%16s\n", "Metric", "Value")
	for _, m := range metrics.All() {
		fmt.Printf("%-22s%16.4f\n", m, rep.Value(m))
	}
	fmt.Printf("%-22s%16d\n", "Instructions", rep.Instructions)
	fmt.Printf("%-22s%16d\n", "Warps", rep.Warps)
	fmt.Printf("%-22s%16s\n", "Wall time", rep.WallTime.Round(1e6).String())
}

// configByName resolves the two Table II configurations.
func configByName(name string) (config.Config, error) {
	switch strings.ToLower(name) {
	case "mobile", "mobilesoc", "soc":
		return config.MobileSoC(), nil
	case "rtx2060", "rtx", "turing":
		return config.RTX2060(), nil
	default:
		return config.Config{}, fmt.Errorf("unknown config %q (want mobile or rtx2060)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrt:", err)
	os.Exit(1)
}
