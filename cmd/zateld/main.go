// Command zateld is the Zatel prediction daemon: a long-lived HTTP service
// that amortises the expensive pipeline stages across requests through the
// content-addressed artifact store, coalesces concurrent identical
// requests onto one pipeline execution, bounds concurrent builds with an
// admission semaphore, and drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	zateld -addr :8080 -store-size 512MiB -max-concurrent 8
//	zateld -store-dir /var/cache/zatel -disk-size 4GiB   # persistent tier
//	zateld -log-format json -debug-addr localhost:6060   # JSON logs + pprof
//
//	# Two-node fleet: each node names the full peer list and itself.
//	zateld -addr :8080 -self http://10.0.0.1:8080 \
//	    -peers http://10.0.0.1:8080,http://10.0.0.2:8080 -node-name a
//	zateld -addr :8080 -self http://10.0.0.2:8080 \
//	    -peers http://10.0.0.1:8080,http://10.0.0.2:8080 -node-name b
//
//	curl -s -X POST localhost:8080/v1/predict \
//	    -d '{"scene":"PARK","config":"mobile","width":128,"height":128,"spp":2}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"zatel/internal/cluster"
	"zatel/internal/obs"
	"zatel/internal/service"
	"zatel/internal/store"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		storeSize     = flag.String("store-size", "512MiB", "artifact store byte budget (0 = unbounded)")
		storeDir      = flag.String("store-dir", "", "directory for the persistent artifact tier (empty = memory-only)")
		diskSize      = flag.String("disk-size", "2GiB", "disk tier byte budget (0 = unbounded)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max predictions building at once (0 = one per CPU core)")
		maxQueue      = flag.Int("max-queue", 0, "max builders waiting for a slot before 503 (0 = 4x max-concurrent)")
		defTimeout    = flag.Duration("default-timeout", 60*time.Second, "per-request deadline when the request names none")
		maxTimeout    = flag.Duration("max-timeout", 10*time.Minute, "hard cap on client-requested deadlines")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		parallel      = flag.Bool("parallel", true, "run each prediction's K group instances on the worker pool")
		workers       = flag.Int("workers", 0, "group-instance pool size with -parallel (0 = one per CPU core)")
		logLevel      = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat     = flag.String("log-format", "text", "log output format: text or json")
		debugAddr     = flag.String("debug-addr", "", "separate listen address for /debug/pprof/ (empty = disabled)")
		peers         = flag.String("peers", "", "comma-separated base URLs of every fleet member, self included (empty = single node)")
		selfURL       = flag.String("self", "", "this node's base URL exactly as listed in -peers (required with -peers)")
		nodeName      = flag.String("node-name", "", "display name for X-Zatel-Node and logs (default: -self URL or hostname)")
		peerTimeout   = flag.Duration("peer-timeout", 2*time.Second, "deadline for one peer artifact fetch")
	)
	flag.Parse()

	switch *logFormat {
	case "text", "json":
	default:
		fatal(fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat))
	}
	if _, err := obs.SetupLogger(os.Stderr, *logLevel, *logFormat == "json"); err != nil {
		fatal(err)
	}

	budget, err := store.ParseSize(*storeSize)
	if err != nil {
		fatal(err)
	}
	// One store for everything: workload traces and quantized heatmaps land
	// in the process-wide default store anyway, so budgeting that same
	// store puts predictions and their inputs under one LRU.
	st := store.Default()
	st.SetMaxBytes(budget)

	// The disk tier survives restarts: artifacts built before a deploy or
	// crash are integrity-verified and served warm afterwards. A failing or
	// full disk degrades the tier to memory-only instead of stalling
	// requests, so enabling it is always safe.
	var disk *store.Disk
	if *storeDir != "" {
		diskBudget, err := store.ParseSize(*diskSize)
		if err != nil {
			fatal(err)
		}
		disk, err = store.OpenDisk(store.DiskConfig{Dir: *storeDir, MaxBytes: diskBudget})
		if err != nil {
			fatal(fmt.Errorf("opening -store-dir: %w", err))
		}
		st.AttachDisk(disk)
		dc := disk.Counters()
		slog.Info("disk tier open", "dir", *storeDir, "budget", *diskSize,
			"entries", dc.Entries, "bytes", dc.Bytes,
			"orphans_removed", dc.ScanOrphans, "quarantined", dc.Quarantined)
	}

	// Cluster mode: the static peer list becomes a consistent-hash ring,
	// the store gains the peer fetch tier, and the service gains ownership
	// routing. A single node (-peers empty) skips all of it.
	var cl *cluster.Cluster
	if *peers != "" {
		if *selfURL == "" {
			fatal(errors.New("-peers requires -self (this node's base URL)"))
		}
		cl, err = cluster.New(cluster.Config{
			Self:         strings.TrimRight(*selfURL, "/"),
			Name:         *nodeName,
			Peers:        splitPeers(*peers),
			FetchTimeout: *peerTimeout,
		})
		if err != nil {
			fatal(err)
		}
		st.AttachPeers(cl)
		slog.Info("cluster enabled", "self", cl.Self(), "name", cl.Name(),
			"peers", len(cl.Peers()), "fetch_timeout", *peerTimeout)
	}

	srv := service.New(service.Config{
		Store:          st,
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Parallel:       *parallel,
		Workers:        *workers,
		Cluster:        cl,
		NodeName:       *nodeName,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The pprof listener is separate from the service address so profiling
	// endpoints are never exposed to prediction clients; bind it to
	// localhost (e.g. -debug-addr localhost:6060) in production.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ds := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			slog.Info("debug listener up", "addr", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Error("debug listener failed", "err", err)
			}
		}()
	}

	// SIGINT/SIGTERM start the drain: health flips to 503 so load
	// balancers stop routing here, new predictions are refused, and
	// in-flight requests get drain-timeout to finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		slog.Info("listening", "addr", *addr, "store_budget", *storeSize,
			"slots", effectiveSlots(*maxConcurrent))
		errCh <- hs.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		slog.Info("signal received, draining", "timeout", *drainTimeout)
		srv.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			slog.Error("drain incomplete", "err", err)
			os.Exit(1)
		}
		if cl != nil {
			cl.Close()
		}
		if disk != nil {
			// Flush the write-behind queue so artifacts built moments before
			// the signal are warm after the next start.
			if err := disk.Close(); err != nil {
				slog.Error("disk tier close failed", "err", err)
			}
		}
		slog.Info("drained cleanly")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zateld:", err)
	os.Exit(1)
}

// splitPeers parses the -peers list: comma-separated base URLs, blanks
// skipped, trailing slashes dropped so ring identities compare exactly.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// effectiveSlots reports the admission capacity for the startup log.
func effectiveSlots(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
