// Command zatel runs the Zatel prediction pipeline on a scene and, with
// -compare, evaluates it against the ground-truth full simulation.
//
// Usage:
//
//	zatel -scene PARK -config mobile -res 128 -spp 2 -compare
//	zatel -scene PARK -maxpercent 0.1           # the paper's 50x variant
//	zatel -scene BATH -division coarse -dist exptmp -percent 0.4
//	zatel -scene PARK -inject-errors 0.3 -attempts 3   # fault-injection soak
//	zatel -scene PARK -trace trace.json                # step-level span trace
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/faults"
	"zatel/internal/metrics"
	"zatel/internal/obs"
	"zatel/internal/sampling"
	"zatel/internal/scene"
	"zatel/internal/store"
)

func main() {
	var (
		sceneName  = flag.String("scene", "PARK", "scene name ("+strings.Join(scene.Names(), ", ")+")")
		cfgName    = flag.String("config", "mobile", "GPU configuration: mobile or rtx2060")
		res        = flag.Int("res", 128, "square frame resolution")
		spp        = flag.Int("spp", 2, "samples per pixel")
		division   = flag.String("division", "fine", "image-plane division: fine or coarse")
		dist       = flag.String("dist", "uniform", "pixel distribution: uniform, lintmp, exptmp, stratified or rankedset")
		sampl      = flag.String("sampling", "", "sampling strategy, an alias for -dist that reads better for the replicated strategies (stratified, rankedset); overrides -dist when set")
		targetCI   = flag.Float64("target-ci", 0, "adaptive sampling: relative CI half-width target, e.g. 0.05 for ±5% (requires stratified or rankedset; 0 = one round)")
		replicates = flag.Int("replicates", 0, "replicate sub-draws per round for stratified/rankedset (0 = default 5)")
		confidence = flag.Float64("confidence", 0, "confidence level for intervals: 0.90, 0.95 or 0.99 (0 = 0.95)")
		maxRounds  = flag.Int("max-rounds", 0, "adaptive re-draw round cap with -target-ci (0 = default 4)")
		percent    = flag.Float64("percent", 0, "fixed traced-pixel fraction in (0,1]; 0 uses Eq. 1")
		maxPercent = flag.Float64("maxpercent", 0, "cap on the Eq. 1 budget (0 = none)")
		k          = flag.Int("k", 0, "downscaling factor override (0 = gcd rule)")
		noDown     = flag.Bool("no-downscale", false, "disable GPU downscaling (K=1)")
		regression = flag.Bool("regression", false, "use exponential-regression extrapolation (20/30/40% runs)")
		compare    = flag.Bool("compare", false, "also run the full simulation and report errors and speedup")
		seed       = flag.Uint64("seed", 1, "selection randomness seed")
		parallel   = flag.Bool("parallel", false, "run the K group instances on the worker pool")
		workers    = flag.Int("workers", 0, "pool size with -parallel (0 = one per CPU core)")
		storeSize  = flag.String("store-size", "0", "artifact store byte budget, e.g. 256MiB (0 = unbounded)")

		attempts   = flag.Int("attempts", 1, "max attempts per group instance (retries on failure)")
		backoff    = flag.Duration("retry-backoff", 0, "base backoff between attempts (doubles, seeded jitter)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-attempt deadline for a group instance (0 = none)")
		quorum     = flag.Int("quorum", 0, "surviving groups needed for a degraded prediction (0 = ceil(K/2), <0 = all)")

		injErrors   = flag.Float64("inject-errors", 0, "fault injection: per-attempt error probability in [0,1]")
		injPanics   = flag.Float64("inject-panics", 0, "fault injection: per-attempt panic probability in [0,1]")
		injStraggle = flag.Float64("inject-straggle", 0, "fault injection: per-attempt straggler probability in [0,1]")
		injMean     = flag.Duration("inject-straggle-mean", 50*time.Millisecond, "fault injection: mean straggler delay")
		injSeed     = flag.Uint64("inject-seed", 1, "fault injection: decision seed")

		traceFile  = flag.String("trace", "", "write a Chrome trace_event JSON of the pipeline to this file (open in chrome://tracing or Perfetto)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	if _, err := obs.SetupLogger(os.Stderr, *logLevel, false); err != nil {
		fatal(err)
	}

	// Profiles flush on every exit path, interrupt included, like -trace:
	// fatal() and the interrupt exit below both run stopProfiles.
	var perr error
	stopProfiles, perr = obs.StartProfiles(*cpuProfile, *memProfile)
	if perr != nil {
		fatal(perr)
	}
	defer stopProfiles()

	// The workload trace, quantized heatmap and any repeat predictions all
	// flow through the process-wide artifact store; -store-size bounds it.
	budget, err := store.ParseSize(*storeSize)
	if err != nil {
		fatal(err)
	}
	store.Default().SetMaxBytes(budget)

	cfg, err := configByName(*cfgName)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{
		Config: cfg,
		Scene:  *sceneName,
		Width:  *res, Height: *res, SPP: *spp,
		K:                 *k,
		NoDownscale:       *noDown,
		FixedFraction:     *percent,
		MaxFraction:       *maxPercent,
		Regression:        *regression,
		Seed:              *seed,
		Parallel:          *parallel,
		Workers:           *workers,
		TargetCIHalfWidth: *targetCI,
		Sampling: core.SamplingOptions{
			Replicates: *replicates,
			Confidence: *confidence,
			MaxRounds:  *maxRounds,
		},
		FT: core.FaultTolerance{
			Attempts: *attempts,
			Backoff:  *backoff,
			Timeout:  *jobTimeout,
			Quorum:   *quorum,
			Inject: faults.Config{
				ErrorRate:     *injErrors,
				PanicRate:     *injPanics,
				StragglerRate: *injStraggle,
				StragglerMean: *injMean,
				Seed:          *injSeed,
			},
		},
	}
	switch strings.ToLower(*division) {
	case "fine":
		opts.Division = core.FineGrained
	case "coarse":
		opts.Division = core.CoarseGrained
	default:
		fatal(fmt.Errorf("unknown division %q", *division))
	}
	distName := *dist
	if *sampl != "" {
		distName = *sampl
	}
	opts.Dist, err = sampling.ParseDistribution(strings.ToLower(distName))
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel the prediction: the pool drains its running
	// jobs, unstarted groups are skipped, and we exit 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -trace attaches a tracer to the context; every pipeline step, group
	// job and retry attempt below records a span into it.
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
		tracer.SetMeta("cmd", "zatel")
		tracer.SetMeta("scene", *sceneName)
		tracer.SetMeta("config", cfg.Name)
		ctx = obs.WithTracer(ctx, tracer)
	}

	result, err := core.PredictContext(ctx, opts)
	if tracer != nil {
		if werr := writeTrace(*traceFile, tracer); werr != nil {
			fatal(werr)
		}
		slog.Info("trace written", "file", *traceFile, "spans", len(tracer.Snapshot()))
	}
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			stopProfiles()
			fmt.Fprintln(os.Stderr, "zatel: interrupted")
			os.Exit(130)
		}
		fatal(err)
	}

	fmt.Printf("zatel: %s on %s (%dx%d, %d spp), K=%d, %s division, %s distribution\n",
		*sceneName, cfg.Name, *res, *res, *spp, result.K, opts.Division, opts.Dist)
	for gi, g := range result.Groups {
		if g.Err != nil {
			fmt.Printf("  group %d: FAILED after %d attempt(s): %v\n", gi, g.Attempts, g.Err)
			continue
		}
		retries := ""
		if g.Attempts > 1 {
			retries = fmt.Sprintf(", %d attempts", g.Attempts)
		}
		reps := ""
		if g.Rounds > 0 {
			met := ""
			if *targetCI > 0 {
				met = ", target met"
				if !g.TargetMet {
					met = ", target unmet"
				}
			}
			reps = fmt.Sprintf(", %d replicates x %d round(s)%s", g.Replicates, g.Rounds, met)
		}
		fmt.Printf("  group %d: %d/%d pixels traced (%.1f%%), %d cycles, %s (queued %s%s%s)\n",
			gi, g.Selected, g.Pixels, 100*g.Fraction, g.Report.Cycles,
			g.WallTime.Round(1e6), g.QueueTime.Round(1e6), retries, reps)
	}
	if d := result.Degraded; d != nil {
		fmt.Printf("  %s\n", d)
	}
	fmt.Printf("preprocess %s, simulation wall %s (slowest instance), cpu %s (all instances)\n\n",
		result.PreprocessTime.Round(1e6), result.SimWallTime.Round(1e6),
		result.TotalCPUTime.Round(1e6))

	if !*compare {
		if result.Intervals != nil {
			printIntervals(result, *confidence)
			return
		}
		fmt.Printf("%-22s%16s\n", "Metric", "Predicted")
		for _, m := range metrics.All() {
			fmt.Printf("%-22s%16.4f\n", m, result.Predicted[m])
		}
		return
	}

	ref, err := core.Reference(cfg, *sceneName, *res, *res, *spp)
	if err != nil {
		fatal(err)
	}
	errs := result.Errors(ref)
	fmt.Printf("%-22s%16s%16s%12s\n", "Metric", "Predicted", "FullSim", "AbsErr")
	for _, m := range metrics.All() {
		fmt.Printf("%-22s%16.4f%16.4f%11.1f%%\n", m, result.Predicted[m], ref.Value(m), 100*errs[m])
	}
	if result.Degraded != nil {
		fmt.Printf("(errors measured against a degraded prediction: %s)\n", result.Degraded)
	}
	if result.Intervals != nil {
		fmt.Println()
		printIntervals(result, *confidence)
	}
	fmt.Printf("\nMAE %.1f%%   speedup %.1fx (full sim %s vs zatel %s)\n",
		100*metrics.MAE(errs, metrics.All()), result.Speedup(ref),
		ref.WallTime.Round(1e6), (result.PreprocessTime + result.SimWallTime).Round(1e6))
}

// printIntervals renders the replicated strategies' confidence intervals:
// the point prediction with its CI bounds and ± half-width per metric.
func printIntervals(result *core.Result, confFlag float64) {
	conf := confFlag
	if conf == 0 {
		conf = 0.95
	}
	reps := 0
	for _, iv := range result.Intervals {
		if reps == 0 || iv.Replicates < reps {
			reps = iv.Replicates
		}
	}
	fmt.Printf("%-22s%16s%16s%16s%12s\n", "Metric", "Predicted", "CI low", "CI high", "±half")
	for _, m := range metrics.All() {
		iv := result.Intervals[m]
		fmt.Printf("%-22s%16.4f%16.4f%16.4f%12.4f\n",
			m, result.Predicted[m], iv.Low, iv.High, iv.HalfWidth())
	}
	fmt.Printf("(%.0f%% confidence from %d replicate sub-draws per group)\n", 100*conf, reps)
}

// writeTrace exports the tracer's spans as Chrome trace_event JSON.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func configByName(name string) (config.Config, error) {
	switch strings.ToLower(name) {
	case "mobile", "mobilesoc", "soc":
		return config.MobileSoC(), nil
	case "rtx2060", "rtx", "turing":
		return config.RTX2060(), nil
	default:
		return config.Config{}, fmt.Errorf("unknown config %q (want mobile or rtx2060)", name)
	}
}

// stopProfiles flushes the -cpuprofile/-memprofile outputs; fatal and the
// interrupt exit call it (idempotently) so profiles survive any exit.
var stopProfiles = func() {}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "zatel:", err)
	os.Exit(1)
}
