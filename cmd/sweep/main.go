// Command sweep regenerates the paper's evaluation tables and figures.
// Each subcommand reproduces one experiment and prints the corresponding
// rows/series; "all" runs the full evaluation in order.
//
// Usage:
//
//	sweep [-res 256] [-spp 1] [-config rtx2060] [-reps 5] [-trace grid.json]
//	      [-cpuprofile cpu.pprof] [-memprofile mem.pprof] <experiment>
//
// Experiments: fig10 fig11 table3 fig13 fig14 fig15 fig16 fig17 fig18
// fig19 fig20 all
//
// Fault-injection flags (-inject-*) soak the experiment grids: failed
// cells render as ERR, degraded predictions are marked †, and SIGINT
// prints the partial tables before exiting 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/experiments"
	"zatel/internal/faults"
	"zatel/internal/obs"
	"zatel/internal/sampling"
	"zatel/internal/scene"
	"zatel/internal/store"
)

func main() {
	var (
		res        = flag.Int("res", 256, "square frame resolution")
		spp        = flag.Int("spp", 1, "samples per pixel")
		cfgName    = flag.String("config", "rtx2060", "config for per-config sweeps (mobile or rtx2060)")
		reps       = flag.Int("reps", 5, "random-selection repetitions for table3")
		sampl      = flag.String("sampling", "", "sampling strategy for the grids: uniform, lintmp, exptmp, stratified or rankedset (empty = uniform; stratified/rankedset add ± error bars)")
		targetCI   = flag.Float64("target-ci", 0, "adaptive sampling: relative CI half-width target (requires -sampling stratified or rankedset)")
		replicates = flag.Int("replicates", 0, "replicate sub-draws per round for stratified/rankedset (0 = default 5)")
		confidence = flag.Float64("confidence", 0, "confidence level for intervals: 0.90, 0.95 or 0.99 (0 = 0.95)")
		maxRounds  = flag.Int("max-rounds", 0, "adaptive re-draw round cap with -target-ci (0 = default 4)")
		workers    = flag.Int("workers", 0, "experiment-grid worker pool size (0 = one per CPU core, 1 = serial)")
		storeSize  = flag.String("store-size", "0", "artifact store byte budget, e.g. 256MiB (0 = unbounded)")

		attempts   = flag.Int("attempts", 1, "max attempts per group instance (retries on failure)")
		backoff    = flag.Duration("retry-backoff", 0, "base backoff between attempts (doubles, seeded jitter)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-attempt deadline for a group instance (0 = none)")
		quorum     = flag.Int("quorum", 0, "surviving groups needed for a degraded prediction (0 = ceil(K/2), <0 = all)")

		injErrors   = flag.Float64("inject-errors", 0, "fault injection: per-attempt error probability in [0,1]")
		injPanics   = flag.Float64("inject-panics", 0, "fault injection: per-attempt panic probability in [0,1]")
		injStraggle = flag.Float64("inject-straggle", 0, "fault injection: per-attempt straggler probability in [0,1]")
		injMean     = flag.Duration("inject-straggle-mean", 50*time.Millisecond, "fault injection: mean straggler delay")
		injSeed     = flag.Uint64("inject-seed", 1, "fault injection: decision seed")

		traceFile  = flag.String("trace", "", "write a Chrome trace_event JSON of the experiment grid to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
	}

	if _, err := obs.SetupLogger(os.Stderr, *logLevel, false); err != nil {
		fatal(err)
	}

	// Profiles flush on every exit path, interrupt included, like -trace:
	// fatal() and the explicit exit points below all run stopProfiles.
	var err error
	stopProfiles, err = obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	// Workload traces and quantized heatmaps are shared across every grid
	// point through the process-wide artifact store; -store-size bounds
	// its memory on hosts that cannot hold every scene's trace at once.
	budget, err := store.ParseSize(*storeSize)
	if err != nil {
		fatal(err)
	}
	store.Default().SetMaxBytes(budget)

	// SIGINT/SIGTERM cancel the grids; already-collected cells still render
	// (cancelled ones as ERR) before we exit 130.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -trace attaches a tracer to the grid context: one "point[i]" span per
	// grid point, with the nested pipeline step spans below each. flushTrace
	// runs on every exit path so an interrupted sweep still leaves a file.
	flushTrace := func() {}
	if *traceFile != "" {
		tracer := obs.NewTracer()
		tracer.SetMeta("cmd", "sweep")
		tracer.SetMeta("experiment", flag.Arg(0))
		ctx = obs.WithTracer(ctx, tracer)
		flushTrace = func() {
			f, err := os.Create(*traceFile)
			if err == nil {
				err = tracer.WriteChromeTrace(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep: writing trace:", err)
				return
			}
			slog.Info("trace written", "file", *traceFile, "spans", len(tracer.Snapshot()))
		}
	}

	settings := experiments.Settings{
		Width: *res, Height: *res, SPP: *spp, Workers: *workers,
		Ctx:      ctx,
		TargetCI: *targetCI,
		Sampling: core.SamplingOptions{
			Replicates: *replicates,
			Confidence: *confidence,
			MaxRounds:  *maxRounds,
		},
		FT: core.FaultTolerance{
			Attempts: *attempts,
			Backoff:  *backoff,
			Timeout:  *jobTimeout,
			Quorum:   *quorum,
			Inject: faults.Config{
				ErrorRate:     *injErrors,
				PanicRate:     *injPanics,
				StragglerRate: *injStraggle,
				StragglerMean: *injMean,
				Seed:          *injSeed,
			},
		},
	}
	settings.Dist, err = sampling.ParseDistribution(strings.ToLower(*sampl))
	if err != nil {
		fatal(err)
	}
	cfg, err := configByName(*cfgName)
	if err != nil {
		fatal(err)
	}

	which := strings.ToLower(flag.Arg(0))
	run := func(name string) {
		if err := runExperiment(name, settings, cfg, *reps); err != nil {
			flushTrace()
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
		if ctx.Err() != nil {
			flushTrace()
			stopProfiles()
			fmt.Fprintln(os.Stderr, "sweep: interrupted — partial results above")
			os.Exit(130)
		}
	}
	if which == "all" {
		for _, name := range []string{"fig10", "fig11", "table3", "fig13", "fig14",
			"fig15", "fig16", "fig17", "fig18", "fig19", "fig20"} {
			run(name)
		}
		flushTrace()
		stopProfiles()
		return
	}
	run(which)
	flushTrace()
	stopProfiles()
}

// stopProfiles flushes the -cpuprofile/-memprofile outputs; fatal and every
// explicit exit path call it (idempotently) so profiles survive any exit.
var stopProfiles = func() {}

// sweepCache shares one percentage sweep across fig13–fig16.
var sweepCache *experiments.SweepResult

// downscaleCache shares the K sweeps across fig17–fig19 (Fig. 17 uses the
// representative subset, Figs. 18/19 all scenes).
var (
	downscaleRepr *experiments.DownscaleResult
	downscaleAll  *experiments.DownscaleResult
)

func runExperiment(name string, s experiments.Settings, cfg config.Config, reps int) error {
	out := os.Stdout
	switch name {
	case "fig10":
		r, err := experiments.Fig10(s)
		if err != nil {
			return err
		}
		r.Render(out)
	case "fig11":
		r, err := experiments.Fig11(s)
		if err != nil {
			return err
		}
		r.Render(out)
	case "table3":
		r, err := experiments.Table3(s, cfg, reps)
		if err != nil {
			return err
		}
		r.Render(out)
	case "fig13", "fig14", "fig15", "fig16":
		if sweepCache == nil {
			r, err := experiments.PercentSweep(s, cfg, nil)
			if err != nil {
				return err
			}
			sweepCache = r
		}
		switch name {
		case "fig13":
			sweepCache.RenderFig13(out)
		case "fig14":
			sweepCache.RenderFig14(out)
		case "fig15":
			sweepCache.RenderFig15(out)
		case "fig16":
			sweepCache.RenderFig16(out)
		}
	case "fig17":
		if downscaleRepr == nil {
			r, err := experiments.DownscaleSweep(s, cfg, scene.RepresentativeSubset())
			if err != nil {
				return err
			}
			downscaleRepr = r
		}
		downscaleRepr.RenderErrors(out, "Fig. 17 (representative subset)")
	case "fig18", "fig19":
		if downscaleAll == nil {
			r, err := experiments.DownscaleSweep(s, cfg, scene.Names())
			if err != nil {
				return err
			}
			downscaleAll = r
		}
		if name == "fig18" {
			downscaleAll.RenderErrors(out, "Fig. 18 (all scenes)")
		} else {
			downscaleAll.RenderSpeedup(out)
		}
	case "fig20":
		r, err := experiments.Fig20(s, cfg, nil)
		if err != nil {
			return err
		}
		r.Render(out)
	default:
		usage()
	}
	return nil
}

func configByName(name string) (config.Config, error) {
	switch strings.ToLower(name) {
	case "mobile", "mobilesoc", "soc":
		return config.MobileSoC(), nil
	case "rtx2060", "rtx", "turing":
		return config.RTX2060(), nil
	default:
		return config.Config{}, fmt.Errorf("unknown config %q (want mobile or rtx2060)", name)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sweep [flags] <fig10|fig11|table3|fig13|fig14|fig15|fig16|fig17|fig18|fig19|fig20|all>")
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
