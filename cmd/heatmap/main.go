// Command heatmap renders a scene's execution-time heatmap (and optionally
// its K-means-quantized version) as a PPM image — steps 1 and 2 of the
// Zatel pipeline, corresponding to the paper's Fig. 4/9 visualisations.
//
// Usage:
//
//	heatmap -scene BUNNY -res 256 -o bunny.ppm
//	heatmap -scene PARK -quantize 8 -o park_quant.ppm
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"zatel/internal/heatmap"
	"zatel/internal/obs"
	"zatel/internal/partition"
	"zatel/internal/rt"
	"zatel/internal/sampling"
	"zatel/internal/scene"
	"zatel/internal/vecmath"
)

func main() {
	var (
		sceneName = flag.String("scene", "PARK", "scene name ("+strings.Join(scene.Names(), ", ")+")")
		res       = flag.Int("res", 128, "square frame resolution")
		spp       = flag.Int("spp", 1, "samples per pixel for profiling")
		quantize  = flag.Int("quantize", 0, "K-means palette size (0 = raw heatmap)")
		selectPct = flag.Float64("select", 0, "if >0, render the representative-pixel subset (Fig. 8): selected pixels keep their colour, the rest darken")
		dist      = flag.String("dist", "uniform", "distribution for -select: uniform, lintmp or exptmp")
		outPath   = flag.String("o", "", "output PPM path (default <scene>.ppm)")
		seed      = flag.Uint64("seed", 1, "quantization seed")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()

	if _, err := obs.SetupLogger(os.Stderr, *logLevel, false); err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel the path trace between rows; no partial image
	// is written and we exit 130 like the other CLIs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	wl, err := rt.CachedWorkloadContext(ctx, *sceneName, *res, *res, *spp)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "heatmap: interrupted")
			os.Exit(130)
		}
		fatal(err)
	}
	hm, err := heatmap.FromCost(wl.Cost, wl.Width, wl.Height)
	if err != nil {
		fatal(err)
	}

	path := *outPath
	if path == "" {
		path = strings.ToLower(*sceneName) + ".ppm"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)

	switch {
	case *selectPct > 0:
		levels := *quantize
		if levels == 0 {
			levels = 8
		}
		q, err := hm.Quantize(levels, *seed)
		if err != nil {
			fatal(err)
		}
		d, err := distByName(*dist)
		if err != nil {
			fatal(err)
		}
		groups, err := partition.Coarse(wl.Width, wl.Height, 1, 32, 2)
		if err != nil {
			fatal(err)
		}
		sel, err := sampling.Select(q, &groups[0], *selectPct, d, vecmath.NewRNG(*seed))
		if err != nil {
			fatal(err)
		}
		if err := writeSelectionPPM(w, q, sel); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote selection overlay (%d/%d pixels, %s) to %s\n",
			len(sel.Pixels), wl.Pixels(), d, path)
	case *quantize > 0:
		q, err := hm.Quantize(*quantize, *seed)
		if err != nil {
			fatal(err)
		}
		if err := q.WritePPM(w); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote quantized heatmap (%d levels) to %s\n", len(q.Levels), path)
	default:
		if err := hm.WritePPM(w); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote heatmap to %s\n", path)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

// distByName resolves the Section III-E distribution names.
func distByName(name string) (sampling.Distribution, error) {
	switch strings.ToLower(name) {
	case "uniform":
		return sampling.Uniform, nil
	case "lintmp":
		return sampling.LinTmp, nil
	case "exptmp":
		return sampling.ExpTmp, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q", name)
	}
}

// writeSelectionPPM renders the quantized heatmap with unselected pixels
// darkened to 1/5 brightness — the Fig. 8 representative-subset view.
func writeSelectionPPM(w *bufio.Writer, q *heatmap.Quantized, sel sampling.Selection) error {
	keep := make(map[int32]bool, len(sel.Pixels))
	for _, p := range sel.Pixels {
		keep[p] = true
	}
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", q.Width, q.Height); err != nil {
		return err
	}
	for i := 0; i < q.Width*q.Height; i++ {
		r, g, b := heatmap.GradientRGB(q.TempOf(i))
		if !keep[int32(i)] {
			r, g, b = r/5, g/5, b/5
		}
		if err := w.WriteByte(r); err != nil {
			return err
		}
		if err := w.WriteByte(g); err != nil {
			return err
		}
		if err := w.WriteByte(b); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heatmap:", err)
	os.Exit(1)
}
