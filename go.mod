module zatel

go 1.22
