//go:build !race

package zatel_test

// raceEnabled mirrors the -race build tag; see bench_gpu_race_test.go.
const raceEnabled = false
