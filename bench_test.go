// Package zatel_test hosts the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md for the
// experiment index). Each benchmark wraps the corresponding driver in
// internal/experiments and reports the headline scalars via
// b.ReportMetric; run with -v to also get the rendered tables, or use
// cmd/sweep for standalone regeneration.
//
// Resolution defaults to the evaluation settings (256×256, 1 spp) and can
// be overridden with ZATEL_RES / ZATEL_SPP for quick runs.
package zatel_test

import (
	"io"
	"os"
	"strconv"
	"sync"
	"testing"

	"zatel/internal/analytic"
	"zatel/internal/config"
	"zatel/internal/core"
	"zatel/internal/experiments"
	"zatel/internal/gpu"
	"zatel/internal/metrics"
	"zatel/internal/rt"
	"zatel/internal/scene"
)

func benchSettings() experiments.Settings {
	s := experiments.Default()
	if v := os.Getenv("ZATEL_RES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			s.Width, s.Height = n, n
		}
	}
	if v := os.Getenv("ZATEL_SPP"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			s.SPP = n
		}
	}
	return s
}

func render(b *testing.B, f func(io.Writer)) {
	b.Helper()
	if testing.Verbose() {
		var sink logWriter
		sink.b = b
		f(&sink)
	}
}

// logWriter funnels a Render into b.Log lines.
type logWriter struct {
	b   *testing.B
	buf []byte
}

func (w *logWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := indexByte(w.buf, '\n')
		if i < 0 {
			break
		}
		w.b.Log(string(w.buf[:i]))
		w.buf = w.buf[i+1:]
	}
	return len(p), nil
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

// BenchmarkFig10_FullyOptimizedPARK regenerates Fig. 10: per-metric error
// of the fully optimized Zatel on PARK for both Table II configurations,
// plus the Section IV-B headline MAE/speedup numbers.
func BenchmarkFig10_FullyOptimizedPARK(b *testing.B) {
	s := benchSettings()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.MAE["MobileSoC"], "MAE_SoC_%")
		b.ReportMetric(100*r.MAE["RTX2060"], "MAE_RTX_%")
		b.ReportMetric(r.Speedup["MobileSoC"], "speedup_SoC_x")
		b.ReportMetric(r.CappedSpeedup, "speedup_cap10_x")
		render(b, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkFig11_ArchCompare regenerates Fig. 11: RTX 2060 metrics
// normalized to the Mobile SoC, Zatel prediction vs full simulation.
func BenchmarkFig11_ArchCompare(b *testing.B) {
	s := benchSettings()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(s)
		if err != nil {
			b.Fatal(err)
		}
		maxDiff := 0.0
		for _, m := range metrics.All() {
			if r.Diff[m] > maxDiff {
				maxDiff = r.Diff[m]
			}
		}
		b.ReportMetric(100*maxDiff, "maxNormDiff_%")
		b.ReportMetric(r.Zatel[metrics.SimCycles], "normCycles_pred")
		b.ReportMetric(r.FullSim[metrics.SimCycles], "normCycles_ref")
		render(b, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkTable3_Tuning regenerates Table III: distribution × section-size
// tuning on SHIP/WKND/BUNNY.
func BenchmarkTable3_Tuning(b *testing.B) {
	s := benchSettings()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table3(s, config.RTX2060(), 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.SceneMAE["SHIP"], "MAE_SHIP_%")
		b.ReportMetric(100*r.SceneMAE["WKND"], "MAE_WKND_%")
		b.ReportMetric(100*r.SceneMAE["BUNNY"], "MAE_BUNNY_%")
		render(b, func(w io.Writer) { r.Render(w) })
	}
}

// The Figs. 13–16 benchmarks share one percentage sweep per process: the
// four figures are four views of the same {10..90}% × scene grid.
var (
	sweepOnce sync.Once
	sweepRes  *experiments.SweepResult
	sweepErr  error
)

func sharedSweep(b *testing.B) *experiments.SweepResult {
	b.Helper()
	sweepOnce.Do(func() {
		sweepRes, sweepErr = experiments.PercentSweep(benchSettings(), config.RTX2060(), nil)
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepRes
}

// BenchmarkFig13_CyclesErrorVsPercent regenerates Fig. 13: simulation
// cycles error per scene vs % pixels traced (RTX 2060).
func BenchmarkFig13_CyclesErrorVsPercent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sharedSweep(b)
		// Headline: error at 10% vs 50% (paper: exponential convergence).
		at10, at50 := 0.0, 0.0
		for _, sc := range r.Scenes {
			at10 += r.Points[sc][0].Errors[metrics.SimCycles]
			at50 += r.Points[sc][4].Errors[metrics.SimCycles]
		}
		n := float64(len(r.Scenes))
		b.ReportMetric(100*at10/n, "cycErr10_%")
		b.ReportMetric(100*at50/n, "cycErr50_%")
		render(b, func(w io.Writer) { r.RenderFig13(w) })
	}
}

// BenchmarkFig14_RunningTime regenerates Fig. 14: Zatel running time per
// scene vs % pixels traced.
func BenchmarkFig14_RunningTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sharedSweep(b)
		b.ReportMetric(r.Points["BATH"][8].SimWall.Seconds(), "BATH90_s")
		b.ReportMetric(r.Points["SPRNG"][0].SimWall.Seconds(), "SPRNG10_s")
		render(b, func(w io.Writer) { r.RenderFig14(w) })
	}
}

// BenchmarkFig15_Speedup regenerates Fig. 15: speedup per scene vs %
// pixels plus the Eq. 4 power fit.
func BenchmarkFig15_Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sharedSweep(b)
		b.ReportMetric(r.FitA, "fitA")
		b.ReportMetric(r.FitB, "fitB")
		render(b, func(w io.Writer) { r.RenderFig15(w) })
	}
}

// BenchmarkFig16_MetricMAE regenerates Fig. 16: per-metric MAE with
// min/max bars over all scenes vs % pixels.
func BenchmarkFig16_MetricMAE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := sharedSweep(b)
		mae := func(pi int, m metrics.Metric) float64 {
			sum := 0.0
			for _, sc := range r.Scenes {
				sum += r.Points[sc][pi].Errors[m]
			}
			return 100 * sum / float64(len(r.Scenes))
		}
		b.ReportMetric(mae(0, metrics.L1DMissRate), "l1MAE10_%")
		b.ReportMetric(mae(8, metrics.L1DMissRate), "l1MAE90_%")
		render(b, func(w io.Writer) { r.RenderFig16(w) })
	}
}

// The Figs. 17–19 benchmarks share the downscale sweeps.
var (
	downOnce     sync.Once
	downReprRes  *experiments.DownscaleResult
	downAllRes   *experiments.DownscaleResult
	downSweepErr error
)

func sharedDownscale(b *testing.B) (*experiments.DownscaleResult, *experiments.DownscaleResult) {
	b.Helper()
	downOnce.Do(func() {
		s := benchSettings()
		downReprRes, downSweepErr = experiments.DownscaleSweep(s, config.RTX2060(), scene.RepresentativeSubset())
		if downSweepErr == nil {
			downAllRes, downSweepErr = experiments.DownscaleSweep(s, config.RTX2060(), scene.Names())
		}
	})
	if downSweepErr != nil {
		b.Fatal(downSweepErr)
	}
	return downReprRes, downAllRes
}

func meanErrAt(r *experiments.DownscaleResult, div core.Division, ki int, m metrics.Metric) float64 {
	sum := 0.0
	for _, sc := range r.Scenes {
		sum += r.Points[div][sc][ki].Errors[m]
	}
	return 100 * sum / float64(len(r.Scenes))
}

// BenchmarkFig17_DownscaleRepresentative regenerates Fig. 17: error per
// downscaling factor on the representative LumiBench subset.
func BenchmarkFig17_DownscaleRepresentative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		repr, _ := sharedDownscale(b)
		last := len(repr.Factors) - 1
		b.ReportMetric(meanErrAt(repr, core.FineGrained, last, metrics.SimCycles), "cycErrKmax_fine_%")
		b.ReportMetric(meanErrAt(repr, core.CoarseGrained, last, metrics.SimCycles), "cycErrKmax_coarse_%")
		render(b, func(w io.Writer) { repr.RenderErrors(w, "Fig. 17 (representative subset)") })
	}
}

// BenchmarkFig18_DownscaleAll regenerates Fig. 18: the same sweep over all
// used scenes (higher errors: some scenes cannot stress the downscaled GPU).
func BenchmarkFig18_DownscaleAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		repr, all := sharedDownscale(b)
		last := len(all.Factors) - 1
		reprErr := meanErrAt(repr, core.FineGrained, last, metrics.SimCycles)
		allErr := meanErrAt(all, core.FineGrained, last, metrics.SimCycles)
		b.ReportMetric(reprErr, "cycErr_repr_%")
		b.ReportMetric(allErr, "cycErr_all_%")
		render(b, func(w io.Writer) { all.RenderErrors(w, "Fig. 18 (all scenes)") })
	}
}

// BenchmarkFig19_DownscaleSpeedup regenerates Fig. 19: speedup gained from
// GPU downscaling per factor.
func BenchmarkFig19_DownscaleSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, all := sharedDownscale(b)
		first, last := 0, len(all.Factors)-1
		sum := func(ki int) float64 {
			s := 0.0
			for _, sc := range all.Scenes {
				s += all.Points[core.FineGrained][sc][ki].Speedup
			}
			return s / float64(len(all.Scenes))
		}
		b.ReportMetric(sum(first), "speedupKmin_x")
		b.ReportMetric(sum(last), "speedupKmax_x")
		render(b, func(w io.Writer) { all.RenderSpeedup(w) })
	}
}

// BenchmarkFig20_Regression regenerates Fig. 20: exponential-regression
// extrapolation vs directly tracing 40%.
func BenchmarkFig20_Regression(b *testing.B) {
	s := benchSettings()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig20(s, config.RTX2060(), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(r.WorseCount)/float64(r.Total), "regWorse_%")
		render(b, func(w io.Writer) { r.Render(w) })
	}
}

// BenchmarkAblation_Scheduler compares GTO against round-robin warp
// scheduling on the full simulator — the design choice Table II fixes to
// greedy-then-oldest.
func BenchmarkAblation_Scheduler(b *testing.B) {
	s := benchSettings()
	wl, err := rt.CachedWorkload("PARK", s.Width, s.Height, s.SPP)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		gto := config.MobileSoC()
		rr := config.MobileSoC()
		rr.Scheduler = config.RoundRobin
		repGTO, err := gpu.Run(gpu.Job{Cfg: gto, Traces: wl.Traces})
		if err != nil {
			b.Fatal(err)
		}
		repRR, err := gpu.Run(gpu.Job{Cfg: rr, Traces: wl.Traces})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(repGTO.Cycles), "cycles_gto")
		b.ReportMetric(float64(repRR.Cycles), "cycles_rr")
	}
}

// BenchmarkAblation_RTMSHR sweeps the RT unit MSHR size (Table II fixes it
// at 64) to show its effect on simulated cycles.
func BenchmarkAblation_RTMSHR(b *testing.B) {
	s := benchSettings()
	wl, err := rt.CachedWorkload("BATH", s.Width, s.Height, s.SPP)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, mshr := range []int{8, 64} {
			cfg := config.MobileSoC()
			cfg.RTMSHRSize = mshr
			rep, err := gpu.Run(gpu.Job{Cfg: cfg, Traces: wl.Traces})
			if err != nil {
				b.Fatal(err)
			}
			if mshr == 8 {
				b.ReportMetric(float64(rep.Cycles), "cycles_mshr8")
			} else {
				b.ReportMetric(float64(rep.Cycles), "cycles_mshr64")
			}
		}
	}
}

// BenchmarkBaseline_AnalyticModel compares a GPUMech/GCoM-style interval
// analytical model against Zatel on cycles and IPC — the Section IV-B
// comparison. The paper cites GCoM at 26.7% MAE on GPGPU workloads and
// argues ray tracing is worse for analytical models; the expected outcome
// here is a far higher error than Zatel's.
func BenchmarkBaseline_AnalyticModel(b *testing.B) {
	s := benchSettings()
	scenes := []string{"PARK", "BUNNY", "SPNZA"}
	for i := 0; i < b.N; i++ {
		var analyticErr, zatelErr float64
		for _, sc := range scenes {
			cfg := config.MobileSoC()
			ref, err := core.Reference(cfg, sc, s.Width, s.Height, s.SPP)
			if err != nil {
				b.Fatal(err)
			}
			wl, err := rt.CachedWorkload(sc, s.Width, s.Height, s.SPP)
			if err != nil {
				b.Fatal(err)
			}
			ap, err := analytic.Predict(cfg, wl.Traces)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Predict(core.Options{
				Config: cfg, Scene: sc, Width: s.Width, Height: s.Height, SPP: s.SPP,
			})
			if err != nil {
				b.Fatal(err)
			}
			analyticErr += metrics.AbsErr(ap.Cycles, ref.Value(metrics.SimCycles))
			analyticErr += metrics.AbsErr(ap.IPC, ref.Value(metrics.IPC))
			zatelErr += res.Errors(ref)[metrics.SimCycles]
			zatelErr += res.Errors(ref)[metrics.IPC]
		}
		n := float64(2 * len(scenes))
		b.ReportMetric(100*analyticErr/n, "analyticMAE_%")
		b.ReportMetric(100*zatelErr/n, "zatelMAE_%")
	}
}

// BenchmarkAblation_L2Bias demonstrates the Section III-G observation that
// motivates extrapolation: independent per-group simulations do not share
// the L2, so the combined L2 miss rate overestimates the reference.
func BenchmarkAblation_L2Bias(b *testing.B) {
	s := benchSettings()
	for i := 0; i < b.N; i++ {
		cfg := config.MobileSoC()
		ref, err := core.Reference(cfg, "PARK", s.Width, s.Height, s.SPP)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Predict(core.Options{
			Config: cfg, Scene: "PARK",
			Width: s.Width, Height: s.Height, SPP: s.SPP,
			FixedFraction: 1, // isolate the split: no sampling at all
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ref.Value(metrics.L2MissRate), "l2miss_shared")
		b.ReportMetric(res.Predicted[metrics.L2MissRate], "l2miss_split")
	}
}
