#!/bin/sh
cd /root/repo
go test ./... -count=1 -timeout 30m > /root/repo/test_output.txt 2>&1
echo "TESTS_EXIT=$?" >> /root/repo/test_output.txt
go test -bench=. -benchmem -timeout 90m ./... > /root/repo/bench_output.txt 2>&1
echo "BENCH_EXIT=$?" >> /root/repo/bench_output.txt
ZATEL_BENCH_STORE_JSON=/root/repo/BENCH_store.json go test -run 'TestWarmStoreSpeedup' -count=1 -timeout 10m . > /root/repo/bench_store_output.txt 2>&1
echo "BENCH_STORE_EXIT=$?" >> /root/repo/bench_store_output.txt
ZATEL_BENCH_GPU_JSON=/root/repo/BENCH_gpu.json go test -run 'TestGPUHotPathSpeedup' -count=1 -timeout 10m . > /root/repo/bench_gpu_output.txt 2>&1
echo "BENCH_GPU_EXIT=$?" >> /root/repo/bench_gpu_output.txt
ZATEL_BENCH_SAMPLING_JSON=/root/repo/BENCH_sampling.json go test -run 'TestAdaptiveSamplingBench' -count=1 -timeout 10m . > /root/repo/bench_sampling_output.txt 2>&1
echo "BENCH_SAMPLING_EXIT=$?" >> /root/repo/bench_sampling_output.txt
ZATEL_BENCH_DISK_JSON=/root/repo/BENCH_disk.json go test -run 'TestDiskWarmSpeedup' -count=1 -timeout 10m . > /root/repo/bench_disk_output.txt 2>&1
echo "BENCH_DISK_EXIT=$?" >> /root/repo/bench_disk_output.txt
ZATEL_BENCH_CLUSTER_JSON=/root/repo/BENCH_cluster.json go test -run 'TestClusterFetchSpeedup' -count=1 -timeout 10m . > /root/repo/bench_cluster_output.txt 2>&1
echo "BENCH_CLUSTER_EXIT=$?" >> /root/repo/bench_cluster_output.txt
touch /root/repo/.capture_done
